//! Chase–Lev work-stealing deque operation costs (feeds the WS simulator's
//! `queue_op_ns` / `steal_ns` overheads).

use djstar_bench::microbench::bench;
use djstar_core::deque::{Steal, WorkDeque};

fn bench_owner_ops() {
    let deque = WorkDeque::new(256);
    bench("deque_push_pop", || {
        deque.push(42).unwrap();
        deque.pop()
    });
}

fn bench_steal() {
    let deque = WorkDeque::new(256);
    bench("deque_push_steal", || {
        deque.push(42).unwrap();
        match deque.steal() {
            Steal::Success(v) => v,
            _ => 0,
        }
    });
}

fn bench_contended_steal() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let deque = Arc::new(WorkDeque::new(1024));
    let stop = Arc::new(AtomicBool::new(false));
    // A background feeder keeps the deque non-empty.
    let feeder = {
        let deque = Arc::clone(&deque);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = deque.push(7);
                if deque.len() > 512 {
                    std::thread::yield_now();
                }
            }
        })
    };
    bench("deque_steal_contended", || loop {
        match deque.steal() {
            Steal::Success(v) => break v,
            Steal::Empty => std::thread::yield_now(),
            Steal::Retry => {}
        }
    });
    stop.store(true, Ordering::Relaxed);
    feeder.join().unwrap();
}

fn main() {
    bench_owner_ops();
    bench_steal();
    bench_contended_steal();
}
