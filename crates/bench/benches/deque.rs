//! Chase–Lev work-stealing deque operation costs (feeds the WS simulator's
//! `queue_op_ns` / `steal_ns` overheads).

use criterion::{criterion_group, criterion_main, Criterion};
use djstar_core::deque::{Steal, WorkDeque};

fn bench_owner_ops(c: &mut Criterion) {
    let deque = WorkDeque::new(256);
    c.bench_function("deque_push_pop", |b| {
        b.iter(|| {
            deque.push(42).unwrap();
            deque.pop()
        })
    });
}

fn bench_steal(c: &mut Criterion) {
    let deque = WorkDeque::new(256);
    c.bench_function("deque_push_steal", |b| {
        b.iter(|| {
            deque.push(42).unwrap();
            match deque.steal() {
                Steal::Success(v) => v,
                _ => 0,
            }
        })
    });
}

fn bench_contended_steal(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let deque = Arc::new(WorkDeque::new(1024));
    let stop = Arc::new(AtomicBool::new(false));
    // A background feeder keeps the deque non-empty.
    let feeder = {
        let deque = Arc::clone(&deque);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = deque.push(7);
                if deque.len() > 512 {
                    std::thread::yield_now();
                }
            }
        })
    };
    c.bench_function("deque_steal_contended", |b| {
        b.iter(|| loop {
            match deque.steal() {
                Steal::Success(v) => break v,
                Steal::Empty => std::thread::yield_now(),
                Steal::Retry => {}
            }
        })
    });
    stop.store(true, Ordering::Relaxed);
    feeder.join().unwrap();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_owner_ops, bench_steal, bench_contended_steal
}
criterion_main!(benches);
