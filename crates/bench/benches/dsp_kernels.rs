//! Per-node-class DSP kernel costs on the standard 128-frame buffer:
//! the raw material of the graph's node-duration distribution.

use djstar_bench::microbench::{bench, group};
use djstar_dsp::biquad::{Biquad, FilterKind};
use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::dynamics::Limiter;
use djstar_dsp::effects::EffectKind;
use djstar_dsp::eq::ThreeBandEq;
use djstar_dsp::meter::goertzel_power;
use djstar_dsp::osc::NoiseSource;

fn music_buf() -> AudioBuf {
    let mut noise = NoiseSource::new(17);
    AudioBuf::from_fn(2, djstar_dsp::BUFFER_FRAMES, |_, i| {
        0.4 * noise.next_sample() + 0.3 * ((i as f32) * 0.2).sin()
    })
}

fn bench_effects() {
    group("effects_128f");
    for kind in EffectKind::ALL {
        let mut fx = kind.build(djstar_dsp::SAMPLE_RATE);
        let mut buf = music_buf();
        bench(&format!("effects_128f/{kind:?}"), || fx.process(&mut buf));
    }
}

fn bench_filters() {
    group("filters_128f");
    let mut biquad = Biquad::design(FilterKind::Lowpass, 1_000.0, 0.7, djstar_dsp::SAMPLE_RATE);
    let mut buf = music_buf();
    bench("biquad", || biquad.process(&mut buf));
    let mut eq = ThreeBandEq::new(djstar_dsp::SAMPLE_RATE);
    eq.set_gains(3.0, -2.0, 4.0);
    bench("three_band_eq", || eq.process(&mut buf));
    let mut lim = Limiter::master(djstar_dsp::SAMPLE_RATE);
    bench("limiter", || lim.process(&mut buf));
    let meter_buf = music_buf();
    bench("goertzel_8_bands", || {
        let mut acc = 0.0f32;
        for f in [60.0, 150.0, 400.0, 1000.0, 2500.0, 5000.0, 10000.0, 15000.0] {
            acc += goertzel_power(meter_buf.samples(), f, djstar_dsp::SAMPLE_RATE);
        }
        acc
    });
}

fn bench_fft() {
    use djstar_dsp::fft::{fft_inplace, fft_real, Complex};
    group("fft");
    for n in [128usize, 512, 2048] {
        let signal: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.13).sin()).collect();
        bench(&format!("fft/real/{n}"), || fft_real(&signal).len());
        let template: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
        bench(&format!("fft/roundtrip/{n}"), || {
            let mut data = template.clone();
            fft_inplace(&mut data, false);
            fft_inplace(&mut data, true);
            data[0].re
        });
    }
}

fn bench_burn() {
    group("burn_kernel");
    for iters in [1_000u32, 16_000] {
        bench(&format!("burn_kernel/{iters}"), || {
            djstar_dsp::work::burn(iters, 0.4)
        });
    }
}

fn main() {
    bench_effects();
    bench_filters();
    bench_fft();
    bench_burn();
}
