//! Per-node-class DSP kernel costs on the standard 128-frame buffer:
//! the raw material of the graph's node-duration distribution.

use djstar_bench::microbench::{bench, group};
use djstar_dsp::biquad::{process_chain, process_chain_scalar, Biquad, FilterKind};
use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::dynamics::{Compressor, Limiter};
use djstar_dsp::effects::EffectKind;
use djstar_dsp::eq::ThreeBandEq;
use djstar_dsp::meter::goertzel_power;
use djstar_dsp::mix::{mix_into, mix_into_scalar};
use djstar_dsp::osc::NoiseSource;
use djstar_dsp::simd;
use djstar_dsp::stretch::TimeStretcher;

fn music_buf() -> AudioBuf {
    let mut noise = NoiseSource::new(17);
    AudioBuf::from_fn(2, djstar_dsp::BUFFER_FRAMES, |_, i| {
        0.4 * noise.next_sample() + 0.3 * ((i as f32) * 0.2).sin()
    })
}

fn bench_effects() {
    group("effects_128f");
    for kind in EffectKind::ALL {
        let mut fx = kind.build(djstar_dsp::SAMPLE_RATE);
        let mut buf = music_buf();
        bench(&format!("effects_128f/{kind:?}"), || fx.process(&mut buf));
    }
}

fn bench_filters() {
    group("filters_128f");
    let mut biquad = Biquad::design(FilterKind::Lowpass, 1_000.0, 0.7, djstar_dsp::SAMPLE_RATE);
    let mut buf = music_buf();
    bench("biquad", || biquad.process(&mut buf));
    let mut eq = ThreeBandEq::new(djstar_dsp::SAMPLE_RATE);
    eq.set_gains(3.0, -2.0, 4.0);
    bench("three_band_eq", || eq.process(&mut buf));
    let mut lim = Limiter::master(djstar_dsp::SAMPLE_RATE);
    bench("limiter", || lim.process(&mut buf));
    let meter_buf = music_buf();
    bench("goertzel_8_bands", || {
        let mut acc = 0.0f32;
        for f in [60.0, 150.0, 400.0, 1000.0, 2500.0, 5000.0, 10000.0, 15000.0] {
            acc += goertzel_power(meter_buf.samples(), f, djstar_dsp::SAMPLE_RATE);
        }
        acc
    });
}

fn bench_fft() {
    use djstar_dsp::fft::{fft_inplace, fft_real, Complex};
    group("fft");
    for n in [128usize, 512, 2048] {
        let signal: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.13).sin()).collect();
        bench(&format!("fft/real/{n}"), || fft_real(&signal).len());
        let template: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
        bench(&format!("fft/roundtrip/{n}"), || {
            let mut data = template.clone();
            fft_inplace(&mut data, false);
            fft_inplace(&mut data, true);
            data[0].re
        });
    }
}

/// A six-section cascade shaped like `SpFilterNode`'s chain.
fn spfilter_chain() -> Vec<Biquad> {
    let sr = djstar_dsp::SAMPLE_RATE;
    vec![
        Biquad::design(FilterKind::Highpass, 30.0, 0.7, sr),
        Biquad::design(FilterKind::Peaking { gain_db: 2.0 }, 120.0, 1.1, sr),
        Biquad::design(FilterKind::Peaking { gain_db: -3.0 }, 800.0, 0.9, sr),
        Biquad::design(FilterKind::Peaking { gain_db: 1.5 }, 2_500.0, 1.3, sr),
        Biquad::design(FilterKind::HighShelf { gain_db: -1.0 }, 8_000.0, 0.7, sr),
        Biquad::design(FilterKind::Lowpass, 16_000.0, 0.7, sr),
    ]
}

/// Every vectorized kernel, scalar vs SIMD on the same corpus — the raw
/// per-kernel speedups the E16 gate (`fig_dsp_simd`) checks.
fn bench_simd_pairs() {
    group("simd_vs_scalar_128f");

    let mut chain = spfilter_chain();
    let mut buf = music_buf();
    bench("biquad_chain6/scalar", || {
        process_chain_scalar(&mut chain, &mut buf)
    });
    bench("biquad_chain6/simd", || process_chain(&mut chain, &mut buf));

    let mut eq = ThreeBandEq::new(djstar_dsp::SAMPLE_RATE);
    eq.set_gains(3.0, -2.0, 4.0);
    let mut buf = music_buf();
    bench("three_band_eq/scalar", || eq.process_scalar(&mut buf));
    bench("three_band_eq/simd", || eq.process(&mut buf));

    let inputs: Vec<AudioBuf> = (0..8).map(|_| music_buf()).collect();
    let refs: Vec<&AudioBuf> = inputs.iter().collect();
    let gains = [0.5f32; 8];
    let mut out = AudioBuf::zeroed(2, djstar_dsp::BUFFER_FRAMES);
    bench("mix_into_8/scalar", || {
        mix_into_scalar(&mut out, &refs, &gains)
    });
    bench("mix_into_8/simd", || mix_into(&mut out, &refs, &gains));

    let mut lim = Limiter::master(djstar_dsp::SAMPLE_RATE);
    let mut buf = music_buf();
    bench("limiter/scalar", || lim.process_scalar(&mut buf));
    bench("limiter/simd", || lim.process(&mut buf));

    let mut comp = Compressor::new(0.3, 4.0, 10.0, djstar_dsp::SAMPLE_RATE);
    let mut buf = music_buf();
    bench("compressor/scalar", || comp.process_scalar(&mut buf));
    bench("compressor/simd", || comp.process(&mut buf));

    use djstar_dsp::fft::{Complex, Fft};
    for n in [128usize, 1024] {
        let mut plan = Fft::new(n);
        let template: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((i as f32) * 0.13).sin(), 0.0))
            .collect();
        let mut data = template.clone();
        bench(&format!("fft_plan/{n}/scalar"), || {
            plan.process_scalar(&mut data, false);
            plan.process_scalar(&mut data, true);
            data[0].re
        });
        let mut data = template;
        bench(&format!("fft_plan/{n}/simd"), || {
            plan.process(&mut data, false);
            plan.process(&mut data, true);
            data[0].re
        });
    }

    // The stretcher and the raw buffer kernels dispatch on the global
    // SIMD switch, so the scalar leg forces it off for the duration.
    let src: Vec<f32> = (0..44_100)
        .map(|i| ((i as f32) * 0.06).sin() * 0.7)
        .collect();
    let mut st = TimeStretcher::new();
    let mut out = vec![0.0f32; 512];
    simd::set_force_scalar(true);
    bench("stretch_512/scalar", || {
        st.seek(1_000.0);
        st.process(&src, 1.3, &mut out);
        out[0]
    });
    simd::set_force_scalar(false);
    bench("stretch_512/simd", || {
        st.seek(1_000.0);
        st.process(&src, 1.3, &mut out);
        out[0]
    });

    let other = music_buf();
    let mut buf = music_buf();
    simd::set_force_scalar(true);
    bench("buf_mix_add/scalar", || buf.mix_add(&other, 0.5));
    bench("buf_rms/scalar", || buf.rms());
    simd::set_force_scalar(false);
    bench("buf_mix_add/simd", || buf.mix_add(&other, 0.5));
    bench("buf_rms/simd", || buf.rms());
}

fn bench_burn() {
    group("burn_kernel");
    for iters in [1_000u32, 16_000] {
        bench(&format!("burn_kernel/{iters}"), || {
            djstar_dsp::work::burn(iters, 0.4)
        });
    }
}

fn main() {
    bench_effects();
    bench_filters();
    bench_fft();
    bench_simd_pairs();
    bench_burn();
}
