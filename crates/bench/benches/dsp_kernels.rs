//! Per-node-class DSP kernel costs on the standard 128-frame buffer:
//! the raw material of the graph's node-duration distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use djstar_dsp::biquad::{Biquad, FilterKind};
use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::dynamics::Limiter;
use djstar_dsp::effects::EffectKind;
use djstar_dsp::eq::ThreeBandEq;
use djstar_dsp::meter::goertzel_power;
use djstar_dsp::osc::NoiseSource;

fn music_buf() -> AudioBuf {
    let mut noise = NoiseSource::new(17);
    AudioBuf::from_fn(2, djstar_dsp::BUFFER_FRAMES, |_, i| {
        0.4 * noise.next_sample() + 0.3 * ((i as f32) * 0.2).sin()
    })
}

fn bench_effects(c: &mut Criterion) {
    let mut group = c.benchmark_group("effects_128f");
    for kind in EffectKind::ALL {
        let mut fx = kind.build(djstar_dsp::SAMPLE_RATE);
        let mut buf = music_buf();
        group.bench_function(BenchmarkId::from_parameter(format!("{kind:?}")), |b| {
            b.iter(|| fx.process(&mut buf))
        });
    }
    group.finish();
}

fn bench_filters(c: &mut Criterion) {
    let mut group = c.benchmark_group("filters_128f");
    let mut biquad = Biquad::design(FilterKind::Lowpass, 1_000.0, 0.7, djstar_dsp::SAMPLE_RATE);
    let mut buf = music_buf();
    group.bench_function("biquad", |b| b.iter(|| biquad.process(&mut buf)));
    let mut eq = ThreeBandEq::new(djstar_dsp::SAMPLE_RATE);
    eq.set_gains(3.0, -2.0, 4.0);
    group.bench_function("three_band_eq", |b| b.iter(|| eq.process(&mut buf)));
    let mut lim = Limiter::master(djstar_dsp::SAMPLE_RATE);
    group.bench_function("limiter", |b| b.iter(|| lim.process(&mut buf)));
    group.bench_function("goertzel_8_bands", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for f in [60.0, 150.0, 400.0, 1000.0, 2500.0, 5000.0, 10000.0, 15000.0] {
                acc += goertzel_power(buf.samples(), f, djstar_dsp::SAMPLE_RATE);
            }
            acc
        })
    });
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    use djstar_dsp::fft::{fft_inplace, fft_real, Complex};
    let mut group = c.benchmark_group("fft");
    for n in [128usize, 512, 2048] {
        let signal: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.13).sin()).collect();
        group.bench_function(BenchmarkId::new("real", n), |b| {
            b.iter(|| fft_real(&signal).len())
        });
        let template: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
        group.bench_function(BenchmarkId::new("roundtrip", n), |b| {
            b.iter(|| {
                let mut data = template.clone();
                fft_inplace(&mut data, false);
                fft_inplace(&mut data, true);
                data[0].re
            })
        });
    }
    group.finish();
}

fn bench_burn(c: &mut Criterion) {
    let mut group = c.benchmark_group("burn_kernel");
    for iters in [1_000u32, 16_000] {
        group.bench_function(BenchmarkId::from_parameter(iters), |b| {
            b.iter(|| djstar_dsp::work::burn(iters, 0.4))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_effects, bench_filters, bench_fft, bench_burn
}
criterion_main!(benches);
