//! Wall-clock counterpart of Table I: per-cycle graph execution time of the
//! real executors (sequential plus each strategy at the host's sensible
//! thread count) and of the virtual-time simulators.

use djstar_bench::microbench::{bench, group};
use djstar_core::exec::{BusyExecutor, GraphExecutor, Strategy};
use djstar_core::graph::Priority;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::graphbuild::build_djstar_graph;
use djstar_sim::list::{list_schedule_with, Priority as SimPriority};
use djstar_sim::model::{DurationModel, SimGraph};
use djstar_sim::strategy::{simulate_strategy, OverheadModel, SimStrategy};
use djstar_workload::scenario::Scenario;

fn scenario() -> Scenario {
    // A reduced work profile keeps the many iterations affordable while
    // preserving the node-cost *distribution*.
    let mut s = Scenario::paper_default();
    s.work = s.work.scaled(0.1);
    s.track_secs = 8.0;
    s
}

fn bench_real_executors() {
    group("real_graph_cycle");
    for (strategy, label) in [
        (Strategy::Sequential, "SEQ"),
        (Strategy::Busy, "BUSY"),
        (Strategy::Sleep, "SLEEP"),
        (Strategy::Steal, "WS"),
        (Strategy::Planned, "PLAN"),
    ] {
        let threads = if strategy == Strategy::Sequential {
            1
        } else {
            2
        };
        let mut engine = AudioEngine::with_aux(scenario(), strategy, threads, AuxWork::light());
        engine.warmup(20);
        bench(&format!("real_graph_cycle/{label}"), || {
            engine.run_apc().graph
        });
    }
}

fn bench_simulators() {
    // Build the empirical inputs once.
    let mut engine = AudioEngine::with_aux(scenario(), Strategy::Sequential, 1, AuxWork::light());
    engine.warmup(20);
    let samples = engine.measured_node_durations(64);
    let graph = SimGraph::from_topology(engine.executor_mut().topology());
    let durations = DurationModel::Empirical(samples);
    let overheads = OverheadModel::default_host();

    group("simulated_cycle_4t");
    for strat in SimStrategy::ALL {
        let mut cycle = 0usize;
        bench(&format!("simulated_cycle_4t/{}", strat.label()), || {
            cycle += 1;
            simulate_strategy(&graph, &durations, cycle, 4, strat, &overheads).makespan_ns()
        });
    }
}

/// Depth-order vs critical-path-order priority, on the real BUSY executor
/// and on the list-scheduler bound (the PLAN compilation input).
fn bench_priority_order() {
    group("priority_order");
    for (priority, label) in [
        (Priority::Depth, "depth"),
        (Priority::CriticalPath, "critical-path"),
        (Priority::LongerIsShorter, "longer-is-shorter"),
        (Priority::GlobalFixed, "global-fixed"),
    ] {
        let (graph, _map) = build_djstar_graph(&scenario());
        let mut exec = BusyExecutor::with_priority(graph, 2, djstar_dsp::BUFFER_FRAMES, priority);
        for _ in 0..20 {
            exec.run_cycle(&[], &[]);
        }
        bench(&format!("priority_order/busy_2t/{label}"), || {
            exec.run_cycle(&[], &[]).duration
        });
    }

    let mut engine = AudioEngine::with_aux(scenario(), Strategy::Sequential, 1, AuxWork::light());
    engine.warmup(20);
    let samples = engine.measured_node_durations(64);
    let graph = SimGraph::from_topology(engine.executor_mut().topology());
    let durations = DurationModel::Empirical(samples);
    for (priority, label) in [
        (SimPriority::QueueOrder, "queue-order"),
        (SimPriority::CriticalPath, "critical-path"),
        (SimPriority::LongerIsShorter, "longer-is-shorter"),
        (SimPriority::GlobalFixed, "global-fixed"),
    ] {
        let mut cycle = 0usize;
        bench(&format!("priority_order/list_bound_4p/{label}"), || {
            cycle += 1;
            list_schedule_with(&graph, &durations, cycle, 4, priority).makespan_ns()
        });
    }
}

fn main() {
    bench_real_executors();
    bench_simulators();
    bench_priority_order();
}
