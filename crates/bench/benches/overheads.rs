//! The scheduling-overhead constants of the strategy comparison (§V/§VI):
//! spin-poll cost, park/unpark wake latency, and dependency-check cost.
//! These feed `djstar_sim::strategy::OverheadModel`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn bench_spin_poll(c: &mut Criterion) {
    static FLAG: AtomicU64 = AtomicU64::new(0);
    c.bench_function("spin_poll_acquire_load", |b| {
        b.iter(|| {
            core::hint::spin_loop();
            FLAG.load(Ordering::Acquire)
        })
    });
}

fn bench_dep_check(c: &mut Criterion) {
    let epochs: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(7)).collect();
    c.bench_function("dep_check_4_preds", |b| {
        b.iter(|| {
            epochs
                .iter()
                .all(|e| e.load(Ordering::Acquire) == 7)
        })
    });
}

fn bench_park_unpark(c: &mut Criterion) {
    // Ping-pong between two threads: one round trip = two wakes.
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    let turn = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let main_thread = std::thread::current();
    let worker = {
        let turn = Arc::clone(&turn);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                while !turn.load(Ordering::Acquire) {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::park_timeout(Duration::from_millis(5));
                }
                turn.store(false, Ordering::Release);
                main_thread.unpark();
            }
        })
    };
    let worker_thread = worker.thread().clone();
    c.bench_function("park_unpark_round_trip", |b| {
        b.iter(|| {
            turn.store(true, Ordering::Release);
            worker_thread.unpark();
            while turn.load(Ordering::Acquire) {
                std::thread::park_timeout(Duration::from_millis(5));
            }
        })
    });
    stop.store(true, Ordering::Release);
    worker_thread.unpark();
    worker.join().unwrap();
}

fn bench_measured_model(c: &mut Criterion) {
    c.bench_function("measure_overheads_full", |b| {
        b.iter(djstar_bench::measure_overheads)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3));
    targets = bench_spin_poll, bench_dep_check, bench_park_unpark, bench_measured_model
}
criterion_main!(benches);
