//! The scheduling-overhead constants of the strategy comparison (§V/§VI):
//! spin-poll cost, park/unpark wake latency, and dependency-check cost.
//! These feed `djstar_sim::strategy::OverheadModel`.

use djstar_bench::microbench::bench;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn bench_spin_poll() {
    static FLAG: AtomicU64 = AtomicU64::new(0);
    bench("spin_poll_acquire_load", || {
        core::hint::spin_loop();
        FLAG.load(Ordering::Acquire)
    });
}

fn bench_dep_check() {
    let epochs: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(7)).collect();
    bench("dep_check_4_preds", || {
        epochs.iter().all(|e| e.load(Ordering::Acquire) == 7)
    });
}

fn bench_park_unpark() {
    // Ping-pong between two threads: one round trip = two wakes.
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    let turn = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let main_thread = std::thread::current();
    let worker = {
        let turn = Arc::clone(&turn);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                while !turn.load(Ordering::Acquire) {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::park_timeout(Duration::from_millis(5));
                }
                turn.store(false, Ordering::Release);
                main_thread.unpark();
            }
        })
    };
    let worker_thread = worker.thread().clone();
    bench("park_unpark_round_trip", || {
        turn.store(true, Ordering::Release);
        worker_thread.unpark();
        while turn.load(Ordering::Acquire) {
            std::thread::park_timeout(Duration::from_millis(5));
        }
    });
    stop.store(true, Ordering::Release);
    worker_thread.unpark();
    worker.join().unwrap();
}

fn bench_measured_model() {
    bench("measure_overheads_full", djstar_bench::measure_overheads);
}

fn main() {
    bench_spin_poll();
    bench_dep_check();
    bench_park_unpark();
    bench_measured_model();
}
