//! Throughput of the schedule simulators themselves (they must chew
//! through 10 000-cycle experiments quickly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use djstar_engine::graphbuild::build_djstar_graph;
use djstar_sim::earliest::earliest_start;
use djstar_sim::list::list_schedule;
use djstar_sim::model::{DurationModel, SimGraph};
use djstar_sim::strategy::{simulate_strategy, OverheadModel, SimStrategy};
use djstar_workload::scenario::Scenario;

fn dj_graph() -> (SimGraph, DurationModel) {
    let (graph, _) = build_djstar_graph(&Scenario::light_test());
    let sim = SimGraph::from_topology(graph.topology());
    let durations =
        DurationModel::Constant((0..sim.len() as u64).map(|i| 1_000 + (i * 631) % 50_000).collect());
    (sim, durations)
}

fn bench_analysis(c: &mut Criterion) {
    let (graph, durations) = dj_graph();
    c.bench_function("earliest_start_67_nodes", |b| {
        b.iter(|| earliest_start(&graph, &durations, 0).makespan_ns)
    });
    c.bench_function("list_schedule_4_cores", |b| {
        b.iter(|| list_schedule(&graph, &durations, 0, 4).makespan_ns())
    });
}

fn bench_strategies(c: &mut Criterion) {
    let (graph, durations) = dj_graph();
    let overheads = OverheadModel::default_host();
    let mut group = c.benchmark_group("strategy_sim_4t");
    for strat in SimStrategy::ALL {
        group.bench_function(BenchmarkId::from_parameter(strat.label()), |b| {
            b.iter(|| simulate_strategy(&graph, &durations, 0, 4, strat, &overheads).makespan_ns())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_analysis, bench_strategies
}
criterion_main!(benches);
