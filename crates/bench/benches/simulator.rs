//! Throughput of the schedule simulators themselves (they must chew
//! through 10 000-cycle experiments quickly).

use djstar_bench::microbench::{bench, group};
use djstar_engine::graphbuild::build_djstar_graph;
use djstar_sim::earliest::earliest_start;
use djstar_sim::list::list_schedule;
use djstar_sim::model::{DurationModel, SimGraph};
use djstar_sim::strategy::{simulate_strategy, OverheadModel, SimStrategy};
use djstar_workload::scenario::Scenario;

fn dj_graph() -> (SimGraph, DurationModel) {
    let (graph, _) = build_djstar_graph(&Scenario::light_test());
    let sim = SimGraph::from_topology(graph.topology());
    let durations = DurationModel::Constant(
        (0..sim.len() as u64)
            .map(|i| 1_000 + (i * 631) % 50_000)
            .collect(),
    );
    (sim, durations)
}

fn bench_analysis() {
    let (graph, durations) = dj_graph();
    bench("earliest_start_67_nodes", || {
        earliest_start(&graph, &durations, 0).makespan_ns
    });
    bench("list_schedule_4_cores", || {
        list_schedule(&graph, &durations, 0, 4).makespan_ns()
    });
}

fn bench_strategies() {
    let (graph, durations) = dj_graph();
    let overheads = OverheadModel::default_host();
    group("strategy_sim_4t");
    for strat in SimStrategy::ALL {
        bench(&format!("strategy_sim_4t/{}", strat.label()), || {
            simulate_strategy(&graph, &durations, 0, 4, strat, &overheads).makespan_ns()
        });
    }
}

fn main() {
    bench_analysis();
    bench_strategies();
}
