//! Microbenchmarks of the telemetry hot path, plus the end-to-end
//! overhead guard (telemetry-off vs -on graph times on the real engine).
//!
//! The per-op numbers bound what a single recording call costs inside a
//! cycle (a handful of relaxed atomic RMWs); the end-to-end section shows
//! the aggregate effect, which the acceptance criterion caps at 2 % of the
//! mean graph time.

use djstar_bench::microbench::{bench, group};
use djstar_bench::telemetry::median_graph_ns;
use djstar_core::exec::Strategy;
use djstar_core::telemetry::{CounterSnapshot, CycleCounters, TelemetryRing};
use djstar_workload::scenario::Scenario;

fn main() {
    group("telemetry counter primitives");
    let c = CycleCounters::new();
    bench("counters/add_exec", || c.add_exec(1_234));
    bench("counters/add_spin", || c.add_spin(17, 4_096));
    bench("counters/add_steal_hit", || c.add_steal(true));
    bench("counters/note_deque_depth", || c.note_deque_depth(7));
    let mut snap = CounterSnapshot::default();
    bench("counters/drain_into", || c.drain_into(&mut snap));

    group("telemetry ring");
    let mut ring = TelemetryRing::new(1024, 4);
    let mut cycle = 0u64;
    bench("ring/begin_push (4 workers)", || {
        cycle += 1;
        let slot = ring.begin_push(cycle, 1_000_000);
        std::hint::black_box(slot.len())
    });

    // The light scenario's ~1.5 us nodes make this a *worst case*: the
    // dominant cost is two clock reads per node, which is a fixed ns/node
    // tax. The acceptance guard (< 2 % of mean graph time) is measured by
    // telemetry_report on the calibrated paper-scale workload, whose nodes
    // are ~10x longer.
    group("end-to-end overhead (light scenario, SEQ, 300 cycles)");
    let scenario = Scenario::light_test();
    let cycles = 300;
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..3 {
        best_off = best_off.min(median_graph_ns(
            &scenario,
            Strategy::Sequential,
            1,
            20,
            cycles,
            false,
        ));
        best_on = best_on.min(median_graph_ns(
            &scenario,
            Strategy::Sequential,
            1,
            20,
            cycles,
            true,
        ));
    }
    let pct = (best_on - best_off) / best_off * 100.0;
    println!("telemetry off: {best_off:>12.1} ns/cycle (median)");
    println!("telemetry on : {best_on:>12.1} ns/cycle (median)");
    let per_node = (best_on - best_off) / 67.0;
    println!("overhead     : {pct:+.3} % on ~1.5 us nodes ({per_node:.0} ns/node fixed tax)");
    println!("(the 2 % acceptance budget applies at paper scale — see telemetry_report)");
}
