//! Timecode generation/decoding cost — the per-cycle TP phase (16 % of the
//! APC in the paper's hotspot analysis).

use djstar_bench::microbench::bench;
use djstar_dsp::buffer::AudioBuf;
use djstar_engine::timecode::{TimecodeDecoder, TimecodeGenerator};

fn bench_generate() {
    let mut generator = TimecodeGenerator::new(djstar_dsp::SAMPLE_RATE);
    let mut buf = AudioBuf::stereo_default();
    bench("timecode_generate_128f", || {
        generator.generate(1.02, &mut buf)
    });
}

fn bench_decode() {
    let mut generator = TimecodeGenerator::new(djstar_dsp::SAMPLE_RATE);
    let mut decoder = TimecodeDecoder::new(djstar_dsp::SAMPLE_RATE);
    let mut buf = AudioBuf::stereo_default();
    generator.generate(1.02, &mut buf);
    bench("timecode_decode_128f", || decoder.decode(&buf).speed);
}

fn bench_full_cycle_4_decks() {
    let mut gens: Vec<TimecodeGenerator> = (0..4)
        .map(|_| TimecodeGenerator::new(djstar_dsp::SAMPLE_RATE))
        .collect();
    let mut decs: Vec<TimecodeDecoder> = (0..4)
        .map(|_| TimecodeDecoder::new(djstar_dsp::SAMPLE_RATE))
        .collect();
    let mut buf = AudioBuf::stereo_default();
    bench("timecode_tp_phase_4_decks", || {
        let mut acc = 0.0f32;
        for d in 0..4 {
            gens[d].generate(1.0 + d as f32 * 0.01, &mut buf);
            acc += decs[d].decode(&buf).speed;
        }
        acc
    });
}

fn main() {
    bench_generate();
    bench_decode();
    bench_full_cycle_4_decks();
}
