//! Timecode generation/decoding cost — the per-cycle TP phase (16 % of the
//! APC in the paper's hotspot analysis).

use criterion::{criterion_group, criterion_main, Criterion};
use djstar_dsp::buffer::AudioBuf;
use djstar_engine::timecode::{TimecodeDecoder, TimecodeGenerator};

fn bench_generate(c: &mut Criterion) {
    let mut generator = TimecodeGenerator::new(djstar_dsp::SAMPLE_RATE);
    let mut buf = AudioBuf::stereo_default();
    c.bench_function("timecode_generate_128f", |b| {
        b.iter(|| generator.generate(1.02, &mut buf))
    });
}

fn bench_decode(c: &mut Criterion) {
    let mut generator = TimecodeGenerator::new(djstar_dsp::SAMPLE_RATE);
    let mut decoder = TimecodeDecoder::new(djstar_dsp::SAMPLE_RATE);
    let mut buf = AudioBuf::stereo_default();
    generator.generate(1.02, &mut buf);
    c.bench_function("timecode_decode_128f", |b| {
        b.iter(|| decoder.decode(&buf).speed)
    });
}

fn bench_full_cycle_4_decks(c: &mut Criterion) {
    let mut gens: Vec<TimecodeGenerator> =
        (0..4).map(|_| TimecodeGenerator::new(djstar_dsp::SAMPLE_RATE)).collect();
    let mut decs: Vec<TimecodeDecoder> =
        (0..4).map(|_| TimecodeDecoder::new(djstar_dsp::SAMPLE_RATE)).collect();
    let mut buf = AudioBuf::stereo_default();
    c.bench_function("timecode_tp_phase_4_decks", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for d in 0..4 {
                gens[d].generate(1.0 + d as f32 * 0.01, &mut buf);
                acc += decs[d].decode(&buf).speed;
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_generate, bench_decode, bench_full_cycle_4_decks
}
criterion_main!(benches);
