//! WSOLA time-stretching cost — the dominant part of the GP phase (33 % of
//! the APC in the paper's hotspot analysis).

use djstar_bench::microbench::{bench, group};
use djstar_dsp::stretch::TimeStretcher;
use djstar_workload::track::{synth_track, TrackStyle};

fn bench_stretch() {
    let track = synth_track(5, 126.0, 10.0, TrackStyle::House);
    group("wsola_128f");
    for tempo in [0.9f32, 1.0, 1.1, 1.5] {
        let mut stretcher = TimeStretcher::new();
        let mut out = vec![0.0f32; djstar_dsp::BUFFER_FRAMES];
        bench(&format!("wsola_128f/{tempo}"), || {
            if stretcher.position() > (track.samples().len() - 10_000) as f64 {
                stretcher.seek(0.0);
            }
            stretcher.process(track.samples(), tempo, &mut out);
            out[0]
        });
    }
}

fn bench_gp_phase_4_decks() {
    let tracks: Vec<_> = (0..4)
        .map(|d| {
            synth_track(
                d as u64 + 1,
                124.0 + d as f32 * 2.0,
                10.0,
                TrackStyle::House,
            )
        })
        .collect();
    let mut stretchers: Vec<TimeStretcher> = (0..4).map(|_| TimeStretcher::new()).collect();
    let mut out = vec![0.0f32; djstar_dsp::BUFFER_FRAMES];
    bench("gp_stretch_4_decks", || {
        let mut acc = 0.0f32;
        for d in 0..4 {
            if stretchers[d].position() > (tracks[d].samples().len() - 10_000) as f64 {
                stretchers[d].seek(0.0);
            }
            stretchers[d].process(tracks[d].samples(), 1.0 + d as f32 * 0.02, &mut out);
            acc += out[0];
        }
        acc
    });
}

fn main() {
    bench_stretch();
    bench_gp_phase_4_decks();
}
