//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! 1. **Queue priority** — DJ Star's depth-order queue vs critical-path
//!    priority in the resource-constrained list scheduler (§IV keeps "the
//!    queue structure simple"; how much does that cost?).
//! 2. **WS seeding** — section-affinity seeding (§V-C) vs plain
//!    round-robin distribution of the source nodes.
//! 3. **WS local pop order** — LIFO (the paper's cache-locality choice) vs
//!    FIFO.
//! 4. **Cycle-length sensitivity** — the paper's core claim is that
//!    busy-waiting wins *because APC cycles are short*: "the time it takes
//!    to pause a thread and wake it up … costs too much time". Scaling all
//!    node durations shows where SLEEP closes the gap.

use djstar_bench::{build_harness, mean_ms, sim_cycles};
use djstar_sim::list::{list_schedule_with, Priority};
use djstar_sim::model::DurationModel;
use djstar_sim::strategy::{
    simulate_hybrid, simulate_makespans, simulate_ws_config, SimStrategy, WsConfig,
};

fn main() {
    let h = build_harness();
    let cycles = sim_cycles().min(3_000);
    let threads = 4;
    let means = h.durations.means(h.graph.len());

    println!("# Ablations (4 threads)\n");

    println!("## 1. List-scheduler priority (per-node mean durations)\n");
    for (label, prio) in [
        ("depth/queue order (DJ Star)", Priority::QueueOrder),
        ("critical path", Priority::CriticalPath),
    ] {
        let s = list_schedule_with(&h.graph, &means, 0, threads as u32, prio);
        println!("{label:>30}: {:>8.1} us", s.makespan_ns() as f64 / 1e3);
    }

    println!("\n## 2/3. Work-stealing design choices (mean over {cycles} cycles)\n");
    for (label, cfg) in [
        (
            "section seed + LIFO (paper)",
            WsConfig {
                seed_by_section: true,
                lifo_local: true,
            },
        ),
        (
            "round-robin seed + LIFO",
            WsConfig {
                seed_by_section: false,
                lifo_local: true,
            },
        ),
        (
            "section seed + FIFO local",
            WsConfig {
                seed_by_section: true,
                lifo_local: false,
            },
        ),
        (
            "round-robin seed + FIFO",
            WsConfig {
                seed_by_section: false,
                lifo_local: false,
            },
        ),
    ] {
        let ms: Vec<u64> = (0..cycles)
            .map(|c| {
                simulate_ws_config(&h.graph, &h.durations, c, threads, &h.overheads, cfg)
                    .makespan_ns()
            })
            .collect();
        println!("{label:>30}: {:.4} ms", mean_ms(&ms));
    }

    println!("\n## 4. Hybrid spin-then-park (extension strategy)\n");
    println!("(spin budget 0 behaves like SLEEP, unbounded like BUSY-with-notify)\n");
    println!("| spin budget | mean ms |");
    println!("|---|---|");
    for budget_us in [0u64, 1, 5, 20, 100, u64::MAX / 1_000] {
        let budget_ns = budget_us.saturating_mul(1_000);
        let ms: Vec<u64> = (0..cycles)
            .map(|c| {
                simulate_hybrid(&h.graph, &h.durations, c, threads, &h.overheads, budget_ns)
                    .makespan_ns()
            })
            .collect();
        let label = if budget_us > 1_000_000 {
            "unbounded".to_string()
        } else {
            format!("{budget_us} us")
        };
        println!("| {label} | {:.4} |", mean_ms(&ms));
    }

    println!("\n## 5. Cycle-length sensitivity: BUSY vs SLEEP gap\n");
    println!("(the paper's key finding holds only for short cycles; scaling all");
    println!("node durations by k shows the wake-up overhead amortizing away)\n");
    println!("| duration scale | BUSY ms | SLEEP ms | SLEEP penalty |");
    println!("|---|---|---|---|");
    for k in [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let scaled = scale_model(&h.durations, k, h.graph.len());
        let busy = mean_ms(&simulate_makespans(
            &h.graph,
            &scaled,
            threads,
            SimStrategy::Busy,
            &h.overheads,
            cycles,
        ));
        let sleep = mean_ms(&simulate_makespans(
            &h.graph,
            &scaled,
            threads,
            SimStrategy::Sleep,
            &h.overheads,
            cycles,
        ));
        println!(
            "| {k}x | {busy:.4} | {sleep:.4} | +{:.1} % |",
            (sleep / busy - 1.0) * 100.0
        );
    }
}

fn scale_model(model: &DurationModel, k: f64, nodes: usize) -> DurationModel {
    match model {
        DurationModel::Constant(v) => {
            DurationModel::Constant(v.iter().map(|&d| (d as f64 * k) as u64).collect())
        }
        DurationModel::Empirical(samples) => DurationModel::Empirical(
            (0..nodes)
                .map(|n| samples[n].iter().map(|&d| (d as f64 * k) as u64).collect())
                .collect(),
        ),
    }
}
