//! E9 — §VI deadline analysis: "About five out of 10 K APC executions
//! exceed the deadline of 2.9 ms, although the average task graph execution
//! time of ~0.45 ms on four cores is far below the threshold."
//!
//! Full APCs (TP + GP + Graph + VC) are accounted against the 2.9 ms
//! sound-card budget. The graph phase is simulated at 4 virtual threads
//! (BUSY) on the empirical duration model; the non-graph phases are
//! measured per cycle on the real engine; and — as in the paper, where the
//! misses come from OS jitter that "we can do nothing about" on a
//! non-real-time OS — a heavy-tailed preemption model (Pareto, ~0.5 ‰ of
//! cycles hit by a multi-ms scheduler stall) is layered on top. The paper's
//! own explanation of the misses *is* OS scheduling noise; on our container
//! host we inject it deterministically so the experiment is reproducible.

use djstar_bench::{build_harness, sim_cycles};
use djstar_core::exec::Strategy;
use djstar_dsp::rng::SmallRng;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::soundcard::SoundCardSim;
use djstar_sim::strategy::{simulate_makespans, SimStrategy};
use djstar_stats::render::histogram_bars;
use djstar_stats::Histogram;

fn main() {
    let h = build_harness();
    let cycles = sim_cycles();
    let threads = 4;

    eprintln!("[deadline] measuring non-graph APC phases ...");
    let mut engine = AudioEngine::with_aux(
        h.scenario.clone(),
        Strategy::Sequential,
        1,
        AuxWork::paper_scale(),
    );
    engine.warmup(50);
    let probe = cycles.min(2_000);
    let mut aux_ns: Vec<u64> = (0..probe)
        .map(|_| {
            let t = engine.run_apc();
            (t.tp + t.gp + t.vc).as_nanos() as u64
        })
        .collect();
    // Winsorize host-preemption stalls out of the aux measurement (the OS
    // jitter this experiment studies is injected explicitly below, so it
    // must not also leak in through a noisy measurement host). The aux
    // phases are burn-dominated with little genuine variance, so a tight
    // 1.5x-median cap is safe.
    let clipped = djstar_bench::winsorize_samples_at(std::slice::from_mut(&mut aux_ns), 1.5);
    if clipped > 0 {
        eprintln!("[deadline] winsorized {clipped} stall-polluted aux samples");
    }
    let aux_mean = aux_ns.iter().sum::<u64>() / aux_ns.len() as u64;

    eprintln!("[deadline] simulating {cycles} graph cycles (BUSY, 4 threads) ...");
    let graph_ns = simulate_makespans(
        &h.graph,
        &h.durations,
        threads,
        SimStrategy::Busy,
        &h.overheads,
        cycles,
    );

    // OS jitter: rare preemption stalls on a general-purpose OS. ~0.5 per
    // mille of cycles lose a 1-4 ms scheduler quantum.
    let mut rng = SmallRng::seed_from_u64(0xD1_5C_0A_11);
    let mut card = SoundCardSim::paper_default();
    let mut hist = Histogram::new(0.0, 4.0, 40);
    let out = AudioBufFactory::make();
    for (i, &g) in graph_ns.iter().enumerate() {
        let aux = aux_ns[i % aux_ns.len()];
        let jitter: u64 = if rng.chance(0.0005) {
            rng.range_u64(1_000_000, 4_000_000)
        } else {
            0
        };
        let apc = g + aux + jitter;
        card.submit(&out, apc);
        hist.record(apc as f64 / 1e6);
    }

    println!("# §VI deadline analysis ({cycles} APCs, BUSY, 4 threads)\n");
    println!(
        "mean graph time      : {:.3} ms  (paper: ~0.45 ms)",
        mean(&graph_ns)
    );
    println!(
        "mean TP+GP+VC        : {:.3} ms  (paper: ~0.8 ms)",
        aux_mean as f64 / 1e6
    );
    println!(
        "deadline             : {:.3} ms",
        card.deadline_ns() as f64 / 1e6
    );
    println!(
        "missed deadlines     : {} / {}  (paper: ~5 / 10000)",
        card.underruns(),
        card.packets()
    );
    println!(
        "worst APC            : {:.3} ms",
        card.tracker().worst_ns() as f64 / 1e6
    );
    println!(
        "mean headroom        : {:.3} ms",
        card.tracker().mean_headroom_ns() / 1e6
    );
    println!("\nAPC duration distribution:\n");
    println!("{}", histogram_bars(&hist, 60, "ms"));

    // Real-engine telemetry artifact for this experiment: a short BUSY run
    // with per-worker cycle counters, so the raw per-cycle records land in
    // results/ next to the figure.
    let real_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(threads);
    let report = djstar_bench::telemetry::capture_and_export(
        &format!("deadline_busy_{real_threads}t"),
        &h.scenario,
        Strategy::Busy,
        real_threads,
        50,
        500,
    );
    println!("\n## Telemetry (real BUSY engine, {real_threads} thread(s))\n");
    println!("{}", report.render());
}

fn mean(ns: &[u64]) -> f64 {
    ns.iter().sum::<u64>() as f64 / ns.len() as f64 / 1e6
}

/// Helper producing a silent, well-formed packet for the card.
struct AudioBufFactory;
impl AudioBufFactory {
    fn make() -> djstar_dsp::AudioBuf {
        djstar_dsp::AudioBuf::stereo_default()
    }
}
