//! E7 — Fig. 11: typical schedule realizations on four threads.
//!
//! The paper renders, per strategy, how nodes were assigned to threads and
//! in what order — gray boxes marking busy-wait intervals, white gaps
//! marking sleeping threads, with node ids on the bars. We print the same
//! picture twice: once from the virtual-time simulators (the comparable
//! numbers) and once from a real traced cycle of each executor (structure
//! only on a single-core host).
//!
//! A median-makespan cycle is selected per strategy, matching the paper's
//! "typical realizations of the schedules with execution times close to
//! their respective average".

use djstar_bench::{build_harness, run_real_executors};
use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_sim::gantt::{render_schedule, render_trace};
use djstar_sim::strategy::{simulate_makespans, simulate_strategy, SimStrategy};

fn main() {
    let h = build_harness();
    let threads = 4;
    let probe = 501.min(h.durations.cycles().max(1));

    println!("# Fig. 11 — typical schedule realizations (4 threads)\n");
    for strat in SimStrategy::ALL {
        // Pick the cycle whose makespan is the median.
        let makespans =
            simulate_makespans(&h.graph, &h.durations, threads, strat, &h.overheads, probe);
        let mut idx: Vec<usize> = (0..probe).collect();
        idx.sort_by_key(|&i| makespans[i]);
        let median_cycle = idx[probe / 2];
        let s = simulate_strategy(
            &h.graph,
            &h.durations,
            median_cycle,
            threads,
            strat,
            &h.overheads,
        );
        println!(
            "## {} (virtual time; median cycle, makespan {:.1} us)\n",
            strat.label(),
            s.makespan_ns() as f64 / 1e3
        );
        println!("{}", render_schedule(&s, 110));
        let m = djstar_sim::metrics::ScheduleMetrics::of_schedule(&s);
        println!(
            "utilization {:.0} %, load imbalance {:.2}, nodes/thread {:?}\n",
            m.utilization * 100.0,
            m.imbalance,
            m.per_proc_nodes
        );
        // Order statistics the paper discusses: WS runs small independent
        // nodes early; BUSY/SLEEP follow the round-robin queue order.
        let mut order: Vec<(u64, u32)> = s.entries.iter().map(|e| (e.start_ns, e.node)).collect();
        order.sort();
        let first: Vec<String> = order
            .iter()
            .take(8)
            .map(|&(_, n)| h.graph.name(n).to_string())
            .collect();
        println!("first nodes started: {}\n", first.join(", "));
    }

    if run_real_executors() {
        println!("# Real traced cycles (structure; timing is serialized on 1 core)\n");
        for (strategy, label) in [
            (Strategy::Busy, "BUSY"),
            (Strategy::Sleep, "SLEEP"),
            (Strategy::Steal, "WS"),
        ] {
            let mut engine =
                AudioEngine::with_aux(h.scenario.clone(), strategy, threads, AuxWork::light());
            engine.warmup(30);
            engine.executor_mut().set_tracing(true);
            engine.run_apc();
            if let Some(trace) = engine.executor_mut().take_trace() {
                println!("## {label} (measured)\n");
                println!("{}", render_trace(&trace, 110));
            }
        }
    }
}
