//! E8 — Fig. 12 and the §VI closing analysis: the BUSY strategy replayed
//! inside the simulator, compared against measurement and against the
//! optimal schedule.
//!
//! Paper numbers: the idealized §IV simulation predicts 327 µs for BUSY on
//! four threads — within 8 % of the 4-core optimal schedule (324 µs /
//! 295 µs unbounded) — while the measurement lands at 452 µs because "the
//! simulation cannot take into account node assignment, thread management
//! and dependency checking". This binary quantifies exactly that gap by
//! simulating BUSY twice: with zero overheads (RESCON-style) and with the
//! measured host overhead model.

use djstar_bench::{build_harness, mean_ms, sim_cycles};
use djstar_sim::earliest::earliest_start;
use djstar_sim::gantt::render_schedule;
use djstar_sim::list::list_schedule;
use djstar_sim::strategy::{simulate_makespans, simulate_strategy, OverheadModel, SimStrategy};

fn main() {
    let h = build_harness();
    let threads = 4;
    let cycles = sim_cycles();
    let means = h.durations.means(h.graph.len());

    println!("# Fig. 12 — simulation of the BUSY schedule (4 threads)\n");

    let optimal_inf = earliest_start(&h.graph, &means, 0).makespan_ns;
    let optimal_4 = list_schedule(&h.graph, &means, 0, 4).makespan_ns();
    let busy_ideal = simulate_strategy(
        &h.graph,
        &means,
        0,
        threads,
        SimStrategy::Busy,
        &OverheadModel::zero(),
    );
    let busy_overhead = simulate_makespans(
        &h.graph,
        &h.durations,
        threads,
        SimStrategy::Busy,
        &h.overheads,
        cycles,
    );

    println!(
        "optimal schedule, unbounded procs : {:>8.1} us  (paper: 295 us)",
        optimal_inf as f64 / 1e3
    );
    println!(
        "optimal schedule, 4 cores         : {:>8.1} us  (paper: 324 us)",
        optimal_4 as f64 / 1e3
    );
    println!(
        "BUSY simulated, no overheads      : {:>8.1} us  (paper: 327 us)",
        busy_ideal.makespan_ns() as f64 / 1e3
    );
    println!(
        "BUSY simulated, host overheads    : {:>8.1} us  (paper measured: 452 us)",
        mean_ms(&busy_overhead) * 1e3
    );
    let eff = optimal_4 as f64 / busy_ideal.makespan_ns() as f64;
    println!(
        "\nefficiency of idealized BUSY vs 4-core optimal: {:.0} %  (paper: ~99 %, 'within 8 %' of unbounded)",
        eff * 100.0
    );
    let gap = mean_ms(&busy_overhead) * 1e3 / (busy_ideal.makespan_ns() as f64 / 1e3) - 1.0;
    println!(
        "overhead gap (scheduling/thread management/dependency checks): +{:.1} %  (paper: 452/327 = +38 %)",
        gap * 100.0
    );

    println!("\n## Simulated BUSY schedule (Fig. 12 picture)\n");
    println!("{}", render_schedule(&busy_ideal, 110));

    // Overhead attribution: turn each overhead on in isolation.
    println!("## Overhead attribution (mean over {cycles} cycles, ms)\n");
    let zero = OverheadModel::zero();
    let mut rows: Vec<(&str, OverheadModel)> = vec![("none", zero)];
    let mut only_spin = zero;
    only_spin.spin_poll_ns = h.overheads.spin_poll_ns;
    rows.push(("spin poll", only_spin));
    let mut only_disp = zero;
    only_disp.dispatch_ns = h.overheads.dispatch_ns;
    only_disp.dep_check_ns = h.overheads.dep_check_ns;
    rows.push(("dispatch + dep checks", only_disp));
    rows.push(("all (host model)", h.overheads));
    for (label, oh) in rows {
        let ms = simulate_makespans(
            &h.graph,
            &h.durations,
            threads,
            SimStrategy::Busy,
            &oh,
            cycles,
        );
        println!("{label:>24}: {:.4} ms", mean_ms(&ms));
    }
}
