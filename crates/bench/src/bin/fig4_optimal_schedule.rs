//! E2 — Fig. 4 and the §IV simulation numbers: the earliest-start schedule
//! with unbounded processors (paper: 295 µs, 33 processors, concurrency
//! dropping to 4 after ~25 µs) and the resource-constrained 4-core list
//! schedule (paper: 324 µs, +8 %).

use djstar_bench::build_harness;
use djstar_sim::earliest::earliest_start;
use djstar_sim::gantt::render_schedule;
use djstar_sim::list::list_schedule;
use djstar_stats::render::line_chart;

fn main() {
    let h = build_harness();
    // §IV: "we measured the average vertex computation time using 10k APC
    // executions" — the simulation runs on per-node means.
    let means = h.durations.means(h.graph.len());

    let inf = earliest_start(&h.graph, &means, 0);
    println!("# Fig. 4 / §IV — optimal schedule analysis\n");
    println!("## Earliest start, unbounded processors\n");
    println!(
        "makespan: {:.1} us   (paper: 295 us)",
        inf.makespan_ns as f64 / 1e3
    );
    println!(
        "max concurrency: {} processors   (paper: 33)",
        inf.max_concurrency
    );
    println!(
        "critical path ({} nodes): {}",
        inf.critical_path.len(),
        inf.critical_path
            .iter()
            .map(|&n| h.graph.name(n))
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    // Concurrency over time (the paper: 33 concurrent nodes at start, down
    // to 4 after ~25 us, tailing to 1).
    let profile = inf.schedule.concurrency_profile();
    let points: Vec<(f64, f64)> = profile
        .iter()
        .map(|&(t, c)| (t as f64 / 1e3, c as f64))
        .collect();
    println!("\nconcurrency over time (x = us, y = running nodes):\n");
    println!("{}", line_chart(&points, 12, 70));
    if let Some(&(t_drop, _)) = profile.iter().find(|&&(_, c)| c <= 4) {
        println!(
            "concurrency first drops to <= 4 at {:.1} us   (paper: ~25 us)",
            t_drop as f64 / 1e3
        );
    }

    println!("\n## Resource-constrained list schedule (4 cores)\n");
    let four = list_schedule(&h.graph, &means, 0, 4);
    let slowdown = four.makespan_ns() as f64 / inf.makespan_ns as f64 - 1.0;
    println!(
        "makespan: {:.1} us   (paper: 324 us)",
        four.makespan_ns() as f64 / 1e3
    );
    println!("vs unbounded: +{:.1} %   (paper: +8 %)", slowdown * 100.0);
    println!("\nschedule (Fig. 4 lower panel):\n");
    println!("{}", render_schedule(&four, 100));

    for procs in [1u32, 2, 3, 4, 6, 8] {
        let s = list_schedule(&h.graph, &means, 0, procs);
        println!(
            "list schedule on {procs} cores: {:>8.1} us",
            s.makespan_ns() as f64 / 1e3
        );
    }
}
