//! E12 — the PLAN executor: does replaying §IV's resource-constrained list
//! schedule actually collect the bound it promises?
//!
//! Three-way simulated comparison at four virtual cores, on the per-node
//! mean durations (the same inputs the paper's 324 µs number uses):
//!
//! * the `sim::list` bound itself,
//! * PLAN — the bound's timelines frozen into a blueprint and replayed
//!   with the executor's overheads (dispatch + cross-worker spin checks),
//! * BUSY — the paper's winner, round-robin with full dependency checks.
//!
//! plus empirical-duration medians (the blueprint is compiled once from
//! means, then replayed against per-cycle measured durations — the
//! real deployment regime), a queue-order vs critical-path bound
//! comparison, and a wall-clock guard: single-thread PLAN graph-time p50
//! must not regress against the E11 `BENCH_telemetry.json` baseline.
//! Everything lands in `BENCH_plan.json`.

use djstar_bench::telemetry::median_ns;
use djstar_bench::{build_harness, real_executor_times, sim_cycles};
use djstar_core::exec::Strategy;
use djstar_sim::list::{list_schedule_with, Priority};
use djstar_sim::strategy::{simulate_makespans, SimStrategy};
use djstar_sim::{compile_blueprint, list_schedule, simulate_plan, simulate_plan_makespans};
use djstar_stats::plan::{scan_baseline_p50, PlanReport};

/// Slack for "PLAN collects the bound": 5 % (ISSUE acceptance).
const BOUND_SLACK: f64 = 0.05;
/// Slack for the cross-run wall-clock comparison; runs on the same
/// calibrated workload, so 5 % absorbs host drift without hiding a real
/// regression.
const REAL_SLACK: f64 = 0.05;

fn main() {
    let h = build_harness();
    let threads = 4usize;
    let means = h.durations.means(h.graph.len());

    // The bound and its frozen blueprint.
    let bound = list_schedule(&h.graph, &means, 0, threads as u32);
    let blueprint = compile_blueprint(&h.graph, &bound).expect("list schedule compiles");
    let plan = simulate_plan(&h.graph, &means, 0, &blueprint, &h.overheads);
    let busy = simulate_makespans(
        &h.graph,
        &means,
        threads,
        SimStrategy::Busy,
        &h.overheads,
        1,
    );

    // Empirical medians: fixed blueprint vs per-cycle measured durations.
    let cycles = sim_cycles().min(h.durations.cycles().max(1));
    let plan_emp =
        simulate_plan_makespans(&h.graph, &h.durations, &blueprint, &h.overheads, cycles);
    let busy_emp = simulate_makespans(
        &h.graph,
        &h.durations,
        threads,
        SimStrategy::Busy,
        &h.overheads,
        cycles,
    );

    // Priority ablation on the bound itself (core-side executors gained the
    // same switch; the `priority_order` bench sweeps them on the real
    // machine).
    let bound_cp = list_schedule_with(&h.graph, &means, 0, threads as u32, Priority::CriticalPath);

    // Wall-clock guard: single-thread PLAN vs the E11 baseline.
    eprintln!("[plan] measuring real 1-thread PLAN graph times ...");
    let real_p50 = median_ns(real_executor_times(&h.scenario, Strategy::Planned, 1, 500));
    let baseline_strategy = "BUSY";
    let baseline_p50 = std::fs::read_to_string("BENCH_telemetry.json")
        .ok()
        .and_then(|text| scan_baseline_p50(&text, baseline_strategy));
    if baseline_p50.is_none() {
        eprintln!("[plan] no BENCH_telemetry.json baseline found; regression check skipped");
    }

    let report = PlanReport {
        threads,
        cycles,
        bound_ns: bound.makespan_ns(),
        plan_ns: plan.makespan_ns(),
        busy_ns: busy[0],
        plan_empirical_median_ns: median_ns(plan_emp) as u64,
        busy_empirical_median_ns: median_ns(busy_emp) as u64,
        real_plan_p50_ns: real_p50,
        baseline_strategy: baseline_strategy.to_string(),
        baseline_p50_ns: baseline_p50,
    };

    println!("# E12 — PLAN executor vs list bound vs BUSY\n");
    println!("{}", report.render(BOUND_SLACK, REAL_SLACK));
    println!(
        "bound priority ablation: queue-order {:.1} us, critical-path {:.1} us",
        bound.makespan_ns() as f64 / 1e3,
        bound_cp.makespan_ns() as f64 / 1e3
    );

    let json = report.to_json(BOUND_SLACK, REAL_SLACK).render();
    match std::fs::write("BENCH_plan.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[plan] wrote BENCH_plan.json"),
        Err(e) => eprintln!("[plan] cannot write BENCH_plan.json: {e}"),
    }

    let ok = report.within_bound(BOUND_SLACK)
        && report.beats_busy()
        && report.no_real_regression(REAL_SLACK) != Some(false);
    if !ok {
        eprintln!("[plan] acceptance checks FAILED");
        if std::env::var("DJSTAR_STRICT").is_ok_and(|v| v != "0") {
            std::process::exit(1);
        }
    }
}
