//! E5 + E6 — Fig. 9 (execution-time histograms per strategy, bimodal) and
//! Fig. 10 (cumulative histograms) over 10 K cycles at 4 threads.
//!
//! Shape targets from the paper: every strategy shows two peaks (the node
//! costs follow the audio's loud/quiet alternation); BUSY has a strong
//! early peak; SLEEP has no executions below ~0.4 ms (thread wake-up
//! floor) but finishes 80 % under 0.5 ms; WS is more even with a late tail
//! toward 0.8 ms.

use djstar_bench::{build_harness, mean_ms, sim_cycles};
use djstar_sim::strategy::{simulate_makespans, SimStrategy};
use djstar_stats::render::{cumulative_bars, histogram_bars};
use djstar_stats::Histogram;

fn main() {
    let h = build_harness();
    let cycles = sim_cycles();
    let threads = 4;

    println!("# Fig. 9 / Fig. 10 — execution time distributions (4 threads, {cycles} cycles)\n");

    for strat in SimStrategy::ALL {
        let makespans =
            simulate_makespans(&h.graph, &h.durations, threads, strat, &h.overheads, cycles);
        let ms: Vec<f64> = makespans.iter().map(|&n| n as f64 / 1e6).collect();
        // The paper plots 0.2-0.8 ms; auto-extend if our calibration landed
        // slightly differently.
        let lo = 0.2f64.min(ms.iter().cloned().fold(f64::INFINITY, f64::min) * 0.9);
        let hi = 0.8f64.max(ms.iter().cloned().fold(0.0, f64::max) * 1.05);
        let mut hist = Histogram::new(lo, hi, 30);
        hist.record_all(&ms);

        println!("## {} — histogram (Fig. 9)\n", strat.label());
        println!(
            "mean {:.4} ms, min {:.4} ms, max {:.4} ms, peaks(>1% of cycles): {}",
            mean_ms(&makespans),
            ms.iter().cloned().fold(f64::INFINITY, f64::min),
            ms.iter().cloned().fold(0.0f64, f64::max),
            hist.peak_count(cycles as u64 / 100)
        );
        println!("{}", histogram_bars(&hist, 60, "ms"));

        let cum = hist.cumulative();
        println!("## {} — cumulative (Fig. 10)\n", strat.label());
        println!("{}", cumulative_bars(&cum, 60, lo, hi, "ms"));
        println!(
            "fraction under 0.5 ms: {:.1} %  (paper highlights SLEEP reaching 80 %)",
            cum.fraction_below(0.5) * 100.0
        );
        if let Some(v) = cum.value_at_fraction(0.8) {
            println!("80 % of cycles finish within: {v:.3} ms\n");
        }
    }
}
