//! E16 — SIMD + planar-layout speedup of the DSP hot path.
//!
//! Three legs, all against the crate-wide scalar switch
//! (`djstar_dsp::simd::set_force_scalar`), which flips every dispatching
//! kernel onto its scalar reference path on an otherwise identical engine:
//!
//! 1. **kernel speedups** — each vectorized kernel timed through its
//!    deployed entry point, scalar and SIMD batches *interleaved* so host
//!    noise hits both legs alike, best-of per leg. Gates: the six-section
//!    biquad cascade (the `SpFilter` shape) and the fused mixer sum must
//!    clear `DJSTAR_DSP_MIN_SPEEDUP` (default 2x); the remaining kernels
//!    are reported for context.
//! 2. **parity** — the same kernels on identical randomized inputs
//!    (including non-lane-multiple lengths and mono/stereo), max absolute
//!    scalar↔SIMD difference, gated at 1e-6 per sample. The shim performs
//!    lane-wise IEEE singles with no FMA, so the expected measurement is
//!    exactly zero.
//! 3. **whole-graph A/B** — per strategy, one engine alternating 25-cycle
//!    scalar/SIMD blocks on a DSP-heavy scenario (light burn weights, so
//!    kernel time dominates the cycle): SIMD p50 must not exceed the
//!    paired scalar p50 and must add no deadline misses beyond the
//!    host-preemption noise band; plus two
//!    deterministic runs whose output checksums must match bit-exactly.
//!
//! Everything lands in `BENCH_dsp.json`. `DJSTAR_STRICT=1` turns the
//! acceptance checks into the exit code, naming each failed gate.

use djstar_bench::{env_f64, env_usize, fold_checksum, host_threads, strategy_threads};
use djstar_core::exec::Strategy;
use djstar_dsp::biquad::{process_chain, Biquad, FilterKind};
use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::dynamics::{Compressor, Limiter};
use djstar_dsp::eq::ThreeBandEq;
use djstar_dsp::fft::{Complex, Fft};
use djstar_dsp::mix::mix_into;
use djstar_dsp::osc::NoiseSource;
use djstar_dsp::simd;
use djstar_dsp::stretch::TimeStretcher;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::soundcard::SoundCardSim;
use djstar_stats::{DspReport, KernelSpeedup, StrategyDsp, Summary};
use djstar_workload::profile::WorkProfile;
use djstar_workload::scenario::Scenario;
use std::time::{Duration, Instant};

/// Paired scalar/SIMD best ns/iter: calibrate a batch size once, then
/// *alternate* scalar and SIMD batches (12 rounds each) and keep each
/// leg's best. Interleaving matters on shared hosts: a slow phase
/// (preemption, a frequency dip) spans both legs instead of biasing
/// whichever leg happened to own that window, so the ratio stays stable
/// even when absolute numbers wobble.
fn paired_best_ns_per_iter<R>(mut f: impl FnMut() -> R) -> (f64, f64) {
    simd::set_force_scalar(false);
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        if t0.elapsed() >= Duration::from_millis(2) || iters >= 1 << 28 {
            break;
        }
        iters *= 2;
    }
    // best[0] = scalar leg, best[1] = SIMD leg.
    let mut best = [f64::INFINITY; 2];
    for round in 0..24 {
        let on_simd = round % 2 == 1;
        simd::set_force_scalar(!on_simd);
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        let leg = &mut best[on_simd as usize];
        *leg = leg.min(ns);
    }
    simd::set_force_scalar(false);
    (best[0], best[1])
}

/// A noisy stereo 128-frame buffer (the standard cycle block).
fn music_buf(seed: u32) -> AudioBuf {
    let mut noise = NoiseSource::new(seed);
    AudioBuf::from_fn(2, djstar_dsp::BUFFER_FRAMES, |_, i| {
        0.4 * noise.next_sample() + 0.3 * ((i as f32) * 0.2).sin()
    })
}

/// A noisy buffer of arbitrary shape for the parity corpus.
fn noisy_buf(channels: usize, frames: usize, seed: u32) -> AudioBuf {
    let mut noise = NoiseSource::new(seed);
    AudioBuf::from_fn(channels, frames, |_, _| noise.next_sample() * 0.8)
}

/// Six-section cascade shaped like `SpFilterNode`'s chain.
fn spfilter_chain() -> Vec<Biquad> {
    let sr = djstar_dsp::SAMPLE_RATE;
    vec![
        Biquad::design(FilterKind::Highpass, 30.0, 0.7, sr),
        Biquad::design(FilterKind::Peaking { gain_db: 2.0 }, 120.0, 1.1, sr),
        Biquad::design(FilterKind::Peaking { gain_db: -3.0 }, 800.0, 0.9, sr),
        Biquad::design(FilterKind::Peaking { gain_db: 1.5 }, 2_500.0, 1.3, sr),
        Biquad::design(FilterKind::HighShelf { gain_db: -1.0 }, 8_000.0, 0.7, sr),
        Biquad::design(FilterKind::Lowpass, 16_000.0, 0.7, sr),
    ]
}

/// Max |a - b| across two equally shaped buffers.
fn max_diff(a: &AudioBuf, b: &AudioBuf) -> f64 {
    a.samples()
        .iter()
        .zip(b.samples())
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

/// Run `op` once with the scalar switch forced on and once off, on two
/// clones of the same state, and return the max output divergence.
fn parity_of(mut op: impl FnMut() -> AudioBuf) -> f64 {
    simd::set_force_scalar(true);
    let scalar = op();
    simd::set_force_scalar(false);
    let wide = op();
    max_diff(&scalar, &wide)
}

/// The parity corpus: mono and stereo, lane-multiple and ragged lengths.
const SHAPES: [(usize, usize); 5] = [(2, 128), (1, 128), (2, 96), (1, 37), (2, 5)];

fn kernel_measurements() -> Vec<KernelSpeedup> {
    let mut kernels = Vec::new();
    let mut push =
        |kernel: &str, gated: bool, max_abs_diff: f64, mut bench: Box<dyn FnMut() -> f32 + '_>| {
            let (scalar_ns, simd_ns) = paired_best_ns_per_iter(&mut bench);
            eprintln!(
                "[dsp] {kernel:<16} scalar {scalar_ns:>9.1} ns  simd {simd_ns:>9.1} ns  ({:.2}x)",
                scalar_ns / simd_ns
            );
            kernels.push(KernelSpeedup {
                kernel: kernel.to_string(),
                scalar_ns,
                simd_ns,
                max_abs_diff,
                gated,
            });
        };

    // Biquad cascade (the SpFilter shape; the dominant filter kernel).
    let diff = SHAPES
        .iter()
        .enumerate()
        .map(|(i, &(ch, frames))| {
            parity_of(|| {
                let mut chain = spfilter_chain();
                let mut buf = noisy_buf(ch, frames, 100 + i as u32);
                process_chain(&mut chain, &mut buf);
                buf
            })
        })
        .fold(0.0, f64::max);
    let mut chain = spfilter_chain();
    let mut buf = music_buf(17);
    push(
        "biquad_chain6",
        true,
        diff,
        Box::new(move || {
            process_chain(&mut chain, &mut buf);
            0.0
        }),
    );

    // Fused mixer sum (8 inputs, per-input gains).
    let gains = [0.5f32; 8];
    let diff = SHAPES
        .iter()
        .enumerate()
        .map(|(i, &(ch, frames))| {
            parity_of(|| {
                let inputs: Vec<AudioBuf> = (0..8)
                    .map(|k| noisy_buf(ch, frames, 200 + 10 * i as u32 + k))
                    .collect();
                let refs: Vec<&AudioBuf> = inputs.iter().collect();
                let mut out = AudioBuf::zeroed(ch, frames);
                mix_into(&mut out, &refs, &gains);
                out
            })
        })
        .fold(0.0, f64::max);
    let inputs: Vec<AudioBuf> = (0..8).map(|k| music_buf(30 + k)).collect();
    let refs: Vec<&AudioBuf> = inputs.iter().collect();
    let mut out = AudioBuf::zeroed(2, djstar_dsp::BUFFER_FRAMES);
    push(
        "mix_into_8",
        true,
        diff,
        Box::new(move || {
            mix_into(&mut out, &refs, &gains);
            0.0
        }),
    );

    // Three-band EQ (fused biquad cascade behind the scenes).
    let diff = SHAPES
        .iter()
        .enumerate()
        .map(|(i, &(ch, frames))| {
            parity_of(|| {
                let mut eq = ThreeBandEq::new(djstar_dsp::SAMPLE_RATE);
                eq.set_gains(3.0, -2.0, 4.0);
                let mut buf = noisy_buf(ch, frames, 300 + i as u32);
                eq.process(&mut buf);
                buf
            })
        })
        .fold(0.0, f64::max);
    let mut eq = ThreeBandEq::new(djstar_dsp::SAMPLE_RATE);
    eq.set_gains(3.0, -2.0, 4.0);
    let mut buf = music_buf(18);
    push(
        "three_band_eq",
        false,
        diff,
        Box::new(move || {
            eq.process(&mut buf);
            0.0
        }),
    );

    // Limiter (chunked envelope + vector apply).
    let diff = SHAPES
        .iter()
        .enumerate()
        .map(|(i, &(ch, frames))| {
            parity_of(|| {
                let mut lim = Limiter::master(djstar_dsp::SAMPLE_RATE);
                let mut buf = noisy_buf(ch, frames, 400 + i as u32);
                buf.scale(2.0);
                lim.process(&mut buf);
                buf
            })
        })
        .fold(0.0, f64::max);
    let mut lim = Limiter::master(djstar_dsp::SAMPLE_RATE);
    let mut buf = music_buf(19);
    push(
        "limiter",
        false,
        diff,
        Box::new(move || {
            lim.process(&mut buf);
            0.0
        }),
    );

    // Compressor (chunked RMS envelope + vector apply).
    let diff = SHAPES
        .iter()
        .enumerate()
        .map(|(i, &(ch, frames))| {
            parity_of(|| {
                let mut comp = Compressor::new(0.3, 4.0, 10.0, djstar_dsp::SAMPLE_RATE);
                let mut buf = noisy_buf(ch, frames, 500 + i as u32);
                comp.process(&mut buf);
                buf
            })
        })
        .fold(0.0, f64::max);
    let mut comp = Compressor::new(0.3, 4.0, 10.0, djstar_dsp::SAMPLE_RATE);
    let mut buf = music_buf(20);
    push(
        "compressor",
        false,
        diff,
        Box::new(move || {
            comp.process(&mut buf);
            0.0
        }),
    );

    // FFT plan (precomputed twiddles + 4-lane butterflies), one block.
    let diff = {
        let template: Vec<Complex> = (0..128)
            .map(|i| Complex::new(((i as f32) * 0.13).sin(), 0.0))
            .collect();
        let mut plan = Fft::new(128);
        let mut a = template.clone();
        let mut b = template;
        plan.process_scalar(&mut a, false);
        plan.process(&mut b, false);
        a.iter()
            .zip(&b)
            .map(|(x, y)| ((x.re - y.re).abs().max((x.im - y.im).abs())) as f64)
            .fold(0.0, f64::max)
    };
    let mut plan = Fft::new(128);
    let mut data: Vec<Complex> = (0..128)
        .map(|i| Complex::new(((i as f32) * 0.13).sin(), 0.0))
        .collect();
    push(
        "fft_plan_128",
        false,
        diff,
        Box::new(move || {
            plan.process(&mut data, false);
            plan.process(&mut data, true);
            data[0].re
        }),
    );

    // WSOLA stretch (table-driven 4-lane crossfade).
    let src: Vec<f32> = (0..44_100)
        .map(|i| ((i as f32) * 0.06).sin() * 0.7)
        .collect();
    let diff = {
        let run = |src: &[f32]| {
            let mut st = TimeStretcher::new();
            let mut out = vec![0.0f32; 4096];
            st.process(src, 1.3, &mut out);
            out
        };
        simd::set_force_scalar(true);
        let scalar = run(&src);
        simd::set_force_scalar(false);
        let wide = run(&src);
        scalar
            .iter()
            .zip(&wide)
            .map(|(x, y)| (x - y).abs() as f64)
            .fold(0.0, f64::max)
    };
    let mut st = TimeStretcher::new();
    let mut out = vec![0.0f32; 512];
    push(
        "stretch_512",
        false,
        diff,
        Box::new(move || {
            st.seek(1_000.0);
            st.process(&src, 1.3, &mut out);
            out[0]
        }),
    );

    simd::set_force_scalar(false);
    kernels
}

/// Per-strategy whole-graph A/B: paired 25-cycle blocks for timing and
/// misses, then two deterministic runs for the bit-exactness check.
fn strategy_ab(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    cycles: usize,
    deadline_ns: u64,
) -> StrategyDsp {
    const BLOCK: usize = 25;
    let mut engine = AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
    engine.warmup(50);
    let mut scalar_ns: Vec<f64> = Vec::with_capacity(cycles);
    let mut simd_ns: Vec<f64> = Vec::with_capacity(cycles);
    let mut scalar_misses = 0u64;
    let mut simd_misses = 0u64;
    let mut on_simd = false;
    while scalar_ns.len() < cycles || simd_ns.len() < cycles {
        simd::set_force_scalar(!on_simd);
        for _ in 0..BLOCK {
            let ns = engine.run_apc().total().as_nanos() as u64;
            let missed = (ns > deadline_ns) as u64;
            if on_simd {
                simd_ns.push(ns as f64);
                simd_misses += missed;
            } else {
                scalar_ns.push(ns as f64);
                scalar_misses += missed;
            }
        }
        on_simd = !on_simd;
    }
    simd::set_force_scalar(false);

    // Bit-exactness: same scenario, same cycle count, fresh deterministic
    // engines — the two output streams must fold to the same checksum.
    let checksum_of = |force_scalar: bool| {
        simd::set_force_scalar(force_scalar);
        let mut engine =
            AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
        engine.warmup(10);
        let mut acc = 0xCBF2_9CE4_8422_2325u64;
        for _ in 0..256 {
            engine.run_apc();
            acc = fold_checksum(acc, &engine.output());
        }
        acc
    };
    let scalar_sum = checksum_of(true);
    let simd_sum = checksum_of(false);
    simd::set_force_scalar(false);

    StrategyDsp {
        strategy: strategy.label().to_string(),
        scalar_p50_ns: Summary::percentile(&scalar_ns, 50.0).unwrap_or(0.0),
        simd_p50_ns: Summary::percentile(&simd_ns, 50.0).unwrap_or(0.0),
        scalar_misses,
        simd_misses,
        checksums_equal: scalar_sum == simd_sum,
    }
}

fn main() {
    let cycles = env_usize("DJSTAR_DSP_CYCLES", 2_000);
    let min_speedup = env_f64("DJSTAR_DSP_MIN_SPEEDUP", 2.0);
    let threads = host_threads(4);
    let deadline_ns = SoundCardSim::paper_default().deadline_ns();

    eprintln!(
        "[dsp] measuring kernel speedups ({} backend) ...",
        simd::backend()
    );
    let kernels = kernel_measurements();

    // DSP-heavy scenario: the paper topology with light burn weights, so
    // the cycle is dominated by real kernel work and the A/B isolates the
    // SIMD + planar-layout effect.
    let mut scenario = Scenario::paper_default();
    scenario.work = WorkProfile::light();
    let mut strategies = Vec::new();
    for strategy in Strategy::ALL {
        let t = strategy_threads(strategy, threads);
        eprintln!(
            "[dsp] {} paired whole-graph A/B ({cycles} cycles per leg) ...",
            strategy.label()
        );
        strategies.push(strategy_ab(&scenario, strategy, t, cycles, deadline_ns));
    }

    let report = DspReport {
        threads,
        cycles,
        deadline_ns,
        backend: simd::backend().to_string(),
        min_kernel_speedup: min_speedup,
        parity_tol: 1e-6,
        kernels,
        strategies,
    };

    println!("# E16 — SIMD + planar-layout speedup of the DSP hot path\n");
    println!("{}", report.render());

    let json = report.to_json().render();
    match std::fs::write("BENCH_dsp.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[dsp] wrote BENCH_dsp.json"),
        Err(e) => eprintln!("[dsp] cannot write BENCH_dsp.json: {e}"),
    }

    if std::env::var("DJSTAR_STRICT").is_ok_and(|v| v != "0") {
        let failed = report.failed_gates();
        if failed.is_empty() {
            eprintln!("[dsp] strict checks passed");
        } else {
            for gate in &failed {
                eprintln!("[dsp] FAIL: gate '{gate}' tripped");
            }
            std::process::exit(1);
        }
    }
}
