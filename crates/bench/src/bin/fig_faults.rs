//! E14 — fault injection and graceful degradation under overload.
//!
//! Four runs per strategy over the same cycle count against the simulated
//! sound card:
//!
//! 1. **baseline** — no fault plan (the zero-cost-when-disabled reference);
//! 2. **quiet** — an installed plan whose every draw misses (proves the
//!    enabled hook changes neither the audio nor the miss behaviour);
//! 3. **storm** — a calibrated fault storm (node spikes, worker stalls and
//!    a pressure square wave sized from the measured deadline headroom),
//!    degradation off;
//! 4. **storm + degradation** — the same storm with the quality governor
//!    armed: sustained misses shed every deck's FX chain to one slot and
//!    halve the aux work through the glitch-free generation-swap path;
//!    clean air restores them.
//!
//! Headline gate: degradation divides storm misses by at least
//! `DJSTAR_FAULT_CUT` (default 5x) on every parallel strategy; SEQ is
//! reported but excluded (the paper's premise is that the sequential
//! engine has no headroom to protect). Causal gate: no shed/restore
//! commit may itself blow a deadline (E13's criterion). Integrity gates:
//! all checksums bit-exact (injections burn CPU, never audio), fault
//! event totals identical across all six strategies, and the simulated
//! Graham bound reports how many storm misses were unavoidable for *any*
//! scheduler (informational).
//!
//! Everything lands in `BENCH_faults.json`. `DJSTAR_STRICT=1` turns the
//! acceptance checks into the exit code, naming each failed gate.

use djstar_bench::{env_f64, env_usize, fold_checksum, host_threads, strategy_threads};
use djstar_core::exec::Strategy;
use djstar_engine::apc::{fault_plan_from_spec, AudioEngine, AuxWork};
use djstar_engine::degrade::{DegradeAction, DegradeConfig};
use djstar_engine::soundcard::SoundCardSim;
use djstar_sim::model::{DurationModel, SimGraph};
use djstar_stats::{FaultReport, StrategyFaults, Summary};
use djstar_workload::faults::FaultSpec;
use djstar_workload::scenario::Scenario;
use std::time::Duration;

/// The governor tuned to the storm's pressure wave: shed fast (a few
/// misses inside a 16-cycle window), restore only after a clean stretch
/// *longer* than a whole pressure episode — so a restore during a high
/// phase (the governor cannot see pressure directly, only misses) is
/// impossible in steady state and each episode costs one shed.
fn degrade_config_for(spec: &FaultSpec) -> DegradeConfig {
    // An observation chunk longer than one high phase so steady-state
    // restores land in the low phase, with a tolerance sized to absorb
    // the ~2 % of misses host noise produces even when the shed fits.
    let restore_clean = (spec.pressure_len + spec.pressure_len / 4).max(8) as usize;
    DegradeConfig {
        window: 16,
        shed_misses: 4,
        restore_clean,
        restore_tolerance: (restore_clean / 32).max(2),
        min_dwell: 8,
    }
}

struct RunOutcome {
    misses: u64,
    fault_events: u64,
    sheds: u64,
    restores: u64,
    commit_blown: u64,
    checksum: u64,
}

/// Run `cycles` APCs against a fresh sound card with `spec` installed
/// (when given) and optionally the degradation governor armed. A
/// shed/restore commit happens between cycles, so its cost is charged to
/// the *following* cycle's budget, exactly as an audio thread would pay
/// for it; staging is off-thread and never charged.
fn run(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    cycles: usize,
    spec: Option<&FaultSpec>,
    degrade: bool,
) -> RunOutcome {
    let mut engine =
        AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::paper_scale());
    engine.set_faults(spec);
    if degrade {
        let spec = spec.expect("degradation runs install a fault spec");
        engine.enable_degradation(degrade_config_for(spec));
    }
    engine.warmup(50);
    engine.set_telemetry(true);
    let mut card = SoundCardSim::paper_default();
    let deadline = card.deadline_ns();
    let mut fault_events = 0u64;
    let mut sheds = 0u64;
    let mut restores = 0u64;
    let mut commit_blown = 0u64;
    let mut checksum = 0xCBF2_9CE4_8422_2325u64;
    let mut pending_commit = 0u64;
    for cycle in 0..cycles {
        let commit_cost = std::mem::take(&mut pending_commit);
        let timing = engine.run_apc();
        let out = engine.output();
        let own_ns = timing.total().as_nanos() as u64;
        let total_ns = own_ns + commit_cost;
        let missed = total_ns > deadline;
        // E13's causal criterion: the cycle fit its budget on its own and
        // missed only because a material swap cost was charged to it.
        if own_ns <= deadline && missed && commit_cost > deadline / 10 {
            commit_blown += 1;
        }
        card.submit(&out, total_ns);
        checksum = fold_checksum(checksum, &out);
        if degrade {
            if let Some(outcome) = engine.observe_deadline(missed) {
                pending_commit += outcome.commit_ns;
                match outcome.action {
                    DegradeAction::Shed => sheds += 1,
                    DegradeAction::Restore => restores += 1,
                }
            }
        }
        // Drain well before the 8192-record ring wraps.
        if (cycle + 1) % 4096 == 0 {
            if let Some(ring) = engine.take_telemetry() {
                fault_events += ring.iter().map(|r| r.totals().fault_events()).sum::<u64>();
            }
        }
    }
    if let Some(ring) = engine.take_telemetry() {
        fault_events += ring.iter().map(|r| r.totals().fault_events()).sum::<u64>();
    }
    RunOutcome {
        misses: card.underruns(),
        fault_events,
        sheds,
        restores,
        commit_blown,
        checksum,
    }
}

fn p50(samples: &[u64]) -> f64 {
    let v: Vec<f64> = samples.iter().map(|&n| n as f64).collect();
    Summary::percentile(&v, 50.0).unwrap_or(0.0)
}

/// Price the enabled-but-idle hook with a *paired* design: one engine,
/// alternating 25-cycle blocks with the plan cleared / quiet-installed,
/// until each population holds `samples_each` cycle times. Two separate
/// wall-clock runs drift a few percent apart on a shared host, which
/// dwarfs the hook's real cost; interleaving at block granularity makes
/// both populations sample the same noise environment, so only a genuine
/// per-cycle cost can separate their medians.
fn measure_hook_overhead(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    quiet: &FaultSpec,
    samples_each: usize,
) -> (Vec<u64>, Vec<u64>) {
    const BLOCK: usize = 25;
    let mut engine =
        AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::paper_scale());
    engine.warmup(50);
    let mut baseline = Vec::with_capacity(samples_each);
    let mut with_hook = Vec::with_capacity(samples_each);
    let mut hook_on = false;
    while baseline.len() < samples_each || with_hook.len() < samples_each {
        engine.set_faults(if hook_on { Some(quiet) } else { None });
        let sink = if hook_on {
            &mut with_hook
        } else {
            &mut baseline
        };
        for _ in 0..BLOCK {
            sink.push(engine.run_apc().total().as_nanos() as u64);
        }
        hook_on = !hook_on;
    }
    (baseline, with_hook)
}

/// Size the storm from the measured fault-free headroom so the same
/// *relative* pressure reproduces on any host. The pressure wave must
/// overdraw the budget by `overshoot` of the headroom during high phases
/// (the degraded graph — 12 fewer nodes, half the aux — then fits again);
/// spikes and stalls stay small enough that quiet phases keep meeting
/// the deadline.
fn calibrate_storm(
    scenario: &Scenario,
    threads: usize,
    deadline_ns: u64,
    seed: u64,
    overshoot: f64,
) -> FaultSpec {
    let mut engine = AudioEngine::with_aux(
        scenario.clone(),
        Strategy::Busy,
        threads,
        AuxWork::paper_scale(),
    );
    engine.warmup(50);
    let totals: Vec<u64> = (0..100)
        .map(|_| engine.run_apc().total().as_nanos() as u64)
        .collect();
    let p50_ns = p50(&totals);
    // On a host with no fault-free headroom the gates cannot hold; keep
    // a tenth of the deadline as the scale so the run still completes.
    let headroom = (deadline_ns as f64 - p50_ns).max(deadline_ns as f64 / 10.0);
    let iter_ns = djstar_dsp::work::measure_iter_cost_ns().max(0.1);
    let nodes = 67.0;
    // Pressure: extra work per high cycle = overshoot x headroom,
    // parallelizable across workers like any node work.
    let pressure = (overshoot * headroom * threads as f64 / (nodes * iter_ns)).max(1.0) as u32;
    // One spike costs ~5 % of headroom, one stall ~10 %.
    let spike = (0.05 * headroom / iter_ns).max(1.0) as u32;
    let stall = (0.10 * headroom / iter_ns).max(1.0) as u32;
    eprintln!(
        "[faults] calibrated storm: p50 {:.2} ms, headroom {:.2} ms, iter {:.1} ns -> \
         pressure {pressure} it/node, spike {spike} it, stall {stall} it",
        p50_ns / 1e6,
        headroom / 1e6,
        iter_ns
    );
    FaultSpec::storm(seed).with_iters(spike, stall, pressure)
}

/// Simulated lower bound: storm-cycle misses *no* scheduler on `threads`
/// workers could avoid, given measured per-node durations plus the same
/// deterministic injections and the measured non-graph (aux) floor.
fn oracle_unavoidable(
    scenario: &Scenario,
    spec: &FaultSpec,
    threads: usize,
    deadline_ns: u64,
    aux_ns: u64,
    cycles: usize,
) -> u64 {
    let mut engine = AudioEngine::with_aux(
        scenario.clone(),
        Strategy::Sequential,
        1,
        AuxWork::paper_scale(),
    );
    engine.warmup(20);
    let mut samples = engine.measured_node_durations(64);
    djstar_bench::winsorize_samples(&mut samples);
    let graph = SimGraph::from_topology(engine.executor_mut().topology());
    let base = DurationModel::Empirical(samples);
    let plan = fault_plan_from_spec(spec);
    let iter_ns = djstar_dsp::work::measure_iter_cost_ns().max(0.1);
    let graph_budget = deadline_ns.saturating_sub(aux_ns);
    djstar_sim::unavoidable_misses(&graph, &base, &plan, iter_ns, graph_budget, threads, cycles)
        as u64
}

fn main() {
    let cycles = env_usize("DJSTAR_FAULT_CYCLES", 3_000);
    let seed = env_usize("DJSTAR_FAULT_SEED", 0xE14) as u64;
    let cut_factor = env_f64("DJSTAR_FAULT_CUT", 5.0);
    let overhead_pct = env_f64("DJSTAR_FAULT_OVERHEAD_PCT", 3.0);
    let overshoot = env_f64("DJSTAR_FAULT_OVERSHOOT", 1.3);
    let threads = host_threads(4);
    let deadline_ns = SoundCardSim::paper_default().deadline_ns();

    eprintln!("[faults] calibrating scenario ...");
    let scenario = AudioEngine::calibrate(
        Scenario::paper_default(),
        Duration::from_nanos((djstar_bench::PAPER_SEQUENTIAL_MS * 1e6) as u64),
        100,
    );
    let spec = calibrate_storm(&scenario, threads, deadline_ns, seed, overshoot);
    let quiet = FaultSpec::quiet(seed);

    let mut strategies = Vec::new();
    let mut aux_p50_ns = 0u64;
    for strategy in Strategy::ALL {
        let t = strategy_threads(strategy, threads);
        let label = strategy.label();
        let run_pair = |spec: Option<&FaultSpec>, tag: &str| {
            eprintln!("[faults] {label} {tag} run ({cycles} cycles) ...");
            run(&scenario, strategy, t, cycles, spec, false)
        };
        let baseline = run_pair(None, "baseline");
        let quiet_run = run_pair(Some(&quiet), "quiet");
        eprintln!("[faults] {label} paired hook-overhead measurement ...");
        let (hook_off_ns, hook_on_ns) =
            measure_hook_overhead(&scenario, strategy, t, &quiet, (cycles / 2).max(200));
        eprintln!("[faults] {label} storm run ({cycles} cycles) ...");
        let storm_run = run(&scenario, strategy, t, cycles, Some(&spec), false);
        eprintln!("[faults] {label} storm+degradation run ({cycles} cycles) ...");
        let degraded = run(&scenario, strategy, t, cycles, Some(&spec), true);
        if strategy == Strategy::Sequential {
            // The aux floor for the oracle: total minus graph, measured
            // once on the sequential baseline.
            let mut e =
                AudioEngine::with_aux(scenario.clone(), strategy, 1, AuxWork::paper_scale());
            e.warmup(20);
            let aux: Vec<u64> = (0..50)
                .map(|_| {
                    let t = e.run_apc();
                    (t.total() - t.graph).as_nanos() as u64
                })
                .collect();
            aux_p50_ns = p50(&aux) as u64;
        }
        strategies.push(StrategyFaults {
            strategy: label.to_string(),
            parallel: strategy != Strategy::Sequential,
            baseline_misses: baseline.misses,
            quiet_misses: quiet_run.misses,
            storm_misses: storm_run.misses,
            degraded_misses: degraded.misses,
            baseline_cycle_ns: hook_off_ns,
            quiet_cycle_ns: hook_on_ns,
            storm_fault_events: storm_run.fault_events,
            degraded_fault_events: degraded.fault_events,
            sheds: degraded.sheds,
            restores: degraded.restores,
            commit_blown: degraded.commit_blown,
            baseline_checksum: baseline.checksum,
            quiet_checksum: quiet_run.checksum,
            storm_checksum: storm_run.checksum,
            unavoidable_misses: 0, // filled below, once
        });
    }

    eprintln!("[faults] running the simulated lower-bound oracle ...");
    let unavoidable =
        oracle_unavoidable(&scenario, &spec, threads, deadline_ns, aux_p50_ns, cycles);
    for s in &mut strategies {
        s.unavoidable_misses = unavoidable;
    }

    let report = FaultReport {
        threads,
        cycles,
        deadline_ns,
        seed,
        miss_cut_factor: cut_factor,
        min_storm_misses: (cycles / 10) as u64,
        overhead_pct,
        strategies,
    };

    println!("# E14 — deadline misses under a calibrated fault storm\n");
    println!("{}", report.render());

    let json = report.to_json().render();
    match std::fs::write("BENCH_faults.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[faults] wrote BENCH_faults.json"),
        Err(e) => eprintln!("[faults] cannot write BENCH_faults.json: {e}"),
    }

    if std::env::var("DJSTAR_STRICT").is_ok_and(|v| v != "0") {
        let failed = report.failed_gates();
        if failed.is_empty() {
            eprintln!("[faults] strict checks passed");
        } else {
            for gate in &failed {
                eprintln!("[faults] FAIL: gate '{gate}' tripped");
            }
            std::process::exit(1);
        }
    }
}
