//! E15 — flight-recorder forensics: a calibrated fault storm across all
//! six strategies with the always-on span recorder armed, miss dossiers
//! for every budget overrun, Chrome-trace export, and an overhead guard.
//!
//! Per strategy:
//!
//! 1. **Budget** — measure the fault-free graph p50 and set the cycle
//!    budget to `DJSTAR_FLIGHTREC_BUDGET` (default 1.25) times it, so the
//!    storm reliably produces overruns without the host's absolute speed
//!    mattering.
//! 2. **Storm** — run `DJSTAR_FLIGHTREC_CYCLES` APCs with a storm sized
//!    from the measured headroom, the flight recorder armed and the
//!    degradation governor on. The recorder window is drained every 32
//!    cycles; every cycle stamp over budget becomes a
//!    [`MissDossier`](djstar_stats::MissDossier) whose blame components
//!    must sum to the measured overrun within `DJSTAR_FLIGHTREC_TOL_PCT`
//!    (default 1 %). Dossiers cross-reference the engine's degradation
//!    state and commit cycles.
//! 3. **Export** — one drained window (the first with a miss) is written
//!    as Chrome Trace Format to `results/flightrec_<label>.trace.json`
//!    (loadable in Perfetto / `chrome://tracing`), then parsed back and
//!    compared bit-for-bit; dossiers land in
//!    `results/miss_dossiers_<label>.jsonl`.
//! 4. **Overhead** — recorder off/on in adjacent 25-cycle blocks on the
//!    same engine (paired medians, as E11/E14); the recorder must cost at
//!    most `DJSTAR_FLIGHTREC_OVERHEAD_PCT` (default 3 %) of the fastest
//!    recorder-off cycle.
//!
//! Everything lands in `BENCH_flightrec.json`; `DJSTAR_STRICT=1` turns
//! the gates into the exit code, naming each failure.

use djstar_bench::{env_f64, env_usize, host_threads, strategy_threads};
use djstar_core::exec::Strategy;
use djstar_core::flight::{FlightConfig, FlightWindow};
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::degrade::{DegradeAction, DegradeConfig, DegradeEvent};
use djstar_stats::{
    analyze_miss, window_from_ctf, window_to_ctf, FlightRecReport, Json, MissContext, MissDossier,
    StrategyFlightRec, Summary,
};
use djstar_workload::faults::FaultSpec;
use djstar_workload::scenario::Scenario;
use std::time::Duration;

fn p50(samples: &[u64]) -> f64 {
    let v: Vec<f64> = samples.iter().map(|&n| n as f64).collect();
    Summary::percentile(&v, 50.0).unwrap_or(0.0)
}

/// Size a storm so its pressure phases overdraw the *budget* headroom of
/// this strategy (same recipe as E14, but against the relative budget
/// rather than the absolute sound-card deadline).
fn calibrate_storm(p50_ns: f64, budget_ns: u64, threads: usize, seed: u64) -> FaultSpec {
    let headroom = (budget_ns as f64 - p50_ns).max(budget_ns as f64 / 20.0);
    let iter_ns = djstar_dsp::work::measure_iter_cost_ns().max(0.1);
    let nodes = 67.0;
    let pressure = (2.0 * headroom * threads as f64 / (nodes * iter_ns)).max(1.0) as u32;
    let spike = (0.5 * headroom / iter_ns).max(1.0) as u32;
    let stall = (0.5 * headroom / iter_ns).max(1.0) as u32;
    FaultSpec::storm(seed).with_iters(spike, stall, pressure)
}

/// Was the engine running degraded when `cycle` executed? A transition
/// committed at cycle `e` takes effect from cycle `e + 1`.
fn degraded_at(events: &[DegradeEvent], cycle: u64) -> bool {
    events
        .iter()
        .rfind(|e| e.cycle < cycle)
        .is_some_and(|e| e.action == DegradeAction::Shed)
}

/// Did `cycle` pay for a generation-swap commit? Commits are logged at
/// the cycle they were decided after; the swap lands on the next one.
fn commit_at(commits: &[u64], cycle: u64) -> bool {
    cycle > 0 && commits.contains(&(cycle - 1))
}

struct StormOutcome {
    misses_flagged: u64,
    dossiers: Vec<MissDossier>,
    max_blame_err_pct: f64,
    spans: u64,
    dropped_spans: u64,
    sheds: u64,
    restores: u64,
    export_window: Option<FlightWindow>,
}

/// The storm run: recorder + faults + degradation governor, draining the
/// window every `DRAIN` cycles and turning over-budget stamps into
/// dossiers on the spot.
fn storm_run(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    cycles: usize,
    budget_ns: u64,
    spec: &FaultSpec,
) -> StormOutcome {
    const DRAIN: usize = 32;
    let label = strategy.label();
    let mut engine = AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
    engine.set_faults(Some(spec));
    engine.enable_degradation(DegradeConfig {
        window: 16,
        shed_misses: 4,
        restore_clean: (spec.pressure_len + spec.pressure_len / 4).max(8) as usize,
        min_dwell: 8,
        restore_tolerance: 2,
    });
    engine.warmup(50);
    // Armed after warmup so the first drain window only holds measured
    // cycles and the lanes never wrap before it.
    engine.set_flight_recorder(Some(FlightConfig {
        spans_per_worker: 8192,
        cycles: 256,
        session: 0,
    }));

    let mut out = StormOutcome {
        misses_flagged: 0,
        dossiers: Vec::new(),
        max_blame_err_pct: 0.0,
        spans: 0,
        dropped_spans: 0,
        sheds: 0,
        restores: 0,
        export_window: None,
    };
    let analyze = |engine: &mut AudioEngine, out: &mut StormOutcome| {
        let Some(window) = engine.take_flight_window() else {
            return;
        };
        out.spans += window.spans.len() as u64;
        out.dropped_spans += window.dropped_spans;
        let events: Vec<DegradeEvent> = engine.degrade_events().to_vec();
        let commits: Vec<u64> = engine.commit_cycles().to_vec();
        let mut window_missed = false;
        for stamp in &window.cycles {
            if stamp.duration_ns() <= budget_ns {
                continue;
            }
            out.misses_flagged += 1;
            window_missed = true;
            let ctx = MissContext {
                degraded: degraded_at(&events, stamp.cycle),
                reconfig_commit: commit_at(&commits, stamp.cycle),
            };
            if let Some(d) = analyze_miss(&window, stamp.cycle, budget_ns, label, threads, ctx) {
                let err_pct = (d.blame.total() as f64 - d.overrun_ns as f64).abs()
                    / (d.overrun_ns as f64).max(1.0)
                    * 100.0;
                out.max_blame_err_pct = out.max_blame_err_pct.max(err_pct);
                out.dossiers.push(d);
            }
        }
        if window_missed && out.export_window.is_none() {
            out.export_window = Some(window);
        }
    };
    for cycle in 0..cycles {
        let timing = engine.run_apc();
        let missed = timing.graph.as_nanos() as u64 > budget_ns;
        if let Some(o) = engine.observe_deadline(missed) {
            match o.action {
                DegradeAction::Shed => out.sheds += 1,
                DegradeAction::Restore => out.restores += 1,
            }
        }
        if (cycle + 1) % DRAIN == 0 {
            analyze(&mut engine, &mut out);
        }
    }
    analyze(&mut engine, &mut out);
    out
}

/// Recorder cost as a fraction of the fastest recorder-off cycle: paired
/// off/on 25-cycle blocks on one engine, median of the per-pair deltas of
/// block minima (the E11 telemetry-overhead design, recorder edition).
fn recorder_overhead(scenario: &Scenario, strategy: Strategy, threads: usize, pairs: usize) -> f64 {
    const BLOCK: usize = 25;
    let mut engine = AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
    engine.warmup(50);
    let block_min = |engine: &mut AudioEngine, on: bool| -> u64 {
        engine.set_flight_recorder(on.then(FlightConfig::default));
        let min = (0..BLOCK)
            .map(|_| engine.run_apc().graph.as_nanos() as u64)
            .min()
            .expect("BLOCK > 0");
        // Keep the lanes empty so the drain cost never lands in a block.
        engine.take_flight_window();
        min
    };
    let mut deltas = Vec::with_capacity(pairs);
    let mut best_off = u64::MAX;
    for _ in 0..pairs.max(2) {
        let off = block_min(&mut engine, false);
        let on = block_min(&mut engine, true);
        best_off = best_off.min(off);
        deltas.push(on as f64 - off as f64);
    }
    deltas.sort_unstable_by(f64::total_cmp);
    deltas[deltas.len() / 2] / best_off as f64
}

fn write_artifact(path: &str, text: String, what: &str) {
    std::fs::create_dir_all("results").ok();
    match std::fs::write(path, text) {
        Ok(()) => eprintln!("[flightrec] wrote {path} ({what})"),
        Err(e) => eprintln!("[flightrec] cannot write {path}: {e}"),
    }
}

fn main() {
    let cycles = env_usize("DJSTAR_FLIGHTREC_CYCLES", 1_500);
    let seed = env_usize("DJSTAR_FLIGHTREC_SEED", 0xE15) as u64;
    let budget_factor = env_f64("DJSTAR_FLIGHTREC_BUDGET", 1.25);
    let overhead_pct = env_f64("DJSTAR_FLIGHTREC_OVERHEAD_PCT", 3.0);
    let blame_tol_pct = env_f64("DJSTAR_FLIGHTREC_TOL_PCT", 1.0);
    let threads = host_threads(4);

    let scenario = if std::env::var("DJSTAR_CALIBRATE").is_ok_and(|v| v == "0") {
        Scenario::paper_default()
    } else {
        eprintln!("[flightrec] calibrating work profile ...");
        AudioEngine::calibrate(
            Scenario::paper_default(),
            Duration::from_nanos((djstar_bench::PAPER_SEQUENTIAL_MS * 1e6) as u64),
            100,
        )
    };

    let mut strategies = Vec::new();
    for strategy in Strategy::ALL {
        let t = strategy_threads(strategy, threads);
        let label = strategy.label();

        eprintln!("[flightrec] {label}: measuring fault-free baseline ...");
        let mut probe = AudioEngine::with_aux(scenario.clone(), strategy, t, AuxWork::light());
        probe.warmup(50);
        let base: Vec<u64> = (0..100)
            .map(|_| probe.run_apc().graph.as_nanos() as u64)
            .collect();
        drop(probe);
        let base_p50 = p50(&base);
        let budget_ns = (base_p50 * budget_factor) as u64;
        let spec = calibrate_storm(base_p50, budget_ns, t, seed);
        eprintln!(
            "[flightrec] {label}: p50 {:.3} ms, budget {:.3} ms; storm run ({cycles} cycles) ...",
            base_p50 / 1e6,
            budget_ns as f64 / 1e6
        );
        let storm = storm_run(&scenario, strategy, t, cycles, budget_ns, &spec);

        // Export one miss-bearing window as Chrome Trace Format and prove
        // it survives parse → load bit-for-bit.
        let mut ctf_roundtrip_ok = true;
        if let Some(window) = &storm.export_window {
            let text = window_to_ctf(window).render();
            let path = format!("results/flightrec_{}.trace.json", label.to_lowercase());
            write_artifact(&path, format!("{text}\n"), "Chrome Trace Format");
            ctf_roundtrip_ok = match Json::parse(&text).and_then(|j| window_from_ctf(&j)) {
                Ok(back) => back == *window,
                Err(e) => {
                    eprintln!("[flightrec] {label}: CTF reload failed: {e}");
                    false
                }
            };
        }

        // Dossiers as JSONL, one per flagged miss.
        if !storm.dossiers.is_empty() {
            let mut text = String::new();
            for d in &storm.dossiers {
                text.push_str(&d.to_json().render());
                text.push('\n');
            }
            let path = format!("results/miss_dossiers_{}.jsonl", label.to_lowercase());
            write_artifact(&path, text, &format!("{} dossiers", storm.dossiers.len()));
        }

        eprintln!("[flightrec] {label}: paired recorder-overhead measurement ...");
        let overhead_frac = recorder_overhead(&scenario, strategy, t, (cycles / 50).max(8));

        strategies.push(StrategyFlightRec {
            strategy: label.to_string(),
            threads: t,
            budget_ns,
            misses_flagged: storm.misses_flagged,
            dossiers: storm.dossiers.len() as u64,
            max_blame_err_pct: storm.max_blame_err_pct,
            overhead_frac,
            ctf_roundtrip_ok,
            spans: storm.spans,
            dropped_spans: storm.dropped_spans,
            sheds: storm.sheds,
            restores: storm.restores,
        });
    }

    let report = FlightRecReport {
        threads,
        cycles,
        overhead_budget_pct: overhead_pct,
        blame_tol_pct,
        strategies,
    };

    println!("# E15 — flight-recorder forensics under a calibrated fault storm\n");
    println!("{}", report.render());

    let json = report.to_json().render();
    match std::fs::write("BENCH_flightrec.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[flightrec] wrote BENCH_flightrec.json"),
        Err(e) => eprintln!("[flightrec] cannot write BENCH_flightrec.json: {e}"),
    }

    if std::env::var("DJSTAR_STRICT").is_ok_and(|v| v != "0") {
        let failed = report.failed_gates();
        if failed.is_empty() {
            eprintln!("[flightrec] strict checks passed");
        } else {
            for gate in &failed {
                eprintln!("[flightrec] FAIL: gate '{gate}' tripped");
            }
            std::process::exit(1);
        }
    }
}
