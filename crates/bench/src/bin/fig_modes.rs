//! E19 — mode-aware scheduling: warm blueprint-cache switches and the
//! schedulability admission sweep.
//!
//! Two claims ride this experiment:
//!
//! 1. **Cache speedup.** Every strategy replays the same revisit-biased
//!    mode walk twice: *cold* (PR 4 behaviour — each switch stages its
//!    generation from scratch) and *warm* (the one-edit neighborhood is
//!    precompiled into the [`BlueprintCache`] off the audio path, so each
//!    switch is a take-once hit). The warm median stage latency must beat
//!    the cold median by at least `DJSTAR_MODES_MIN_SPEEDUP` (default
//!    5×), with bit-exact audio, every switch served from cache, and no
//!    misses added beyond host noise.
//! 2. **Admission agreement.** A family of target shapes — light to
//!    saturated, plus shapes whose list-schedule bound straddles the
//!    margined budget by exactly ±1 ns — is pushed through
//!    `stage_edits` with admission armed, and every accept/reject must
//!    agree with the simulator's `admissible` oracle computed
//!    independently from the same calibrated cost model.
//!
//! Everything lands in `BENCH_modes.json`. `DJSTAR_STRICT=1` turns the
//! acceptance checks into the exit code.

use djstar_bench::{
    env_f64, env_usize, fold_checksum, host_threads, strategy_threads, CHECKSUM_SEED,
};
use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::modes::{AdmissionControl, NodeCostModel};
use djstar_engine::reconfig::{apply_edit, GraphEdit};
use djstar_engine::soundcard::SoundCardSim;
use djstar_engine::GraphShape;
use djstar_stats::{ModeAdmissionTrial, ModesReport, StrategyModes};
use djstar_workload::scenario::Scenario;
use djstar_workload::switches::{shape_walk, SwitchAction, SwitchScript};
use std::time::{Duration, Instant};

fn to_edit(action: SwitchAction) -> GraphEdit {
    match action {
        SwitchAction::LoadDeck(d) => GraphEdit::LoadDeck(d),
        SwitchAction::UnloadDeck(d) => GraphEdit::UnloadDeck(d),
        SwitchAction::InsertFxSlot(d) => GraphEdit::InsertFxSlot(d),
        SwitchAction::RemoveFxSlot(d) => GraphEdit::RemoveFxSlot(d),
    }
}

struct RunResult {
    misses: u64,
    swaps: u64,
    commit_blown: u64,
    checksum: u64,
    stage_ns: Vec<u64>,
    cache_hits: u64,
    cache_misses: u64,
}

/// Replay `script` over `cycles` APCs against a fresh sound card. With
/// `warm`, the engine's blueprint cache is armed and the one-edit
/// neighborhood precompiled before the storm and refreshed after every
/// commit — the refresh is *not* charged to the cycle (it stands in for
/// the background stager of a real host). Only the stage latency of the
/// switch itself is timed into `stage_ns`, and only the commit is charged
/// to the cycle's deadline, exactly as in E13.
fn run(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    cycles: usize,
    script: &SwitchScript,
    warm: bool,
) -> RunResult {
    let mut engine =
        AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::paper_scale());
    engine.warmup(50);
    if warm {
        engine.enable_mode_cache(32);
        engine.precompile_neighborhood();
    }
    let mut card = SoundCardSim::paper_default();
    let mut events = script.events().iter().peekable();
    let mut stage_ns = Vec::with_capacity(script.len());
    let mut swaps = 0u64;
    let mut commit_blown = 0u64;
    let mut checksum = CHECKSUM_SEED;
    let deadline = card.deadline_ns();
    for cycle in 0..cycles {
        let mut commit_cost = 0u64;
        while let Some(&&e) = events.peek() {
            if e.at_cycle != cycle {
                break;
            }
            events.next();
            let t0 = Instant::now();
            let staged = engine
                .stage_edits(&[to_edit(e.action)])
                .expect("walk scripts only contain valid edits");
            stage_ns.push(t0.elapsed().as_nanos() as u64);
            let t1 = Instant::now();
            engine.commit(staged).expect("staged generation commits");
            let c = t1.elapsed().as_nanos() as u64;
            commit_cost += c;
            swaps += 1;
            if warm {
                // Background-stager stand-in: re-fill the neighborhood of
                // the newly committed shape so the next switch is warm.
                engine.precompile_neighborhood();
            }
        }
        let timing = engine.run_apc();
        let out = engine.output();
        checksum = fold_checksum(checksum, &out);
        let cycle_ns = timing.total().as_nanos() as u64;
        // Same causal glitch metric as E13: only commits that materially
        // tipped an otherwise-passing cycle are blamed on the protocol.
        if cycle_ns <= deadline && cycle_ns + commit_cost > deadline && commit_cost > deadline / 10
        {
            commit_blown += 1;
        }
        card.submit(&out, cycle_ns + commit_cost);
    }
    let stats = engine.mode_cache().map(|c| c.stats()).unwrap_or_default();
    RunResult {
        misses: card.underruns(),
        swaps,
        commit_blown,
        checksum,
        stage_ns,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    }
}

/// The edit script that morphs `from` into `to`, validated step by step.
fn edits_to(from: &GraphShape, to: &GraphShape) -> Vec<GraphEdit> {
    let mut cur = *from;
    let mut edits = Vec::new();
    let push = |cur: &mut GraphShape, edits: &mut Vec<GraphEdit>, e: GraphEdit| {
        apply_edit(cur, e).expect("shape diffs only produce valid edits");
        edits.push(e);
    };
    for d in 0..4 {
        if cur.deck_loaded[d] && cur.remote_decks[d] && (!to.deck_loaded[d] || !to.remote_decks[d])
        {
            push(&mut cur, &mut edits, GraphEdit::DisconnectRemoteDeck(d));
        }
        match (cur.deck_loaded[d], to.deck_loaded[d]) {
            (true, false) => {
                push(&mut cur, &mut edits, GraphEdit::UnloadDeck(d));
                continue;
            }
            (false, true) => push(&mut cur, &mut edits, GraphEdit::LoadDeck(d)),
            _ => {}
        }
        if !to.deck_loaded[d] {
            continue;
        }
        while cur.fx_slots[d] < to.fx_slots[d] {
            push(&mut cur, &mut edits, GraphEdit::InsertFxSlot(d));
        }
        while cur.fx_slots[d] > to.fx_slots[d] {
            push(&mut cur, &mut edits, GraphEdit::RemoveFxSlot(d));
        }
        if !cur.remote_decks[d] && to.remote_decks[d] {
            push(&mut cur, &mut edits, GraphEdit::ConnectRemoteDeck(d));
        }
        if to.remote_decks[d] && to.net_depth[d] > 0 && cur.net_depth[d] != to.net_depth[d] {
            push(
                &mut cur,
                &mut edits,
                GraphEdit::SetNetDepth(d, to.net_depth[d]),
            );
        }
    }
    edits
}

fn shape_label(shape: &GraphShape) -> String {
    let decks: String = shape
        .deck_loaded
        .iter()
        .map(|&l| if l { '1' } else { '0' })
        .collect();
    let fx: Vec<String> = (0..4)
        .map(|d| {
            if shape.deck_loaded[d] {
                shape.fx_slots[d].to_string()
            } else {
                "-".to_string()
            }
        })
        .collect();
    let remote = shape.remote_decks.iter().filter(|&&r| r).count();
    format!("decks={decks} fx={} remote={remote}", fx.join("/"))
}

/// The shape family the admission sweep walks: light to saturated.
fn shape_family() -> Vec<GraphShape> {
    let mut family = Vec::new();
    family.push(GraphShape::paper_default());
    let mut light = GraphShape::paper_default();
    light.deck_loaded = [true, true, false, false];
    light.fx_slots = [1, 1, 1, 1];
    family.push(light);
    let mut mid = GraphShape::paper_default();
    mid.deck_loaded = [true, true, true, false];
    mid.fx_slots = [4, 4, 2, 4];
    family.push(mid);
    let mut heavy = GraphShape::paper_default();
    heavy.fx_slots = [GraphShape::MAX_FX_SLOTS; 4];
    family.push(heavy);
    let mut skewed = GraphShape::paper_default();
    skewed.fx_slots = [GraphShape::MAX_FX_SLOTS, 1, 1, 1];
    family.push(skewed);
    let mut remote = GraphShape::paper_default();
    remote.remote_decks[2] = true;
    remote.net_depth[2] = 4;
    family.push(remote);
    family
}

/// Engine-side verdict: arm admission with (`deadline`, `margin`) and ask
/// `stage_edits` for the diff script from the engine's current shape.
/// The staged generation (accept) is dropped, never committed, so the
/// engine's shape stays put across trials.
fn engine_accepts(
    engine: &mut AudioEngine,
    costs: &NodeCostModel,
    threads: usize,
    deadline_ns: u64,
    margin: f64,
    target: &GraphShape,
) -> bool {
    engine.enable_admission(AdmissionControl::new(
        deadline_ns,
        margin,
        threads,
        costs.clone(),
    ));
    let edits = edits_to(engine.shape(), target);
    let accepted = engine.stage_edits(&edits).is_ok();
    engine.disable_admission();
    accepted
}

/// Oracle-side bound: the same sim primitives, invoked independently of
/// the engine's `AdmissionControl` (PR 9's venue-oracle pattern).
fn oracle_bound_ns(
    scenario: &Scenario,
    shape: &GraphShape,
    costs: &NodeCostModel,
    threads: usize,
) -> u64 {
    let (graph, _) = djstar_engine::build_shaped_graph(scenario, shape);
    let topo = graph.topology();
    let sim = djstar_sim::SimGraph::from_topology(topo);
    let durations = djstar_sim::DurationModel::Constant(costs.durations_for(topo));
    djstar_sim::session_bound_ns(&sim, &durations, threads as u32, 0)
}

fn admission_sweep(
    scenario: &Scenario,
    threads: usize,
    deadline_ns: u64,
) -> Vec<ModeAdmissionTrial> {
    // Calibrate the cost model on a sequential probe of the paper shape —
    // the same measured input the engine's admission would run with.
    let mut probe =
        AudioEngine::with_aux(scenario.clone(), Strategy::Sequential, 1, AuxWork::light());
    probe.warmup(10);
    let costs = probe.calibrated_costs(12);

    let mut engine =
        AudioEngine::with_aux(scenario.clone(), Strategy::Busy, threads, AuxWork::light());
    let family = shape_family();
    let bounds: Vec<u64> = family
        .iter()
        .map(|s| oracle_bound_ns(scenario, s, &costs, threads))
        .collect();

    let mut trials = Vec::new();
    // Sweep 1: the real deadline at the venue margin — the production
    // configuration (typically all-accept at paper scale).
    let margin = 0.1;
    for (shape, &bound) in family.iter().zip(&bounds) {
        trials.push(ModeAdmissionTrial {
            label: format!("{} @ deadline", shape_label(shape)),
            bound_ns: bound,
            budget_ns: djstar_sim::cycle_budget_ns(deadline_ns, margin),
            accepted: engine_accepts(&mut engine, &costs, threads, deadline_ns, margin, shape),
            oracle_admits: djstar_sim::admissible(&[bound], deadline_ns, margin),
        });
    }
    // Sweep 2: a budget pinned at the family's median bound, so the
    // family splits into accepts and rejects.
    let mut sorted = bounds.clone();
    sorted.sort_unstable();
    let pivot = sorted[sorted.len() / 2];
    for (shape, &bound) in family.iter().zip(&bounds) {
        trials.push(ModeAdmissionTrial {
            label: format!("{} @ pivot", shape_label(shape)),
            bound_ns: bound,
            budget_ns: djstar_sim::cycle_budget_ns(pivot, 0.0),
            accepted: engine_accepts(&mut engine, &costs, threads, pivot, 0.0, shape),
            oracle_admits: djstar_sim::admissible(&[bound], pivot, 0.0),
        });
    }
    // Sweep 3: boundary shapes — budgets straddling each shape's own
    // bound by exactly one nanosecond, where off-by-one disagreement
    // between engine and oracle would show immediately.
    for (shape, &bound) in family.iter().zip(&bounds).take(3) {
        for budget in [bound, bound - 1] {
            trials.push(ModeAdmissionTrial {
                label: format!(
                    "{} @ boundary{}",
                    shape_label(shape),
                    if budget == bound { "+0" } else { "-1" }
                ),
                bound_ns: bound,
                budget_ns: djstar_sim::cycle_budget_ns(budget, 0.0),
                accepted: engine_accepts(&mut engine, &costs, threads, budget, 0.0, shape),
                oracle_admits: djstar_sim::admissible(&[bound], budget, 0.0),
            });
        }
    }
    trials
}

fn main() {
    let cycles = env_usize("DJSTAR_MODES_CYCLES", 3_000);
    let switches = env_usize("DJSTAR_MODES_SWITCHES", 100);
    let min_speedup = env_f64("DJSTAR_MODES_MIN_SPEEDUP", 5.0);
    let threads = host_threads(4);
    let period = (cycles / (switches + 1)).max(1);
    let script = shape_walk(switches, period, 0xE19);
    assert!(
        script.last_cycle() < cycles,
        "script must fit the cycle budget"
    );

    eprintln!("[modes] calibrating scenario ...");
    let scenario = AudioEngine::calibrate(
        Scenario::paper_default(),
        Duration::from_nanos((djstar_bench::PAPER_SEQUENTIAL_MS * 1e6) as u64),
        100,
    );
    let deadline_ns = SoundCardSim::paper_default().deadline_ns();

    let mut strategies = Vec::new();
    for strategy in Strategy::ALL {
        let t = strategy_threads(strategy, threads);
        let run_pair = || {
            eprintln!(
                "[modes] {} cold storm ({switches} switches over {cycles} cycles) ...",
                strategy.label()
            );
            let cold = run(&scenario, strategy, t, cycles, &script, false);
            eprintln!(
                "[modes] {} warm storm (precompiled cache) ...",
                strategy.label()
            );
            let warm = run(&scenario, strategy, t, cycles, &script, true);
            assert_eq!(cold.swaps, warm.swaps, "both runs replay the same script");
            StrategyModes {
                strategy: strategy.label().to_string(),
                cold_stage_ns: cold.stage_ns,
                warm_stage_ns: warm.stage_ns,
                cold_misses: cold.misses,
                warm_misses: warm.misses,
                cold_checksum: cold.checksum,
                warm_checksum: warm.checksum,
                cache_hits: warm.cache_hits,
                cache_misses: warm.cache_misses,
                swaps: warm.swaps,
                commit_blown: warm.commit_blown,
            }
        };
        let mut entry = run_pair();
        // Cold and warm runs are independent; a host load burst in either
        // can blow the miss difference (or depress the measured speedup)
        // without any protocol defect. Bursts do not repeat on demand —
        // one pair retry separates them from real regressions, as in E13.
        if entry.added_misses() > entry.noise_allowance(switches)
            || entry.stage_speedup() < min_speedup
        {
            eprintln!(
                "[modes] {} outside gates (speedup {:.1}x, added misses {}) — \
                 retrying the pair once (host load burst?)",
                strategy.label(),
                entry.stage_speedup(),
                entry.added_misses()
            );
            entry = run_pair();
        }
        strategies.push(entry);
    }

    eprintln!("[modes] admission sweep ...");
    let admission = admission_sweep(&scenario, threads, deadline_ns);

    let report = ModesReport {
        threads,
        cycles,
        switches,
        deadline_ns,
        min_speedup,
        strategies,
        admission,
    };

    println!("# E19 — mode-aware scheduling: blueprint cache + admission\n");
    println!("{}", report.render());

    let json = report.to_json().render();
    match std::fs::write("BENCH_modes.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[modes] wrote BENCH_modes.json"),
        Err(e) => eprintln!("[modes] cannot write BENCH_modes.json: {e}"),
    }

    if std::env::var("DJSTAR_STRICT").is_ok_and(|v| v != "0") {
        if !report.cache_speedup_ok() {
            eprintln!("[modes] FAIL: warm stage p50 did not beat cold by {min_speedup}x");
            std::process::exit(1);
        }
        if !report.bit_exact() {
            eprintln!("[modes] FAIL: cached execution diverged from cold-staged audio");
            std::process::exit(1);
        }
        if !report.all_from_cache() {
            eprintln!("[modes] FAIL: a warm switch fell back to cold staging");
            std::process::exit(1);
        }
        if !report.warm_within_noise() {
            eprintln!("[modes] FAIL: warm storm added more misses than the noise allowance");
            std::process::exit(1);
        }
        if !report.no_commit_blown() {
            eprintln!("[modes] FAIL: a commit pushed a cycle over its deadline");
            std::process::exit(1);
        }
        if !report.all_swaps_committed() {
            eprintln!("[modes] FAIL: not every scheduled switch was committed");
            std::process::exit(1);
        }
        if !report.admission_agrees() {
            eprintln!("[modes] FAIL: engine admission disagreed with the sim oracle");
            std::process::exit(1);
        }
        if !report.admission_non_vacuous() {
            eprintln!("[modes] FAIL: admission sweep did not exercise both verdicts");
            std::process::exit(1);
        }
        eprintln!("[modes] strict checks passed");
    }
}
