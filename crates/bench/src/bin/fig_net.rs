//! E17 — networked decks under a deterministic packet-fault trace.
//!
//! Three legs over the same seeded trace:
//!
//! 1. **Determinism** — every strategy × thread-count combination runs
//!    the identical lossy trace; the audio fold and the packet counters
//!    must agree bit-for-bit across all of them (packet fates are pure
//!    functions of `(seed, cycle, stream)`, never of scheduling).
//! 2. **Latency/dropout trade** — a fixed-depth sweep maps the frontier
//!    under a bursty-jitter trace, then the adaptive governor runs the
//!    same trace through the generation-swap actuation path. Headline
//!    gate: adaptive dropouts x `DJSTAR_NET_CUT` (default 5x) stay under
//!    the best fixed depth at no more median latency. The clairvoyant
//!    sim oracle (`djstar_sim::netsim`) reports the unavoidable floor,
//!    and no measured run may beat it.
//! 3. **Cost** — remote decks on a *clean* network add zero deadline
//!    misses over the no-network baseline at paper scale, and the
//!    reception hot path allocates nothing (counting global allocator).
//!
//! Everything lands in `BENCH_net.json`. `DJSTAR_STRICT=1` turns the
//! acceptance checks into the exit code, naming each failed gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use djstar_bench::{env_f64, env_usize, fold_checksum, host_threads, strategy_threads};
use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::degrade::NetDegradeConfig;
use djstar_engine::netnodes::net_plan_from_spec;
use djstar_engine::soundcard::SoundCardSim;
use djstar_stats::{DepthTrade, FixedDepthRun, NetReport, StrategyNet};
use djstar_workload::scenario::Scenario;
use djstar_workload::NetSpec;

/// The determinism trace: both real-world fault classes active (loss,
/// duplication, reordering, jitter bursts) at a fixed buffer depth so
/// every run reproduces the same concealment decisions.
fn determinism_spec(seed: u64) -> NetSpec {
    let mut net = NetSpec::bursty(seed);
    net.adapt = false;
    net.start_depth = 3;
    net
}

/// The sweep trace: calm background jitter punctuated by heavy jitter
/// bursts — the regime where one fixed depth cannot win (shallow drops
/// the bursts, deep pays latency all night). Single remote deck so the
/// dropout count maps 1:1 onto the oracle's per-stream bound.
fn sweep_spec(seed: u64) -> NetSpec {
    NetSpec {
        seed,
        remote_decks: [true, false, false, false],
        listeners: 0,
        base_delay: 0,
        jitter: 1,
        loss_rate: 0.001,
        dup_rate: 0.0,
        dup_delay: 1,
        reorder_rate: 0.005,
        reorder_extra: 2,
        burst_period: 768,
        burst_len: 96,
        burst_jitter: 9,
        listener_stall_rate: 0.0,
        min_depth: 1,
        max_depth: 12,
        start_depth: 1,
        adapt: false,
    }
}

struct NetRun {
    checksum: u64,
    received: u64,
    lost: u64,
    late: u64,
    concealed: u64,
}

/// Run the lossy trace for `cycles` cycles after warm-up, folding the
/// output and counting packets (deltas, so warm-up traffic is excluded).
fn run_trace(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    warmup: usize,
    cycles: usize,
) -> NetRun {
    let mut engine = AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
    engine.warmup(warmup);
    let before = engine.net_stats();
    let mut checksum = 0xCBF2_9CE4_8422_2325u64;
    for _ in 0..cycles {
        engine.run_apc();
        checksum = fold_checksum(checksum, &engine.output());
    }
    let s = engine.net_stats();
    NetRun {
        checksum,
        received: s.received - before.received,
        lost: s.lost - before.lost,
        late: s.late - before.late,
        concealed: s.concealed - before.concealed,
    }
}

/// Dropouts of one fixed-depth run of the sweep trace.
fn run_fixed_depth(spec: &NetSpec, depth: u32, warmup: usize, cycles: usize) -> u64 {
    let scenario = net_scenario(spec.with_fixed_depth(depth));
    let mut engine = AudioEngine::with_aux(scenario, Strategy::Sequential, 1, AuxWork::light());
    engine.warmup(warmup);
    let before = engine.net_stats().concealed;
    for _ in 0..cycles {
        engine.run_apc();
    }
    engine.net_stats().concealed - before
}

/// The governor tuned for bursty jitter: deepen on the first concealed
/// slot in a short window (a burst announces itself immediately), give
/// latency back one rung per clean half-second so the median depth stays
/// near the floor between bursts.
fn adaptive_config(spec: &NetSpec) -> NetDegradeConfig {
    NetDegradeConfig {
        window: 8,
        deepen_conceals: 1,
        restore_clean: 48,
        restore_tolerance: 0,
        min_dwell: 2,
        depth_step: 4,
        min_depth: spec.min_depth,
        max_depth: spec.max_depth,
    }
}

struct AdaptiveRun {
    dropouts: u64,
    median_depth: f64,
    transitions: u64,
}

/// The adaptive run: same trace, engine governor armed, every depth
/// change actuated through the staged generation-swap path.
fn run_adaptive(spec: &NetSpec, warmup: usize, cycles: usize) -> AdaptiveRun {
    let scenario = net_scenario(*spec);
    let mut engine = AudioEngine::with_aux(scenario, Strategy::Sequential, 1, AuxWork::light());
    engine.warmup(warmup);
    engine.enable_net_degradation(adaptive_config(spec));
    let before = engine.net_stats().concealed;
    let mut depths = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        engine.run_apc();
        engine.observe_network();
        depths.push(engine.net_depths()[0]);
    }
    depths.sort_unstable();
    AdaptiveRun {
        dropouts: engine.net_stats().concealed - before,
        median_depth: depths[depths.len() / 2] as f64,
        transitions: engine.net_degrade_events().len() as u64,
    }
}

fn net_scenario(net: NetSpec) -> Scenario {
    let mut s = Scenario::light_test();
    s.net = net;
    s
}

/// Paired paper-scale miss measurement: one engine alternates 25-cycle
/// blocks with the remote decks disconnected (local baseline) and
/// connected over a clean network, toggled live through the
/// generation-swap path, until each population holds `cycles` verdicts.
/// Two separate wall-clock runs drift 1-2 % apart in ambient misses on a
/// shared host, which swamps the real cost of the reception machinery;
/// interleaving makes both populations sample the same noise, so only a
/// genuine per-cycle cost can separate their miss counts. Returns
/// `(baseline_misses, clean_net_misses)`.
fn run_misses_paired(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    cycles: usize,
) -> (u64, u64) {
    use djstar_engine::reconfig::GraphEdit;
    const BLOCK: usize = 25;
    let remote: Vec<usize> = (0..4).filter(|&d| scenario.net.remote_decks[d]).collect();
    let mut engine =
        AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::paper_scale());
    let deadline = SoundCardSim::paper_default().deadline_ns();
    engine.warmup(50);
    let (mut baseline, mut clean) = (0u64, 0u64);
    let (mut base_n, mut clean_n) = (0usize, 0usize);
    let mut net_on = true; // the clean scenario builds with decks connected
    while base_n < cycles || clean_n < cycles {
        let (misses, count) = if net_on {
            (&mut clean, &mut clean_n)
        } else {
            (&mut baseline, &mut base_n)
        };
        // The first post-toggle cycles pay the generation-adoption cost
        // (both directions equally); keep them out of both populations.
        for guard in 0..BLOCK + 3 {
            let timing = engine.run_apc();
            if guard < 3 {
                continue;
            }
            if timing.total().as_nanos() as u64 > deadline {
                *misses += 1;
            }
            *count += 1;
        }
        let edits: Vec<GraphEdit> = remote
            .iter()
            .map(|&d| {
                if net_on {
                    GraphEdit::DisconnectRemoteDeck(d)
                } else {
                    GraphEdit::ConnectRemoteDeck(d)
                }
            })
            .collect();
        engine
            .reconfigure(&edits)
            .expect("remote deck toggle must apply");
        net_on = !net_on;
    }
    (baseline, clean)
}

/// Allocations on the reception hot path: a warmed networked engine's
/// executor runs windows of cycles under the counting allocator. A
/// genuine hot-path allocation repeats every window, so one re-measure
/// filters std's rare lazy initializations.
fn measure_hot_path_allocs(threads: usize) -> u64 {
    let scenario = net_scenario(determinism_spec(0xA110C));
    let mut engine = AudioEngine::with_aux(scenario, Strategy::Steal, threads, AuxWork::light());
    engine.warmup(30);
    let exec = engine.executor_mut();
    let mut measure = || {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..50 {
            exec.run_cycle(&[], &[]);
        }
        ALLOCATIONS.load(Ordering::SeqCst) - before
    };
    let allocs = measure();
    if allocs > 0 {
        return measure();
    }
    allocs
}

fn main() {
    let cycles = env_usize("DJSTAR_NET_CYCLES", 3_000);
    let miss_cycles = env_usize("DJSTAR_NET_MISS_CYCLES", 1_500);
    let seed = env_usize("DJSTAR_NET_SEED", 0xE17) as u64;
    let cut_factor = env_f64("DJSTAR_NET_CUT", 5.0);
    let warmup = 50usize;
    let threads = host_threads(4);
    let deadline_ns = SoundCardSim::paper_default().deadline_ns();

    // Leg 1: determinism across strategies and thread counts.
    let det_scenario = net_scenario(determinism_spec(seed));
    let mut strategies = Vec::new();
    for strategy in Strategy::ALL {
        let counts: &[usize] = if strategy == Strategy::Sequential {
            &[1]
        } else {
            &[1, 2, threads.max(3)]
        };
        for &t in counts {
            eprintln!(
                "[net] {} x{t} lossy trace ({cycles} cycles) ...",
                strategy.label()
            );
            let run = run_trace(&det_scenario, strategy, t, warmup, cycles);
            strategies.push(StrategyNet {
                strategy: strategy.label().to_string(),
                threads: t,
                checksum: run.checksum,
                received: run.received,
                lost: run.lost,
                late: run.late,
                concealed: run.concealed,
                baseline_misses: 0, // filled by the paper-scale miss leg
                clean_net_misses: 0,
            });
        }
    }

    // Leg 2: the latency/dropout frontier and the adaptive governor.
    let sweep = sweep_spec(seed);
    let mut fixed = Vec::new();
    for depth in [1u32, 2, 3, 4, 6, 8, 12] {
        eprintln!("[net] fixed depth {depth} sweep ({cycles} cycles) ...");
        fixed.push(FixedDepthRun {
            depth,
            dropouts: run_fixed_depth(&sweep, depth, warmup, cycles),
        });
    }
    eprintln!("[net] adaptive governor run ({cycles} cycles) ...");
    let adaptive = run_adaptive(&sweep, warmup, cycles);
    let plan = net_plan_from_spec(&sweep);
    let end = (warmup + cycles) as u64;
    let unavoidable = (djstar_sim::lost_packets(&plan, 0, end)
        - djstar_sim::lost_packets(&plan, 0, warmup as u64)) as u64;

    // Leg 3: cost — clean-network misses at paper scale, hot-path allocs.
    eprintln!("[net] calibrating paper-scale scenario for the miss leg ...");
    let paper = AudioEngine::calibrate(
        Scenario::paper_default(),
        Duration::from_nanos((djstar_bench::PAPER_SEQUENTIAL_MS * 1e6) as u64),
        100,
    );
    let mut clean_paper = paper.clone();
    clean_paper.net = NetSpec::clean(seed);
    for strategy in Strategy::ALL {
        let t = strategy_threads(strategy, threads);
        eprintln!(
            "[net] {} paired local/clean-network miss runs ({miss_cycles} cycles each) ...",
            strategy.label()
        );
        let (baseline, clean) = run_misses_paired(&clean_paper, strategy, t, miss_cycles);
        for row in strategies
            .iter_mut()
            .filter(|r| r.strategy == strategy.label())
        {
            row.baseline_misses = baseline;
            row.clean_net_misses = clean;
        }
    }
    eprintln!("[net] counting hot-path allocations ...");
    let hot_path_allocs = measure_hot_path_allocs(threads);

    let report = NetReport {
        cycles,
        seed,
        deadline_ns,
        cut_factor,
        min_fixed_dropouts: (cycles / 20) as u64,
        // Paired populations sample the same host noise, but miss counts
        // are tail events: a scheduler burst landing in one population's
        // blocks shifts a handful of cycles. Tolerate 1 % of the sample
        // (floor 2); a real per-cycle reception cost repeats every block
        // and blows straight through that.
        miss_slack: env_usize("DJSTAR_NET_MISS_SLACK", (miss_cycles / 100).max(2)) as u64,
        hot_path_allocs,
        strategies,
        trade: DepthTrade {
            fixed,
            adaptive_dropouts: adaptive.dropouts,
            adaptive_median_depth: adaptive.median_depth,
            adaptive_transitions: adaptive.transitions,
            unavoidable,
        },
    };

    println!("# E17 — networked decks under a deterministic packet-fault trace\n");
    println!("{}", report.render());

    let json = report.to_json().render();
    match std::fs::write("BENCH_net.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[net] wrote BENCH_net.json"),
        Err(e) => eprintln!("[net] cannot write BENCH_net.json: {e}"),
    }

    if std::env::var("DJSTAR_STRICT").is_ok_and(|v| v != "0") {
        let failed = report.failed_gates();
        if failed.is_empty() {
            eprintln!("[net] strict checks passed");
        } else {
            for gate in &failed {
                eprintln!("[net] FAIL: gate '{gate}' tripped");
            }
            std::process::exit(1);
        }
    }
}
