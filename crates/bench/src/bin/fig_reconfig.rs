//! E13 — live graph reconfiguration under a toggle storm.
//!
//! The tentpole claim of the generation-swap protocol is *glitch-free*
//! handover: reshaping the running graph (deck loads/ejects, FX-chain
//! resizes) must not cost a single deadline over an identical run with no
//! topology changes. Each strategy therefore runs twice over the same
//! cycle count against the simulated sound card — once static, once under
//! a deterministic switch script (default 100 switches,
//! `DJSTAR_RECONFIG_SWITCHES`) — and two figures of merit come out: the
//! *miss difference* between the runs (zero at full scale, but noisy on
//! shared hosts because the runs are independent) and the causal
//! *commit-blown* count — cycles that fit the budget on their own and
//! missed only because the swap cost was charged to them. The strict
//! gate rides on the causal count plus a noise-bounded difference.
//!
//! Per switch, the off-thread staging time (graph build + buffers + PLAN
//! blueprint) and the cycle-boundary commit time (the atomic generation
//! swap plus name-keyed carry-over) are recorded separately: only the
//! commit runs on the audio thread, so only the commit is charged against
//! that cycle's deadline.
//!
//! Everything lands in `BENCH_reconfig.json`. `DJSTAR_STRICT=1` turns the
//! acceptance checks into the exit code.

use djstar_bench::{env_usize, host_threads, strategy_threads};
use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::reconfig::GraphEdit;
use djstar_engine::soundcard::SoundCardSim;
use djstar_stats::{ReconfigReport, StrategyReconfig};
use djstar_workload::scenario::Scenario;
use djstar_workload::switches::{toggle_storm, SwitchAction, SwitchScript};
use std::time::{Duration, Instant};

fn to_edit(action: SwitchAction) -> GraphEdit {
    match action {
        SwitchAction::LoadDeck(d) => GraphEdit::LoadDeck(d),
        SwitchAction::UnloadDeck(d) => GraphEdit::UnloadDeck(d),
        SwitchAction::InsertFxSlot(d) => GraphEdit::InsertFxSlot(d),
        SwitchAction::RemoveFxSlot(d) => GraphEdit::RemoveFxSlot(d),
    }
}

struct RunResult {
    misses: u64,
    swaps: u64,
    commit_blown: u64,
    generation: u64,
    stage_ns: Vec<u64>,
    commit_ns: Vec<u64>,
}

/// Run `cycles` APCs against a fresh sound card, applying `script` (when
/// given) at its scheduled cycles. Staging is timed separately from the
/// cycle budget — it belongs to a worker thread in a real host — while the
/// commit is charged to the cycle it precedes, exactly as an audio thread
/// would pay for it.
fn run(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    cycles: usize,
    script: Option<&SwitchScript>,
) -> RunResult {
    let mut engine =
        AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::paper_scale());
    engine.warmup(50);
    let mut card = SoundCardSim::paper_default();
    let mut events = script.map(|s| s.events().iter().peekable());
    let mut stage_ns = Vec::new();
    let mut commit_ns = Vec::new();
    let mut swaps = 0u64;
    let mut commit_blown = 0u64;
    let deadline = card.deadline_ns();
    for cycle in 0..cycles {
        let mut commit_cost = 0u64;
        if let Some(events) = events.as_mut() {
            while let Some(&&e) = events.peek() {
                if e.at_cycle != cycle {
                    break;
                }
                events.next();
                let t0 = Instant::now();
                let staged = engine
                    .stage_edits(&[to_edit(e.action)])
                    .expect("storm scripts only contain valid edits");
                stage_ns.push(t0.elapsed().as_nanos() as u64);
                let t1 = Instant::now();
                engine.commit(staged).expect("staged generation commits");
                let c = t1.elapsed().as_nanos() as u64;
                commit_ns.push(c);
                commit_cost += c;
                swaps += 1;
            }
        }
        let timing = engine.run_apc();
        let out = engine.output();
        let cycle_ns = timing.total().as_nanos() as u64;
        // The causal glitch metric: the cycle fit the budget on its own
        // and only missed because the swap cost was charged to it. The
        // swap is only blamed when its own cost was a material fraction
        // of the budget — a stall-inflated cycle sitting microseconds
        // under the deadline that a ~25 us commit happens to tip is the
        // stall's miss, not the protocol's.
        if cycle_ns <= deadline && cycle_ns + commit_cost > deadline && commit_cost > deadline / 10
        {
            commit_blown += 1;
        }
        card.submit(&out, cycle_ns + commit_cost);
    }
    RunResult {
        misses: card.underruns(),
        swaps,
        commit_blown,
        generation: engine.executor_mut().generation(),
        stage_ns,
        commit_ns,
    }
}

fn main() {
    let cycles = env_usize("DJSTAR_RECONFIG_CYCLES", 3_000);
    let switches = env_usize("DJSTAR_RECONFIG_SWITCHES", 100);
    let threads = host_threads(4);
    // Spread the storm over the measured window, leaving a settling tail.
    let period = (cycles / (switches + 1)).max(1);
    let script = toggle_storm(switches, period, 0xE13);
    assert!(
        script.last_cycle() < cycles,
        "script must fit the cycle budget"
    );

    eprintln!("[reconfig] calibrating scenario ...");
    let scenario = AudioEngine::calibrate(
        Scenario::paper_default(),
        Duration::from_nanos((djstar_bench::PAPER_SEQUENTIAL_MS * 1e6) as u64),
        100,
    );

    let mut strategies = Vec::new();
    for strategy in Strategy::ALL {
        let t = strategy_threads(strategy, threads);
        let run_pair = || {
            eprintln!(
                "[reconfig] {} static run ({cycles} cycles) ...",
                strategy.label()
            );
            let static_run = run(&scenario, strategy, t, cycles, None);
            eprintln!(
                "[reconfig] {} storm run ({switches} switches) ...",
                strategy.label()
            );
            let storm_run = run(&scenario, strategy, t, cycles, Some(&script));
            StrategyReconfig {
                strategy: strategy.label().to_string(),
                static_misses: static_run.misses,
                storm_misses: storm_run.misses,
                swaps: storm_run.swaps,
                commit_blown: storm_run.commit_blown,
                final_generation: storm_run.generation,
                stage_ns: storm_run.stage_ns,
                commit_ns: storm_run.commit_ns,
            }
        };
        let mut entry = run_pair();
        // The static and storm runs are independent, so a host load burst
        // landing in one of them can blow the miss difference past the
        // noise allowance. A burst does not repeat on demand; a real
        // per-commit glitch does — so one retry of the pair cleanly
        // separates them.
        if entry.additional_misses() > entry.noise_allowance(switches) {
            eprintln!(
                "[reconfig] {} miss difference {} exceeded the noise allowance {} — \
                 retrying the pair once (host load burst?)",
                strategy.label(),
                entry.additional_misses(),
                entry.noise_allowance(switches)
            );
            entry = run_pair();
        }
        strategies.push(entry);
    }

    let report = ReconfigReport {
        threads,
        cycles,
        switches,
        deadline_ns: SoundCardSim::paper_default().deadline_ns(),
        strategies,
    };

    println!("# E13 — deadline misses during live reconfiguration\n");
    println!("{}", report.render());

    let json = report.to_json().render();
    match std::fs::write("BENCH_reconfig.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[reconfig] wrote BENCH_reconfig.json"),
        Err(e) => eprintln!("[reconfig] cannot write BENCH_reconfig.json: {e}"),
    }

    if std::env::var("DJSTAR_STRICT").is_ok_and(|v| v != "0") {
        if !report.no_commit_blown() {
            eprintln!("[reconfig] FAIL: a commit pushed a cycle over its deadline");
            std::process::exit(1);
        }
        if !report.commit_budget_ok() {
            eprintln!("[reconfig] FAIL: commit p99 exceeds 10% of the deadline budget");
            std::process::exit(1);
        }
        if !report.storm_within_noise() {
            eprintln!("[reconfig] FAIL: storm added more misses than the host-noise allowance");
            std::process::exit(1);
        }
        if !report.all_swaps_committed() {
            eprintln!("[reconfig] FAIL: not every scheduled switch was committed");
            std::process::exit(1);
        }
        if !report.storm_adds_no_misses() {
            eprintln!(
                "[reconfig] note: storm-vs-static difference nonzero but within noise \
                 (independent runs on a shared host)"
            );
        }
        eprintln!("[reconfig] strict checks passed");
    }
}
