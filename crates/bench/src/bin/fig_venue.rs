//! E18 — venue server: many engines on one shared worker pool, with
//! per-session deadlines and admission control. Three evidence legs land
//! in `BENCH_venue.json`:
//!
//! 1. **Solo-vs-venue parity.** Every strategy runs the same calibrated
//!    workload twice: solo (its own `run_apc` loop) and as the only
//!    session of a venue, in alternating 25-cycle blocks so host noise
//!    lands on both sides of the differential. Hosting must add zero
//!    deadline misses — up to a small noise allowance
//!    (`DJSTAR_VENUE_MISS_SLACK`: both runs sit far under the deadline
//!    at p50, so residual misses are preemption spikes) — and the audio
//!    must stay bit-exact. The batch protocol may cost overhead, never
//!    correctness.
//! 2. **Scaling to the admission bound.** One venue per session count
//!    (1..=bound, identical sessions), measured in interleaved blocks
//!    so host-load drift cannot masquerade as super-linear growth; the
//!    batch cycle p50 must grow at most linearly in the session count
//!    (the shared pool multiplexes at least as well as running the
//!    sessions back-to-back). The full venue's per-session ledger
//!    (cycles, misses, degradation state, bounds) is exported.
//! 3. **Admission sweep.** Candidates are offered two past the bound;
//!    every rejection must be confirmed unschedulable by the same
//!    oracle the venue consulted ([`djstar_sim::admissible`]), and no
//!    candidate the oracle admits may be rejected.
//!
//! The sweep deadline is *derived* (three probed bounds plus margin) so
//! the admit/reject boundary lands at exactly three sessions on any
//! host; the parity leg uses the real 2.9 ms sound-card deadline.
//!
//! Knobs: `DJSTAR_VENUE_CYCLES` (parity cycles, default 1000),
//! `DJSTAR_VENUE_SCALE_CYCLES` (cycles per scaling point, default 300),
//! `DJSTAR_VENUE_SLACK` (scaling slack fraction, default 0.25),
//! `DJSTAR_VENUE_MISS_SLACK` (tolerated noise misses, default 2 % of
//! cycles, min 5), `DJSTAR_THREADS`, `DJSTAR_CALIBRATE=0`,
//! `DJSTAR_STRICT=1`.

use djstar_bench::telemetry::{strategy_label, DEADLINE_NS};
use djstar_bench::{
    env_f64, env_usize, fold_checksum, host_threads, strategy_threads, CHECKSUM_SEED,
    PAPER_SEQUENTIAL_MS,
};
use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::venue::{SessionSpec, VenueServer};
use djstar_stats::{AdmissionTrial, ScalingPoint, SessionLedgerEntry, StrategyVenue, VenueReport};
use djstar_workload::scenario::Scenario;
use std::time::Duration;

fn p50(mut samples: Vec<u64>) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

fn spec(scenario: &Scenario, strategy: Strategy, threads: usize) -> SessionSpec {
    SessionSpec {
        scenario: scenario.clone(),
        strategy,
        threads,
        aux: AuxWork::light(),
    }
}

/// How many cycles each side of the paired parity run executes before
/// handing the host back to the other side.
const PARITY_BLOCK: usize = 25;

/// Paired parity run: the solo engine and a one-session venue of the
/// same workload alternate [`PARITY_BLOCK`]-cycle blocks, so a noisy
/// neighbor stalling the host lands on both sides of the differential
/// instead of inflating whichever run it happened to overlap (the same
/// pairing discipline as the telemetry overhead guard). Both engines
/// are deterministic per own-cycle, so interleaving cannot perturb the
/// checksums. Returns `(misses, p50_ns, checksum)` for solo then venue.
#[allow(clippy::type_complexity)]
fn parity_run(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    cycles: usize,
    bound_ns: u64,
) -> ((u64, f64, u64), (u64, f64, u64)) {
    let mut solo = AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
    solo.warmup(50);
    let mut venue = VenueServer::new(threads, Duration::from_nanos(DEADLINE_NS), 0.1);
    let id = venue
        .admit_bounded(spec(scenario, strategy, threads), bound_ns)
        .expect("single calibrated session fits the sound-card budget");
    venue.run_cycles(50);

    let mut solo_misses = 0u64;
    let venue_miss_base = venue.misses(id).unwrap();
    let mut solo_totals = Vec::with_capacity(cycles);
    let mut venue_totals = Vec::with_capacity(cycles);
    let mut solo_checksum = CHECKSUM_SEED;
    let mut venue_checksum = CHECKSUM_SEED;
    let mut done = 0;
    while done < cycles {
        let block = PARITY_BLOCK.min(cycles - done);
        for _ in 0..block {
            let t = solo.run_apc();
            let ns = t.total().as_nanos() as u64;
            solo_totals.push(ns);
            if ns > DEADLINE_NS {
                solo_misses += 1;
            }
            solo_checksum = fold_checksum(solo_checksum, &solo.output());
        }
        for _ in 0..block {
            venue.run_cycle();
            venue_totals.push(venue.last_timing(id).unwrap().total().as_nanos() as u64);
            venue_checksum = fold_checksum(venue_checksum, &venue.engine_mut(id).unwrap().output());
        }
        done += block;
    }
    let venue_misses = venue.misses(id).unwrap() - venue_miss_base;
    (
        (solo_misses, p50(solo_totals), solo_checksum),
        (venue_misses, p50(venue_totals), venue_checksum),
    )
}

fn main() {
    let cycles = env_usize("DJSTAR_VENUE_CYCLES", 1_000);
    let scale_cycles = env_usize("DJSTAR_VENUE_SCALE_CYCLES", 300);
    let scaling_slack = env_f64("DJSTAR_VENUE_SLACK", 0.25);
    let miss_slack = env_usize("DJSTAR_VENUE_MISS_SLACK", (cycles / 50).max(5)) as u64;
    let threads = host_threads(4);
    let margin = 0.1;

    let scenario = if std::env::var("DJSTAR_CALIBRATE").is_ok_and(|v| v == "0") {
        Scenario::paper_default()
    } else {
        eprintln!("[venue] calibrating work profile toward {PAPER_SEQUENTIAL_MS} ms ...");
        AudioEngine::calibrate(
            Scenario::paper_default(),
            Duration::from_nanos((PAPER_SEQUENTIAL_MS * 1e6) as u64),
            100,
        )
    };

    // Leg 1: solo-vs-venue parity, every strategy. The venue's only
    // overhead over solo is the batch stage/dispatch/collect protocol —
    // it must not cost misses and cannot touch the audio.
    let mut strategies = Vec::new();
    for strategy in Strategy::ALL {
        let t = strategy_threads(strategy, threads);
        let label = strategy_label(strategy);
        eprintln!("[venue] {label}: probing admission bound ...");
        let bound = VenueServer::probe_session_bound(&spec(&scenario, strategy, t));
        eprintln!("[venue] {label}: paired solo/venue run ({cycles} cycles each) ...");
        let (
            (solo_misses, solo_p50_ns, solo_checksum),
            (venue_misses, venue_p50_ns, venue_checksum),
        ) = parity_run(&scenario, strategy, t, cycles, bound);
        strategies.push(StrategyVenue {
            strategy: label.to_string(),
            threads: t,
            solo_misses,
            venue_misses,
            solo_p50_ns,
            venue_p50_ns,
            solo_checksum,
            venue_checksum,
        });
    }

    // Derive the sweep deadline from the probed BUSY bound so the
    // admit/reject boundary lands at exactly three sessions regardless
    // of host speed: budget = 3 bounds, deadline = budget / (1 - margin).
    let sweep_spec = spec(&scenario, Strategy::Busy, threads);
    eprintln!("[venue] probing sweep bound ...");
    let bound = VenueServer::probe_session_bound(&sweep_spec);
    let sweep_deadline_ns = ((bound * 3 + 1) as f64 / (1.0 - margin)).ceil() as u64;
    let fit = djstar_sim::max_sessions(bound, sweep_deadline_ns, margin);
    assert_eq!(fit, 3, "derived deadline must admit exactly 3 sessions");

    // Leg 2: batch-time scaling to the bound. One venue per session
    // count, measured in interleaved blocks (the parity pairing again):
    // sequential sweeps let host-load drift between the k=1 and k=N
    // measurements masquerade as super-linear scaling.
    let mut venues: Vec<VenueServer> = (1..=fit)
        .map(|k| {
            let mut v = VenueServer::new(threads, Duration::from_nanos(sweep_deadline_ns), margin);
            for _ in 0..k {
                v.admit_bounded(sweep_spec.clone(), bound)
                    .expect("oracle admits up to the bound");
            }
            v.run_cycles(30);
            v
        })
        .collect();
    eprintln!("[venue] scaling: 1..={fit} sessions, {scale_cycles} interleaved cycles each ...");
    let mut batches: Vec<Vec<u64>> = vec![Vec::with_capacity(scale_cycles); fit];
    let mut done = 0;
    while done < scale_cycles {
        let block = PARITY_BLOCK.min(scale_cycles - done);
        for (samples, venue) in batches.iter_mut().zip(venues.iter_mut()) {
            for _ in 0..block {
                samples.push(venue.run_cycle().as_nanos() as u64);
            }
        }
        done += block;
    }
    let scaling: Vec<ScalingPoint> = batches
        .into_iter()
        .enumerate()
        .map(|(i, batch)| ScalingPoint {
            sessions: i + 1,
            batch_p50_ns: p50(batch),
        })
        .collect();
    let sessions: Vec<SessionLedgerEntry> = venues
        .last()
        .unwrap()
        .session_counters()
        .into_iter()
        .map(|c| SessionLedgerEntry {
            id: c.id,
            strategy: strategy_label(Strategy::Busy).to_string(),
            cycles: c.cycles,
            misses: c.misses,
            degraded: c.degraded,
            bound_ns: c.bound_ns,
        })
        .collect();

    // Leg 3: admission sweep two candidates past the bound, with an
    // independent oracle verdict recorded for every offer.
    let mut admission = Vec::new();
    let mut sweep_venue =
        VenueServer::new(threads, Duration::from_nanos(sweep_deadline_ns), margin);
    let mut accepted_bounds: Vec<u64> = Vec::new();
    for candidate in 0..fit + 2 {
        let load_before_ns = sweep_venue.load_ns();
        let mut with_candidate = accepted_bounds.clone();
        with_candidate.push(bound);
        let oracle_admissible = djstar_sim::admissible(&with_candidate, sweep_deadline_ns, margin);
        let admitted = sweep_venue.admit_bounded(sweep_spec.clone(), bound).is_ok();
        if admitted {
            accepted_bounds.push(bound);
        }
        admission.push(AdmissionTrial {
            candidate,
            bound_ns: bound,
            load_before_ns,
            admitted,
            oracle_admissible,
        });
    }

    let report = VenueReport {
        threads,
        cycles,
        deadline_ns: DEADLINE_NS,
        margin,
        scaling_slack,
        miss_slack,
        rejections: sweep_venue.rejections(),
        strategies,
        scaling,
        admission,
        sessions,
    };

    println!("# E18 venue server ({threads} pool lanes, {cycles} parity cycles)\n");
    println!("strategy  threads  solo_miss  venue_miss  solo_p50_ms  venue_p50_ms  bit_exact");
    for s in &report.strategies {
        println!(
            "{:<9} {:>7} {:>10} {:>11} {:>12.4} {:>13.4}  {}",
            s.strategy,
            s.threads,
            s.solo_misses,
            s.venue_misses,
            s.solo_p50_ns / 1e6,
            s.venue_p50_ns / 1e6,
            s.bit_exact()
        );
    }
    println!(
        "\nscaling (sweep deadline {:.4} ms):",
        sweep_deadline_ns as f64 / 1e6
    );
    for p in &report.scaling {
        println!(
            "  {} session(s): batch p50 {:.4} ms",
            p.sessions,
            p.batch_p50_ns / 1e6
        );
    }
    println!(
        "\nadmission: {} offered, {} admitted, {} rejected (oracle agreed on every verdict: {})",
        report.admission.len(),
        report.admission.iter().filter(|t| t.admitted).count(),
        report.rejections,
        report.rejections_confirmed() && report.no_false_rejects()
    );

    let json = report.to_json().render();
    match std::fs::write("BENCH_venue.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[venue] wrote BENCH_venue.json"),
        Err(e) => eprintln!("[venue] cannot write BENCH_venue.json: {e}"),
    }

    if std::env::var("DJSTAR_STRICT").is_ok_and(|v| v != "0") {
        let failed = report.failed_gates();
        if failed.is_empty() {
            eprintln!("[venue] strict checks passed");
        } else {
            for gate in &failed {
                eprintln!("[venue] FAIL: gate '{gate}' tripped");
            }
            std::process::exit(1);
        }
    }
}
