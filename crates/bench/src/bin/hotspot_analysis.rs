//! E1 — the §III-B hotspot analysis.
//!
//! Paper (measured with the Visual Studio profiler on the original
//! sequential application, GUI included): 88 % of total run-time is the
//! APC; inside it, 33 % audio stream preprocessing, 38 % audio-graph
//! execution, 16 % timecode decoding. This binary runs the engine's scoped
//! hotspot profiler over `DJSTAR_MEASURE_CYCLES` sequential APCs, adding a
//! simulated GUI tick (DJ Star redraws waveforms etc. — the paper's
//! remaining 12 %) so the top-level split is comparable.

use djstar_bench::measure_cycles;
use djstar_core::exec::Strategy;
use djstar_engine::apc::AudioEngine;
use djstar_engine::profiling::{record_kernel_totals, HotspotProfiler};
use djstar_workload::scenario::Scenario;
use std::time::Instant;

fn main() {
    let cycles = measure_cycles();
    eprintln!("[hotspot] running {cycles} profiled sequential APCs ...");
    let mut engine = AudioEngine::new(Scenario::paper_default(), Strategy::Sequential, 1);
    engine.warmup(50);

    // Per-kernel-family accounting: drain anything warmup left behind,
    // then count every biquad/eq/mix/fft/stretch/dynamics kernel call the
    // measured cycles make.
    djstar_dsp::kprof::set_enabled(true);
    let _ = djstar_dsp::kprof::take_totals();

    let mut profiler = HotspotProfiler::new();
    for cycle in 0..cycles {
        engine.run_apc_profiled(&mut profiler);
        // Simulated GUI: DJ Star redraws at ~30 fps, i.e. roughly every
        // 11th APC; the redraw walks the waveform taps and meters.
        if cycle % 11 == 0 {
            let t0 = Instant::now();
            let mut acc = 0.0f32;
            let out = engine.output();
            for s in out.samples() {
                acc += s.abs();
            }
            acc += djstar_dsp::work::burn(800_000, acc.fract());
            std::hint::black_box(acc);
            profiler.record("gui", t0.elapsed().as_nanos() as u64);
        }
    }

    djstar_dsp::kprof::set_enabled(false);
    let mut kernels = HotspotProfiler::new();
    record_kernel_totals(&mut kernels);

    println!("# §III-B hotspot analysis ({cycles} APCs)\n");
    let apc_ns: u64 = [
        "apc/timecode",
        "apc/preprocessing",
        "apc/graph",
        "apc/various",
    ]
    .iter()
    .map(|r| profiler.total_of(r))
    .sum();
    let paper = |region: &str| match region {
        "apc/timecode" => "16 % of APC runtime",
        "apc/preprocessing" => "33 % of APC runtime",
        "apc/graph" => "38 % of APC runtime",
        "apc/various" => "(remainder)",
        "gui" => "~12 % of total",
        _ => "",
    };
    print!("{}", profiler.render_table(paper));

    // Break the phase time down by DSP kernel family (stretch runs in
    // preprocessing, every other family inside graph execution). Shares in
    // this table are relative to total *kernel* time; the gap between a
    // family sum and its phase total is scheduling + non-kernel node work.
    println!("\n## DSP kernel families inside the APC\n");
    print!(
        "{}",
        kernels.render_table(|region| match region {
            "apc/graph/biquad" => "SpFilter cascades",
            "apc/graph/eq" => "3-band EQ",
            "apc/graph/mix" => "gain / sum / crossfade",
            "apc/graph/fft" => "spectral effects",
            "apc/graph/dynamics" => "limiter / compressor / clip",
            "apc/preprocessing/stretch" => "WSOLA time stretch",
            _ => "",
        })
    );

    // The same shares as a machine-readable artifact, through the same
    // JSON writer the telemetry exporters use. The per-family breakdown
    // rides along under "kernels" so before/after SIMD shares are
    // comparable across runs.
    std::fs::create_dir_all("results").ok();
    let mut doc = profiler.to_json();
    doc.push("kernels", kernels.to_json());
    let json = doc.render();
    match std::fs::write("results/hotspot.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[hotspot] wrote results/hotspot.json"),
        Err(e) => eprintln!("[hotspot] cannot write results/hotspot.json: {e}"),
    }
    let total: u64 = profiler.grand_total().as_nanos() as u64;
    println!(
        "\nAPC share of total run-time: {:.1} %   (paper: 88 %)",
        apc_ns as f64 / total as f64 * 100.0
    );
    println!("\nshares *within* the APC:\n");
    for (region, paper_pct) in [
        ("apc/preprocessing", 33.0 / 88.0 * 100.0),
        ("apc/graph", 38.0 / 88.0 * 100.0),
        ("apc/timecode", 16.0 / 88.0 * 100.0),
    ] {
        println!(
            "  {region:<20} {:.1} %   (paper: {:.1} %)",
            profiler.total_of(region) as f64 / apc_ns as f64 * 100.0,
            paper_pct
        );
    }
    println!(
        "\nmean APC: {:.3} ms; TP+GP+VC: {:.3} ms (paper: ~0.8 ms); 2.9 ms budget leaves {:.3} ms for the graph (paper: 2.1 ms)",
        apc_ns as f64 / cycles as f64 / 1e6,
        (apc_ns - profiler.total_of("apc/graph")) as f64 / cycles as f64 / 1e6,
        2.9 - (apc_ns - profiler.total_of("apc/graph")) as f64 / cycles as f64 / 1e6
    );
}
