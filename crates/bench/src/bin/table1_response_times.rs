//! E3 + E4 — Table I (average task-graph response times) and Fig. 8
//! (speedup over the sequential baseline), strategies × 1–4 threads.
//!
//! Methodology (single-vCPU host): per-node durations are measured on the
//! real engine, then each strategy is replayed in virtual time by
//! `djstar-sim` over `DJSTAR_CYCLES` cycles — the paper's own Fig. 12
//! validation technique. Set `DJSTAR_REAL=1` on a multi-core host to also
//! measure the real executors.

use djstar_bench::{
    build_harness, mean_ms, real_executor_times, run_real_executors, sim_cycles, PAPER_TABLE1,
};
use djstar_core::exec::Strategy;
use djstar_sim::strategy::{simulate_makespans, SimStrategy};
use djstar_stats::render::{table_speedups, table_times};
use djstar_stats::SpeedupTable;

fn main() {
    let h = build_harness();
    let cycles = sim_cycles();
    let threads = [1usize, 2, 3, 4];
    let baseline_ms = h.sequential_sum_ms();

    println!("# Table I — task graph average response times (ms)\n");
    println!(
        "sequential baseline: {:.4} ms  (paper: {:.4} ms; direct wall-clock \
         measurement over a different track window: {:.4} ms)\n",
        baseline_ms,
        djstar_bench::PAPER_SEQUENTIAL_MS,
        h.sequential_mean_ms()
    );

    let mut table = SpeedupTable::new(threads.to_vec(), baseline_ms);
    for strat in SimStrategy::ALL {
        let mut row = Vec::new();
        for &t in &threads {
            let makespans =
                simulate_makespans(&h.graph, &h.durations, t, strat, &h.overheads, cycles);
            row.push(mean_ms(&makespans));
        }
        table.push_row(strat.label(), row);
    }

    println!("## Reproduced (virtual-time simulation, {cycles} cycles)\n");
    println!("{}", table_times(&table, "ms"));
    println!("## Paper's Table I\n");
    let mut paper = SpeedupTable::new(threads.to_vec(), djstar_bench::PAPER_SEQUENTIAL_MS);
    for (name, row) in PAPER_TABLE1 {
        paper.push_row(name, row.to_vec());
    }
    println!("{}", table_times(&paper, "ms"));

    println!("# Fig. 8 — speedup vs sequential\n");
    println!("## Reproduced\n{}", table_speedups(&table));
    println!("## Paper\n{}", table_speedups(&paper));

    // Headline checks, in the spirit of §VI.
    let (winner, best) = table.best_in_column(3).expect("rows present");
    println!(
        "winner at 4 threads: {} ({best:.4} ms)",
        table.rows[winner].0
    );
    println!(
        "BUSY speedup at 4 threads: {:.2} (paper: 2.40)",
        table.speedup(0, 3)
    );

    // Telemetry artifacts: short real-engine runs of each parallel
    // strategy with cycle counters enabled, exported as JSONL next to the
    // table (see DESIGN.md "Telemetry").
    let real_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);
    println!("\n# Telemetry (real engines, {real_threads} thread(s), 400 cycles)\n");
    for strat in [Strategy::Busy, Strategy::Sleep, Strategy::Steal] {
        let label = djstar_bench::telemetry::strategy_label(strat).to_lowercase();
        let report = djstar_bench::telemetry::capture_and_export(
            &format!("table1_{label}_{real_threads}t"),
            &h.scenario,
            strat,
            real_threads,
            50,
            400,
        );
        println!("{}", report.render());
    }

    if run_real_executors() {
        println!("\n# Real executors (wall clock; only meaningful on multi-core hosts)\n");
        let real_cycles = cycles.min(2_000);
        let mut real = SpeedupTable::new(threads.to_vec(), baseline_ms);
        for (strat, label) in [
            (Strategy::Busy, "BUSY"),
            (Strategy::Sleep, "SLEEP"),
            (Strategy::Steal, "WS"),
        ] {
            let mut row = Vec::new();
            for &t in &threads {
                let times = real_executor_times(&h.scenario, strat, t, real_cycles);
                row.push(mean_ms(&times));
            }
            real.push_row(label, row);
        }
        println!("{}", table_times(&real, "ms"));
        println!("{}", table_speedups(&real));
    }
}
