//! E11 — telemetry baseline: run every scheduling strategy on the real
//! engine with per-worker cycle counters enabled, and leave two artifacts:
//!
//! * `results/telemetry_<strategy>_<T>t.jsonl` — raw per-cycle records,
//! * `BENCH_telemetry.json` (repo root) — aggregated per-strategy baseline:
//!   mean/p50/p90/p99/p99.9 graph and wait times, counter totals, and the
//!   deadline-miss ledger against the 2.9 ms budget.
//!
//! The binary also runs the overhead guard: telemetry must cost less than
//! 2 % of the graph time, measured by toggling telemetry off/on in
//! adjacent blocks on the *same* engine and taking the median over the
//! per-pair deltas of fastest cycles (pairing cancels seconds-scale host
//! drift, minima shed one-sided preemption noise, and the median sheds
//! pairs that straddled a stall).
//! Set `DJSTAR_STRICT=1` to make a guard failure exit non-zero; by default
//! it only warns, because a loaded host can still pollute even the minima.
//!
//! Knobs: `DJSTAR_TELEMETRY_CYCLES` (default 2000), `DJSTAR_THREADS`
//! (default: available parallelism, capped at 4), `DJSTAR_CALIBRATE=0`
//! to skip workload calibration.

use djstar_bench::telemetry::{
    bench_json, capture_and_export, jsonl_path, overhead_fraction, strategy_label,
    write_jsonl_multi, DEADLINE_NS,
};
use djstar_bench::PAPER_SEQUENTIAL_MS;
use djstar_bench::{env_usize, host_threads};
use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::venue::{SessionSpec, VenueServer};
use djstar_workload::scenario::Scenario;
use std::time::Duration;

fn main() {
    let cycles = env_usize("DJSTAR_TELEMETRY_CYCLES", 2_000);
    let threads = host_threads(4);

    let scenario = if std::env::var("DJSTAR_CALIBRATE").is_ok_and(|v| v == "0") {
        Scenario::paper_default()
    } else {
        eprintln!("[telemetry] calibrating work profile toward {PAPER_SEQUENTIAL_MS} ms ...");
        AudioEngine::calibrate(
            Scenario::paper_default(),
            Duration::from_nanos((PAPER_SEQUENTIAL_MS * 1e6) as u64),
            200,
        )
    };

    let runs = [
        (Strategy::Sequential, 1),
        (Strategy::Busy, threads),
        (Strategy::Sleep, threads),
        (Strategy::Steal, threads),
        (Strategy::Hybrid, threads),
        (Strategy::Planned, threads),
    ];

    println!(
        "# Telemetry baseline ({cycles} cycles per strategy, {:.3} ms deadline)\n",
        DEADLINE_NS as f64 / 1e6
    );
    let mut reports = Vec::new();
    for (strategy, t) in runs {
        let label = strategy_label(strategy);
        eprintln!("[telemetry] running {label} @ {t} thread(s) ...");
        let tag = format!("{}_{}t", label.to_lowercase(), t);
        let report = capture_and_export(&tag, &scenario, strategy, t, 50, cycles);
        println!("{}", report.render());
        reports.push(report);
    }

    let json = bench_json(&reports).render();
    match std::fs::write("BENCH_telemetry.json", format!("{json}\n")) {
        Ok(()) => eprintln!("[telemetry] wrote BENCH_telemetry.json"),
        Err(e) => eprintln!("[telemetry] cannot write BENCH_telemetry.json: {e}"),
    }

    // Venue leg: host two sessions of the same workload on one shared
    // pool, with per-session telemetry rings, and leave a session-tagged
    // JSONL next to the solo exports. The per-session ledger (misses,
    // degradation state, rejections) prints below.
    eprintln!("[telemetry] running venue leg ({} sessions offered) ...", 2);
    let venue_cycles = (cycles / 4).max(100);
    let mut venue = VenueServer::new(threads.max(2), Duration::from_nanos(DEADLINE_NS), 0.1);
    let mut admitted = Vec::new();
    for strategy in [Strategy::Busy, Strategy::Steal] {
        let spec = SessionSpec {
            scenario: scenario.clone(),
            strategy,
            threads: threads.max(2),
            aux: AuxWork::light(),
        };
        match venue.admit(spec) {
            Ok(id) => {
                venue.engine_mut(id).unwrap().set_telemetry(true);
                admitted.push((id, strategy_label(strategy)));
            }
            Err(rej) => eprintln!(
                "[telemetry] venue rejected {} (bound {:.3} ms over budget {:.3} ms at load {:.3} ms)",
                strategy_label(strategy),
                rej.bound_ns as f64 / 1e6,
                rej.budget_ns as f64 / 1e6,
                rej.load_ns as f64 / 1e6,
            ),
        }
    }
    if admitted.is_empty() {
        println!("venue: no session admitted (deadline too tight on this host)");
    } else {
        venue.run_cycles(venue_cycles);
        println!(
            "# Venue session ledger ({} cycles, {} sessions, {} rejections)",
            venue_cycles,
            venue.session_count(),
            venue.rejections()
        );
        for c in venue.session_counters() {
            println!(
                "session {}: cycles={} misses={} degraded={} bound={:.4} ms",
                c.id,
                c.cycles,
                c.misses,
                c.degraded,
                c.bound_ns as f64 / 1e6
            );
        }
        let rings: Vec<_> = admitted
            .iter()
            .filter_map(|&(id, _)| venue.engine_mut(id).unwrap().take_telemetry())
            .collect();
        let path = jsonl_path(&format!("venue_{}t", threads.max(2)));
        match write_jsonl_multi(&path, &rings) {
            Ok(()) => eprintln!("[telemetry] wrote {} (session-tagged)", path.display()),
            Err(e) => eprintln!("[telemetry] cannot write {}: {e}", path.display()),
        }
    }

    // Overhead guard: counters + ring drain must stay under 2 % of the
    // graph time. Measured on the sequential executor (the configuration
    // where the fixed per-node cost is largest relative to waiting time).
    eprintln!("[telemetry] measuring recording overhead (off vs on) ...");
    let frac = overhead_fraction(&scenario, Strategy::Sequential, 1, 500, 3);
    let pct = frac * 100.0;
    let pass = frac < 0.02;
    println!(
        "telemetry overhead: {pct:+.3} % of fastest graph time (budget 2 %) — {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass && std::env::var("DJSTAR_STRICT").is_ok_and(|v| v != "0") {
        std::process::exit(1);
    }
}
