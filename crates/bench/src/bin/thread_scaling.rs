//! E10 — the §VI claim that "increasing the thread count above four does
//! not accelerate the computations any further, and the increased thread
//! overhead even lowers the speedup slightly".
//!
//! Each strategy is simulated at 1–8 virtual threads; the knee must sit at
//! 4 (the graph's steady-state parallelism is the four deck chains).

use djstar_bench::{build_harness, mean_ms, sim_cycles};
use djstar_core::exec::Strategy;
use djstar_sim::strategy::{simulate_makespans, SimStrategy};

fn main() {
    let h = build_harness();
    let cycles = sim_cycles().min(5_000);
    let baseline = h.sequential_sum_ms();

    println!("# §VI — thread scaling, 1-8 virtual threads ({cycles} cycles)\n");
    println!("sequential baseline: {baseline:.4} ms\n");
    println!("| threads | BUSY ms | BUSY x | SLEEP ms | SLEEP x | WS ms | WS x |");
    println!("|---|---|---|---|---|---|---|");
    let mut best = [(0usize, f64::INFINITY); 3];
    for threads in 1..=8usize {
        let mut cells = Vec::new();
        for (si, strat) in SimStrategy::ALL.iter().enumerate() {
            let ms = mean_ms(&simulate_makespans(
                &h.graph,
                &h.durations,
                threads,
                *strat,
                &h.overheads,
                cycles,
            ));
            if ms < best[si].1 {
                best[si] = (threads, ms);
            }
            cells.push(format!("{ms:.4} | {:.2}", baseline / ms));
        }
        println!("| {threads} | {} |", cells.join(" | "));
    }
    println!();
    for (si, strat) in SimStrategy::ALL.iter().enumerate() {
        println!(
            "{}: best at {} threads ({:.4} ms)",
            strat.label(),
            best[si].0,
            best[si].1
        );
    }
    // The paper's exact observation is a slight *degradation* beyond 4
    // threads, caused by real oversubscription effects (cache pressure,
    // context switches) the virtual-time model does not include; what the
    // model does reproduce is the knee: the 2->4 gain is large, the 4->8
    // gain marginal. Quantify both.
    println!();
    for strat in SimStrategy::ALL {
        let at = |t: usize| {
            mean_ms(&simulate_makespans(
                &h.graph,
                &h.durations,
                t,
                strat,
                &h.overheads,
                cycles,
            ))
        };
        let (m2, m4, m8) = (at(2), at(4), at(8));
        println!(
            "{}: gain 2->4 threads = {:.1} %, gain 4->8 threads = {:.1} %  (paper: large, then none/negative)",
            strat.label(),
            (m2 / m4 - 1.0) * 100.0,
            (m4 / m8 - 1.0) * 100.0
        );
    }

    // Telemetry artifact: a real work-stealing run with cycle counters —
    // the steal hit rates and deque high-water marks complement the
    // virtual-time scaling table above.
    let real_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);
    let report = djstar_bench::telemetry::capture_and_export(
        &format!("scaling_ws_{real_threads}t"),
        &h.scenario,
        Strategy::Steal,
        real_threads,
        50,
        400,
    );
    println!("\n## Telemetry (real WS engine, {real_threads} thread(s))\n");
    println!("{}", report.render());
}
