//! Minimal wall-clock microbenchmark runner.
//!
//! The workspace builds offline without Criterion, so the `benches/` targets
//! use this instead: adaptive batch sizing (double the iteration count until
//! a batch is long enough to time reliably), then a fixed measurement window,
//! reporting mean and best ns/iter. Run via `cargo bench` as usual; set
//! `DJSTAR_BENCH_MS` to change the per-benchmark measurement window.

use std::time::{Duration, Instant};

/// Measurement window per benchmark (milliseconds), `DJSTAR_BENCH_MS`.
fn window_ms() -> u64 {
    std::env::var("DJSTAR_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Time `f`, printing `name  <mean> ns/iter (best <min>)`.
///
/// The closure's return value is passed through [`std::hint::black_box`] so
/// the optimizer cannot delete the measured work.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warm up and find a batch size that runs for at least ~2 ms.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        if t0.elapsed() >= Duration::from_millis(2) || iters >= 1 << 30 {
            break;
        }
        iters *= 2;
    }
    // Measure whole batches inside the window.
    let window = Duration::from_millis(window_ms());
    let start = Instant::now();
    let mut best = f64::INFINITY;
    let mut total_ns = 0u128;
    let mut batches = 0u32;
    while batches < 3 || (start.elapsed() < window && batches < 1000) {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = t0.elapsed().as_nanos();
        best = best.min(ns as f64 / iters as f64);
        total_ns += ns;
        batches += 1;
    }
    let mean = total_ns as f64 / (batches as u64 * iters) as f64;
    println!("{name:<44} {mean:>12.1} ns/iter   (best {best:.1}, {batches} x {iters})");
}

/// Print a section header, mirroring Criterion's group labels.
pub fn group(name: &str) {
    println!("\n## {name}");
}
