//! Telemetry capture and export helpers shared by the experiment binaries.
//!
//! The executors record per-worker [`CycleCounters`] into a
//! [`TelemetryRing`]; this module runs an engine with telemetry enabled,
//! drains the ring, and writes the two artifact kinds the evaluation keeps:
//!
//! * `results/telemetry_<tag>.jsonl` — one JSON object per cycle with the
//!   full per-worker counter snapshots (raw material for later analysis),
//! * `BENCH_telemetry.json` — the aggregated per-strategy baseline
//!   (mean/percentile graph and wait times, counter totals, miss ledger).
//!
//! [`CycleCounters`]: djstar_core::telemetry::CycleCounters

use djstar_core::exec::Strategy;
use djstar_core::telemetry::TelemetryRing;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_stats::telemetry::{cycle_json_for_session, TelemetryReport};
use djstar_stats::Json;
use djstar_workload::scenario::Scenario;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The sound-card cycle budget (128 frames at 44.1 kHz, §VI's 2.9 ms) that
/// the miss ledger accounts graph times against.
pub const DEADLINE_NS: u64 = 2_902_494;

/// Short label for a strategy, as used in artifact names and reports.
pub fn strategy_label(s: Strategy) -> &'static str {
    match s {
        Strategy::Sequential => "SEQ",
        Strategy::Busy => "BUSY",
        Strategy::Sleep => "SLEEP",
        Strategy::Steal => "WS",
        Strategy::Hybrid => "HYBRID",
        Strategy::Planned => "PLAN",
    }
}

/// Run `cycles` APCs of `scenario` under `strategy` with telemetry enabled
/// (after `warmup` untracked cycles) and return the drained ring.
pub fn collect_telemetry(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    warmup: usize,
    cycles: usize,
) -> TelemetryRing {
    collect_telemetry_with_drops(scenario, strategy, threads, warmup, cycles).0
}

/// [`collect_telemetry`], also returning the engine's dropped-event count
/// so reports can carry it. Harnesses that never feed control events
/// always see 0, but the export path must not silently omit the counter.
pub fn collect_telemetry_with_drops(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    warmup: usize,
    cycles: usize,
) -> (TelemetryRing, u64) {
    let mut engine = AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
    engine.warmup(warmup);
    engine.set_telemetry(true);
    for _ in 0..cycles {
        engine.run_apc();
    }
    let ring = engine
        .take_telemetry()
        .expect("telemetry was enabled before the measured cycles");
    (ring, engine.dropped_events())
}

/// Aggregate a ring into a [`TelemetryReport`] against [`DEADLINE_NS`].
/// The report carries the ring's venue session id (0 for solo engines).
pub fn report_for(strategy: Strategy, threads: usize, ring: &TelemetryRing) -> TelemetryReport {
    TelemetryReport::from_records(strategy_label(strategy), threads, DEADLINE_NS, ring.iter())
        .expect("telemetry ring is non-empty after a measured run")
        .with_session(ring.session())
}

/// `results/telemetry_<tag>.jsonl`, creating `results/` if needed.
pub fn jsonl_path(tag: &str) -> PathBuf {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("[telemetry] cannot create {}: {e}", dir.display());
    }
    dir.join(format!("telemetry_{tag}.jsonl"))
}

/// Write a ring as JSONL, one cycle record per line, oldest first. Every
/// line carries the ring's venue session id (0 for solo engines) so
/// multi-session exports stay attributable.
pub fn write_jsonl(path: &Path, ring: &TelemetryRing) -> std::io::Result<()> {
    let mut out = String::new();
    render_jsonl(&mut out, ring);
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Append a ring's JSONL lines to `out` (used to concatenate several
/// sessions' rings into one venue export).
pub fn render_jsonl(out: &mut String, ring: &TelemetryRing) {
    let session = ring.session();
    for record in ring.iter() {
        out.push_str(&cycle_json_for_session(record, session).render());
        out.push('\n');
    }
}

/// Write several rings — typically one per venue session — into a single
/// JSONL file, each line tagged with its ring's session id.
pub fn write_jsonl_multi(path: &Path, rings: &[TelemetryRing]) -> std::io::Result<()> {
    let mut out = String::new();
    for ring in rings {
        render_jsonl(&mut out, ring);
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Capture + export in one step: run, write `results/telemetry_<tag>.jsonl`,
/// and return the aggregated report. Used by the experiment binaries so
/// every run leaves a telemetry artifact next to its figures.
pub fn capture_and_export(
    tag: &str,
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    warmup: usize,
    cycles: usize,
) -> TelemetryReport {
    let (ring, dropped) = collect_telemetry_with_drops(scenario, strategy, threads, warmup, cycles);
    let path = jsonl_path(tag);
    match write_jsonl(&path, &ring) {
        Ok(()) => eprintln!(
            "[telemetry] wrote {} ({} cycles)",
            path.display(),
            ring.len()
        ),
        Err(e) => eprintln!("[telemetry] cannot write {}: {e}", path.display()),
    }
    report_for(strategy, threads, &ring).with_dropped_events(dropped)
}

/// Render `BENCH_telemetry.json`: run metadata plus one entry per report.
pub fn bench_json(reports: &[TelemetryReport]) -> Json {
    Json::object([
        ("bench", Json::from("telemetry")),
        ("deadline_ns", Json::from(DEADLINE_NS)),
        (
            "runs",
            Json::array(reports.iter().map(TelemetryReport::to_json)),
        ),
    ])
}

/// Per-cycle graph times (ns) over `cycles` APCs, with telemetry on or off
/// — the raw measurement behind the <2 % overhead guard.
pub fn graph_times_ns(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    warmup: usize,
    cycles: usize,
    telemetry: bool,
) -> Vec<u64> {
    let mut engine = AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
    engine.warmup(warmup);
    engine.set_telemetry(telemetry);
    (0..cycles)
        .map(|_| engine.run_apc().graph.as_nanos() as u64)
        .collect()
}

/// Median of a sample (ns). Robust to the multi-millisecond scheduler
/// stalls shared hosts inject (see DESIGN.md §4.2) — a handful of stalled
/// cycles shift a mean by far more than the sub-percent effect the
/// overhead guard measures, but leave the median untouched.
pub fn median_ns(mut samples: Vec<u64>) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

/// Median graph time (ns) over `cycles` APCs, with telemetry on or off.
pub fn median_graph_ns(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    warmup: usize,
    cycles: usize,
    telemetry: bool,
) -> f64 {
    median_ns(graph_times_ns(
        scenario, strategy, threads, warmup, cycles, telemetry,
    ))
}

/// Relative telemetry overhead: the median over many paired off/on block
/// deltas, normalized by the fastest telemetry-off cycle.
///
/// Design, driven by how noisy shared hosts are (DESIGN.md §4.2):
///
/// * **One engine, paired blocks.** Telemetry is toggled off-then-on in
///   adjacent `BLOCK`-cycle blocks on the *same* engine; each pair yields
///   one delta `min(on block) - min(off block)`. Adjacency means
///   seconds-scale drift (CPU frequency, noisy neighbors) cancels inside
///   a pair — separate off-run-then-on-run measurements drift apart by
///   more than the sub-percent effect under test.
/// * **Minimum within a block.** Telemetry adds a uniform per-cycle cost
///   while host noise only ever *adds* time, so the fastest cycle per
///   block isolates the clean-path difference.
/// * **Median across pairs.** A pair that straddles a preemption burst
///   produces a wild delta of either sign; the median over dozens of
///   pairs sheds those outliers entirely.
///
/// `cycles * trials` is the total cycle budget, split evenly off/on.
pub fn overhead_fraction(
    scenario: &Scenario,
    strategy: Strategy,
    threads: usize,
    cycles: usize,
    trials: usize,
) -> f64 {
    const BLOCK: usize = 25;
    let pairs = (cycles.max(1) * trials.max(1) / (2 * BLOCK)).max(2);
    let mut engine = AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
    engine.warmup(50);
    let block_min = |engine: &mut AudioEngine, telem: bool| -> u64 {
        // Toggling happens between blocks, off the measured path; the ring
        // (re)allocation it implies never lands inside a cycle.
        engine.set_telemetry(telem);
        (0..BLOCK)
            .map(|_| engine.run_apc().graph.as_nanos() as u64)
            .min()
            .expect("BLOCK > 0")
    };
    let mut deltas = Vec::with_capacity(pairs);
    let mut best_off = u64::MAX;
    for _ in 0..pairs {
        let off = block_min(&mut engine, false);
        let on = block_min(&mut engine, true);
        best_off = best_off.min(off);
        deltas.push(on as f64 - off as f64);
    }
    deltas.sort_unstable_by(f64::total_cmp);
    let median_delta = deltas[deltas.len() / 2];
    median_delta / best_off as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_returns_one_record_per_cycle() {
        let ring = collect_telemetry(&Scenario::light_test(), Strategy::Sequential, 1, 3, 17);
        assert_eq!(ring.len(), 17);
        assert_eq!(ring.total_pushed(), 17);
        let report = report_for(Strategy::Sequential, 1, &ring);
        assert_eq!(report.cycles, 17);
        assert_eq!(report.strategy, "SEQ");
        assert_eq!(report.totals.nodes_executed, 17 * 67);
    }

    #[test]
    fn jsonl_has_one_line_per_cycle() {
        let ring = collect_telemetry(&Scenario::light_test(), Strategy::Busy, 2, 2, 5);
        let dir = std::env::temp_dir().join("djstar_telemetry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        write_jsonl(&path, &ring).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5);
        for line in text.lines() {
            assert!(line.starts_with("{\"cycle\":"));
            assert!(line.contains("\"workers\":["));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn venue_rings_export_session_tagged_jsonl() {
        use djstar_engine::venue::{SessionSpec, VenueServer};
        let mut venue = VenueServer::new(2, std::time::Duration::from_secs(1), 0.0);
        let mut ids = Vec::new();
        for strategy in [Strategy::Busy, Strategy::Steal] {
            let id = venue
                .admit_bounded(
                    SessionSpec {
                        scenario: Scenario::light_test(),
                        strategy,
                        threads: 2,
                        aux: AuxWork::light(),
                    },
                    1,
                )
                .unwrap();
            venue.engine_mut(id).unwrap().set_telemetry(true);
            ids.push(id);
        }
        venue.run_cycles(6);
        let rings: Vec<TelemetryRing> = ids
            .iter()
            .map(|&id| venue.engine_mut(id).unwrap().take_telemetry().unwrap())
            .collect();
        // Each ring knows its session, and the aggregated report carries it.
        assert_eq!(rings[0].session(), ids[0]);
        assert_eq!(rings[1].session(), ids[1]);
        let report = report_for(Strategy::Busy, 2, &rings[0]);
        assert_eq!(report.session, ids[0]);
        assert!(report.to_json().render().contains("\"session\":1"));
        // The combined JSONL attributes every line to its session.
        let mut out = String::new();
        for r in &rings {
            render_jsonl(&mut out, r);
        }
        assert_eq!(out.lines().count(), 12);
        for (i, id) in ids.iter().enumerate() {
            let tag = format!("\"session\":{id}");
            assert_eq!(
                out.lines().filter(|l| l.contains(&tag)).count(),
                6,
                "session {} lines missing (ring {i})",
                id
            );
        }
    }

    #[test]
    fn bench_json_lists_runs() {
        let ring = collect_telemetry(&Scenario::light_test(), Strategy::Sequential, 1, 1, 4);
        let r = report_for(Strategy::Sequential, 1, &ring);
        let j = bench_json(&[r]).render();
        assert!(j.starts_with("{\"bench\":\"telemetry\""));
        assert!(j.contains("\"strategy\":\"SEQ\""));
    }
}
