//! A fixed-capacity Chase–Lev work-stealing deque of node ids.
//!
//! §V-C of the paper: *"We implemented the queues as double ended queues
//! (deque) which can be accessed from both sides. We implemented the
//! convention that stealing threads access the queue from the top and local
//! executor threads access their queue from the bottom. This convention
//! enables a theft and a local access to happen at the same time as long as
//! `length(deque) >= 2` without the need to use explicit locking."*
//!
//! This is the classic Chase–Lev deque (Chase & Lev, SPAA 2005) with the
//! memory orderings of Lê et al. (PPoPP 2013). Because the DJ Star graph has
//! a fixed number of nodes (67), the buffer never needs to grow: capacity is
//! fixed at construction, and `push` reports overflow instead of
//! reallocating. Elements are `u32` node ids stored in atomics, so the
//! implementation is entirely safe Rust.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicIsize, AtomicU32, Ordering};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// Got an element.
    Success(u32),
    /// The deque was empty.
    Empty,
    /// Lost a race with the owner or another thief; caller may retry.
    Retry,
}

/// A single-owner, multi-thief deque of `u32` values.
///
/// The *owner* calls [`push`](WorkDeque::push) and [`pop`](WorkDeque::pop)
/// (bottom end, LIFO); any thread may call [`steal`](WorkDeque::steal)
/// (top end, FIFO).
/// `bottom` is written on every owner push/pop while `top` is hammered by
/// thieves' CAS loops; padding each onto its own cache line keeps a steal
/// from invalidating the owner's line (and vice versa) — the textbook
/// Chase–Lev false-sharing fix.
#[derive(Debug)]
pub struct WorkDeque {
    bottom: CachePadded<AtomicIsize>,
    top: CachePadded<AtomicIsize>,
    buf: Box<[AtomicU32]>,
    mask: usize,
}

impl WorkDeque {
    /// A deque with capacity `cap` rounded up to a power of two.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "deque capacity must be positive");
        let cap = cap.next_power_of_two();
        WorkDeque {
            bottom: CachePadded::new(AtomicIsize::new(0)),
            top: CachePadded::new(AtomicIsize::new(0)),
            buf: (0..cap).map(|_| AtomicU32::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Approximate length; exact when called by the owner with no
    /// concurrent thieves.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner: push `v` at the bottom. Returns `Err(v)` when full.
    pub fn push(&self, v: u32) -> Result<(), u32> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.buf.len() as isize {
            return Err(v);
        }
        self.buf[(b as usize) & self.mask].store(v, Ordering::Relaxed);
        // Publish the element before making it visible via `bottom`.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner: pop from the bottom (most recently pushed first — the LIFO
    /// cache-locality order §V-C argues for).
    pub fn pop(&self) -> Option<u32> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom update before reading top (total order with the
        // thief's fence).
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty.
            let v = self.buf[(b as usize) & self.mask].load(Ordering::Relaxed);
            if t == b {
                // Single element: race with thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(v)
                } else {
                    None
                }
            } else {
                Some(v)
            }
        } else {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief: steal from the top (longest-waiting element first; §V-C notes
    /// such nodes "are more likely to produce a high number of new tasks").
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let v = self.buf[(t as usize) & self.mask].load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(v)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner() {
        let d = WorkDeque::new(8);
        d.push(1).unwrap();
        d.push(2).unwrap();
        d.push(3).unwrap();
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let d = WorkDeque::new(8);
        d.push(1).unwrap();
        d.push(2).unwrap();
        d.push(3).unwrap();
        assert_eq!(d.steal(), Steal::Success(1));
        assert_eq!(d.steal(), Steal::Success(2));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn bottom_and_top_on_distinct_cache_lines() {
        let d = WorkDeque::new(8);
        let b = &*d.bottom as *const AtomicIsize as usize;
        let t = &*d.top as *const AtomicIsize as usize;
        assert!(t.abs_diff(b) >= 128);
    }

    #[test]
    fn capacity_rounds_up_and_overflows_cleanly() {
        let d = WorkDeque::new(3);
        assert_eq!(d.capacity(), 4);
        for i in 0..4 {
            d.push(i).unwrap();
        }
        assert_eq!(d.push(99), Err(99));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn push_after_wraparound() {
        let d = WorkDeque::new(4);
        for round in 0..10u32 {
            for i in 0..4 {
                d.push(round * 10 + i).unwrap();
            }
            for _ in 0..4 {
                assert!(d.pop().is_some());
            }
        }
        assert!(d.is_empty());
    }

    #[test]
    fn empty_pop_restores_state() {
        let d = WorkDeque::new(4);
        assert_eq!(d.pop(), None);
        d.push(7).unwrap();
        assert_eq!(d.pop(), Some(7));
    }

    /// Concurrency smoke test: one owner pushes N items and pops, three
    /// thieves steal; every item must be consumed exactly once.
    #[test]
    fn no_loss_no_duplication_under_contention() {
        const N: u32 = 10_000;
        let d = Arc::new(WorkDeque::new(N as usize));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));

        let mut thieves = Vec::new();
        for _ in 0..3 {
            let d = Arc::clone(&d);
            let sum = Arc::clone(&sum);
            let count = Arc::clone(&count);
            thieves.push(std::thread::spawn(move || loop {
                match d.steal() {
                    Steal::Success(v) => {
                        sum.fetch_add(v as u64, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty => {
                        if count.load(Ordering::Relaxed) >= N as u64 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    Steal::Retry => {}
                }
            }));
        }

        // Owner: push everything, then drain what the thieves left.
        for i in 1..=N {
            while d.push(i).is_err() {
                std::thread::yield_now();
            }
            // Interleave some owner pops.
            if i % 3 == 0 {
                if let Some(v) = d.pop() {
                    sum.fetch_add(v as u64, Ordering::Relaxed);
                    count.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        while let Some(v) = d.pop() {
            sum.fetch_add(v as u64, Ordering::Relaxed);
            count.fetch_add(1, Ordering::Relaxed);
        }
        // Wait until every element is accounted for (thieves may still hold
        // stolen-but-uncounted items for a moment).
        while count.load(Ordering::Relaxed) < N as u64 {
            std::thread::yield_now();
        }
        for t in thieves {
            t.join().unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), N as u64);
        assert_eq!(sum.load(Ordering::Relaxed), (N as u64) * (N as u64 + 1) / 2);
    }
}
