//! The busy-waiting strategy (§V-A) — the paper's winner.
//!
//! "The graph nodes are already in a sorted queue with respect to their
//! dependencies … they can be easily assigned to threads in a round-robin
//! manner. … When a node gets scheduled, it first checks its dependencies
//! and performs busy-waiting until they are met."
//!
//! Node `queue[k]` is executed by worker `k mod T`; each worker walks its
//! own positions in queue order and spins (`core::hint::spin_loop`) on any
//! predecessor that is not yet done for the current epoch. Because
//! dependencies always point to *earlier* queue positions, and each worker
//! processes its positions in order, a waiting worker's dependency is
//! always owned by a worker currently at an earlier position — so the
//! waits-for relation cannot form a cycle and the strategy is deadlock-free.
//!
//! On an over-subscribed host (fewer cores than workers) a pure spin would
//! starve the producing worker; [`ExecGraph::spin_until_done`] therefore
//! yields every 4096 spins, which is a no-op when cores are plentiful.
//!
//! The OS threads belong to a [`VenuePool`](super::pool::VenuePool): the
//! single-session constructors spin up a private one-session pool, and
//! [`BusyExecutor::with_pool`] registers onto an existing shared pool so
//! many sessions multiplex the same workers (see `exec::pool`).

use super::pool::{PoolBinding, SessionState, VenuePool};
use super::{
    CycleResult, ExecGraph, GraphExecutor, RawEvent, Shared, StagedGeneration, Strategy, SwapError,
};
use crate::faults::FaultPlan;
use crate::flight::{FlightConfig, FlightWindow, Span, SpanKind};
use crate::graph::{GraphTopology, NodeId, Priority, TaskGraph};
use crate::processor::Processor;
use crate::telemetry::{TelemetryRing, DEFAULT_RING_CAPACITY};
use crate::trace::{ScheduleTrace, TraceKind};
use djstar_dsp::AudioBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Busy-waiting executor: static round-robin assignment + spin waits.
pub struct BusyExecutor {
    shared: Arc<Shared>,
    pool: PoolBinding,
    tracing: bool,
    last_trace: Option<ScheduleTrace>,
    telemetry: Option<TelemetryRing>,
    session: u32,
}

impl BusyExecutor {
    /// Build the executor with `threads` workers (including the calling
    /// thread) over `graph` with `frames`-frame buffers.
    ///
    /// # Panics
    /// Panics if `threads == 0` or `threads > 64`.
    pub fn new(graph: TaskGraph, threads: usize, frames: usize) -> Self {
        Self::with_priority(graph, threads, frames, Priority::Depth)
    }

    /// Like [`new`](Self::new), but walking the queue in the order selected
    /// by `priority` (depth order is the production default).
    pub fn with_priority(
        graph: TaskGraph,
        threads: usize,
        frames: usize,
        priority: Priority,
    ) -> Self {
        let pool = Arc::new(VenuePool::new(threads));
        Self::with_pool(graph, threads, frames, priority, &pool)
    }

    /// Register this session on an existing shared [`VenuePool`] instead of
    /// spawning private threads. `threads` is this session's lane count and
    /// must not exceed the pool's.
    pub fn with_pool(
        graph: TaskGraph,
        threads: usize,
        frames: usize,
        priority: Priority,
        pool: &Arc<VenuePool>,
    ) -> Self {
        assert!((1..=64).contains(&threads), "1..=64 threads supported");
        let shared = Arc::new(Shared::new(
            ExecGraph::new(graph, frames),
            threads,
            priority,
        ));
        // SAFETY: no cycle in flight yet; workers only read handles during a
        // cycle (after acquiring the epoch that published them).
        unsafe { shared.handles.set(pool.session_handles(threads)) };
        let pool = pool.register(SessionState::Busy(Arc::clone(&shared)));
        BusyExecutor {
            shared,
            pool,
            tracing: false,
            last_trace: None,
            telemetry: None,
            session: 0,
        }
    }
}

/// Execute worker `me`'s round-robin share of the queue for `epoch`.
pub(crate) fn run_cycle_part(shared: &Shared, me: usize, epoch: u64) {
    let tracing = shared.tracing.load(Ordering::Relaxed);
    let telem = shared.telemetry.load(Ordering::Relaxed);
    let rec = shared.flight_on();
    let counters = &shared.counters[me];
    let topo = shared.graph().topology();
    let faults = shared.fault_plan();
    // SAFETY: epoch acquired (worker via the pool batch epoch, driver
    // trivially).
    let ctx = if telem || rec {
        unsafe { shared.ctx_counted(epoch, me) }
    } else {
        unsafe { shared.ctx(epoch) }
    };
    if let Some(plan) = faults {
        if rec {
            let s0 = Instant::now();
            if plan.inject_stalls(epoch, me, shared.threads, counters) > 0 {
                shared.record_span(
                    me,
                    epoch,
                    Span::NO_NODE,
                    SpanKind::Fault,
                    s0,
                    Instant::now(),
                );
            }
        } else {
            plan.inject_stalls(epoch, me, shared.threads, counters);
        }
    }
    let mut events: Vec<RawEvent> = Vec::new();
    for (k, &node) in shared.order().iter().enumerate() {
        if k % shared.threads != me {
            continue;
        }
        let preds = topo.preds(NodeId(node));
        if tracing || telem || rec {
            let w0 = Instant::now();
            let mut spins = 0u64;
            for &p in preds {
                spins += shared.graph().spin_until_done(p as usize, epoch);
            }
            if spins > 0 {
                let w1 = Instant::now();
                if tracing {
                    events.push(RawEvent {
                        node,
                        kind: TraceKind::BusyWait,
                        start: w0,
                        end: w1,
                    });
                }
                if telem {
                    counters.add_spin(spins, (w1 - w0).as_nanos() as u64);
                }
                if rec {
                    shared.record_span(me, epoch, node, SpanKind::BusyWait, w0, w1);
                }
            }
            let t0 = Instant::now();
            let mut fault_end = t0;
            if let Some(plan) = faults {
                let injected = plan.inject_node(epoch, node, counters);
                if rec && injected > 0 {
                    fault_end = Instant::now();
                }
            }
            let net0 = if rec { shared.net_ns_of(me) } else { (0, 0) };
            // SAFETY: exactly-once ownership by round-robin assignment; all
            // predecessors observed done for this epoch.
            unsafe { shared.graph().execute(node as usize, &ctx) };
            let t1 = Instant::now();
            if tracing {
                events.push(RawEvent {
                    node,
                    kind: TraceKind::Exec,
                    start: t0,
                    end: t1,
                });
            }
            if telem {
                counters.add_exec((t1 - t0).as_nanos() as u64);
            }
            if rec {
                if fault_end > t0 {
                    shared.record_span(me, epoch, node, SpanKind::Fault, t0, fault_end);
                }
                shared.record_exec_carved(me, epoch, node, fault_end, t1, net0);
            }
        } else {
            for &p in preds {
                shared.graph().spin_until_done(p as usize, epoch);
            }
            if let Some(plan) = faults {
                plan.inject_node(epoch, node, counters);
            }
            // SAFETY: as above.
            unsafe { shared.graph().execute(node as usize, &ctx) };
        }
        shared.node_finished();
    }
    if tracing {
        shared.flush_trace(me, events);
    }
}

impl GraphExecutor for BusyExecutor {
    fn strategy(&self) -> Strategy {
        Strategy::Busy
    }

    fn threads(&self) -> usize {
        self.shared.threads
    }

    fn run_cycle(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> CycleResult {
        let epoch = self
            .venue_stage(external_audio, controls)
            .expect("busy executor always stages");
        self.pool.pool().dispatch();
        run_cycle_part(&self.shared, 0, epoch);
        let result = self.venue_collect(epoch);
        self.pool.pool().quiesce();
        result
    }

    fn venue_stage(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> Option<u64> {
        self.pool.pool().quiesce();
        self.shared.tracing.store(self.tracing, Ordering::Relaxed);
        self.shared
            .telemetry
            .store(self.telemetry.is_some(), Ordering::Relaxed);
        // SAFETY: driver thread, no cycle in flight (`&mut self`), pool
        // quiescent.
        let epoch = unsafe { self.shared.prepare_cycle(external_audio, controls) };
        self.pool.stage(epoch);
        Some(epoch)
    }

    fn venue_collect(&mut self, epoch: u64) -> CycleResult {
        self.shared.wait_cycle_done();
        let end = Instant::now();
        // SAFETY: driver-owned; set by `prepare_cycle` this cycle.
        let start = unsafe { *self.shared.cycle_start.get() };
        let duration = end - start;
        if self.shared.flight_on() {
            self.shared.stamp_cycle(epoch, end);
        }
        if let Some(ring) = self.telemetry.as_mut() {
            // All counter updates happen-before the workers' final
            // done-count increments, acquired by `wait_cycle_done`.
            let slot = ring.begin_push(epoch, duration.as_nanos() as u64);
            self.shared.drain_counters(slot);
        }
        if self.tracing {
            self.shared.wait_trace_flushed();
            self.last_trace = Some(self.shared.collect_trace());
        }
        CycleResult { duration }
    }

    fn set_session(&mut self, session: u32) {
        self.session = session;
        if let Some(r) = &self.telemetry {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                session,
            ));
        }
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn take_trace(&mut self) -> Option<ScheduleTrace> {
        self.last_trace.take()
    }

    fn set_telemetry(&mut self, on: bool) {
        if on {
            if self.telemetry.is_none() {
                self.telemetry = Some(TelemetryRing::with_session(
                    DEFAULT_RING_CAPACITY,
                    self.shared.threads,
                    self.session,
                ));
            }
        } else {
            self.telemetry = None;
        }
    }

    fn take_telemetry(&mut self) -> Option<TelemetryRing> {
        let taken = self.telemetry.take();
        if let Some(r) = &taken {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                r.session(),
            ));
        }
        taken
    }

    fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.pool.pool().quiesce();
        // SAFETY: driver-only between cycles (`&mut self`), pool quiescent;
        // published to workers by the next epoch Release store.
        unsafe { self.shared.faults.set(plan) };
    }

    fn set_flight_recorder(&mut self, cfg: Option<FlightConfig>) {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.install_recorder(cfg);
    }

    fn take_flight_window(&mut self) -> Option<FlightWindow> {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.take_window()
    }

    fn adopt_generation(&mut self, staged: StagedGeneration) -> Result<u64, SwapError> {
        let (exec, _plan) = staged.into_parts();
        self.pool.pool().quiesce();
        // SAFETY: `&mut self` proves no cycle in flight; the pool is
        // quiescent, so workers touch no node state until the next batch.
        Ok(unsafe { self.shared.adopt_exec(exec) })
    }

    fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Relaxed)
    }

    fn read_output(&mut self, node: NodeId, dst: &mut AudioBuf) {
        self.pool.pool().quiesce();
        // SAFETY: `&mut self` proves no cycle in flight; the pool is
        // quiescent, so workers touch no node state.
        unsafe { self.shared.graph().read_output_unsync(node, dst) };
    }

    fn node_processor(&mut self, node: NodeId) -> &mut dyn Processor {
        self.pool.pool().quiesce();
        // SAFETY: as in `read_output`.
        unsafe { self.shared.graph().node_processor_unsync(node) }
    }

    fn topology(&self) -> &GraphTopology {
        self.shared.graph().topology()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{diamond_sum_graph, fan_graph, run_and_check};

    #[test]
    fn computes_same_result_as_sequential() {
        for threads in [1, 2, 3, 4] {
            run_and_check(
                |g, frames| Box::new(BusyExecutor::new(g, threads, frames)),
                &format!("busy-{threads}"),
            );
        }
    }

    #[test]
    fn critical_path_priority_matches_sequential() {
        for threads in [1, 3] {
            run_and_check(
                |g, frames| {
                    Box::new(BusyExecutor::with_priority(
                        g,
                        threads,
                        frames,
                        Priority::CriticalPath,
                    ))
                },
                &format!("busy-cp-{threads}"),
            );
        }
    }

    #[test]
    fn diamond_sums_correctly_many_cycles() {
        let mut ex = BusyExecutor::new(diamond_sum_graph(), 2, 8);
        for _ in 0..200 {
            ex.run_cycle(&[], &[]);
            let mut out = AudioBuf::zeroed(2, 8);
            ex.read_output(NodeId(3), &mut out);
            assert_eq!(out.sample(0, 0), 3.0); // 1 + 2
        }
    }

    #[test]
    fn trace_respects_dependencies() {
        let mut ex = BusyExecutor::new(fan_graph(16), 4, 8);
        ex.set_tracing(true);
        for _ in 0..20 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            assert_eq!(trace.executions().len(), ex.topology().len());
            let topo = ex.topology();
            assert!(trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()));
        }
    }

    #[test]
    fn round_robin_assignment_visible_in_trace() {
        let mut ex = BusyExecutor::new(fan_graph(8), 2, 8);
        ex.set_tracing(true);
        ex.run_cycle(&[], &[]);
        let trace = ex.take_trace().unwrap();
        let topo = ex.topology();
        for e in trace.executions() {
            let k = topo.queue().iter().position(|&n| n == e.node).unwrap();
            assert_eq!(e.worker as usize, k % 2, "node {} on wrong worker", e.node);
        }
    }
}
