//! Extension: a hybrid spin-then-park strategy.
//!
//! §VI frames the BUSY-vs-SLEEP trade-off as all-or-nothing: spinning wins
//! because cycles are short, "if wasting resources on waiting is not an
//! option, work-stealing is a solid alternative". The classic middle ground
//! — spin for a bounded budget, then park — is the obvious follow-up the
//! paper leaves open; this executor implements it so the ablation study can
//! sweep the spin budget between the two extremes (budget 0 ≈ SLEEP,
//! budget ∞ ≈ BUSY).
//!
//! Assignment and wake-up machinery are identical to
//! [`SleepExecutor`](super::SleepExecutor): round-robin static assignment,
//! pending counters, waiter registration, predecessor wake-ups. Only the
//! wait differs: up to `spin_budget` polls of the pending counter happen
//! before the thread registers and parks.

use super::pool::{PoolBinding, SessionState, VenuePool};
use super::{
    CycleResult, ExecGraph, GraphExecutor, RawEvent, Shared, StagedGeneration, Strategy, SwapError,
};
use crate::faults::FaultPlan;
use crate::flight::{FlightConfig, FlightWindow, Span, SpanKind};
use crate::graph::{GraphTopology, NodeId, Priority, TaskGraph};
use crate::processor::Processor;
use crate::telemetry::{TelemetryRing, DEFAULT_RING_CAPACITY};
use crate::trace::{ScheduleTrace, TraceKind};
use djstar_dsp::AudioBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Spin-then-park executor.
pub struct HybridExecutor {
    shared: Arc<HybridShared>,
    pool: PoolBinding,
    tracing: bool,
    last_trace: Option<ScheduleTrace>,
    telemetry: Option<TelemetryRing>,
    session: u32,
}

pub(crate) struct HybridShared {
    pub(crate) base: Shared,
    /// Maximum spin polls before parking.
    spin_budget: AtomicU32,
}

impl HybridExecutor {
    /// Build the executor; `spin_budget` is the number of dependency polls
    /// performed before giving up and parking (0 behaves like SLEEP).
    ///
    /// # Panics
    /// Panics if `threads == 0` or `threads > 64`.
    pub fn new(graph: TaskGraph, threads: usize, frames: usize, spin_budget: u32) -> Self {
        Self::with_priority(graph, threads, frames, spin_budget, Priority::Depth)
    }

    /// Like [`new`](Self::new), but walking the queue in the order selected
    /// by `priority` (depth order is the production default).
    pub fn with_priority(
        graph: TaskGraph,
        threads: usize,
        frames: usize,
        spin_budget: u32,
        priority: Priority,
    ) -> Self {
        let pool = Arc::new(VenuePool::new(threads));
        Self::with_pool(graph, threads, frames, spin_budget, priority, &pool)
    }

    /// Register this session on an existing shared [`VenuePool`] instead of
    /// spawning private threads. `threads` is this session's lane count and
    /// must not exceed the pool's.
    pub fn with_pool(
        graph: TaskGraph,
        threads: usize,
        frames: usize,
        spin_budget: u32,
        priority: Priority,
        pool: &Arc<VenuePool>,
    ) -> Self {
        assert!((1..=64).contains(&threads), "1..=64 threads supported");
        let shared = Arc::new(HybridShared {
            base: Shared::new(ExecGraph::new(graph, frames), threads, priority),
            spin_budget: AtomicU32::new(spin_budget),
        });
        // SAFETY: no cycle in flight yet.
        unsafe { shared.base.handles.set(pool.session_handles(threads)) };
        let pool = pool.register(SessionState::Hybrid(Arc::clone(&shared)));
        HybridExecutor {
            shared,
            pool,
            tracing: false,
            last_trace: None,
            telemetry: None,
            session: 0,
        }
    }

    /// Change the spin budget between cycles.
    pub fn set_spin_budget(&mut self, budget: u32) {
        self.shared.spin_budget.store(budget, Ordering::Relaxed);
    }
}

/// Outcome of a hybrid wait, for tracing and telemetry.
enum WaitOutcome {
    NoWait,
    SpunOnly { spins: u64 },
    Parked { spins: u64, parks: u64 },
}

/// Spin up to the budget, then register-and-park until `pending == 0`.
fn hybrid_wait(sh: &HybridShared, node: usize, me: usize) -> WaitOutcome {
    let cell = sh.base.graph().cell(node);
    let pending = |o: Ordering| cell.pending.load(o);
    if pending(Ordering::Acquire) == 0 {
        return WaitOutcome::NoWait;
    }
    let budget = sh.spin_budget.load(Ordering::Relaxed);
    for i in 0..budget {
        if pending(Ordering::Acquire) == 0 {
            return WaitOutcome::SpunOnly {
                spins: u64::from(i) + 1,
            };
        }
        if i % 1024 == 1023 {
            std::thread::yield_now();
        } else {
            core::hint::spin_loop();
        }
    }
    // Budget exhausted: fall back to the SLEEP protocol.
    let spins = u64::from(budget);
    let mut parks = 0u64;
    loop {
        cell.waiter.store(me + 1, Ordering::SeqCst);
        if pending(Ordering::Acquire) == 0 {
            cell.waiter.store(0, Ordering::SeqCst);
            return WaitOutcome::Parked { spins, parks };
        }
        std::thread::park();
        parks += 1;
        if pending(Ordering::Acquire) == 0 {
            cell.waiter.store(0, Ordering::SeqCst);
            return WaitOutcome::Parked { spins, parks };
        }
    }
}

pub(crate) fn run_cycle_part(sh: &HybridShared, me: usize, epoch: u64) {
    let tracing = sh.base.tracing.load(Ordering::Relaxed);
    let telem = sh.base.telemetry.load(Ordering::Relaxed);
    let rec = sh.base.flight_on();
    let counters = &sh.base.counters[me];
    let topo = sh.base.graph().topology();
    let faults = sh.base.fault_plan();
    // SAFETY: epoch acquired.
    let ctx = if telem || rec {
        unsafe { sh.base.ctx_counted(epoch, me) }
    } else {
        unsafe { sh.base.ctx(epoch) }
    };
    // SAFETY: handles written before the epoch was published.
    let handles = unsafe { sh.base.handles.get() };
    if let Some(plan) = faults {
        if rec {
            let s0 = Instant::now();
            if plan.inject_stalls(epoch, me, sh.base.threads, counters) > 0 {
                sh.base.record_span(
                    me,
                    epoch,
                    Span::NO_NODE,
                    SpanKind::Fault,
                    s0,
                    Instant::now(),
                );
            }
        } else {
            plan.inject_stalls(epoch, me, sh.base.threads, counters);
        }
    }
    let mut events: Vec<RawEvent> = Vec::new();
    for (k, &node) in sh.base.order().iter().enumerate() {
        if k % sh.base.threads != me {
            continue;
        }
        let w0 = Instant::now();
        let outcome = hybrid_wait(sh, node as usize, me);
        if tracing || telem || rec {
            let w1 = Instant::now();
            let wait_ns = (w1 - w0).as_nanos() as u64;
            match outcome {
                WaitOutcome::NoWait => {}
                WaitOutcome::SpunOnly { spins } => {
                    if tracing {
                        events.push(RawEvent {
                            node,
                            kind: TraceKind::BusyWait,
                            start: w0,
                            end: w1,
                        });
                    }
                    if telem {
                        counters.add_spin(spins, wait_ns);
                    }
                    if rec {
                        sh.base
                            .record_span(me, epoch, node, SpanKind::BusyWait, w0, w1);
                    }
                }
                WaitOutcome::Parked { spins, parks } => {
                    if tracing {
                        events.push(RawEvent {
                            node,
                            kind: TraceKind::Sleep,
                            start: w0,
                            end: w1,
                        });
                    }
                    if telem {
                        // The wait spanned the spin budget and the park; the
                        // duration is booked against the park, which
                        // dominates once the budget is exhausted.
                        counters.add_spin(spins, 0);
                        counters.add_park(parks, wait_ns);
                    }
                    if rec {
                        sh.base
                            .record_span(me, epoch, node, SpanKind::Sleep, w0, w1);
                    }
                }
            }
        }
        let t0 = Instant::now();
        let mut fault_end = t0;
        if let Some(plan) = faults {
            let injected = plan.inject_node(epoch, node, counters);
            if rec && injected > 0 {
                fault_end = Instant::now();
            }
        }
        let net0 = if rec { sh.base.net_ns_of(me) } else { (0, 0) };
        // SAFETY: exactly-once by static assignment; pending==0 acquired.
        unsafe { sh.base.graph().execute(node as usize, &ctx) };
        if tracing || telem || rec {
            let t1 = Instant::now();
            if tracing {
                events.push(RawEvent {
                    node,
                    kind: TraceKind::Exec,
                    start: t0,
                    end: t1,
                });
            }
            if telem {
                counters.add_exec((t1 - t0).as_nanos() as u64);
            }
            if rec {
                if fault_end > t0 {
                    sh.base
                        .record_span(me, epoch, node, SpanKind::Fault, t0, fault_end);
                }
                sh.base
                    .record_exec_carved(me, epoch, node, fault_end, t1, net0);
            }
        }
        for &s in topo.succs(NodeId(node)) {
            let sc = sh.base.graph().cell(s as usize);
            if sc.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let w = sc.waiter.swap(0, Ordering::SeqCst);
                if w != 0 {
                    if telem {
                        counters.add_unpark();
                    }
                    if tracing || rec {
                        let u0 = Instant::now();
                        handles[w - 1].unpark();
                        let u1 = Instant::now();
                        if tracing {
                            events.push(RawEvent {
                                node: s,
                                kind: TraceKind::Unpark,
                                start: u0,
                                end: u1,
                            });
                        }
                        if rec {
                            sh.base.record_span(me, epoch, s, SpanKind::Unpark, u0, u1);
                        }
                    } else {
                        handles[w - 1].unpark();
                    }
                }
            }
        }
        sh.base.node_finished();
    }
    if tracing {
        sh.base.flush_trace(me, events);
    }
}

impl GraphExecutor for HybridExecutor {
    fn strategy(&self) -> Strategy {
        Strategy::Hybrid
    }

    fn threads(&self) -> usize {
        self.shared.base.threads
    }

    fn run_cycle(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> CycleResult {
        let epoch = self
            .venue_stage(external_audio, controls)
            .expect("hybrid executor always stages");
        self.pool.pool().dispatch();
        run_cycle_part(&self.shared, 0, epoch);
        let result = self.venue_collect(epoch);
        self.pool.pool().quiesce();
        result
    }

    fn venue_stage(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> Option<u64> {
        self.pool.pool().quiesce();
        let sh = &self.shared;
        sh.base.tracing.store(self.tracing, Ordering::Relaxed);
        sh.base
            .telemetry
            .store(self.telemetry.is_some(), Ordering::Relaxed);
        // SAFETY: driver thread, no cycle in flight (`&mut self`), pool
        // quiescent.
        let epoch = unsafe { sh.base.prepare_cycle(external_audio, controls) };
        self.pool.stage(epoch);
        Some(epoch)
    }

    fn venue_collect(&mut self, epoch: u64) -> CycleResult {
        let sh = &self.shared;
        sh.base.wait_cycle_done();
        let end = Instant::now();
        // SAFETY: driver-owned; set by `prepare_cycle` this cycle.
        let start = unsafe { *sh.base.cycle_start.get() };
        let duration = end - start;
        if sh.base.flight_on() {
            sh.base.stamp_cycle(epoch, end);
        }
        if let Some(ring) = self.telemetry.as_mut() {
            // Counter updates happen-before the workers' final done-count
            // increments, acquired by `wait_cycle_done`.
            let slot = ring.begin_push(epoch, duration.as_nanos() as u64);
            sh.base.drain_counters(slot);
        }
        if self.tracing {
            sh.base.wait_trace_flushed();
            self.last_trace = Some(sh.base.collect_trace());
        }
        CycleResult { duration }
    }

    fn set_session(&mut self, session: u32) {
        self.session = session;
        if let Some(r) = &self.telemetry {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                session,
            ));
        }
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn take_trace(&mut self) -> Option<ScheduleTrace> {
        self.last_trace.take()
    }

    fn set_telemetry(&mut self, on: bool) {
        if on {
            if self.telemetry.is_none() {
                self.telemetry = Some(TelemetryRing::with_session(
                    DEFAULT_RING_CAPACITY,
                    self.shared.base.threads,
                    self.session,
                ));
            }
        } else {
            self.telemetry = None;
        }
    }

    fn take_telemetry(&mut self) -> Option<TelemetryRing> {
        let taken = self.telemetry.take();
        if let Some(r) = &taken {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                r.session(),
            ));
        }
        taken
    }

    fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.pool.pool().quiesce();
        // SAFETY: driver-only between cycles (`&mut self`), pool quiescent;
        // published to workers by the next epoch Release store.
        unsafe { self.shared.base.faults.set(plan) };
    }

    fn set_flight_recorder(&mut self, cfg: Option<FlightConfig>) {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.base.install_recorder(cfg);
    }

    fn take_flight_window(&mut self) -> Option<FlightWindow> {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.base.take_window()
    }

    fn adopt_generation(&mut self, staged: StagedGeneration) -> Result<u64, SwapError> {
        let (exec, _plan) = staged.into_parts();
        self.pool.pool().quiesce();
        // SAFETY: `&mut self` proves no cycle in flight; the pool is
        // quiescent, so workers touch no node state until the next batch.
        Ok(unsafe { self.shared.base.adopt_exec(exec) })
    }

    fn generation(&self) -> u64 {
        self.shared.base.generation.load(Ordering::Relaxed)
    }

    fn read_output(&mut self, node: NodeId, dst: &mut AudioBuf) {
        self.pool.pool().quiesce();
        // SAFETY: `&mut self` proves no cycle in flight; pool quiescent.
        unsafe { self.shared.base.graph().read_output_unsync(node, dst) };
    }

    fn node_processor(&mut self, node: NodeId) -> &mut dyn Processor {
        self.pool.pool().quiesce();
        // SAFETY: as in `read_output`.
        unsafe { self.shared.base.graph().node_processor_unsync(node) }
    }

    fn topology(&self) -> &GraphTopology {
        self.shared.base.graph().topology()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{diamond_sum_graph, fan_graph, run_and_check};

    #[test]
    fn computes_same_result_as_sequential() {
        for (threads, budget) in [(1, 0), (2, 0), (3, 10_000), (4, u32::MAX)] {
            run_and_check(
                |g, frames| Box::new(HybridExecutor::new(g, threads, frames, budget)),
                &format!("hybrid-{threads}-{budget}"),
            );
        }
    }

    #[test]
    fn critical_path_priority_matches_sequential() {
        run_and_check(
            |g, frames| {
                Box::new(HybridExecutor::with_priority(
                    g,
                    3,
                    frames,
                    2_000,
                    Priority::CriticalPath,
                ))
            },
            "hybrid-cp-3",
        );
    }

    #[test]
    fn diamond_many_cycles_with_budget_changes() {
        let mut ex = HybridExecutor::new(diamond_sum_graph(), 3, 8, 1_000);
        for cycle in 0..150 {
            if cycle == 50 {
                ex.set_spin_budget(0);
            }
            if cycle == 100 {
                ex.set_spin_budget(u32::MAX);
            }
            ex.run_cycle(&[], &[]);
            let mut out = AudioBuf::zeroed(2, 8);
            ex.read_output(NodeId(3), &mut out);
            assert_eq!(out.sample(0, 0), 3.0);
        }
    }

    #[test]
    fn traces_are_dependency_safe() {
        let mut ex = HybridExecutor::new(fan_graph(12), 4, 8, 500);
        ex.set_tracing(true);
        for _ in 0..20 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            let topo = ex.topology();
            assert!(trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()));
            assert_eq!(trace.executions().len(), topo.len());
        }
    }
}
