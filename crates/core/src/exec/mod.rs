//! Graph execution runtime: per-node atomic dependency state and the four
//! executors (sequential baseline plus the paper's three strategies).
//!
//! # The epoch protocol
//!
//! Every cycle has an *epoch* (a monotonically increasing `u64`). A node is
//! "done for epoch E" when its `done_epoch` atomic equals `E`. The protocol:
//!
//! 1. Between cycles, only the driver thread touches node state. It resets
//!    pending-dependency counters, writes the external inputs, then
//!    publishes the new epoch with a `Release` store (and wakes workers).
//! 2. A worker acquires the epoch (`Acquire` load), which makes every
//!    driver write of step 1 visible.
//! 3. The executing worker of a node reads each predecessor's output only
//!    after observing `done_epoch == E` with `Acquire`; the predecessor's
//!    executor stored it with `Release` after writing the output. This
//!    happens-before edge makes the output buffer read safe.
//! 4. Exactly one worker executes each node per cycle (*exactly-once
//!    ownership*): BUSY/SLEEP assign nodes statically round-robin; WS
//!    transfers ownership through deque `pop`/`steal` uniqueness, with a
//!    node entering a deque exactly once (when its pending counter hits
//!    zero, which `fetch_sub` reports to exactly one caller).
//! 5. The driver returns from `run_cycle` only after the done-counter
//!    reaches the node count with `Acquire`, so after `run_cycle` all node
//!    state is again owned by the driver (workers increment the counter
//!    with `Release` as their final access of the cycle).
//!
//! # Generation swaps
//!
//! Topology is *generational*: a [`StagedGeneration`] (a fully built
//! [`ExecGraph`], plus an optional [`ScheduleBlueprint`] for PLAN) is
//! prepared away from the audio thread, then adopted between cycles through
//! [`GraphExecutor::adopt_generation`]. The swap is driver-only (`&mut
//! self` plus a pool quiesce proves no cycle is in flight; pool workers sit
//! in the batch wait loop, touching only pool atomics) and becomes visible to the
//! workers through the very next epoch `Release` store — the same edge that
//! already publishes the external inputs, so no extra synchronization and
//! no worker teardown. The epoch counter continues monotonically across the
//! swap, which makes the fresh cells' `done_epoch == 0` unable to alias any
//! live epoch; runtime state (processor boxes and output buffers) of nodes
//! that survive the swap is carried over by node name, so DSP state and the
//! last rendered audio persist and the handover is glitch-free.

mod busy;
mod hybrid;
mod planned;
pub mod pool;
mod sequential;
mod sleeping;
mod stealing;

pub use busy::BusyExecutor;
pub use hybrid::HybridExecutor;
pub use planned::{BlueprintError, PlannedExecutor, PlannedNode, ScheduleBlueprint};
pub use pool::{SessionId, VenuePool};
pub use sequential::SequentialExecutor;
pub use sleeping::SleepExecutor;
pub use stealing::StealExecutor;

use crate::faults::FaultPlan;
use crate::flight::{CycleStamp, FlightConfig, FlightRecorder, FlightWindow, Span, SpanKind};
use crate::graph::{GraphTopology, NodeId, Priority, TaskGraph};
use crate::pad::CachePadded;
use crate::processor::{CycleCtx, Processor};
use crate::telemetry::{CounterSnapshot, CycleCounters, TelemetryRing};
use crate::trace::{ScheduleTrace, TraceEvent, TraceKind};
use djstar_dsp::AudioBuf;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum number of predecessors a node may have (the DJ Star mixer has 5).
pub const MAX_INPUTS: usize = 16;

/// The scheduling strategies of the paper (§V) plus the sequential baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Original single-threaded queue execution.
    Sequential,
    /// Busy-waiting: round-robin static assignment, spin on dependencies.
    Busy,
    /// Thread-sleeping: round-robin static assignment, park on dependencies,
    /// predecessors wake the registered executor.
    Sleep,
    /// Work-stealing: per-thread deques of ready nodes.
    Steal,
    /// Extension (not in the paper): spin for a bounded budget, then park.
    Hybrid,
    /// Extension: execute a precompiled static schedule (a
    /// [`ScheduleBlueprint`], typically compiled from `djstar-sim`'s
    /// resource-constrained list schedule) with zero runtime queue
    /// management.
    Planned,
}

impl Strategy {
    /// The strategy's name as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Sequential => "SEQ",
            Strategy::Busy => "BUSY",
            Strategy::Sleep => "SLEEP",
            Strategy::Steal => "WS",
            Strategy::Hybrid => "HYBRID",
            Strategy::Planned => "PLAN",
        }
    }

    /// The three parallel strategies.
    pub const PARALLEL: [Strategy; 3] = [Strategy::Busy, Strategy::Sleep, Strategy::Steal];

    /// Every strategy, in the order the tables list them.
    pub const ALL: [Strategy; 6] = [
        Strategy::Sequential,
        Strategy::Busy,
        Strategy::Sleep,
        Strategy::Steal,
        Strategy::Hybrid,
        Strategy::Planned,
    ];
}

/// A fully prepared topology generation, buildable off the audio thread and
/// handed to a running executor through
/// [`GraphExecutor::adopt_generation`].
///
/// The expensive work — graph construction, buffer allocation and (for
/// PLAN) blueprint compilation — happens in [`StagedGeneration::new`] /
/// [`StagedGeneration::with_plan`], which any thread may call. The adopt
/// itself is then a pointer-sized swap plus a name-keyed state carry-over.
pub struct StagedGeneration {
    exec: ExecGraph,
    plan: Option<ScheduleBlueprint>,
}

impl StagedGeneration {
    /// Stage `graph` with `frames`-frame output buffers.
    pub fn new(graph: TaskGraph, frames: usize) -> Self {
        StagedGeneration {
            exec: ExecGraph::new(graph, frames),
            plan: None,
        }
    }

    /// Stage `graph` together with a precompiled PLAN blueprint. Executors
    /// other than PLAN ignore the blueprint; PLAN without one falls back to
    /// a round-robin schedule at adopt time.
    pub fn with_plan(graph: TaskGraph, frames: usize, plan: ScheduleBlueprint) -> Self {
        StagedGeneration {
            exec: ExecGraph::new(graph, frames),
            plan: Some(plan),
        }
    }

    /// The staged topology.
    pub fn topology(&self) -> &GraphTopology {
        self.exec.topology()
    }

    /// Number of nodes in the staged generation.
    pub fn len(&self) -> usize {
        self.exec.len()
    }

    /// True when the staged graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.exec.is_empty()
    }

    /// Whether a PLAN blueprint was staged alongside the graph.
    pub fn has_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// The staged PLAN blueprint, when one was compiled alongside the
    /// graph. Lets differential tests compare cached generations against
    /// freshly staged ones slot by slot.
    pub fn plan(&self) -> Option<&ScheduleBlueprint> {
        self.plan.as_ref()
    }

    pub(crate) fn into_parts(self) -> (ExecGraph, Option<ScheduleBlueprint>) {
        (self.exec, self.plan)
    }
}

/// Why an executor refused to adopt a staged generation. The running
/// generation is left untouched on error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// PLAN: the staged blueprint does not fit the staged graph (wrong
    /// coverage, unknown nodes, or an unschedulable replay order).
    Blueprint(BlueprintError),
    /// PLAN: the staged blueprint was compiled for a different worker
    /// count than the executor runs.
    ThreadMismatch {
        /// Workers the executor runs.
        expected: usize,
        /// Workers the blueprint was compiled for.
        got: usize,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Blueprint(e) => write!(f, "staged blueprint rejected: {e}"),
            SwapError::ThreadMismatch { expected, got } => {
                write!(
                    f,
                    "blueprint compiled for {got} workers, executor has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SwapError {}

/// Result of one graph cycle.
#[derive(Debug, Clone, Copy)]
pub struct CycleResult {
    /// Wall-clock graph execution time (what Table I reports).
    pub duration: Duration,
}

/// Object-safe executor interface shared by all strategies.
pub trait GraphExecutor: Send {
    /// Which strategy this executor implements.
    fn strategy(&self) -> Strategy;

    /// Number of worker threads (including the calling thread).
    fn threads(&self) -> usize;

    /// Execute one full graph cycle with the given external inputs.
    fn run_cycle(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> CycleResult;

    /// Venue path, first half: publish this session's cycle (reset the
    /// graph, copy externals, bump the session epoch) WITHOUT dispatching
    /// pool workers, and stage it for the pool's next batch. Returns the
    /// session epoch to pass to [`venue_collect`](Self::venue_collect), or
    /// `None` when the executor does not run on a pool (Sequential) — the
    /// caller then runs `run_cycle` inline instead. After staging every
    /// session, the caller fires one `VenuePool::dispatch`, runs each
    /// staged session's driver share via `VenuePool::run_driver_parts`,
    /// and collects.
    fn venue_stage(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> Option<u64> {
        let _ = (external_audio, controls);
        None
    }

    /// Venue path, second half: wait for this session's staged cycle
    /// (published by [`venue_stage`](Self::venue_stage)) to complete and
    /// harvest its timing/telemetry/trace exactly as `run_cycle` would.
    /// Must only be called with the epoch returned by the matching
    /// `venue_stage`, after the batch was dispatched and the driver parts
    /// ran. Default panics: executors that return `Some` from
    /// `venue_stage` override it.
    fn venue_collect(&mut self, epoch: u64) -> CycleResult {
        let _ = epoch;
        unreachable!("venue_collect on an executor that never stages");
    }

    /// Tag this executor's exported telemetry rings and flight windows
    /// with a venue session id (0 = single-session default). Takes effect
    /// for rings/recorders installed *after* the call; the venue server
    /// sets it once, right after construction. Implementations without
    /// telemetry may ignore it.
    fn set_session(&mut self, session: u32) {
        let _ = session;
    }

    /// Enable/disable schedule tracing (adds overhead; off by default).
    fn set_tracing(&mut self, on: bool);

    /// Take the trace of the most recent traced cycle.
    fn take_trace(&mut self) -> Option<ScheduleTrace>;

    /// Enable/disable telemetry counter collection. Far cheaper than
    /// tracing (a handful of `Relaxed` counter adds per node, no
    /// allocation inside a cycle); off by default. Implementations that do
    /// not support telemetry may ignore this.
    fn set_telemetry(&mut self, on: bool) {
        let _ = on;
    }

    /// Take the ring of per-cycle telemetry records collected so far.
    /// Collection continues afterwards (with a fresh ring) if telemetry is
    /// still enabled. `None` when telemetry is off or unsupported.
    fn take_telemetry(&mut self) -> Option<TelemetryRing> {
        None
    }

    /// Install (or clear, with `None`) a fault-injection plan. Driver-only
    /// between cycles (`&mut self`); takes effect from the next
    /// `run_cycle`. With no plan installed the node-execution path pays
    /// one well-predicted branch on an already-loaded `Option` per node,
    /// nothing more.
    fn set_faults(&mut self, plan: Option<FaultPlan>);

    /// Install (or clear, with `None`) a flight recorder sized by `cfg`.
    /// All buffers are allocated here, up front; from the next cycle the
    /// executor records every Exec/BusyWait/Sleep/Steal/Unpark/Fault
    /// interval into pre-allocated overwrite-oldest per-worker rings.
    /// Disabled, the hot path pays one `Relaxed` flag load — the same
    /// zero-cost-when-off contract as [`set_faults`](Self::set_faults).
    /// Implementations that do not support recording may ignore this.
    fn set_flight_recorder(&mut self, cfg: Option<FlightConfig>) {
        let _ = cfg;
    }

    /// Freeze and take the flight-recorder capture accumulated so far
    /// (spans + cycle stamps); recording continues into the emptied
    /// buffers. `None` when no recorder is installed or recording is
    /// unsupported. Driver-only between cycles (`&mut self`).
    fn take_flight_window(&mut self) -> Option<FlightWindow> {
        None
    }

    /// Adopt a staged topology generation at a cycle boundary (`&mut self`
    /// proves no cycle is in flight). Runtime state of nodes that exist in
    /// both generations (matched by name) is carried over; workers are not
    /// torn down — the next cycle's epoch store publishes the new graph.
    /// Returns the new generation number; on `Err` the running generation
    /// is unchanged.
    fn adopt_generation(&mut self, staged: StagedGeneration) -> Result<u64, SwapError>;

    /// The topology generation currently running (0 before any swap).
    fn generation(&self) -> u64;

    /// Copy a node's output buffer into `dst` (call between cycles only;
    /// enforced by `&mut self`).
    fn read_output(&mut self, node: NodeId, dst: &mut AudioBuf);

    /// Mutable access to a node's processor between cycles (to turn knobs).
    fn node_processor(&mut self, node: NodeId) -> &mut dyn Processor;

    /// The graph topology.
    fn topology(&self) -> &GraphTopology;
}

/// Runtime payload of a node (behind the `UnsafeCell`).
struct NodeRuntime {
    processor: Box<dyn Processor>,
    output: AudioBuf,
}

/// Cold half of a node's runtime cell: the processor and output buffer,
/// touched only by the node's executor (and predecessor readers after the
/// `Acquire` of `done_epoch`).
struct RuntimeCell(UnsafeCell<NodeRuntime>);

// SAFETY: access is governed by the epoch protocol documented at module
// level (exactly-once ownership per cycle, publication via `done_epoch`).
unsafe impl Sync for RuntimeCell {}

/// Hot half of a node's runtime cell: the atomics every waiter and
/// completer hammers. One cache line per node, so a `done_epoch` store for
/// node *i* never invalidates the line a spinner is polling for node *i+1*
/// (the adjacent-node false sharing the packed layout suffered from).
#[repr(align(64))]
pub(crate) struct NodeCell {
    /// Unmet-dependency counter for the current epoch (SLEEP and WS).
    pub(crate) pending: AtomicU32,
    /// Epoch this node last completed.
    pub(crate) done_epoch: AtomicU64,
    /// SLEEP: registered executor worker index + 1 (0 = none).
    pub(crate) waiter: AtomicUsize,
}

/// A value written only by the driver between cycles and read by workers
/// after acquiring the epoch.
pub(crate) struct DriverCell<T>(UnsafeCell<T>);

// SAFETY: the epoch protocol (driver writes happen-before the Release epoch
// store; workers read after the Acquire epoch load; workers' reads complete
// before their Release done-count increment, which the driver Acquires).
unsafe impl<T: Send> Sync for DriverCell<T> {}

impl<T> DriverCell<T> {
    pub(crate) fn new(v: T) -> Self {
        DriverCell(UnsafeCell::new(v))
    }

    /// Driver-only write between cycles.
    ///
    /// # Safety
    /// No cycle may be in flight and only the driver may call this.
    pub(crate) unsafe fn set(&self, v: T) {
        *self.0.get() = v;
    }

    /// Driver-only in-place mutation between cycles.
    ///
    /// # Safety
    /// No cycle may be in flight and only the driver may call this.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self) -> &mut T {
        &mut *self.0.get()
    }

    /// Read during a cycle (after acquiring the epoch) or by the driver.
    ///
    /// # Safety
    /// Caller must hold the epoch-acquire happens-before edge described in
    /// the module docs (or be the driver between cycles).
    pub(crate) unsafe fn get(&self) -> &T {
        &*self.0.get()
    }
}

/// External per-cycle inputs, copied in by the driver.
#[derive(Default)]
pub(crate) struct ExternalInputs {
    pub audio: Vec<AudioBuf>,
    pub controls: Vec<f32>,
}

/// The executable form of a [`TaskGraph`]: topology plus runtime cells.
///
/// The per-node state is split hot/cold: `cells` holds the scheduling
/// atomics (one cache line per node), `runtimes` the processor and output
/// buffer. Spinners only ever touch `cells`, so completing a neighboring
/// node never steals their line.
pub struct ExecGraph {
    topo: Arc<GraphTopology>,
    cells: Box<[NodeCell]>,
    runtimes: Box<[RuntimeCell]>,
    /// One cache-aligned allocation backing every node's output buffer
    /// (each node's `output` is a view into a distinct, cache-line-rounded
    /// slot). Allocated once at build time; never touched directly during
    /// a cycle — all access goes through the node output views under the
    /// epoch protocol. Kept alive here for exactly as long as the views.
    #[allow(dead_code)]
    arena: djstar_dsp::BufferArena,
    /// Placeholder for initializing input reference arrays.
    empty: AudioBuf,
    /// Node index by unique name, built once at construction (staging
    /// time) so generation swaps resolve carried-over nodes without
    /// allocating on the audio thread.
    name_index: std::collections::HashMap<String, usize>,
}

impl ExecGraph {
    /// Build the runtime graph; every node gets an output buffer of
    /// `frames` frames with the processor's channel count.
    ///
    /// # Panics
    /// Panics if any node has more than [`MAX_INPUTS`] predecessors.
    pub fn new(graph: TaskGraph, frames: usize) -> Self {
        let (topo, processors) = graph.into_parts();
        for n in 0..topo.len() {
            assert!(
                topo.preds(NodeId(n as u32)).len() <= MAX_INPUTS,
                "node {n} has more than {MAX_INPUTS} predecessors"
            );
        }
        // One arena slot per node output, all in a single cache-aligned
        // allocation (planar slabs, cache-line-rounded so neighboring nodes
        // never share a line).
        let specs: Vec<(usize, usize)> = processors
            .iter()
            .map(|p| (p.output_channels(), frames))
            .collect();
        let arena = djstar_dsp::BufferArena::new(&specs);
        let runtimes: Box<[RuntimeCell]> = processors
            .into_iter()
            .enumerate()
            .map(|(n, processor)| {
                // SAFETY: slot `n` is a distinct arena region; the view is
                // owned by exactly this node's runtime cell, whose access is
                // governed by the epoch protocol, and the arena lives in the
                // same `ExecGraph` as the view.
                let output = unsafe { arena.view(n) };
                RuntimeCell(UnsafeCell::new(NodeRuntime { processor, output }))
            })
            .collect();
        let cells: Box<[NodeCell]> = (0..runtimes.len())
            .map(|_| NodeCell {
                pending: AtomicU32::new(0),
                done_epoch: AtomicU64::new(0),
                waiter: AtomicUsize::new(0),
            })
            .collect();
        let name_index = (0..topo.len())
            .map(|n| (topo.name(NodeId(n as u32)).to_string(), n))
            .collect();
        ExecGraph {
            topo: Arc::new(topo),
            cells,
            runtimes,
            arena,
            empty: AudioBuf::zeroed(1, 1),
            name_index,
        }
    }

    /// The topology.
    pub fn topology(&self) -> &GraphTopology {
        &self.topo
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the graph has no nodes (never, for validated graphs).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub(crate) fn cell(&self, node: usize) -> &NodeCell {
        &self.cells[node]
    }

    /// Spin until `node` is done for `epoch` (BUSY dependency wait).
    /// Returns the number of spin iterations — 0 iff no waiting occurred.
    #[inline]
    pub(crate) fn spin_until_done(&self, node: usize, epoch: u64) -> u64 {
        let cell = &self.cells[node];
        if cell.done_epoch.load(Ordering::Acquire) == epoch {
            return 0;
        }
        let mut spins = 1u64;
        while cell.done_epoch.load(Ordering::Acquire) != epoch {
            spins += 1;
            if spins.is_multiple_of(4096) {
                // On over-subscribed machines a pure spin would starve the
                // worker that must produce this dependency.
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
        spins
    }

    /// True when `node` is done for `epoch` (an `Acquire` read: a `true`
    /// result also makes the node's output visible to the caller).
    #[inline]
    pub fn is_done(&self, node: usize, epoch: u64) -> bool {
        self.cells[node].done_epoch.load(Ordering::Acquire) == epoch
    }

    /// Execute `node` for `epoch` and publish its completion.
    ///
    /// # Safety
    /// Caller must be the exclusive executor of `node` this epoch, and every
    /// predecessor must already be done for `epoch` (observed with
    /// `Acquire`).
    pub(crate) unsafe fn execute(&self, node: usize, ctx: &CycleCtx<'_>) {
        let preds = self.topo.preds(NodeId(node as u32));
        let mut inputs: [&AudioBuf; MAX_INPUTS] = [&self.empty; MAX_INPUTS];
        for (k, &p) in preds.iter().enumerate() {
            // SAFETY: predecessor is done for this epoch; its executor
            // released the output before the done_epoch store we acquired.
            inputs[k] = &(*self.runtimes[p as usize].0.get()).output;
        }
        // SAFETY: exclusive ownership of `node` this epoch.
        let rt = &mut *self.runtimes[node].0.get();
        rt.processor
            .process(&inputs[..preds.len()], &mut rt.output, ctx);
        self.cells[node]
            .done_epoch
            .store(ctx.epoch, Ordering::Release);
    }

    /// Reset pending counters for a new cycle. Driver only, between cycles.
    pub(crate) fn reset_pending(&self) {
        for n in 0..self.cells.len() {
            let preds = self.topo.preds(NodeId(n as u32)).len() as u32;
            self.cells[n].pending.store(preds, Ordering::Relaxed);
            self.cells[n].waiter.store(0, Ordering::Relaxed);
        }
    }

    /// Carry runtime state over from `old` for every node that survives a
    /// topology swap. Nodes are matched by their unique name; a surviving
    /// node keeps its processor box (filters, delay lines, knob settings)
    /// and — when the buffer layout matches — its last rendered output, so
    /// reads between the swap and the next cycle still see valid audio.
    /// Returns the number of carried nodes. Driver only, between cycles
    /// (`&mut` on both graphs proves it).
    pub fn carry_over_from(&mut self, old: &mut ExecGraph) -> usize {
        // The name index was built when `old` was constructed (staging
        // time), so the swap itself allocates nothing.
        let mut carried = 0;
        for n in 0..self.runtimes.len() {
            let Some(&o) = old.name_index.get(self.topo.name(NodeId(n as u32))) else {
                continue;
            };
            let new_rt = self.runtimes[n].0.get_mut();
            let old_rt = old.runtimes[o].0.get_mut();
            if new_rt.processor.output_channels() != old_rt.processor.output_channels() {
                continue;
            }
            std::mem::swap(&mut new_rt.processor, &mut old_rt.processor);
            if new_rt.output.channels() == old_rt.output.channels()
                && new_rt.output.frames() == old_rt.output.frames()
            {
                // Copy, never swap: both outputs are views into their own
                // generation's arena, and the old arena dies with the old
                // graph — a swapped-in view would dangle.
                new_rt.output.copy_from(&old_rt.output);
            }
            carried += 1;
        }
        carried
    }

    /// Copy a node's output. Driver only, between cycles.
    pub(crate) fn read_output_internal(&mut self, node: NodeId, dst: &mut AudioBuf) {
        // `&mut self` proves no cycle is in flight.
        let rt = self.runtimes[node.idx()].0.get_mut();
        if rt.output.channels() == dst.channels() && rt.output.frames() == dst.frames() {
            dst.copy_from(&rt.output);
        } else {
            dst.clear();
            dst.mix_add(&rt.output, 1.0);
        }
    }

    /// Mutable processor access. Driver only, between cycles.
    pub(crate) fn node_processor_internal(&mut self, node: NodeId) -> &mut dyn Processor {
        self.runtimes[node.idx()].0.get_mut().processor.as_mut()
    }

    /// Copy a node's output through the `UnsafeCell` without `&mut self`.
    ///
    /// # Safety
    /// Only the driver may call this, with no cycle in flight (the threaded
    /// executors enforce it by requiring `&mut` on themselves).
    pub(crate) unsafe fn read_output_unsync(&self, node: NodeId, dst: &mut AudioBuf) {
        let rt = &*self.runtimes[node.idx()].0.get();
        if rt.output.channels() == dst.channels() && rt.output.frames() == dst.frames() {
            dst.copy_from(&rt.output);
        } else {
            dst.clear();
            dst.mix_add(&rt.output, 1.0);
        }
    }

    /// Mutable processor access through the `UnsafeCell` without `&mut self`.
    ///
    /// # Safety
    /// Same contract as [`read_output_unsync`](Self::read_output_unsync);
    /// additionally the caller must not create overlapping references to the
    /// same node.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn node_processor_unsync(&self, node: NodeId) -> &mut dyn Processor {
        (*self.runtimes[node.idx()].0.get()).processor.as_mut()
    }
}

/// A raw trace event collected during a cycle (worker-local clock).
#[derive(Clone, Copy)]
pub(crate) struct RawEvent {
    pub node: u32,
    pub kind: TraceKind,
    pub start: Instant,
    pub end: Instant,
}

/// Convert worker-local raw events into a [`ScheduleTrace`] relative to
/// `cycle_start`.
pub(crate) fn finish_trace(
    workers: u32,
    cycle_start: Instant,
    raw: Vec<(u32, Vec<RawEvent>)>,
) -> ScheduleTrace {
    let mut events = Vec::new();
    for (worker, evs) in raw {
        for e in evs {
            events.push(TraceEvent {
                node: e.node,
                worker,
                start_ns: e.start.duration_since(cycle_start).as_nanos() as u64,
                end_ns: e.end.duration_since(cycle_start).as_nanos() as u64,
                kind: e.kind,
            });
        }
    }
    ScheduleTrace { workers, events }
}

/// State shared between the driver and the worker threads of a threaded
/// executor.
pub(crate) struct Shared {
    /// The current topology generation's runtime graph. Replaced only by
    /// the driver between cycles ([`Shared::adopt_exec`]); workers read it
    /// after the epoch-acquire edge, exactly like `external` below.
    exec: DriverCell<ExecGraph>,
    /// Number of generation swaps performed (driver-read telemetry).
    pub generation: AtomicU64,
    /// Current cycle epoch; driver bumps with `Release`. Padded: every
    /// worker polls it between cycles while `done_count` below is being
    /// hammered by finishing workers.
    pub epoch: CachePadded<AtomicU64>,
    /// Nodes completed this cycle; workers increment with `Release`. The
    /// single most contended atomic of the queue-based executors — it gets
    /// its own cache line.
    pub done_count: CachePadded<AtomicU32>,
    /// Total worker count, including the driver (worker 0).
    pub threads: usize,
    /// Which precomputed topological order the queue walk uses.
    pub priority: Priority,
    /// Whether to record trace events this cycle.
    pub tracing: AtomicBool,
    /// Whether to record telemetry counters this cycle.
    pub telemetry: AtomicBool,
    /// Whether the flight recorder is armed (one `Relaxed` load per cycle
    /// per worker when off).
    pub flight: AtomicBool,
    /// The installed flight recorder, if any. Written only by the driver
    /// between cycles ([`GraphExecutor::set_flight_recorder`] takes
    /// `&mut`), lanes written by their owning workers during a cycle —
    /// the contract documented in [`crate::flight`].
    pub recorder: DriverCell<Option<FlightRecorder>>,
    /// Per-worker telemetry counters, recorded `Relaxed` on the hot path
    /// and drained by the driver between cycles.
    pub counters: Box<[CycleCounters]>,
    /// The installed fault-injection plan, if any. Written only by the
    /// driver between cycles ([`GraphExecutor::set_faults`] takes `&mut`),
    /// read by workers after the epoch-acquire edge — the same contract as
    /// `exec` and `external`.
    pub faults: DriverCell<Option<FaultPlan>>,
    /// External inputs for the current cycle.
    pub external: DriverCell<ExternalInputs>,
    /// Instant of the current cycle's start (for trace offsets).
    pub cycle_start: DriverCell<Instant>,
    /// Thread handles by worker index; slot 0 is refreshed by the driver
    /// each cycle (the driver participates as worker 0).
    pub handles: DriverCell<Vec<std::thread::Thread>>,
    /// Per-worker trace sinks, drained by the driver after a traced cycle.
    pub trace_sinks: Vec<std::sync::Mutex<Vec<RawEvent>>>,
    /// Workers that have flushed their trace sink this cycle (traced cycles
    /// only); the driver waits for all of them before collecting.
    pub trace_flushed: AtomicU32,
    /// Workers that have fully left the current cycle's work loop. Needed
    /// by executors whose workers touch *shared* work queues (WS): a
    /// lingering worker that has not yet observed completion must not be
    /// able to pop work seeded for the next cycle, so the driver waits for
    /// every worker to pass this barrier before `run_cycle` returns.
    /// Padded for the same reason as `done_count`.
    pub cycle_exited: CachePadded<AtomicU32>,
}

impl Shared {
    pub(crate) fn new(exec: ExecGraph, threads: usize, priority: Priority) -> Self {
        Shared {
            exec: DriverCell::new(exec),
            generation: AtomicU64::new(0),
            epoch: CachePadded::new(AtomicU64::new(0)),
            done_count: CachePadded::new(AtomicU32::new(0)),
            threads,
            priority,
            tracing: AtomicBool::new(false),
            telemetry: AtomicBool::new(false),
            flight: AtomicBool::new(false),
            recorder: DriverCell::new(None),
            counters: (0..threads).map(|_| CycleCounters::new()).collect(),
            faults: DriverCell::new(None),
            external: DriverCell::new(ExternalInputs::default()),
            cycle_start: DriverCell::new(Instant::now()),
            handles: DriverCell::new(Vec::new()),
            trace_sinks: (0..threads)
                .map(|_| std::sync::Mutex::new(Vec::new()))
                .collect(),
            trace_flushed: AtomicU32::new(0),
            cycle_exited: CachePadded::new(AtomicU32::new(0)),
        }
    }

    /// The current generation's runtime graph.
    ///
    /// Only two access contexts exist in this module, and both satisfy the
    /// [`DriverCell`] contract: the driver between cycles (the only writer),
    /// and workers holding the epoch-acquire edge of the cycle the graph
    /// was published for. Hence a safe accessor.
    #[inline]
    pub(crate) fn graph(&self) -> &ExecGraph {
        // SAFETY: see above; swaps are driver-only between cycles and
        // published by the next epoch Release store.
        unsafe { self.exec.get() }
    }

    /// Swap in a staged generation's graph, carrying over runtime state of
    /// surviving nodes. Returns the new generation number.
    ///
    /// # Safety
    /// Driver-only, with no cycle in flight (the pool must be quiesced, so
    /// workers sit in the batch wait loop touching only pool atomics).
    pub(crate) unsafe fn adopt_exec(&self, mut staged: ExecGraph) -> u64 {
        let old = self.exec.get_mut();
        staged.carry_over_from(old);
        *old = staged;
        // Publication rides the next epoch Release store; the counter is
        // driver-read bookkeeping only.
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The installed fault plan, if any.
    ///
    /// Same access contexts as [`Shared::graph`]: the driver between
    /// cycles, or a worker holding the epoch-acquire edge of the cycle the
    /// plan was published for.
    #[inline]
    pub(crate) fn fault_plan(&self) -> Option<&FaultPlan> {
        // SAFETY: writes are driver-only between cycles (`set_faults`
        // takes `&mut self`), published by the next epoch Release store.
        unsafe { self.faults.get() }.as_ref()
    }

    /// Whether the flight recorder is armed (hot-path check).
    #[inline]
    pub(crate) fn flight_on(&self) -> bool {
        self.flight.load(Ordering::Relaxed)
    }

    /// Worker-side: record one span into `worker`'s lane. Caller must have
    /// seen [`Shared::flight_on`] under the epoch-acquire edge of the
    /// current cycle (recorder installs are driver-only between cycles,
    /// published like `faults`).
    #[inline]
    pub(crate) fn record_span(
        &self,
        worker: usize,
        cycle: u64,
        node: u32,
        kind: SpanKind,
        start: Instant,
        end: Instant,
    ) {
        // SAFETY: same publication contract as `fault_plan`.
        if let Some(rec) = unsafe { self.recorder.get() }.as_ref() {
            let span = Span {
                cycle,
                node,
                worker: worker as u32,
                start_ns: rec.now_ns(start),
                end_ns: rec.now_ns(end),
                kind,
            };
            // SAFETY: each worker owns exactly its own lane during a cycle.
            unsafe { rec.record(worker, span) };
        }
    }

    /// Worker-side: record a node's execution interval `[start, end]`,
    /// carving the time its processor booked on the net counters into
    /// leading [`SpanKind::NetWait`] / [`SpanKind::Conceal`] spans (the
    /// remainder stays [`SpanKind::Exec`]). `net_before` is the worker's
    /// [`CycleCounters::net_ns`] reading taken just before `execute`. The
    /// three spans tile the interval exactly, so forensics blame still
    /// sums to the overrun. Publication contract as [`record_span`].
    pub(crate) fn record_exec_carved(
        &self,
        worker: usize,
        cycle: u64,
        node: u32,
        start: Instant,
        end: Instant,
        net_before: (u64, u64),
    ) {
        let (w1, c1) = self.counters[worker].net_ns();
        let wait = w1.wrapping_sub(net_before.0);
        let conceal = c1.wrapping_sub(net_before.1);
        if wait == 0 && conceal == 0 {
            self.record_span(worker, cycle, node, SpanKind::Exec, start, end);
            return;
        }
        // SAFETY: same publication contract as `fault_plan`.
        if let Some(rec) = unsafe { self.recorder.get() }.as_ref() {
            let s = rec.now_ns(start);
            let e = rec.now_ns(end);
            // Clamp so the carve never escapes the measured interval even
            // if the counter booked more time than the wall clock saw.
            let wait_end = s.saturating_add(wait).min(e);
            let conceal_end = wait_end.saturating_add(conceal).min(e);
            let emit = |kind, start_ns, end_ns| {
                if end_ns > start_ns {
                    let span = Span {
                        cycle,
                        node,
                        worker: worker as u32,
                        start_ns,
                        end_ns,
                        kind,
                    };
                    // SAFETY: each worker owns exactly its own lane
                    // during a cycle.
                    unsafe { rec.record(worker, span) };
                }
            };
            emit(SpanKind::NetWait, s, wait_end);
            emit(SpanKind::Conceal, wait_end, conceal_end);
            emit(SpanKind::Exec, conceal_end, e);
        }
    }

    /// Worker-side: the current net (wait, conceal) ns of `worker`'s
    /// counters, for a later [`record_exec_carved`] diff.
    #[inline]
    pub(crate) fn net_ns_of(&self, worker: usize) -> (u64, u64) {
        self.counters[worker].net_ns()
    }

    /// Driver-side: stamp a finished cycle's bounds into the recorder.
    /// Call after the cycle-completion barrier, before the next
    /// `prepare_cycle`.
    pub(crate) fn stamp_cycle(&self, cycle: u64, end: Instant) {
        // SAFETY: driver between cycles (the only writer of the cell).
        if let Some(rec) = unsafe { self.recorder.get() }.as_ref() {
            let start = unsafe { *self.cycle_start.get() };
            let stamp = CycleStamp {
                cycle,
                start_ns: rec.now_ns(start),
                end_ns: rec.now_ns(end),
            };
            // SAFETY: driver-only between cycles.
            unsafe { rec.stamp(stamp) };
        }
    }

    /// Driver-side: install or clear the flight recorder. The caller must
    /// hold `&mut` on the executor (no cycle in flight).
    pub(crate) fn install_recorder(&self, cfg: Option<FlightConfig>) {
        let rec = cfg.map(|c| FlightRecorder::new(self.threads, c));
        self.flight.store(rec.is_some(), Ordering::Relaxed);
        // SAFETY: driver-only between cycles (`&mut` held by caller).
        unsafe { self.recorder.set(rec) };
    }

    /// Driver-side: freeze and take the recorder's capture; recording
    /// continues into the emptied buffers. Same contract as
    /// [`Shared::install_recorder`].
    pub(crate) fn take_window(&self) -> Option<FlightWindow> {
        // SAFETY: driver-only between cycles (`&mut` held by caller).
        unsafe { self.recorder.get_mut() }
            .as_mut()
            .map(|r| r.take_window())
    }

    /// The topological order selected by this executor's priority.
    #[inline]
    pub(crate) fn order(&self) -> &[u32] {
        self.graph().topology().order(self.priority)
    }

    /// Successor iteration order of `node` under this executor's priority.
    #[inline]
    pub(crate) fn succ_order(&self, node: u32) -> &[u32] {
        self.graph()
            .topology()
            .succ_order(NodeId(node), self.priority)
    }

    /// Driver-side: move every worker's counters into `out` (and reset
    /// them). Call only after the cycle-completion barrier that orders all
    /// worker-side counter updates before the driver's reads
    /// (`wait_cycle_done`, or `wait_cycle_exited` for executors whose
    /// workers keep recording until they leave the cycle loop).
    pub(crate) fn drain_counters(&self, out: &mut [CounterSnapshot]) {
        for (c, o) in self.counters.iter().zip(out.iter_mut()) {
            c.drain_into(o);
        }
    }

    /// Worker-side: signal that this worker has fully left the cycle loop.
    pub(crate) fn signal_cycle_exit(&self) {
        self.cycle_exited.fetch_add(1, Ordering::Release);
    }

    /// Driver-side: wait until `count` workers signalled their exit.
    pub(crate) fn wait_cycle_exited(&self, count: u32) {
        let mut spins = 0u32;
        while self.cycle_exited.load(Ordering::Acquire) < count {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// Worker-side: store this cycle's trace events and mark them flushed.
    pub(crate) fn flush_trace(&self, worker: usize, events: Vec<RawEvent>) {
        *self.trace_sinks[worker].lock().unwrap() = events;
        self.trace_flushed.fetch_add(1, Ordering::Release);
    }

    /// Driver-side: wait until every worker flushed its trace this cycle.
    pub(crate) fn wait_trace_flushed(&self) {
        while self.trace_flushed.load(Ordering::Acquire) != self.threads as u32 {
            std::thread::yield_now();
        }
    }

    /// Driver-side: prepare and publish a new cycle WITHOUT waking any
    /// workers itself. Lane execution is driven by the venue pool: a single
    /// batch-level wakeup ([`pool::VenuePool::dispatch`]) covers every staged
    /// session; pool workers observe this session's epoch store through the
    /// pool epoch's Release/Acquire edge.
    ///
    /// # Safety
    /// Must only be called by the driver with no cycle in flight.
    pub(crate) unsafe fn prepare_cycle(
        &self,
        external_audio: &[AudioBuf],
        controls: &[f32],
    ) -> u64 {
        self.graph().reset_pending();
        self.done_count.store(0, Ordering::Relaxed);
        self.trace_flushed.store(0, Ordering::Relaxed);
        self.cycle_exited.store(0, Ordering::Relaxed);
        {
            let ext = self.external.get_mut();
            // Reuse allocations where layouts match.
            if ext.audio.len() == external_audio.len()
                && ext
                    .audio
                    .iter()
                    .zip(external_audio)
                    .all(|(a, b)| a.channels() == b.channels() && a.frames() == b.frames())
            {
                for (dst, src) in ext.audio.iter_mut().zip(external_audio) {
                    dst.copy_from(src);
                }
            } else {
                ext.audio = external_audio.to_vec();
            }
            ext.controls.clear();
            ext.controls.extend_from_slice(controls);
        }
        self.handles.get_mut()[0] = std::thread::current();
        self.cycle_start.set(Instant::now());
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Driver-side: wait until all nodes finished (spin-then-yield).
    pub(crate) fn wait_cycle_done(&self) {
        let n = self.graph().len() as u32;
        let mut spins = 0u32;
        while self.done_count.load(Ordering::Acquire) != n {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }

    /// Build the borrowed cycle context for `epoch`.
    ///
    /// # Safety
    /// Caller must hold the epoch happens-before edge (pool worker after
    /// the batch-epoch acquire, or the driver).
    pub(crate) unsafe fn ctx(&self, epoch: u64) -> CycleCtx<'_> {
        let ext = self.external.get();
        CycleCtx {
            epoch,
            external_audio: &ext.audio,
            controls: &ext.controls,
            counters: None,
        }
    }

    /// Build the cycle context for `epoch` with worker `me`'s counters
    /// attached (for processors that record their own telemetry). Only used
    /// when telemetry or the flight recorder is armed; the bare [`ctx`]
    /// keeps the disarmed hot path free of the extra load.
    ///
    /// # Safety
    /// Same obligation as [`ctx`](Self::ctx).
    pub(crate) unsafe fn ctx_counted(&self, epoch: u64, me: usize) -> CycleCtx<'_> {
        let mut ctx = unsafe { self.ctx(epoch) };
        ctx.counters = Some(&self.counters[me]);
        ctx
    }

    /// Record completion of one node; returns `true` when it was the last.
    #[inline]
    pub(crate) fn node_finished(&self) -> bool {
        let prev = self.done_count.fetch_add(1, Ordering::Release) + 1;
        prev == self.graph().len() as u32
    }

    /// Collect per-worker traces after a traced cycle (driver only).
    pub(crate) fn collect_trace(&self) -> ScheduleTrace {
        let cycle_start = unsafe { *self.cycle_start.get() };
        let raw: Vec<(u32, Vec<RawEvent>)> = self
            .trace_sinks
            .iter()
            .enumerate()
            .map(|(w, m)| (w as u32, std::mem::take(&mut *m.lock().unwrap())))
            .collect();
        finish_trace(self.threads as u32, cycle_start, raw)
    }
}

/// Graphs and checks shared by the executor test suites.
#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::graph::{Section, TaskGraphBuilder};
    use crate::processor::FnProcessor;

    /// n0 fills 1.0, n1 fills 2.0, n2 sums its inputs, n3 copies n2.
    pub(crate) fn diamond_sum_graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let n0 = b.add(
            "one",
            Section::DeckA,
            Box::new(FnProcessor(
                |_: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    out.samples_mut().fill(1.0);
                },
            )),
            &[],
        );
        let n1 = b.add(
            "two",
            Section::DeckB,
            Box::new(FnProcessor(
                |_: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    out.samples_mut().fill(2.0);
                },
            )),
            &[],
        );
        let n2 = b.add(
            "sum",
            Section::Master,
            Box::new(FnProcessor(
                |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    out.clear();
                    for i in inp {
                        out.mix_add(i, 1.0);
                    }
                },
            )),
            &[n0, n1],
        );
        b.add(
            "copy",
            Section::Master,
            Box::new(FnProcessor(
                |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    out.copy_from(inp[0]);
                },
            )),
            &[n2],
        );
        b.build().unwrap()
    }

    /// `width` sources (filling `(i+1) * f(epoch)`), one doubler per source,
    /// and a sink summing all doublers. Sink value:
    /// `2 * f(epoch) * width*(width+1)/2`.
    pub(crate) fn fan_graph(width: usize) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let mut doublers = Vec::new();
        for i in 0..width {
            let src = b.add(
                format!("src{i}"),
                Section::deck(i % 4),
                Box::new(FnProcessor(
                    move |_: &[&AudioBuf], out: &mut AudioBuf, ctx: &CycleCtx<'_>| {
                        let f = (ctx.epoch % 7 + 1) as f32;
                        out.samples_mut().fill((i as f32 + 1.0) * f);
                    },
                )),
                &[],
            );
            doublers.push(b.add(
                format!("dbl{i}"),
                Section::deck(i % 4),
                Box::new(FnProcessor(
                    |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                        out.copy_from(inp[0]);
                        out.scale(2.0);
                    },
                )),
                &[src],
            ));
        }
        // Fan into intermediate sums of at most 4 inputs to respect
        // MAX_INPUTS, then a final sink.
        let mut layer = doublers;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for chunk in layer.chunks(4) {
                next.push(b.add(
                    "sum",
                    Section::Master,
                    Box::new(FnProcessor(
                        |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                            out.clear();
                            for i in inp {
                                out.mix_add(i, 1.0);
                            }
                        },
                    )),
                    chunk,
                ));
            }
            layer = next;
        }
        b.build().unwrap()
    }

    /// Run a candidate executor against the sequential baseline on the same
    /// graph for 50 cycles and require identical sink output each cycle.
    pub(crate) fn run_and_check(
        make: impl Fn(TaskGraph, usize) -> Box<dyn GraphExecutor>,
        label: &str,
    ) {
        let frames = 8;
        let mut seq = SequentialExecutor::new(fan_graph(13), frames);
        let mut cand = make(fan_graph(13), frames);
        assert_eq!(seq.topology().len(), cand.topology().len());
        let sink = NodeId((seq.topology().len() - 1) as u32);
        for cycle in 0..50 {
            seq.run_cycle(&[], &[]);
            cand.run_cycle(&[], &[]);
            let mut a = AudioBuf::zeroed(2, frames);
            let mut b = AudioBuf::zeroed(2, frames);
            seq.read_output(sink, &mut a);
            cand.read_output(sink, &mut b);
            assert_eq!(a, b, "{label}: cycle {cycle} diverged");
            // Known closed form for the fan graph.
            let f = ((cycle + 1) % 7 + 1) as f32;
            let expect = 2.0 * f * (13.0 * 14.0 / 2.0);
            assert_eq!(a.sample(0, 0), expect, "{label}: wrong value cycle {cycle}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Section, TaskGraphBuilder};
    use crate::processor::{FnProcessor, Passthrough};

    #[test]
    fn exec_graph_executes_in_queue_order() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add(
            "src",
            Section::DeckA,
            Box::new(FnProcessor(
                |_: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    out.samples_mut().fill(2.0);
                },
            )),
            &[],
        );
        let _ = b.add(
            "sink",
            Section::Master,
            Box::new(FnProcessor(
                |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    out.copy_from(inp[0]);
                    out.scale(3.0);
                },
            )),
            &[a],
        );
        let g = b.build().unwrap();
        let mut exec = ExecGraph::new(g, 8);
        let ctx = CycleCtx::bare(1);
        for &n in exec.topology().queue().to_vec().iter() {
            unsafe { exec.execute(n as usize, &ctx) };
        }
        let mut out = AudioBuf::zeroed(2, 8);
        exec.read_output_internal(NodeId(1), &mut out);
        assert!(out.samples().iter().all(|&s| s == 6.0));
    }

    #[test]
    fn done_epoch_tracks_epochs() {
        let mut b = TaskGraphBuilder::new();
        b.add("a", Section::DeckA, Box::new(Passthrough), &[]);
        let g = b.build().unwrap();
        let exec = ExecGraph::new(g, 4);
        assert!(!exec.is_done(0, 1));
        unsafe { exec.execute(0, &CycleCtx::bare(1)) };
        assert!(exec.is_done(0, 1));
        assert!(!exec.is_done(0, 2));
        assert_eq!(exec.spin_until_done(0, 1), 0); // already done: no wait
    }

    #[test]
    fn reset_pending_restores_counts() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add("a", Section::DeckA, Box::new(Passthrough), &[]);
        let x = b.add("b", Section::DeckA, Box::new(Passthrough), &[a]);
        b.add("c", Section::DeckA, Box::new(Passthrough), &[a, x]);
        let g = b.build().unwrap();
        let exec = ExecGraph::new(g, 4);
        exec.reset_pending();
        assert_eq!(exec.cell(0).pending.load(Ordering::Relaxed), 0);
        assert_eq!(exec.cell(1).pending.load(Ordering::Relaxed), 1);
        assert_eq!(exec.cell(2).pending.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "predecessors")]
    fn too_many_preds_rejected() {
        let mut b = TaskGraphBuilder::new();
        let mut preds = Vec::new();
        for i in 0..(MAX_INPUTS + 1) {
            preds.push(b.add(format!("s{i}"), Section::DeckA, Box::new(Passthrough), &[]));
        }
        b.add("sink", Section::Master, Box::new(Passthrough), &preds);
        let g = b.build().unwrap();
        ExecGraph::new(g, 4);
    }

    #[test]
    fn external_inputs_reach_processors() {
        let mut b = TaskGraphBuilder::new();
        b.add(
            "reader",
            Section::DeckA,
            Box::new(FnProcessor(
                |_: &[&AudioBuf], out: &mut AudioBuf, ctx: &CycleCtx<'_>| {
                    out.copy_from(&ctx.external_audio[0]);
                    out.scale(ctx.controls[0]);
                },
            )),
            &[],
        );
        let g = b.build().unwrap();
        let mut exec = ExecGraph::new(g, 4);
        let ext = AudioBuf::from_fn(2, 4, |_, _| 1.0);
        let ctx = CycleCtx {
            epoch: 1,
            external_audio: std::slice::from_ref(&ext),
            controls: &[0.5],
            counters: None,
        };
        unsafe { exec.execute(0, &ctx) };
        let mut out = AudioBuf::zeroed(2, 4);
        exec.read_output_internal(NodeId(0), &mut out);
        assert!(out.samples().iter().all(|&s| s == 0.5));
    }
}
