//! The PLAN strategy: execute a precompiled static schedule.
//!
//! The paper's Fig. 4 derives a resource-constrained list schedule whose
//! makespan beats every online strategy, but DJ Star never *runs* it — the
//! schedule only exists inside the simulator. This executor closes that
//! gap: a [`ScheduleBlueprint`] fixes, per worker, the exact node order of
//! one cycle (typically compiled from `djstar-sim`'s list scheduler over
//! measured node durations), and the executor replays it with **zero
//! runtime queue management**. There is nothing to pop, steal or assign:
//! each worker walks its precompiled slice and spin-checks only the
//! *cross-worker* dependencies the compiler identified — same-worker
//! predecessors are already ordered before their dependents, so program
//! order alone covers them.
//!
//! Compared to BUSY, which round-robins the depth queue and spins on every
//! unmet predecessor, PLAN (a) places nodes where the list scheduler wants
//! them instead of `k mod T`, and (b) skips the dependency checks the
//! compiler proved redundant. The epoch/pending protocol of the other
//! executors is reused unchanged, so the memory-safety argument is
//! identical: a worker reads a predecessor's output only after acquiring
//! its `done_epoch`, and blueprint validation guarantees exactly-once
//! ownership per cycle.
//!
//! Deadlock freedom: [`ScheduleBlueprint`] construction verifies (by
//! replaying the plan) that every wait refers to a node scheduled earlier
//! in the induced partial order, so the waits-for relation is acyclic.

use super::pool::{PoolBinding, SessionState, VenuePool};
use super::{
    CycleResult, DriverCell, ExecGraph, GraphExecutor, RawEvent, Shared, StagedGeneration,
    Strategy, SwapError,
};
use crate::faults::FaultPlan;
use crate::flight::{FlightConfig, FlightWindow, Span, SpanKind};
use crate::graph::{GraphTopology, NodeId, Priority, TaskGraph};
use crate::processor::Processor;
use crate::telemetry::{TelemetryRing, DEFAULT_RING_CAPACITY};
use crate::trace::{ScheduleTrace, TraceKind};
use djstar_dsp::AudioBuf;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One slot of a worker's precompiled schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedNode {
    /// The node to execute.
    pub node: u32,
    /// Expected start offset from cycle start (ns) in the schedule the
    /// blueprint was compiled from. Informational: the executor is purely
    /// dependency-driven and never delays to match it.
    pub expected_start_ns: u64,
    /// Predecessors assigned to *other* workers — the only dependencies
    /// that need a runtime check. Same-worker predecessors are implicitly
    /// satisfied by slice order.
    waits: Vec<u32>,
}

impl PlannedNode {
    /// The cross-worker dependencies this slot spin-checks.
    pub fn waits(&self) -> &[u32] {
        &self.waits
    }
}

/// Errors detected while compiling or validating a blueprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlueprintError {
    /// The assignment lists no workers.
    NoWorkers,
    /// A node id is out of range for the topology.
    UnknownNode(u32),
    /// A node appears on more than one slot.
    Duplicate(u32),
    /// The assignment does not cover every node of the graph.
    Incomplete { assigned: usize, nodes: usize },
    /// A node is ordered before one of its same-worker predecessors, or the
    /// cross-worker waits form a cycle: replaying the plan got stuck.
    Unschedulable(u32),
}

impl fmt::Display for BlueprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlueprintError::NoWorkers => write!(f, "blueprint has no workers"),
            BlueprintError::UnknownNode(n) => write!(f, "blueprint references unknown node {n}"),
            BlueprintError::Duplicate(n) => write!(f, "node {n} assigned to more than one slot"),
            BlueprintError::Incomplete { assigned, nodes } => {
                write!(f, "blueprint covers {assigned} of {nodes} nodes")
            }
            BlueprintError::Unschedulable(n) => {
                write!(f, "plan deadlocks: node {n} can never become ready")
            }
        }
    }
}

impl std::error::Error for BlueprintError {}

/// A compiled static schedule: per-worker node orders plus the cross-worker
/// dependency checks each slot needs.
///
/// Build one from a simulated schedule (see `djstar-sim`'s
/// `compile_blueprint`) or from [`round_robin`](Self::round_robin), which
/// reproduces the BUSY assignment for baselines and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleBlueprint {
    workers: Vec<Vec<PlannedNode>>,
}

impl ScheduleBlueprint {
    /// Compile a blueprint from explicit per-worker `(node, start_ns)`
    /// assignments, ordered by start within each worker. Validates coverage
    /// (every node exactly once) and replays the plan to prove it
    /// deadlock-free.
    pub fn from_assignments(
        topo: &GraphTopology,
        assignments: &[Vec<(u32, u64)>],
    ) -> Result<Self, BlueprintError> {
        Self::build(topo.len(), |n| topo.preds(NodeId(n)), assignments)
    }

    /// Like [`from_assignments`](Self::from_assignments), but over a raw
    /// predecessor table (`preds[n]` = predecessors of node `n`). Lets the
    /// simulator compile blueprints for synthetic graphs that have no
    /// [`GraphTopology`].
    pub fn from_node_preds(
        preds: &[Vec<u32>],
        assignments: &[Vec<(u32, u64)>],
    ) -> Result<Self, BlueprintError> {
        Self::build(preds.len(), |n| &preds[n as usize], assignments)
    }

    fn build<'a>(
        n: usize,
        preds: impl Fn(u32) -> &'a [u32],
        assignments: &[Vec<(u32, u64)>],
    ) -> Result<Self, BlueprintError> {
        if assignments.is_empty() {
            return Err(BlueprintError::NoWorkers);
        }
        let mut owner = vec![usize::MAX; n];
        let mut assigned = 0usize;
        for (w, list) in assignments.iter().enumerate() {
            for &(node, _) in list {
                let slot = owner
                    .get_mut(node as usize)
                    .ok_or(BlueprintError::UnknownNode(node))?;
                if *slot != usize::MAX {
                    return Err(BlueprintError::Duplicate(node));
                }
                *slot = w;
                assigned += 1;
            }
        }
        if assigned != n {
            return Err(BlueprintError::Incomplete { assigned, nodes: n });
        }
        let workers: Vec<Vec<PlannedNode>> = assignments
            .iter()
            .enumerate()
            .map(|(w, list)| {
                list.iter()
                    .map(|&(node, start)| PlannedNode {
                        node,
                        expected_start_ns: start,
                        waits: preds(node)
                            .iter()
                            .copied()
                            .filter(|&p| owner[p as usize] != w)
                            .collect(),
                    })
                    .collect()
            })
            .collect();
        let plan = ScheduleBlueprint { workers };
        plan.check_schedulable(n, &preds)?;
        Ok(plan)
    }

    /// The BUSY assignment as a blueprint: position `k` of the order
    /// selected by `priority` goes to worker `k mod threads`. Useful as a
    /// baseline and for tests that need a valid blueprint without running
    /// the simulator.
    pub fn round_robin(topo: &GraphTopology, threads: usize, priority: Priority) -> Self {
        assert!(threads >= 1, "at least one worker required");
        let mut assignments: Vec<Vec<(u32, u64)>> = vec![Vec::new(); threads];
        for (k, &node) in topo.order(priority).iter().enumerate() {
            assignments[k % threads].push((node, 0));
        }
        Self::from_assignments(topo, &assignments)
            .expect("round-robin over a topological order is always schedulable")
    }

    /// Number of workers the plan was compiled for.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Worker `w`'s slots, in execution order.
    pub fn worker(&self, w: usize) -> &[PlannedNode] {
        &self.workers[w]
    }

    /// Total number of planned slots (equals the node count once validated).
    pub fn len(&self) -> usize {
        self.workers.iter().map(Vec::len).sum()
    }

    /// Recompile this blueprint against `topo`: keep the placements and
    /// per-worker orders, rebuild the cross-worker waits from the
    /// topology's own edges, and re-validate coverage and deadlock
    /// freedom. A blueprint compiled against a disagreeing predecessor
    /// table therefore cannot smuggle in a missing wait.
    pub fn recompile_for(&self, topo: &GraphTopology) -> Result<Self, BlueprintError> {
        Self::from_assignments(
            topo,
            &self
                .workers
                .iter()
                .map(|list| {
                    list.iter()
                        .map(|e| (e.node, e.expected_start_ns))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
        )
    }

    /// True when no slots are planned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replay the plan: verify every predecessor of every slot is either an
    /// earlier same-worker slot or a listed wait, and that the waits-for
    /// relation cannot cycle. This is the executor's deadlock-freedom
    /// proof, run once at compile time.
    fn check_schedulable<'a>(
        &self,
        n: usize,
        preds: &impl Fn(u32) -> &'a [u32],
    ) -> Result<(), BlueprintError> {
        let mut pos_on_worker = vec![(usize::MAX, usize::MAX); n];
        for (w, list) in self.workers.iter().enumerate() {
            for (i, e) in list.iter().enumerate() {
                pos_on_worker[e.node as usize] = (w, i);
            }
        }
        // Every pred must be covered by program order or a wait.
        for (w, list) in self.workers.iter().enumerate() {
            for (i, e) in list.iter().enumerate() {
                for &p in preds(e.node) {
                    let (pw, pi) = pos_on_worker[p as usize];
                    let same_worker_earlier = pw == w && pi < i;
                    if !same_worker_earlier && !e.waits.contains(&p) {
                        return Err(BlueprintError::Unschedulable(e.node));
                    }
                }
            }
        }
        // Replay: advance each worker's head while its waits are satisfied.
        let mut done = vec![false; n];
        let mut idx = vec![0usize; self.workers.len()];
        loop {
            let mut progressed = false;
            let mut remaining = false;
            for (w, list) in self.workers.iter().enumerate() {
                while idx[w] < list.len() {
                    let e = &list[idx[w]];
                    if e.waits.iter().all(|&p| done[p as usize]) {
                        done[e.node as usize] = true;
                        idx[w] += 1;
                        progressed = true;
                    } else {
                        break;
                    }
                }
                remaining |= idx[w] < list.len();
            }
            if !remaining {
                return Ok(());
            }
            if !progressed {
                // Report a head that is genuinely stuck (has an un-done
                // wait), not merely the first worker with slots left — that
                // worker's head may be blocked behind a different one.
                let stuck = self
                    .workers
                    .iter()
                    .enumerate()
                    .filter_map(|(w, list)| list.get(idx[w]))
                    .find(|e| e.waits.iter().any(|&p| !done[p as usize]))
                    .map(|e| e.node)
                    .expect("no progress implies some head has an unmet wait");
                return Err(BlueprintError::Unschedulable(stuck));
            }
        }
    }
}

/// Shared state: the common cycle machinery plus the current plan.
///
/// Like `Shared`'s graph, the plan is swapped only by the driver between
/// cycles and published to workers by the next epoch Release store, so it
/// lives in a [`DriverCell`] with the same safety argument.
pub(crate) struct PlannedShared {
    pub(crate) base: Shared,
    plan: DriverCell<ScheduleBlueprint>,
}

impl PlannedShared {
    /// The current plan.
    ///
    /// Reads are sound everywhere a graph read is sound: drivers hold
    /// `&mut` on the executor, and workers have acquired the epoch whose
    /// Release store published any swap.
    #[inline]
    fn plan(&self) -> &ScheduleBlueprint {
        // SAFETY: swaps are driver-only between cycles, published by the
        // next epoch Release store (see `Shared::graph`).
        unsafe { self.plan.get() }
    }
}

/// Executor that replays a [`ScheduleBlueprint`].
pub struct PlannedExecutor {
    shared: Arc<PlannedShared>,
    pool: PoolBinding,
    tracing: bool,
    last_trace: Option<ScheduleTrace>,
    telemetry: Option<TelemetryRing>,
    session: u32,
}

impl PlannedExecutor {
    /// Build the executor over `graph` with `frames`-frame buffers,
    /// replaying `blueprint`. The worker count is the blueprint's.
    ///
    /// The blueprint is recompiled against *this* graph's topology before
    /// use: the placements and per-worker orders are kept, but the
    /// cross-worker waits are rebuilt from the graph's own edges. A
    /// blueprint compiled against a predecessor table that disagrees with
    /// `graph` therefore cannot smuggle in a missing wait — the executor
    /// always replays waits derived from the graph it actually runs.
    ///
    /// # Panics
    /// Panics if the blueprint's worker count is outside `1..=64` or the
    /// blueprint does not recompile against `graph`'s topology (wrong node
    /// set or an unschedulable order).
    pub fn new(graph: TaskGraph, frames: usize, blueprint: ScheduleBlueprint) -> Self {
        let pool = Arc::new(VenuePool::new(blueprint.threads().clamp(1, 64)));
        Self::with_pool(graph, frames, blueprint, &pool)
    }

    /// Register this session on an existing shared [`VenuePool`] instead of
    /// spawning private threads. The blueprint's worker count is this
    /// session's lane count and must not exceed the pool's.
    pub fn with_pool(
        graph: TaskGraph,
        frames: usize,
        blueprint: ScheduleBlueprint,
        pool: &Arc<VenuePool>,
    ) -> Self {
        let threads = blueprint.threads();
        assert!((1..=64).contains(&threads), "1..=64 workers supported");
        let exec = ExecGraph::new(graph, frames);
        // Recompile against *this* graph: the blueprint may have been
        // compiled against a different (if structurally identical) build,
        // and the executor must run waits derived from the real edges, not
        // whatever the input blueprint claims.
        let plan = blueprint
            .recompile_for(exec.topology())
            .unwrap_or_else(|e| panic!("blueprint does not fit this graph: {e}"));
        let shared = Arc::new(PlannedShared {
            base: Shared::new(exec, threads, Priority::Depth),
            plan: DriverCell::new(plan),
        });
        // SAFETY: no cycle in flight yet; workers only read handles during a
        // cycle (after acquiring the epoch that published them).
        unsafe { shared.base.handles.set(pool.session_handles(threads)) };
        let pool = pool.register(SessionState::Planned(Arc::clone(&shared)));
        PlannedExecutor {
            shared,
            pool,
            tracing: false,
            last_trace: None,
            telemetry: None,
            session: 0,
        }
    }

    /// The blueprint being replayed (for the current generation).
    pub fn blueprint(&self) -> &ScheduleBlueprint {
        self.shared.plan()
    }
}

/// Replay worker `me`'s slice of the plan for `epoch`.
pub(crate) fn run_cycle_part(sh: &PlannedShared, me: usize, epoch: u64) {
    let tracing = sh.base.tracing.load(Ordering::Relaxed);
    let telem = sh.base.telemetry.load(Ordering::Relaxed);
    let rec = sh.base.flight_on();
    let counters = &sh.base.counters[me];
    let faults = sh.base.fault_plan();
    // SAFETY: epoch acquired (pool worker via the batch edge, driver trivially).
    let ctx = if telem || rec {
        unsafe { sh.base.ctx_counted(epoch, me) }
    } else {
        unsafe { sh.base.ctx(epoch) }
    };
    if let Some(plan) = faults {
        if rec {
            let s0 = Instant::now();
            if plan.inject_stalls(epoch, me, sh.base.threads, counters) > 0 {
                sh.base.record_span(
                    me,
                    epoch,
                    Span::NO_NODE,
                    SpanKind::Fault,
                    s0,
                    Instant::now(),
                );
            }
        } else {
            plan.inject_stalls(epoch, me, sh.base.threads, counters);
        }
    }
    let mut events: Vec<RawEvent> = Vec::new();
    for entry in sh.plan().worker(me) {
        let node = entry.node;
        if tracing || telem || rec {
            let w0 = Instant::now();
            let mut spins = 0u64;
            for &p in entry.waits() {
                spins += sh.base.graph().spin_until_done(p as usize, epoch);
            }
            if spins > 0 {
                let w1 = Instant::now();
                if tracing {
                    events.push(RawEvent {
                        node,
                        kind: TraceKind::BusyWait,
                        start: w0,
                        end: w1,
                    });
                }
                if telem {
                    counters.add_spin(spins, (w1 - w0).as_nanos() as u64);
                }
                if rec {
                    sh.base
                        .record_span(me, epoch, node, SpanKind::BusyWait, w0, w1);
                }
            }
            let t0 = Instant::now();
            let mut fault_end = t0;
            if let Some(plan) = faults {
                let injected = plan.inject_node(epoch, node, counters);
                if rec && injected > 0 {
                    fault_end = Instant::now();
                }
            }
            let net0 = if rec { sh.base.net_ns_of(me) } else { (0, 0) };
            // SAFETY: exactly-once ownership by blueprint validation; all
            // predecessors observed done for this epoch (same-worker preds
            // by program order, cross-worker preds by the waits above).
            unsafe { sh.base.graph().execute(node as usize, &ctx) };
            let t1 = Instant::now();
            if tracing {
                events.push(RawEvent {
                    node,
                    kind: TraceKind::Exec,
                    start: t0,
                    end: t1,
                });
            }
            if telem {
                counters.add_exec((t1 - t0).as_nanos() as u64);
            }
            if rec {
                if fault_end > t0 {
                    sh.base
                        .record_span(me, epoch, node, SpanKind::Fault, t0, fault_end);
                }
                sh.base
                    .record_exec_carved(me, epoch, node, fault_end, t1, net0);
            }
        } else {
            for &p in entry.waits() {
                sh.base.graph().spin_until_done(p as usize, epoch);
            }
            if let Some(plan) = faults {
                plan.inject_node(epoch, node, counters);
            }
            // SAFETY: as above.
            unsafe { sh.base.graph().execute(node as usize, &ctx) };
        }
        sh.base.node_finished();
    }
    if tracing {
        sh.base.flush_trace(me, events);
    }
}

impl GraphExecutor for PlannedExecutor {
    fn strategy(&self) -> Strategy {
        Strategy::Planned
    }

    fn threads(&self) -> usize {
        self.shared.base.threads
    }

    fn run_cycle(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> CycleResult {
        let epoch = self
            .venue_stage(external_audio, controls)
            .expect("planned executor always stages");
        self.pool.pool().dispatch();
        run_cycle_part(&self.shared, 0, epoch);
        let result = self.venue_collect(epoch);
        self.pool.pool().quiesce();
        result
    }

    fn venue_stage(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> Option<u64> {
        self.pool.pool().quiesce();
        let sh = &self.shared;
        sh.base.tracing.store(self.tracing, Ordering::Relaxed);
        sh.base
            .telemetry
            .store(self.telemetry.is_some(), Ordering::Relaxed);
        // SAFETY: driver thread, no cycle in flight (`&mut self`), pool
        // quiescent.
        let epoch = unsafe { sh.base.prepare_cycle(external_audio, controls) };
        self.pool.stage(epoch);
        Some(epoch)
    }

    fn venue_collect(&mut self, epoch: u64) -> CycleResult {
        let sh = &self.shared;
        sh.base.wait_cycle_done();
        let end = Instant::now();
        // SAFETY: driver-owned; set by `prepare_cycle` this cycle.
        let start = unsafe { *sh.base.cycle_start.get() };
        let duration = end - start;
        if sh.base.flight_on() {
            sh.base.stamp_cycle(epoch, end);
        }
        if let Some(ring) = self.telemetry.as_mut() {
            // All counter updates happen-before the workers' final
            // done-count increments, acquired by `wait_cycle_done`.
            let slot = ring.begin_push(epoch, duration.as_nanos() as u64);
            sh.base.drain_counters(slot);
        }
        if self.tracing {
            sh.base.wait_trace_flushed();
            self.last_trace = Some(sh.base.collect_trace());
        }
        CycleResult { duration }
    }

    fn set_session(&mut self, session: u32) {
        self.session = session;
        if let Some(r) = &self.telemetry {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                session,
            ));
        }
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn take_trace(&mut self) -> Option<ScheduleTrace> {
        self.last_trace.take()
    }

    fn set_telemetry(&mut self, on: bool) {
        if on {
            if self.telemetry.is_none() {
                self.telemetry = Some(TelemetryRing::with_session(
                    DEFAULT_RING_CAPACITY,
                    self.shared.base.threads,
                    self.session,
                ));
            }
        } else {
            self.telemetry = None;
        }
    }

    fn take_telemetry(&mut self) -> Option<TelemetryRing> {
        let taken = self.telemetry.take();
        if let Some(r) = &taken {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                r.session(),
            ));
        }
        taken
    }

    fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.pool.pool().quiesce();
        // SAFETY: driver-only between cycles (`&mut self`), pool quiescent;
        // published to workers by the next epoch Release store.
        unsafe { self.shared.base.faults.set(plan) };
    }

    fn set_flight_recorder(&mut self, cfg: Option<FlightConfig>) {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.base.install_recorder(cfg);
    }

    fn take_flight_window(&mut self) -> Option<FlightWindow> {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.base.take_window()
    }

    fn adopt_generation(&mut self, staged: StagedGeneration) -> Result<u64, SwapError> {
        self.pool.pool().quiesce();
        let (exec, plan) = staged.into_parts();
        let threads = self.shared.base.threads;
        // Take the staged plan, or fall back to round-robin so a topology
        // swap without a freshly compiled schedule still runs correctly
        // (at BUSY-placement quality) instead of failing.
        let plan = match plan {
            Some(p) => p,
            None => ScheduleBlueprint::round_robin(exec.topology(), threads, Priority::Depth),
        };
        if plan.threads() != threads {
            return Err(SwapError::ThreadMismatch {
                expected: threads,
                got: plan.threads(),
            });
        }
        // Recompile against the staged topology before touching any live
        // state: on failure the running generation is untouched.
        let plan = plan
            .recompile_for(exec.topology())
            .map_err(SwapError::Blueprint)?;
        // SAFETY: `&mut self` proves no cycle in flight; workers are waiting
        // on the epoch and read the plan only after acquiring the next
        // epoch's Release store, which publishes both swaps.
        unsafe {
            *self.shared.plan.get_mut() = plan;
            Ok(self.shared.base.adopt_exec(exec))
        }
    }

    fn generation(&self) -> u64 {
        self.shared.base.generation.load(Ordering::Relaxed)
    }

    fn read_output(&mut self, node: NodeId, dst: &mut AudioBuf) {
        self.pool.pool().quiesce();
        // SAFETY: `&mut self` proves no cycle in flight; pool quiescent.
        unsafe { self.shared.base.graph().read_output_unsync(node, dst) };
    }

    fn node_processor(&mut self, node: NodeId) -> &mut dyn Processor {
        self.pool.pool().quiesce();
        // SAFETY: as in `read_output`.
        unsafe { self.shared.base.graph().node_processor_unsync(node) }
    }

    fn topology(&self) -> &GraphTopology {
        self.shared.base.graph().topology()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{diamond_sum_graph, fan_graph, run_and_check};

    #[test]
    fn round_robin_blueprint_matches_sequential() {
        for threads in [1, 2, 3, 4] {
            run_and_check(
                |g, frames| {
                    let bp = ScheduleBlueprint::round_robin(g.topology(), threads, Priority::Depth);
                    Box::new(PlannedExecutor::new(g, frames, bp))
                },
                &format!("plan-rr-{threads}"),
            );
        }
    }

    #[test]
    fn critical_path_blueprint_matches_sequential() {
        for threads in [1, 3] {
            run_and_check(
                |g, frames| {
                    let bp = ScheduleBlueprint::round_robin(
                        g.topology(),
                        threads,
                        Priority::CriticalPath,
                    );
                    Box::new(PlannedExecutor::new(g, frames, bp))
                },
                &format!("plan-cp-{threads}"),
            );
        }
    }

    #[test]
    fn diamond_many_cycles_with_handcrafted_plan() {
        let g = diamond_sum_graph();
        // Worker 0: n0, n2, n3; worker 1: n1. n2 waits on n1 (cross), n0 is
        // same-worker; n3's pred n2 is same-worker.
        let bp = ScheduleBlueprint::from_assignments(
            g.topology(),
            &[vec![(0, 0), (2, 100), (3, 200)], vec![(1, 0)]],
        )
        .unwrap();
        assert_eq!(bp.worker(0)[1].waits(), &[1]);
        assert_eq!(bp.worker(0)[2].waits(), &[] as &[u32]);
        let mut ex = PlannedExecutor::new(g, 8, bp);
        for _ in 0..200 {
            ex.run_cycle(&[], &[]);
            let mut out = AudioBuf::zeroed(2, 8);
            ex.read_output(NodeId(3), &mut out);
            assert_eq!(out.sample(0, 0), 3.0);
        }
    }

    #[test]
    fn trace_respects_dependencies_and_placement() {
        let g = fan_graph(16);
        let bp = ScheduleBlueprint::round_robin(g.topology(), 4, Priority::Depth);
        let mut ex = PlannedExecutor::new(g, 8, bp);
        ex.set_tracing(true);
        for _ in 0..20 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            assert_eq!(trace.executions().len(), ex.topology().len());
            let topo = ex.topology();
            assert!(trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()));
            // Placement is static: node queue position k runs on worker k%4.
            for e in trace.executions() {
                let k = topo.queue().iter().position(|&n| n == e.node).unwrap();
                assert_eq!(e.worker as usize, k % 4);
            }
        }
    }

    #[test]
    fn executor_rebuilds_waits_from_the_real_graph() {
        // Compile against a predecessor table with NO edges: the blueprint
        // validates (nothing to wait for) but its waits are empty, so
        // replaying it verbatim against the diamond graph would skip the
        // cross-worker check on n1 -> n2. The executor must recompile the
        // waits from the graph it actually runs.
        let no_edges: Vec<Vec<u32>> = vec![Vec::new(); 4];
        let bp = ScheduleBlueprint::from_node_preds(
            &no_edges,
            &[vec![(0, 0), (2, 100), (3, 200)], vec![(1, 0)]],
        )
        .unwrap();
        assert_eq!(bp.worker(0)[1].waits(), &[] as &[u32]);
        let mut ex = PlannedExecutor::new(diamond_sum_graph(), 8, bp);
        assert_eq!(ex.blueprint().worker(0)[1].waits(), &[1]);
        for _ in 0..200 {
            ex.run_cycle(&[], &[]);
            let mut out = AudioBuf::zeroed(2, 8);
            ex.read_output(NodeId(3), &mut out);
            assert_eq!(out.sample(0, 0), 3.0);
        }
    }

    #[test]
    fn blueprint_rejects_duplicates_and_gaps() {
        let g = diamond_sum_graph();
        let t = g.topology();
        assert_eq!(
            ScheduleBlueprint::from_assignments(t, &[vec![(0, 0), (0, 1)]]).unwrap_err(),
            BlueprintError::Duplicate(0)
        );
        assert_eq!(
            ScheduleBlueprint::from_assignments(t, &[vec![(0, 0), (1, 1)]]).unwrap_err(),
            BlueprintError::Incomplete {
                assigned: 2,
                nodes: 4
            }
        );
        assert_eq!(
            ScheduleBlueprint::from_assignments(t, &[]).unwrap_err(),
            BlueprintError::NoWorkers
        );
        assert_eq!(
            ScheduleBlueprint::from_assignments(t, &[vec![(0, 0), (1, 1), (2, 2), (9, 3)]])
                .unwrap_err(),
            BlueprintError::UnknownNode(9)
        );
    }

    #[test]
    fn blueprint_rejects_out_of_order_same_worker_preds() {
        let g = diamond_sum_graph();
        // n3 before its predecessor n2 on the same worker: unschedulable.
        assert_eq!(
            ScheduleBlueprint::from_assignments(
                g.topology(),
                &[vec![(0, 0), (1, 1), (3, 2), (2, 3)]]
            )
            .unwrap_err(),
            BlueprintError::Unschedulable(3)
        );
    }
}
