//! Shared worker pool multiplexing many independent APC graphs per cycle.
//!
//! Before this module, every threaded executor privately owned `threads-1`
//! OS threads: N concurrent sessions cost N×threads and fight the OS
//! scheduler — exactly the oversubscription §V of the paper warns against.
//! A [`VenuePool`] owns the threads once; each strategy becomes a *dispatch
//! policy* over the pool's workers, and the single-session executors are
//! thin wrappers around a one-session pool.
//!
//! # The batch protocol
//!
//! The pool runs a batch epoch on top of each session's cycle epoch:
//!
//! 1. The driver *stages* each session: `Shared::prepare_cycle` resets the
//!    session graph, copies externals and bumps the session epoch (a
//!    `Release` store that wakes nobody), then [`VenuePool::stage`] marks
//!    the session's [`PoolEntry`] for the next batch.
//! 2. One [`VenuePool::dispatch`] bumps the pool epoch (`Release`) and
//!    unparks every pool worker. The pool epoch `Acquire` in the worker
//!    loop publishes *all* staged-session driver writes at once.
//! 3. Worker `w` walks the entry table in order and runs lane `w` of every
//!    session staged for this batch (skipping sessions whose configured
//!    thread count is ≤ `w`), using that strategy's unchanged
//!    `run_cycle_part`. The driver does the same for lane 0 (directly, or
//!    via [`VenuePool::run_driver_parts`]).
//! 4. Per session, cycle completion is exactly what it always was: the
//!    driver waits for the session's done-counter (and, for WS, its cycle
//!    exit barrier).
//! 5. [`VenuePool::quiesce`] waits until every worker has finished walking
//!    the entry table (`exited == workers`). Only after that may the
//!    driver mutate the entry table (register/unregister), reseed WS
//!    deques, or swap a session's topology — everything between batches is
//!    again plain single-threaded data.
//!
//! Deadlock freedom: driver and workers traverse staged sessions in the
//! same entry order, and within a session the per-strategy protocols are
//! unchanged. All park/wake sites already tolerate spurious wakeups, so
//! cross-session unparks (one OS thread serves the same lane of every
//! session) are benign.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use super::hybrid::HybridShared;
use super::planned::PlannedShared;
use super::stealing::WsShared;
use super::{busy, hybrid, planned, sleeping, stealing, DriverCell, Shared};
use crate::pad::CachePadded;

/// Opaque identifier of a session registered on a [`VenuePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id, for tagging telemetry/flight exports.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Per-strategy dispatch state of one registered session. Wraps the
/// strategy's shared block and routes lane execution to its unchanged
/// `run_cycle_part`.
pub(crate) enum SessionState {
    Busy(Arc<Shared>),
    Sleep(Arc<Shared>),
    Steal(Arc<WsShared>),
    Hybrid(Arc<HybridShared>),
    Planned(Arc<PlannedShared>),
}

impl SessionState {
    fn base(&self) -> &Shared {
        match self {
            SessionState::Busy(sh) | SessionState::Sleep(sh) => sh,
            SessionState::Steal(ws) => &ws.base,
            SessionState::Hybrid(hy) => &hy.base,
            SessionState::Planned(pl) => &pl.base,
        }
    }

    fn threads(&self) -> usize {
        self.base().threads
    }

    /// Run lane `me` of this session's cycle `epoch`.
    ///
    /// # Safety
    /// Caller holds the epoch happens-before edge (pool-epoch `Acquire`
    /// for workers; the driver published the cycle itself) and is the only
    /// participant running lane `me` of this session this cycle.
    unsafe fn run_part(&self, me: usize, epoch: u64) {
        match self {
            SessionState::Busy(sh) => busy::run_cycle_part(sh, me, epoch),
            SessionState::Sleep(sh) => sleeping::run_cycle_part(sh, me, epoch),
            SessionState::Steal(ws) => stealing::run_cycle_part(ws, me, epoch),
            SessionState::Hybrid(hy) => hybrid::run_cycle_part(hy, me, epoch),
            SessionState::Planned(pl) => planned::run_cycle_part(pl, me, epoch),
        }
    }
}

/// One registered session in the pool's entry table. Plain (non-atomic)
/// fields: mutated only between batches, when [`VenuePool::quiesce`] has
/// proven every worker is parked outside the table.
struct PoolEntry {
    id: u64,
    state: SessionState,
    /// Pool epoch this session is staged for (a worker runs the entry only
    /// when this equals the batch it woke for).
    batch_epoch: u64,
    /// The session epoch published by `prepare_cycle` for that batch.
    session_epoch: u64,
}

/// State shared between the driver and the pool's worker threads.
struct PoolCore {
    /// Batch epoch. Bumped with `Release` by `dispatch`; the worker-side
    /// `Acquire` publishes every staged session's driver writes.
    epoch: CachePadded<AtomicU64>,
    /// Workers that finished walking the entry table for the current batch.
    exited: CachePadded<AtomicU32>,
    shutdown: AtomicBool,
    /// The entry table. Driver-only between batches; workers hold a shared
    /// reference only while a batch is in flight.
    entries: DriverCell<Vec<PoolEntry>>,
    /// Spawned workers (lanes `1..threads`), i.e. `threads - 1`.
    workers: u32,
}

// SAFETY: `entries` is governed by the batch protocol documented at module
// level — workers read it only between the pool-epoch `Acquire` and their
// `exited` `Release`; the driver mutates it only after `quiesce`.
unsafe impl Sync for PoolCore {}

fn worker_loop(core: &PoolCore, me: usize) {
    let mut seen = 0u64;
    while let Some(pe) = wait_for_batch(core, seen) {
        seen = pe;
        // SAFETY: the pool-epoch Acquire in `wait_for_batch` publishes the
        // driver's entry-table and per-session writes; the driver will not
        // touch the table again before our `exited` Release below.
        let entries = unsafe { core.entries.get() };
        for e in entries.iter() {
            if e.batch_epoch == pe && me < e.state.threads() {
                // SAFETY: lane `me` of this session's staged cycle is ours
                // alone; the epoch edge is held (see above).
                unsafe { e.state.run_part(me, e.session_epoch) };
            }
        }
        core.exited.fetch_add(1, Ordering::Release);
    }
}

/// Worker-side: wait until the pool epoch exceeds `seen` (spin, then park).
/// Returns the new epoch, or `None` on shutdown.
fn wait_for_batch(core: &PoolCore, seen: u64) -> Option<u64> {
    let mut spins = 0u32;
    loop {
        let e = core.epoch.load(Ordering::Acquire);
        if e > seen {
            return Some(e);
        }
        if core.shutdown.load(Ordering::Acquire) {
            return None;
        }
        spins += 1;
        if spins < 512 {
            core::hint::spin_loop();
        } else if spins < 1024 {
            std::thread::yield_now();
        } else {
            std::thread::park();
        }
    }
}

/// A persistent shared worker pool that multiplexes many independent APC
/// graphs per cycle. Owns `threads - 1` OS threads (the driver supplies
/// lane 0); sessions of any strategy register onto it and are dispatched
/// in batches. See the module docs for the batch protocol.
pub struct VenuePool {
    core: Arc<PoolCore>,
    threads: usize,
    /// Park handles of the spawned workers: `handles[w - 1]` is lane `w`.
    handles: Vec<std::thread::Thread>,
    joiners: Vec<JoinHandle<()>>,
    /// Driver-side: a dispatched batch has not been quiesced yet.
    in_flight: AtomicBool,
    next_id: AtomicU64,
}

impl VenuePool {
    /// Create a pool with `threads` lanes total (lane 0 is the driver;
    /// `threads - 1` OS threads are spawned).
    pub fn new(threads: usize) -> Self {
        assert!(
            (1..=64).contains(&threads),
            "thread count {threads} out of range"
        );
        let core = Arc::new(PoolCore {
            epoch: CachePadded::new(AtomicU64::new(0)),
            exited: CachePadded::new(AtomicU32::new(0)),
            shutdown: AtomicBool::new(false),
            entries: DriverCell::new(Vec::new()),
            workers: (threads - 1) as u32,
        });
        let mut handles = Vec::with_capacity(threads - 1);
        let mut joiners = Vec::with_capacity(threads - 1);
        for me in 1..threads {
            let c = Arc::clone(&core);
            let j = std::thread::Builder::new()
                .name(format!("venue-worker-{me}"))
                .spawn(move || worker_loop(&c, me))
                .expect("spawn venue worker");
            handles.push(j.thread().clone());
            joiners.push(j);
        }
        VenuePool {
            core,
            threads,
            handles,
            joiners,
            in_flight: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
        }
    }

    /// Total lanes (driver + spawned workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of registered sessions.
    pub fn sessions(&self) -> usize {
        self.quiesce();
        // SAFETY: quiesced — the table is driver-owned.
        unsafe { self.core.entries.get() }.len()
    }

    /// The park-handle vector a session `Shared` needs: slot 0 is a
    /// placeholder for the driver (refreshed by `prepare_cycle` each
    /// cycle), slots `1..threads` are the pool workers serving those lanes.
    pub(crate) fn session_handles(&self, threads: usize) -> Vec<std::thread::Thread> {
        assert!(
            threads <= self.threads,
            "session wants {threads} lanes, pool has {}",
            self.threads
        );
        let mut v = Vec::with_capacity(threads);
        v.push(std::thread::current());
        v.extend(self.handles[..threads - 1].iter().cloned());
        v
    }

    /// Register a session. Driver-only; waits for any in-flight batch.
    pub(crate) fn register(self: &Arc<Self>, state: SessionState) -> PoolBinding {
        assert!(
            state.threads() <= self.threads,
            "session wants {} lanes, pool has {}",
            state.threads(),
            self.threads
        );
        self.quiesce();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // SAFETY: quiesced — the table is driver-owned.
        unsafe { self.core.entries.get_mut() }.push(PoolEntry {
            id,
            state,
            batch_epoch: 0,
            session_epoch: 0,
        });
        PoolBinding {
            pool: Arc::clone(self),
            session: SessionId(id),
        }
    }

    fn unregister(&self, session: SessionId) {
        self.quiesce();
        // SAFETY: quiesced — the table is driver-owned.
        unsafe { self.core.entries.get_mut() }.retain(|e| e.id != session.0);
    }

    /// Stage `session`'s prepared cycle `session_epoch` for the next batch.
    /// Driver-only; the previous batch must have been quiesced (the
    /// executors' `venue_stage` does this).
    pub(crate) fn stage(&self, session: SessionId, session_epoch: u64) {
        debug_assert!(!self.in_flight.load(Ordering::Relaxed));
        let next = self.core.epoch.load(Ordering::Relaxed) + 1;
        // SAFETY: no batch in flight — the table is driver-owned.
        let entries = unsafe { self.core.entries.get_mut() };
        let e = entries
            .iter_mut()
            .find(|e| e.id == session.0)
            .expect("staged session is registered");
        e.batch_epoch = next;
        e.session_epoch = session_epoch;
    }

    /// Publish the staged batch: bump the pool epoch (`Release`) and wake
    /// every pool worker. The driver must then run its lane-0 share of
    /// every staged session (directly or via
    /// [`run_driver_parts`](Self::run_driver_parts)) before collecting.
    pub fn dispatch(&self) {
        self.core.exited.store(0, Ordering::Relaxed);
        let next = self.core.epoch.load(Ordering::Relaxed) + 1;
        self.core.epoch.store(next, Ordering::Release);
        self.in_flight.store(true, Ordering::Relaxed);
        for h in &self.handles {
            h.unpark();
        }
    }

    /// Run the driver's (lane 0) share of every session staged for the
    /// current batch, in entry order — the same order the workers use.
    pub fn run_driver_parts(&self) {
        let pe = self.core.epoch.load(Ordering::Relaxed);
        // SAFETY: the driver published this batch itself; the table is not
        // mutated while the batch is in flight.
        let entries = unsafe { self.core.entries.get() };
        for e in entries.iter() {
            if e.batch_epoch == pe {
                // SAFETY: lane 0 belongs to the driver; we published the
                // session epoch in `stage`.
                unsafe { e.state.run_part(0, e.session_epoch) };
            }
        }
    }

    /// Driver-side: wait until every pool worker finished walking the
    /// entry table for the last dispatched batch. After this the table and
    /// all session state are plain driver-owned data again (safe to
    /// register/unregister sessions, reseed WS deques, swap topologies).
    /// No-op when no batch is in flight.
    pub fn quiesce(&self) {
        if !self.in_flight.swap(false, Ordering::Relaxed) {
            return;
        }
        let mut spins = 0u32;
        while self.core.exited.load(Ordering::Acquire) != self.core.workers {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
    }
}

impl Drop for VenuePool {
    fn drop(&mut self) {
        self.quiesce();
        self.core.shutdown.store(true, Ordering::Release);
        for h in &self.handles {
            h.unpark();
        }
        for j in self.joiners.drain(..) {
            let _ = j.join();
        }
    }
}

/// An executor's membership in a pool: keeps the pool alive and
/// unregisters the session on drop.
pub(crate) struct PoolBinding {
    pool: Arc<VenuePool>,
    session: SessionId,
}

impl PoolBinding {
    pub(crate) fn pool(&self) -> &Arc<VenuePool> {
        &self.pool
    }

    /// Stage this session's prepared cycle for the pool's next batch.
    pub(crate) fn stage(&self, session_epoch: u64) {
        self.pool.stage(self.session, session_epoch);
    }
}

impl Drop for PoolBinding {
    fn drop(&mut self) {
        self.pool.unregister(self.session);
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{diamond_sum_graph, fan_graph};
    use super::super::{BusyExecutor, GraphExecutor, SequentialExecutor, StealExecutor};
    use super::*;
    use crate::graph::Priority;

    const FRAMES: usize = 64;

    #[test]
    fn two_sessions_share_one_pool() {
        let pool = Arc::new(VenuePool::new(3));
        let mut a = BusyExecutor::with_pool(diamond_sum_graph(), 3, FRAMES, Priority::Depth, &pool);
        let mut b = StealExecutor::with_pool(fan_graph(7), 2, FRAMES, Priority::Depth, &pool);
        assert_eq!(pool.sessions(), 2);

        let mut seq_a = SequentialExecutor::new(diamond_sum_graph(), FRAMES);
        let mut seq_b = SequentialExecutor::new(fan_graph(7), FRAMES);
        let mut buf = djstar_dsp::AudioBuf::zeroed(2, FRAMES);
        let mut want = djstar_dsp::AudioBuf::zeroed(2, FRAMES);
        for _ in 0..50 {
            // Batched: stage both, one dispatch, driver parts, collect.
            let ea = a.venue_stage(&[], &[]).unwrap();
            let eb = b.venue_stage(&[], &[]).unwrap();
            pool.dispatch();
            pool.run_driver_parts();
            a.venue_collect(ea);
            b.venue_collect(eb);
            pool.quiesce();

            seq_a.run_cycle(&[], &[]);
            seq_b.run_cycle(&[], &[]);
            let last_a = a.topology().len() as u32 - 1;
            let last_b = b.topology().len() as u32 - 1;
            a.read_output(crate::graph::NodeId(last_a), &mut buf);
            seq_a.read_output(crate::graph::NodeId(last_a), &mut want);
            assert_eq!(buf.samples(), want.samples());
            b.read_output(crate::graph::NodeId(last_b), &mut buf);
            seq_b.read_output(crate::graph::NodeId(last_b), &mut want);
            assert_eq!(buf.samples(), want.samples());
        }
        drop(a);
        assert_eq!(pool.sessions(), 1);
        drop(b);
        assert_eq!(pool.sessions(), 0);
    }

    #[test]
    fn register_unregister_midstream() {
        let pool = Arc::new(VenuePool::new(2));
        let mut a = BusyExecutor::with_pool(fan_graph(5), 2, FRAMES, Priority::Depth, &pool);
        for _ in 0..10 {
            a.run_cycle(&[], &[]);
        }
        {
            let mut b = BusyExecutor::with_pool(fan_graph(9), 2, FRAMES, Priority::Depth, &pool);
            for _ in 0..10 {
                let ea = a.venue_stage(&[], &[]).unwrap();
                let eb = b.venue_stage(&[], &[]).unwrap();
                pool.dispatch();
                pool.run_driver_parts();
                a.venue_collect(ea);
                b.venue_collect(eb);
                pool.quiesce();
            }
        }
        assert_eq!(pool.sessions(), 1);
        for _ in 0..10 {
            a.run_cycle(&[], &[]);
        }
    }

    #[test]
    #[should_panic(expected = "lanes")]
    fn oversized_session_rejected() {
        let pool = Arc::new(VenuePool::new(2));
        let _ = BusyExecutor::with_pool(fan_graph(5), 4, FRAMES, Priority::Depth, &pool);
    }
}
