//! The sequential baseline: DJ Star's original implementation.
//!
//! §IV: "the task graph is implemented using a simple queue. Nodes are
//! inserted according to their depth in the dependency graph … single nodes
//! can simply be removed from the queue in the same order (FIFO) during
//! graph execution and processed sequentially."

use super::{
    CycleResult, ExecGraph, GraphExecutor, RawEvent, StagedGeneration, Strategy, SwapError,
};
use crate::faults::FaultPlan;
use crate::flight::{CycleStamp, FlightConfig, FlightRecorder, FlightWindow, Span, SpanKind};
use crate::graph::{GraphTopology, NodeId, TaskGraph};
use crate::processor::{CycleCtx, Processor};
use crate::telemetry::{CycleCounters, TelemetryRing, DEFAULT_RING_CAPACITY};
use crate::trace::{ScheduleTrace, TraceKind};
use djstar_dsp::AudioBuf;
use std::time::Instant;

/// Single-threaded FIFO execution of the depth-sorted queue.
pub struct SequentialExecutor {
    exec: ExecGraph,
    epoch: u64,
    generation: u64,
    tracing: bool,
    last_trace: Option<ScheduleTrace>,
    counters: CycleCounters,
    telemetry: Option<TelemetryRing>,
    faults: Option<FaultPlan>,
    flight: Option<FlightRecorder>,
    session: u32,
}

/// Record a span on the single worker lane.
#[inline]
fn rec_span(r: &FlightRecorder, cycle: u64, node: u32, kind: SpanKind, t0: Instant, t1: Instant) {
    let span = Span {
        cycle,
        node,
        worker: 0,
        start_ns: r.now_ns(t0),
        end_ns: r.now_ns(t1),
        kind,
    };
    // SAFETY: single-threaded executor — lane 0 has exactly one writer.
    unsafe { r.record(0, span) };
}

/// Record the execution interval of `node`, carving any net wait/conceal
/// time its processor booked (counter deltas vs `net0`) into `NetWait` /
/// `Conceal` spans; the three spans tile `[t0, t1]` exactly.
fn rec_exec_carved(
    r: &FlightRecorder,
    counters: &CycleCounters,
    cycle: u64,
    node: u32,
    t0: Instant,
    t1: Instant,
    net0: (u64, u64),
) {
    let (w1, c1) = counters.net_ns();
    let (wait, conceal) = (w1.wrapping_sub(net0.0), c1.wrapping_sub(net0.1));
    if wait == 0 && conceal == 0 {
        rec_span(r, cycle, node, SpanKind::Exec, t0, t1);
        return;
    }
    let s = r.now_ns(t0);
    let e = r.now_ns(t1);
    let wait_end = s.saturating_add(wait).min(e);
    let conceal_end = wait_end.saturating_add(conceal).min(e);
    for (kind, start_ns, end_ns) in [
        (SpanKind::NetWait, s, wait_end),
        (SpanKind::Conceal, wait_end, conceal_end),
        (SpanKind::Exec, conceal_end, e),
    ] {
        if end_ns > start_ns {
            let span = Span {
                cycle,
                node,
                worker: 0,
                start_ns,
                end_ns,
                kind,
            };
            // SAFETY: single-threaded executor — lane 0 has one writer.
            unsafe { r.record(0, span) };
        }
    }
}

impl SequentialExecutor {
    /// Build a sequential executor over `graph` with `frames`-frame buffers.
    pub fn new(graph: TaskGraph, frames: usize) -> Self {
        SequentialExecutor {
            exec: ExecGraph::new(graph, frames),
            epoch: 0,
            generation: 0,
            tracing: false,
            last_trace: None,
            counters: CycleCounters::new(),
            telemetry: None,
            faults: None,
            flight: None,
            session: 0,
        }
    }
}

impl GraphExecutor for SequentialExecutor {
    fn strategy(&self) -> Strategy {
        Strategy::Sequential
    }

    fn threads(&self) -> usize {
        1
    }

    fn run_cycle(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> CycleResult {
        self.epoch += 1;
        let telem = self.telemetry.is_some();
        let rec = self.flight.is_some();
        let ctx = CycleCtx {
            epoch: self.epoch,
            external_audio,
            controls,
            counters: (telem || rec).then_some(&self.counters),
        };
        let flight = self.flight.as_ref();
        let faults = self.faults.as_ref();
        let start = Instant::now();
        // The single worker absorbs every stall lane.
        if let Some(plan) = faults {
            if rec {
                let s0 = Instant::now();
                if plan.inject_stalls(self.epoch, 0, 1, &self.counters) > 0 {
                    if let Some(r) = flight {
                        rec_span(
                            r,
                            self.epoch,
                            Span::NO_NODE,
                            SpanKind::Fault,
                            s0,
                            Instant::now(),
                        );
                    }
                }
            } else {
                plan.inject_stalls(self.epoch, 0, 1, &self.counters);
            }
        }
        if self.tracing {
            let mut events = Vec::with_capacity(self.exec.len());
            for &n in self.exec.topology().queue() {
                let t0 = Instant::now();
                let mut fault_end = t0;
                if let Some(plan) = faults {
                    let injected = plan.inject_node(self.epoch, n, &self.counters);
                    if rec && injected > 0 {
                        fault_end = Instant::now();
                    }
                }
                let net0 = if rec { self.counters.net_ns() } else { (0, 0) };
                // SAFETY: single thread executes every node in queue order,
                // which is a valid topological order.
                unsafe { self.exec.execute(n as usize, &ctx) };
                let t1 = Instant::now();
                if telem {
                    self.counters.add_exec((t1 - t0).as_nanos() as u64);
                }
                if let Some(r) = flight {
                    if fault_end > t0 {
                        rec_span(r, self.epoch, n, SpanKind::Fault, t0, fault_end);
                    }
                    rec_exec_carved(r, &self.counters, self.epoch, n, fault_end, t1, net0);
                }
                events.push(RawEvent {
                    node: n,
                    kind: TraceKind::Exec,
                    start: t0,
                    end: t1,
                });
            }
            self.last_trace = Some(super::finish_trace(1, start, vec![(0, events)]));
        } else if telem || rec {
            for &n in self.exec.topology().queue() {
                let t0 = Instant::now();
                let mut fault_end = t0;
                if let Some(plan) = faults {
                    let injected = plan.inject_node(self.epoch, n, &self.counters);
                    if rec && injected > 0 {
                        fault_end = Instant::now();
                    }
                }
                let net0 = if rec { self.counters.net_ns() } else { (0, 0) };
                // SAFETY: as above.
                unsafe { self.exec.execute(n as usize, &ctx) };
                let t1 = Instant::now();
                if telem {
                    self.counters.add_exec((t1 - t0).as_nanos() as u64);
                }
                if let Some(r) = flight {
                    if fault_end > t0 {
                        rec_span(r, self.epoch, n, SpanKind::Fault, t0, fault_end);
                    }
                    rec_exec_carved(r, &self.counters, self.epoch, n, fault_end, t1, net0);
                }
            }
        } else {
            for &n in self.exec.topology().queue() {
                if let Some(plan) = faults {
                    plan.inject_node(self.epoch, n, &self.counters);
                }
                // SAFETY: as above.
                unsafe { self.exec.execute(n as usize, &ctx) };
            }
        }
        let end = Instant::now();
        let duration = end - start;
        if let Some(r) = self.flight.as_ref() {
            let stamp = CycleStamp {
                cycle: self.epoch,
                start_ns: r.now_ns(start),
                end_ns: r.now_ns(end),
            };
            // SAFETY: single-threaded executor — only the driver stamps.
            unsafe { r.stamp(stamp) };
        }
        if let Some(ring) = self.telemetry.as_mut() {
            let slot = ring.begin_push(self.epoch, duration.as_nanos() as u64);
            self.counters.drain_into(&mut slot[0]);
        }
        CycleResult { duration }
    }

    fn set_session(&mut self, session: u32) {
        self.session = session;
        if let Some(r) = &self.telemetry {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                session,
            ));
        }
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn take_trace(&mut self) -> Option<ScheduleTrace> {
        self.last_trace.take()
    }

    fn set_telemetry(&mut self, on: bool) {
        if on {
            if self.telemetry.is_none() {
                self.telemetry = Some(TelemetryRing::with_session(
                    DEFAULT_RING_CAPACITY,
                    1,
                    self.session,
                ));
            }
        } else {
            self.telemetry = None;
        }
    }

    fn take_telemetry(&mut self) -> Option<TelemetryRing> {
        let taken = self.telemetry.take();
        if let Some(r) = &taken {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                r.session(),
            ));
        }
        taken
    }

    fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    fn set_flight_recorder(&mut self, cfg: Option<FlightConfig>) {
        self.flight = cfg.map(|c| FlightRecorder::new(1, c));
    }

    fn take_flight_window(&mut self) -> Option<FlightWindow> {
        self.flight.as_mut().map(|r| r.take_window())
    }

    fn adopt_generation(&mut self, staged: StagedGeneration) -> Result<u64, SwapError> {
        let (mut exec, _plan) = staged.into_parts();
        exec.carry_over_from(&mut self.exec);
        self.exec = exec;
        // The epoch keeps counting: nothing in the fresh graph can claim to
        // be done for a past or future cycle.
        self.generation += 1;
        Ok(self.generation)
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn read_output(&mut self, node: NodeId, dst: &mut AudioBuf) {
        self.exec.read_output_internal(node, dst);
    }

    fn node_processor(&mut self, node: NodeId) -> &mut dyn Processor {
        self.exec.node_processor_internal(node)
    }

    fn topology(&self) -> &GraphTopology {
        self.exec.topology()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Section, TaskGraphBuilder};
    use crate::processor::FnProcessor;

    fn chain_graph(n: usize) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let mut prev: Option<NodeId> = None;
        for i in 0..n {
            let preds: Vec<NodeId> = prev.into_iter().collect();
            prev = Some(b.add(
                format!("n{i}"),
                Section::Master,
                Box::new(FnProcessor(
                    move |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                        let base = inp.first().map(|b| b.sample(0, 0)).unwrap_or(0.0);
                        out.samples_mut().fill(base + 1.0);
                    },
                )),
                &preds,
            ));
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_accumulates_through_cycle() {
        let mut ex = SequentialExecutor::new(chain_graph(5), 4);
        ex.run_cycle(&[], &[]);
        let mut out = AudioBuf::zeroed(2, 4);
        ex.read_output(NodeId(4), &mut out);
        assert_eq!(out.sample(0, 0), 5.0);
    }

    #[test]
    fn trace_is_a_valid_order_on_one_worker() {
        let mut ex = SequentialExecutor::new(chain_graph(6), 4);
        ex.set_tracing(true);
        ex.run_cycle(&[], &[]);
        let trace = ex.take_trace().unwrap();
        assert_eq!(trace.executions().len(), 6);
        assert_eq!(trace.execution_order(), vec![0, 1, 2, 3, 4, 5]);
        let topo = ex.topology();
        assert!(trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()));
        // All on worker 0.
        assert!(trace.events.iter().all(|e| e.worker == 0));
    }

    #[test]
    fn take_trace_none_when_untraced() {
        let mut ex = SequentialExecutor::new(chain_graph(2), 4);
        ex.run_cycle(&[], &[]);
        assert!(ex.take_trace().is_none());
    }

    #[test]
    fn epochs_isolate_cycles() {
        let mut ex = SequentialExecutor::new(chain_graph(3), 4);
        let r1 = ex.run_cycle(&[], &[]);
        let r2 = ex.run_cycle(&[], &[]);
        assert!(r1.duration.as_nanos() > 0);
        assert!(r2.duration.as_nanos() > 0);
        let mut out = AudioBuf::zeroed(2, 4);
        ex.read_output(NodeId(2), &mut out);
        assert_eq!(out.sample(0, 0), 3.0);
    }
}
