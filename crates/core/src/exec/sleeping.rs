//! The thread-sleeping strategy (§V-B).
//!
//! Same round-robin static assignment as BUSY, but "instead of actively
//! waiting for dependency fulfillment … threads are explicitly put to sleep
//! until their dependencies are met. … Nodes that are finished computing
//! send a signal to their successor node which in turn wakes up its assigned
//! thread. The wake up procedure only occurs when all predecessor nodes are
//! finished."
//!
//! Mechanics: each node has a `pending` counter (unmet predecessors this
//! epoch) and a `waiter` slot. A worker arriving at a node with
//! `pending > 0` registers itself in `waiter`, re-checks, and parks
//! (register → re-check → park, so a wake between the check and the park is
//! never lost — `unpark` before `park` leaves a token). A worker finishing
//! a node decrements each successor's `pending` with `AcqRel`; the one that
//! brings it to zero swaps out the `waiter` and unparks it. The `AcqRel`
//! read-modify-write chain forms a release sequence, so the executor that
//! observes `pending == 0` with `Acquire` sees every predecessor's output.
//!
//! Deadlock freedom follows from the same queue-position argument as BUSY.

use super::pool::{PoolBinding, SessionState, VenuePool};
use super::{
    CycleResult, ExecGraph, GraphExecutor, RawEvent, Shared, StagedGeneration, Strategy, SwapError,
};
use crate::faults::FaultPlan;
use crate::flight::{FlightConfig, FlightWindow, Span, SpanKind};
use crate::graph::{GraphTopology, NodeId, Priority, TaskGraph};
use crate::processor::Processor;
use crate::telemetry::{TelemetryRing, DEFAULT_RING_CAPACITY};
use crate::trace::{ScheduleTrace, TraceKind};
use djstar_dsp::AudioBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Thread-sleeping executor: static round-robin assignment + park/unpark.
pub struct SleepExecutor {
    shared: Arc<Shared>,
    pool: PoolBinding,
    tracing: bool,
    last_trace: Option<ScheduleTrace>,
    telemetry: Option<TelemetryRing>,
    session: u32,
}

impl SleepExecutor {
    /// Build the executor with `threads` workers (including the calling
    /// thread) over `graph` with `frames`-frame buffers.
    ///
    /// # Panics
    /// Panics if `threads == 0` or `threads > 64`.
    pub fn new(graph: TaskGraph, threads: usize, frames: usize) -> Self {
        Self::with_priority(graph, threads, frames, Priority::Depth)
    }

    /// Like [`new`](Self::new), but walking the queue in the order selected
    /// by `priority` (depth order is the production default).
    pub fn with_priority(
        graph: TaskGraph,
        threads: usize,
        frames: usize,
        priority: Priority,
    ) -> Self {
        let pool = Arc::new(VenuePool::new(threads));
        Self::with_pool(graph, threads, frames, priority, &pool)
    }

    /// Register this session on an existing shared [`VenuePool`] instead of
    /// spawning private threads. `threads` is this session's lane count and
    /// must not exceed the pool's.
    pub fn with_pool(
        graph: TaskGraph,
        threads: usize,
        frames: usize,
        priority: Priority,
        pool: &Arc<VenuePool>,
    ) -> Self {
        assert!((1..=64).contains(&threads), "1..=64 threads supported");
        let shared = Arc::new(Shared::new(
            ExecGraph::new(graph, frames),
            threads,
            priority,
        ));
        // SAFETY: no cycle in flight yet.
        unsafe { shared.handles.set(pool.session_handles(threads)) };
        let pool = pool.register(SessionState::Sleep(Arc::clone(&shared)));
        SleepExecutor {
            shared,
            pool,
            tracing: false,
            last_trace: None,
            telemetry: None,
            session: 0,
        }
    }
}

/// Wait for `node`'s dependencies by parking. Returns `None` when the node
/// was ready immediately, otherwise `Some(parks)` with the number of
/// `park()` calls actually made (0 when the dependency arrived between
/// registration and parking).
fn sleep_until_ready(shared: &Shared, node: usize, me: usize) -> Option<u64> {
    let cell = shared.graph().cell(node);
    if cell_pending(shared, node) == 0 {
        return None;
    }
    let mut parks = 0u64;
    loop {
        // Register as this node's executor, then re-check before parking.
        cell.waiter.store(me + 1, Ordering::SeqCst);
        if cell_pending(shared, node) == 0 {
            cell.waiter.store(0, Ordering::SeqCst);
            return Some(parks);
        }
        std::thread::park();
        parks += 1;
        // Spurious wakes (e.g. the cycle-start broadcast token) re-check.
        if cell_pending(shared, node) == 0 {
            cell.waiter.store(0, Ordering::SeqCst);
            return Some(parks);
        }
    }
}

#[inline]
fn cell_pending(shared: &Shared, node: usize) -> u32 {
    shared.graph().cell(node).pending.load(Ordering::Acquire)
}

pub(crate) fn run_cycle_part(shared: &Shared, me: usize, epoch: u64) {
    let tracing = shared.tracing.load(Ordering::Relaxed);
    let telem = shared.telemetry.load(Ordering::Relaxed);
    let rec = shared.flight_on();
    let counters = &shared.counters[me];
    let topo = shared.graph().topology();
    let faults = shared.fault_plan();
    // SAFETY: epoch acquired.
    let ctx = if telem || rec {
        unsafe { shared.ctx_counted(epoch, me) }
    } else {
        unsafe { shared.ctx(epoch) }
    };
    // SAFETY: handles were written before the epoch was published.
    let handles = unsafe { shared.handles.get() };
    if let Some(plan) = faults {
        if rec {
            let s0 = Instant::now();
            if plan.inject_stalls(epoch, me, shared.threads, counters) > 0 {
                shared.record_span(
                    me,
                    epoch,
                    Span::NO_NODE,
                    SpanKind::Fault,
                    s0,
                    Instant::now(),
                );
            }
        } else {
            plan.inject_stalls(epoch, me, shared.threads, counters);
        }
    }
    let mut events: Vec<RawEvent> = Vec::new();
    for (k, &node) in shared.order().iter().enumerate() {
        if k % shared.threads != me {
            continue;
        }
        if tracing || telem || rec {
            let w0 = Instant::now();
            if let Some(parks) = sleep_until_ready(shared, node as usize, me) {
                let w1 = Instant::now();
                if tracing {
                    events.push(RawEvent {
                        node,
                        kind: TraceKind::Sleep,
                        start: w0,
                        end: w1,
                    });
                }
                if telem {
                    counters.add_park(parks, (w1 - w0).as_nanos() as u64);
                }
                if rec {
                    shared.record_span(me, epoch, node, SpanKind::Sleep, w0, w1);
                }
            }
            let t0 = Instant::now();
            let mut fault_end = t0;
            if let Some(plan) = faults {
                let injected = plan.inject_node(epoch, node, counters);
                if rec && injected > 0 {
                    fault_end = Instant::now();
                }
            }
            let net0 = if rec { shared.net_ns_of(me) } else { (0, 0) };
            // SAFETY: exactly-once ownership (static assignment); pending==0
            // observed with Acquire implies all predecessor outputs visible.
            unsafe { shared.graph().execute(node as usize, &ctx) };
            let t1 = Instant::now();
            if tracing {
                events.push(RawEvent {
                    node,
                    kind: TraceKind::Exec,
                    start: t0,
                    end: t1,
                });
            }
            if telem {
                counters.add_exec((t1 - t0).as_nanos() as u64);
            }
            if rec {
                if fault_end > t0 {
                    shared.record_span(me, epoch, node, SpanKind::Fault, t0, fault_end);
                }
                shared.record_exec_carved(me, epoch, node, fault_end, t1, net0);
            }
        } else {
            sleep_until_ready(shared, node as usize, me);
            if let Some(plan) = faults {
                plan.inject_node(epoch, node, counters);
            }
            // SAFETY: as above.
            unsafe { shared.graph().execute(node as usize, &ctx) };
        }
        // Signal successors; wake the registered executor of any successor
        // whose last dependency this was.
        for &s in topo.succs(NodeId(node)) {
            let sc = shared.graph().cell(s as usize);
            if sc.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let w = sc.waiter.swap(0, Ordering::SeqCst);
                if w != 0 {
                    if telem {
                        counters.add_unpark();
                    }
                    if tracing || rec {
                        let u0 = Instant::now();
                        handles[w - 1].unpark();
                        let u1 = Instant::now();
                        if tracing {
                            events.push(RawEvent {
                                node: s,
                                kind: TraceKind::Unpark,
                                start: u0,
                                end: u1,
                            });
                        }
                        if rec {
                            shared.record_span(me, epoch, s, SpanKind::Unpark, u0, u1);
                        }
                    } else {
                        handles[w - 1].unpark();
                    }
                }
            }
        }
        shared.node_finished();
    }
    if tracing {
        shared.flush_trace(me, events);
    }
}

impl GraphExecutor for SleepExecutor {
    fn strategy(&self) -> Strategy {
        Strategy::Sleep
    }

    fn threads(&self) -> usize {
        self.shared.threads
    }

    fn run_cycle(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> CycleResult {
        let epoch = self
            .venue_stage(external_audio, controls)
            .expect("sleep executor always stages");
        self.pool.pool().dispatch();
        run_cycle_part(&self.shared, 0, epoch);
        let result = self.venue_collect(epoch);
        self.pool.pool().quiesce();
        result
    }

    fn venue_stage(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> Option<u64> {
        self.pool.pool().quiesce();
        self.shared.tracing.store(self.tracing, Ordering::Relaxed);
        self.shared
            .telemetry
            .store(self.telemetry.is_some(), Ordering::Relaxed);
        // SAFETY: driver thread, no cycle in flight (`&mut self`), pool
        // quiescent.
        let epoch = unsafe { self.shared.prepare_cycle(external_audio, controls) };
        self.pool.stage(epoch);
        Some(epoch)
    }

    fn venue_collect(&mut self, epoch: u64) -> CycleResult {
        self.shared.wait_cycle_done();
        let end = Instant::now();
        // SAFETY: driver-owned; set by `prepare_cycle` this cycle.
        let start = unsafe { *self.shared.cycle_start.get() };
        let duration = end - start;
        if self.shared.flight_on() {
            self.shared.stamp_cycle(epoch, end);
        }
        if let Some(ring) = self.telemetry.as_mut() {
            // Every worker's last counter update precedes its final
            // done-count increment, acquired by `wait_cycle_done`.
            let slot = ring.begin_push(epoch, duration.as_nanos() as u64);
            self.shared.drain_counters(slot);
        }
        if self.tracing {
            self.shared.wait_trace_flushed();
            self.last_trace = Some(self.shared.collect_trace());
        }
        CycleResult { duration }
    }

    fn set_session(&mut self, session: u32) {
        self.session = session;
        if let Some(r) = &self.telemetry {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                session,
            ));
        }
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn take_trace(&mut self) -> Option<ScheduleTrace> {
        self.last_trace.take()
    }

    fn set_telemetry(&mut self, on: bool) {
        if on {
            if self.telemetry.is_none() {
                self.telemetry = Some(TelemetryRing::with_session(
                    DEFAULT_RING_CAPACITY,
                    self.shared.threads,
                    self.session,
                ));
            }
        } else {
            self.telemetry = None;
        }
    }

    fn take_telemetry(&mut self) -> Option<TelemetryRing> {
        let taken = self.telemetry.take();
        if let Some(r) = &taken {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                r.session(),
            ));
        }
        taken
    }

    fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.pool.pool().quiesce();
        // SAFETY: driver-only between cycles (`&mut self`), pool quiescent;
        // published to workers by the next epoch Release store.
        unsafe { self.shared.faults.set(plan) };
    }

    fn set_flight_recorder(&mut self, cfg: Option<FlightConfig>) {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.install_recorder(cfg);
    }

    fn take_flight_window(&mut self) -> Option<FlightWindow> {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.take_window()
    }

    fn adopt_generation(&mut self, staged: StagedGeneration) -> Result<u64, SwapError> {
        let (exec, _plan) = staged.into_parts();
        self.pool.pool().quiesce();
        // SAFETY: `&mut self` proves no cycle in flight; the pool is
        // quiescent, so workers touch no node state until the next batch.
        Ok(unsafe { self.shared.adopt_exec(exec) })
    }

    fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Relaxed)
    }

    fn read_output(&mut self, node: NodeId, dst: &mut AudioBuf) {
        self.pool.pool().quiesce();
        // SAFETY: `&mut self` proves no cycle in flight; pool quiescent.
        unsafe { self.shared.graph().read_output_unsync(node, dst) };
    }

    fn node_processor(&mut self, node: NodeId) -> &mut dyn Processor {
        self.pool.pool().quiesce();
        // SAFETY: as in `read_output`.
        unsafe { self.shared.graph().node_processor_unsync(node) }
    }

    fn topology(&self) -> &GraphTopology {
        self.shared.graph().topology()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{diamond_sum_graph, fan_graph, run_and_check};

    #[test]
    fn computes_same_result_as_sequential() {
        for threads in [1, 2, 3, 4] {
            run_and_check(
                |g, frames| Box::new(SleepExecutor::new(g, threads, frames)),
                &format!("sleep-{threads}"),
            );
        }
    }

    #[test]
    fn critical_path_priority_matches_sequential() {
        run_and_check(
            |g, frames| {
                Box::new(SleepExecutor::with_priority(
                    g,
                    3,
                    frames,
                    Priority::CriticalPath,
                ))
            },
            "sleep-cp-3",
        );
    }

    #[test]
    fn diamond_many_cycles() {
        let mut ex = SleepExecutor::new(diamond_sum_graph(), 3, 8);
        for _ in 0..200 {
            ex.run_cycle(&[], &[]);
            let mut out = AudioBuf::zeroed(2, 8);
            ex.read_output(NodeId(3), &mut out);
            assert_eq!(out.sample(0, 0), 3.0);
        }
    }

    #[test]
    fn trace_has_sleep_kind_and_valid_order() {
        let mut ex = SleepExecutor::new(fan_graph(16), 4, 8);
        ex.set_tracing(true);
        let mut saw_any_sleep = false;
        for _ in 0..50 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            let topo = ex.topology();
            assert!(trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()));
            saw_any_sleep |= trace.events.iter().any(|e| e.kind == TraceKind::Sleep);
        }
        // On a single-core CI box sleeping is in fact very likely, but we
        // only assert the structural properties above; `saw_any_sleep` keeps
        // the variable observable without making the test flaky.
        let _ = saw_any_sleep;
    }
}
