//! The work-stealing strategy (§V-C).
//!
//! "1) Each thread gets its own working queue. 2) This queue only contains
//! nodes which are executable, i.e. all dependencies are met. 3) Threads can
//! steal nodes from other threads once their own queue is empty. … When a
//! new APC starts, the main thread fills up the processing queues of all
//! executor threads. It distributes all nodes without dependencies (source
//! nodes) to the threads. We categorize the source nodes as Deck A/B/C/D or
//! Master in order to be able to assign nodes from the same section to the
//! same thread."
//!
//! Ownership transfer: a node enters a deque exactly once — either seeded by
//! the driver between cycles, or pushed by the worker whose `fetch_sub`
//! brought its pending counter to zero (which happens for exactly one
//! caller). Deque `pop`/`steal` hand each element to exactly one thread, so
//! the exactly-once execution invariant holds.
//!
//! Idle workers park in an [`IdleSet`]; a worker that releases ready
//! successors wakes sleepers to come and steal. "Sleeping in fact only
//! occurs when there are solely nodes available with unfinished
//! dependencies" — i.e. near the end of the graph (§VI). The driver (worker
//! 0) never parks intra-cycle; it spin-yields so it can observe completion.

use super::pool::{PoolBinding, SessionState, VenuePool};
use super::{
    CycleResult, DriverCell, ExecGraph, GraphExecutor, RawEvent, Shared, StagedGeneration,
    Strategy, SwapError,
};
use crate::deque::{Steal, WorkDeque};
use crate::faults::FaultPlan;
use crate::flight::{FlightConfig, FlightWindow, Span, SpanKind};
use crate::graph::{GraphTopology, NodeId, Priority, Section, TaskGraph};
use crate::idle::IdleSet;
use crate::processor::{CycleCtx, Processor};
use crate::telemetry::{TelemetryRing, DEFAULT_RING_CAPACITY};
use crate::trace::{ScheduleTrace, TraceKind};
use djstar_dsp::AudioBuf;
use std::sync::atomic::{fence, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Shared state of the work-stealing executor: the common cycle machinery
/// plus per-worker deques and the idle set.
pub(crate) struct WsShared {
    pub base: Shared,
    /// Per-worker deques. Behind a [`DriverCell`] so a generation swap can
    /// replace them with larger ones; the replacement happens between
    /// cycles (after the exit barrier the deques are quiescent) and is
    /// published by the next epoch store, like the graph itself.
    deques: DriverCell<Vec<WorkDeque>>,
    /// Filled by the driver right after spawning, before the first cycle.
    pub idle: OnceLock<IdleSet>,
}

impl WsShared {
    /// The per-worker deques; same access contract as [`Shared::graph`].
    #[inline]
    fn deques(&self) -> &[WorkDeque] {
        // SAFETY: replaced only by the driver between cycles; workers read
        // after the epoch-acquire edge.
        unsafe { self.deques.get() }
    }
}

/// Work-stealing executor.
pub struct StealExecutor {
    shared: Arc<WsShared>,
    pool: PoolBinding,
    tracing: bool,
    last_trace: Option<ScheduleTrace>,
    telemetry: Option<TelemetryRing>,
    session: u32,
}

/// Which worker a section's source nodes are seeded to (§V-C's
/// deck-affinity categorization).
pub(crate) fn seed_target(section: Section, threads: usize) -> usize {
    match section.deck_index() {
        Some(d) => d % threads,
        None => 4 % threads,
    }
}

impl StealExecutor {
    /// Build the executor with `threads` workers (including the calling
    /// thread) over `graph` with `frames`-frame buffers.
    ///
    /// # Panics
    /// Panics if `threads == 0` or `threads > 64`.
    pub fn new(graph: TaskGraph, threads: usize, frames: usize) -> Self {
        Self::with_priority(graph, threads, frames, Priority::Depth)
    }

    /// Like [`new`](Self::new), but with [`Priority::CriticalPath`] the
    /// successors a finishing node releases are pushed in ascending
    /// critical-path order, so the LIFO pop takes the longest-path successor
    /// first.
    pub fn with_priority(
        graph: TaskGraph,
        threads: usize,
        frames: usize,
        priority: Priority,
    ) -> Self {
        let pool = Arc::new(VenuePool::new(threads));
        Self::with_pool(graph, threads, frames, priority, &pool)
    }

    /// Register this session on an existing shared [`VenuePool`] instead of
    /// spawning private threads. `threads` is this session's lane count and
    /// must not exceed the pool's.
    pub fn with_pool(
        graph: TaskGraph,
        threads: usize,
        frames: usize,
        priority: Priority,
        pool: &Arc<VenuePool>,
    ) -> Self {
        assert!((1..=64).contains(&threads), "1..=64 threads supported");
        let exec = ExecGraph::new(graph, frames);
        let nodes = exec.len();
        let shared = Arc::new(WsShared {
            base: Shared::new(exec, threads, priority),
            deques: DriverCell::new((0..threads).map(|_| WorkDeque::new(nodes.max(4))).collect()),
            idle: OnceLock::new(),
        });
        let handles = pool.session_handles(threads);
        shared
            .idle
            .set(IdleSet::new(handles.clone()))
            .expect("idle set initialized once");
        // SAFETY: no cycle in flight yet.
        unsafe { shared.base.handles.set(handles) };
        let pool = pool.register(SessionState::Steal(Arc::clone(&shared)));
        StealExecutor {
            shared,
            pool,
            tracing: false,
            last_trace: None,
            telemetry: None,
            session: 0,
        }
    }
}

/// One steal sweep over the other workers' deques.
fn steal_sweep(ws: &WsShared, me: usize) -> Option<u32> {
    let threads = ws.base.threads;
    for off in 1..threads {
        let victim = (me + off) % threads;
        loop {
            match ws.deques()[victim].steal() {
                Steal::Success(n) => return Some(n),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

/// True when every deque currently appears empty.
fn all_deques_empty(ws: &WsShared) -> bool {
    ws.deques().iter().all(|d| d.is_empty())
}

/// Execute `node`, release ready successors to `me`'s deque, wake thieves.
///
/// # Safety
/// `node` must have been obtained from a deque `pop`/`steal` this epoch
/// (exactly-once ownership; readiness was established by the pending
/// protocol before the node entered a deque).
#[allow(clippy::too_many_arguments)] // the three observability gates travel together
unsafe fn run_node(
    ws: &WsShared,
    me: usize,
    node: u32,
    ctx: &CycleCtx<'_>,
    tracing: bool,
    telem: bool,
    rec: bool,
    events: &mut Vec<RawEvent>,
) {
    let counters = &ws.base.counters[me];
    let faults = ws.base.fault_plan();
    if tracing || telem || rec {
        let t0 = Instant::now();
        let mut fault_end = t0;
        if let Some(plan) = faults {
            let injected = plan.inject_node(ctx.epoch, node, counters);
            if rec && injected > 0 {
                fault_end = Instant::now();
            }
        }
        let net0 = if rec { ws.base.net_ns_of(me) } else { (0, 0) };
        ws.base.graph().execute(node as usize, ctx);
        let t1 = Instant::now();
        if tracing {
            events.push(RawEvent {
                node,
                kind: TraceKind::Exec,
                start: t0,
                end: t1,
            });
        }
        if telem {
            counters.add_exec((t1 - t0).as_nanos() as u64);
        }
        if rec {
            if fault_end > t0 {
                ws.base
                    .record_span(me, ctx.epoch, node, SpanKind::Fault, t0, fault_end);
            }
            ws.base
                .record_exec_carved(me, ctx.epoch, node, fault_end, t1, net0);
        }
    } else {
        if let Some(plan) = faults {
            plan.inject_node(ctx.epoch, node, counters);
        }
        ws.base.graph().execute(node as usize, ctx);
    }
    let idle = ws.idle.get().expect("idle set initialized");
    let mut released = 0u32;
    // Under critical-path priority successors are visited in ascending
    // cp-order, so the longest-path one is pushed last and popped first.
    for &s in ws.base.succ_order(node) {
        if ws
            .base
            .graph()
            .cell(s as usize)
            .pending
            .fetch_sub(1, Ordering::AcqRel)
            == 1
        {
            ws.deques()[me]
                .push(s)
                .expect("deque sized for the whole graph");
            released += 1;
        }
    }
    if released > 0 {
        if telem {
            counters.note_deque_depth(ws.deques()[me].len() as u64);
        }
        // Publish the pushes before scanning for sleepers (pairs with the
        // fence idle workers issue between registering and re-checking).
        fence(Ordering::SeqCst);
        for _ in 0..released {
            if idle.wake_one().is_none() {
                break;
            }
            if telem {
                counters.add_unpark();
            }
        }
    }
    if ws.base.node_finished() {
        // Last node of the cycle: release every sleeper so all workers
        // observe completion and return to the cycle barrier.
        idle.wake_all();
    }
}

pub(crate) fn run_cycle_part(ws: &WsShared, me: usize, epoch: u64) {
    let tracing = ws.base.tracing.load(Ordering::Relaxed);
    let telem = ws.base.telemetry.load(Ordering::Relaxed);
    let rec = ws.base.flight_on();
    let counters = &ws.base.counters[me];
    // SAFETY: epoch acquired.
    let ctx = if telem || rec {
        unsafe { ws.base.ctx_counted(epoch, me) }
    } else {
        unsafe { ws.base.ctx(epoch) }
    };
    let idle = ws.idle.get().expect("idle set initialized");
    let total = ws.base.graph().len() as u32;
    if let Some(plan) = ws.base.fault_plan() {
        if rec {
            let s0 = Instant::now();
            if plan.inject_stalls(epoch, me, ws.base.threads, counters) > 0 {
                ws.base.record_span(
                    me,
                    epoch,
                    Span::NO_NODE,
                    SpanKind::Fault,
                    s0,
                    Instant::now(),
                );
            }
        } else {
            plan.inject_stalls(epoch, me, ws.base.threads, counters);
        }
    }
    let mut events: Vec<RawEvent> = Vec::new();
    loop {
        // 1. Local work, newest first (LIFO: §V-C cache-locality argument).
        if let Some(node) = ws.deques()[me].pop() {
            // SAFETY: popped from own deque.
            unsafe { run_node(ws, me, node, &ctx, tracing, telem, rec, &mut events) };
            continue;
        }
        // 2. Steal, oldest first from a victim.
        let stolen = if tracing || telem || rec {
            let s0 = Instant::now();
            let stolen = steal_sweep(ws, me);
            if telem {
                counters.add_steal(stolen.is_some());
            }
            if tracing {
                if let Some(node) = stolen {
                    events.push(RawEvent {
                        node,
                        kind: TraceKind::Steal,
                        start: s0,
                        end: Instant::now(),
                    });
                }
            }
            if rec {
                if let Some(node) = stolen {
                    ws.base
                        .record_span(me, epoch, node, SpanKind::Steal, s0, Instant::now());
                }
            }
            stolen
        } else {
            steal_sweep(ws, me)
        };
        if let Some(node) = stolen {
            // SAFETY: stolen exactly once.
            unsafe { run_node(ws, me, node, &ctx, tracing, telem, rec, &mut events) };
            continue;
        }
        // 3. Cycle complete?
        if ws.base.done_count.load(Ordering::Acquire) == total {
            break;
        }
        // 4. Idle. The driver spin-yields (it must observe completion and
        //    may be running on a thread the IdleSet has no handle for);
        //    workers park until new work is released.
        if me == 0 {
            std::thread::yield_now();
            continue;
        }
        idle.register(me);
        fence(Ordering::SeqCst);
        if !all_deques_empty(ws) || ws.base.done_count.load(Ordering::Acquire) == total {
            idle.deregister(me);
            continue;
        }
        if tracing || telem || rec {
            let w0 = Instant::now();
            std::thread::park();
            let w1 = Instant::now();
            if tracing {
                events.push(RawEvent {
                    node: u32::MAX,
                    kind: TraceKind::Idle,
                    start: w0,
                    end: w1,
                });
            }
            if telem {
                counters.add_park(1, (w1 - w0).as_nanos() as u64);
            }
            if rec {
                ws.base
                    .record_span(me, epoch, Span::NO_NODE, SpanKind::Idle, w0, w1);
            }
        } else {
            std::thread::park();
        }
        idle.deregister(me);
    }
    if tracing {
        ws.base.flush_trace(me, events);
    }
    // Exit barrier: a worker that has left this loop can no longer pop
    // work, so once every worker has signalled, the driver may safely seed
    // the next cycle's deques. (Telemetry relies on it too: the idle-park
    // counters above may be recorded after this worker's last
    // `node_finished`, so the driver drains only after this barrier.)
    ws.base.signal_cycle_exit();
}

impl GraphExecutor for StealExecutor {
    fn strategy(&self) -> Strategy {
        Strategy::Steal
    }

    fn threads(&self) -> usize {
        self.shared.base.threads
    }

    fn run_cycle(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> CycleResult {
        let epoch = self
            .venue_stage(external_audio, controls)
            .expect("ws executor always stages");
        self.pool.pool().dispatch();
        run_cycle_part(&self.shared, 0, epoch);
        let result = self.venue_collect(epoch);
        self.pool.pool().quiesce();
        result
    }

    fn venue_stage(&mut self, external_audio: &[AudioBuf], controls: &[f32]) -> Option<u64> {
        // The previous batch must be fully exited before the deques are
        // reseeded (a lagging pool worker could still be scanning them).
        self.pool.pool().quiesce();
        let ws = &self.shared;
        ws.base.tracing.store(self.tracing, Ordering::Relaxed);
        ws.base
            .telemetry
            .store(self.telemetry.is_some(), Ordering::Relaxed);
        // Seed source nodes by section affinity *before* publishing the
        // epoch; the deques are quiescent between cycles, so these pushes
        // are ordinary owner pushes logically performed on behalf of each
        // target worker.
        let topo = ws.base.graph().topology();
        ws.base.graph().reset_pending();
        for &src in topo.sources() {
            let target = seed_target(topo.section(NodeId(src)), ws.base.threads);
            ws.deques()[target]
                .push(src)
                .expect("deque sized for the whole graph");
        }
        if self.telemetry.is_some() {
            // Seeded depth counts toward each worker's deque high water.
            for (i, d) in ws.deques().iter().enumerate() {
                ws.base.counters[i].note_deque_depth(d.len() as u64);
            }
        }
        // SAFETY: driver thread, no cycle in flight. (`prepare_cycle`
        // resets the pending counters again; that is idempotent.)
        let epoch = unsafe { ws.base.prepare_cycle(external_audio, controls) };
        self.pool.stage(epoch);
        Some(epoch)
    }

    fn venue_collect(&mut self, epoch: u64) -> CycleResult {
        let ws = &self.shared;
        ws.base.wait_cycle_done();
        // All nodes are done; now wait for every worker to leave the work
        // loop so none can touch the deques we will seed next cycle.
        ws.base.wait_cycle_exited(ws.base.threads as u32);
        let end = Instant::now();
        // SAFETY: driver-owned; set by `prepare_cycle` this cycle.
        let start = unsafe { *ws.base.cycle_start.get() };
        let duration = end - start;
        if ws.base.flight_on() {
            ws.base.stamp_cycle(epoch, end);
        }
        if let Some(ring) = self.telemetry.as_mut() {
            // Drain strictly after the exit barrier: idle-park counters can
            // be recorded after a worker's last `node_finished`, but always
            // before its `signal_cycle_exit`.
            let slot = ring.begin_push(epoch, duration.as_nanos() as u64);
            ws.base.drain_counters(slot);
        }
        if self.tracing {
            ws.base.wait_trace_flushed();
            self.last_trace = Some(ws.base.collect_trace());
        }
        CycleResult { duration }
    }

    fn set_session(&mut self, session: u32) {
        self.session = session;
        if let Some(r) = &self.telemetry {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                session,
            ));
        }
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    fn take_trace(&mut self) -> Option<ScheduleTrace> {
        self.last_trace.take()
    }

    fn set_telemetry(&mut self, on: bool) {
        if on {
            if self.telemetry.is_none() {
                self.telemetry = Some(TelemetryRing::with_session(
                    DEFAULT_RING_CAPACITY,
                    self.shared.base.threads,
                    self.session,
                ));
            }
        } else {
            self.telemetry = None;
        }
    }

    fn take_telemetry(&mut self) -> Option<TelemetryRing> {
        let taken = self.telemetry.take();
        if let Some(r) = &taken {
            self.telemetry = Some(TelemetryRing::with_session(
                r.capacity(),
                r.workers(),
                r.session(),
            ));
        }
        taken
    }

    fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.pool.pool().quiesce();
        // SAFETY: driver-only between cycles (`&mut self`), pool quiescent;
        // published to workers by the next epoch Release store.
        unsafe { self.shared.base.faults.set(plan) };
    }

    fn set_flight_recorder(&mut self, cfg: Option<FlightConfig>) {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.base.install_recorder(cfg);
    }

    fn take_flight_window(&mut self) -> Option<FlightWindow> {
        // Driver-only between cycles (`&mut self`).
        self.pool.pool().quiesce();
        self.shared.base.take_window()
    }

    fn adopt_generation(&mut self, staged: StagedGeneration) -> Result<u64, SwapError> {
        let (exec, _plan) = staged.into_parts();
        let nodes = exec.len();
        self.pool.pool().quiesce();
        let ws = &self.shared;
        // SAFETY: `&mut self` proves no cycle is in flight, and the exit
        // barrier plus the pool quiesce guarantee every worker has left the
        // work loop — the deques are quiescent. Both the deque replacement
        // and the graph swap are published by the next epoch Release store.
        unsafe {
            if ws.deques().iter().any(|d| d.capacity() < nodes) {
                ws.deques.set(
                    (0..ws.base.threads)
                        .map(|_| WorkDeque::new(nodes.max(4)))
                        .collect(),
                );
            }
            Ok(ws.base.adopt_exec(exec))
        }
    }

    fn generation(&self) -> u64 {
        self.shared.base.generation.load(Ordering::Relaxed)
    }

    fn read_output(&mut self, node: NodeId, dst: &mut AudioBuf) {
        self.pool.pool().quiesce();
        // SAFETY: `&mut self` proves no cycle in flight; pool quiescent.
        unsafe { self.shared.base.graph().read_output_unsync(node, dst) };
    }

    fn node_processor(&mut self, node: NodeId) -> &mut dyn Processor {
        self.pool.pool().quiesce();
        // SAFETY: as in `read_output`.
        unsafe { self.shared.base.graph().node_processor_unsync(node) }
    }

    fn topology(&self) -> &GraphTopology {
        self.shared.base.graph().topology()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_support::{diamond_sum_graph, fan_graph, run_and_check};

    #[test]
    fn computes_same_result_as_sequential() {
        for threads in [1, 2, 3, 4] {
            run_and_check(
                |g, frames| Box::new(StealExecutor::new(g, threads, frames)),
                &format!("ws-{threads}"),
            );
        }
    }

    #[test]
    fn critical_path_priority_matches_sequential() {
        for threads in [1, 4] {
            run_and_check(
                |g, frames| {
                    Box::new(StealExecutor::with_priority(
                        g,
                        threads,
                        frames,
                        Priority::CriticalPath,
                    ))
                },
                &format!("ws-cp-{threads}"),
            );
        }
    }

    #[test]
    fn diamond_many_cycles() {
        let mut ex = StealExecutor::new(diamond_sum_graph(), 4, 8);
        for _ in 0..200 {
            ex.run_cycle(&[], &[]);
            let mut out = AudioBuf::zeroed(2, 8);
            ex.read_output(NodeId(3), &mut out);
            assert_eq!(out.sample(0, 0), 3.0);
        }
    }

    #[test]
    fn every_node_executed_exactly_once_per_cycle() {
        let mut ex = StealExecutor::new(fan_graph(16), 4, 8);
        ex.set_tracing(true);
        for _ in 0..30 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            let mut nodes: Vec<u32> = trace.executions().iter().map(|e| e.node).collect();
            nodes.sort_unstable();
            let expect: Vec<u32> = (0..ex.topology().len() as u32).collect();
            assert_eq!(nodes, expect);
            let topo = ex.topology();
            assert!(trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()));
        }
    }

    #[test]
    fn seed_targets_follow_sections() {
        assert_eq!(seed_target(Section::DeckA, 4), 0);
        assert_eq!(seed_target(Section::DeckB, 4), 1);
        assert_eq!(seed_target(Section::DeckC, 4), 2);
        assert_eq!(seed_target(Section::DeckD, 4), 3);
        assert_eq!(seed_target(Section::Master, 4), 0);
        assert_eq!(seed_target(Section::DeckD, 2), 1);
        assert_eq!(seed_target(Section::Master, 1), 0);
    }
}
