//! Seeded fault injection for the executors.
//!
//! The paper's Table 1 numbers assume a quiet machine. A real DJ rig sees
//! CPU contention, cache-cold cycles and pathological node spikes; to test
//! how the schedulers (and the engine's degradation policy) behave under
//! such conditions *deterministically*, this module injects three fault
//! classes into the node-execution path of every executor:
//!
//! * **node duration spikes** — a per-`(cycle, node)` Bernoulli draw adds
//!   `spike_iters` calibration-kernel iterations to that node's execution,
//! * **worker stalls** — a per-`(cycle, lane)` draw over a *fixed* number
//!   of virtual lanes charges `stall_iters` to the worker `lane % threads`
//!   at the start of its cycle part, modeling preemption of one OS thread,
//! * **pressure episodes** — a deterministic square wave
//!   (`pressure_period`/`pressure_len`) adds `pressure_iters` to *every*
//!   node while high, modeling sustained external CPU load.
//!
//! Every decision is a pure function of `(seed, cycle, node-or-lane)`
//! hashed through SplitMix64 ([`SmallRng`]) — no state, no allocation, no
//! new dependencies. Two consequences the tests rely on:
//!
//! 1. **strategy independence** — which worker executes a node never
//!    changes what is injected into it, and the lane→worker folding keeps
//!    stall *totals* identical across thread counts, so all six strategies
//!    under the same plan see identical fault schedules; and
//! 2. **audio transparency** — injected work is pure [`burn`] fed into
//!    [`std::hint::black_box`]; it never touches an audio buffer, so
//!    faulted runs stay bit-exact with fault-free runs by construction.
//!
//! Injection sites record `FaultInjected`-class telemetry into the
//! executing worker's [`CycleCounters`] (`fault_spikes`, `fault_stalls`,
//! …), which the driver drains into the telemetry ring like every other
//! counter. A `None` plan is never consulted: the hook in each executor is
//! a single `Option` test per cycle part, so the disabled path stays
//! zero-cost and allocation-free.

use crate::telemetry::CycleCounters;
use djstar_dsp::rng::SmallRng;
use djstar_dsp::work::burn;

/// Domain-separation salts so the three fault classes draw from
/// independent streams of the same seed.
const SALT_SPIKE: u64 = 0x5350_494B_4553; // "SPIKES"
const SALT_STALL: u64 = 0x5354_414C_4C53; // "STALLS"

/// A seeded, immutable fault-injection plan.
///
/// All fields are plain data so harnesses can describe scenarios without
/// depending on executor internals; [`FaultPlan::quiet`] is the zero-rate
/// plan used to measure the cost of the hook itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every Bernoulli draw.
    pub seed: u64,
    /// Probability a given node spikes in a given cycle.
    pub spike_rate: f64,
    /// Kernel iterations a spike adds to the node's execution.
    pub spike_iters: u32,
    /// Virtual stall lanes. Fixed in the plan (not the thread count) so
    /// the stall schedule is identical for every executor configuration;
    /// lane `l` is absorbed by worker `l % threads`.
    pub stall_lanes: u32,
    /// Probability a given lane stalls in a given cycle.
    pub stall_rate: f64,
    /// Kernel iterations one stall costs its worker.
    pub stall_iters: u32,
    /// Cycle period of the pressure square wave (`0` disables pressure).
    pub pressure_period: u64,
    /// Leading cycles of each period under pressure.
    pub pressure_len: u64,
    /// Kernel iterations pressure adds to every node while high.
    pub pressure_iters: u32,
}

impl FaultPlan {
    /// A plan that never injects anything: the hook runs, the draws all
    /// miss. Used to measure the overhead of the enabled-but-idle path.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            spike_rate: 0.0,
            spike_iters: 0,
            stall_lanes: 0,
            stall_rate: 0.0,
            stall_iters: 0,
            pressure_period: 0,
            pressure_len: 0,
            pressure_iters: 0,
        }
    }

    /// True when no draw can ever fire.
    pub fn is_quiet(&self) -> bool {
        (self.spike_rate <= 0.0 || self.spike_iters == 0)
            && (self.stall_lanes == 0 || self.stall_rate <= 0.0 || self.stall_iters == 0)
            && (self.pressure_period == 0 || self.pressure_len == 0 || self.pressure_iters == 0)
    }

    /// One stateless SplitMix64 draw for `(salt, a, b)`, mapped to `[0,1)`.
    #[inline]
    fn draw(&self, salt: u64, a: u64, b: u64) -> f64 {
        // Distinct odd multipliers keep (a, b) pairs from colliding under
        // xor; the SplitMix64 output mix does the rest.
        let key = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E6D_62D0_6F6A_9A9B))
            .wrapping_add(a.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(b.wrapping_mul(0xA076_1D64_78BD_642F));
        let h = SmallRng::seed_from_u64(key).next_u64();
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Kernel iterations the spike draw adds to `node` in `cycle`.
    #[inline]
    pub fn spike_iters_for(&self, cycle: u64, node: u32) -> u32 {
        if self.spike_iters == 0 || self.spike_rate <= 0.0 {
            return 0;
        }
        if self.draw(SALT_SPIKE, cycle, node as u64) < self.spike_rate {
            self.spike_iters
        } else {
            0
        }
    }

    /// True while the pressure square wave is high in `cycle`.
    #[inline]
    pub fn pressure_active(&self, cycle: u64) -> bool {
        self.pressure_period != 0
            && self.pressure_iters != 0
            && cycle % self.pressure_period < self.pressure_len
    }

    /// Kernel iterations pressure adds to every node in `cycle`.
    #[inline]
    pub fn pressure_iters_for(&self, cycle: u64) -> u32 {
        if self.pressure_active(cycle) {
            self.pressure_iters
        } else {
            0
        }
    }

    /// Kernel iterations the stall draw charges `lane` in `cycle`.
    #[inline]
    pub fn stall_iters_for(&self, cycle: u64, lane: u32) -> u32 {
        if lane >= self.stall_lanes || self.stall_iters == 0 || self.stall_rate <= 0.0 {
            return 0;
        }
        if self.draw(SALT_STALL, cycle, lane as u64) < self.stall_rate {
            self.stall_iters
        } else {
            0
        }
    }

    /// Burn the faults scheduled for `node` in `cycle` and record them
    /// into `counters`. Called by whichever worker owns the node this
    /// cycle, inside its timed execution window, so a spike shows up as a
    /// longer `exec_ns` — exactly what a slow node looks like.
    ///
    /// The injected work never touches audio buffers, so output remains
    /// bit-exact with a fault-free run.
    ///
    /// Returns the kernel iterations burned (0 when nothing fired), so
    /// flight-recording executors can split the injected interval into a
    /// `Fault` span without re-deriving the draw.
    #[inline]
    pub fn inject_node(&self, cycle: u64, node: u32, counters: &CycleCounters) -> u64 {
        let spike = self.spike_iters_for(cycle, node);
        let pressure = self.pressure_iters_for(cycle);
        if spike == 0 && pressure == 0 {
            return 0;
        }
        // Seed varies per (cycle, node) so the kernel cannot be hoisted.
        let seed = 0.25 + 0.5 * ((cycle as u32 ^ node) % 127) as f32 / 127.0;
        std::hint::black_box(burn(spike + pressure, seed));
        if spike > 0 {
            counters.add_fault_spike(spike as u64);
        }
        if pressure > 0 {
            counters.add_fault_pressure(pressure as u64);
        }
        (spike + pressure) as u64
    }

    /// Burn worker `me`'s share of the cycle's stall lanes (lane `l` maps
    /// to worker `l % threads`) and record them. Called once per worker at
    /// the start of its cycle part. Folding fixed lanes onto however many
    /// real workers exist keeps the per-cycle stall *total* — and hence
    /// the telemetry event counts — identical across strategies and
    /// thread counts (a sequential run absorbs every lane on its only
    /// worker).
    ///
    /// Returns the total kernel iterations burned on this worker (0 when
    /// no lane fired), for the same flight-recording purpose as
    /// [`inject_node`](Self::inject_node).
    #[inline]
    pub fn inject_stalls(
        &self,
        cycle: u64,
        me: usize,
        threads: usize,
        counters: &CycleCounters,
    ) -> u64 {
        if self.stall_lanes == 0 || self.stall_iters == 0 || self.stall_rate <= 0.0 {
            return 0;
        }
        let mut burned = 0u64;
        let mut lane = me as u32;
        while lane < self.stall_lanes {
            let iters = self.stall_iters_for(cycle, lane);
            if iters > 0 {
                let seed = 0.25 + 0.5 * ((cycle as u32 ^ lane) % 113) as f32 / 113.0;
                std::hint::black_box(burn(iters, seed));
                counters.add_fault_stall(iters as u64);
                burned += iters as u64;
            }
            lane += threads as u32;
        }
        burned
    }

    /// Total kernel iterations the plan injects into `cycle` across all
    /// nodes and lanes of a `nodes`-node graph. Pure arithmetic over the
    /// schedule — the simulator and the tests use it as the ground truth
    /// the executors' telemetry must match.
    pub fn cycle_injection_iters(&self, cycle: u64, nodes: usize) -> u64 {
        let mut total = 0u64;
        for node in 0..nodes as u32 {
            total += self.spike_iters_for(cycle, node) as u64;
            total += self.pressure_iters_for(cycle) as u64;
        }
        for lane in 0..self.stall_lanes {
            total += self.stall_iters_for(cycle, lane) as u64;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm() -> FaultPlan {
        FaultPlan {
            seed: 0xE14,
            spike_rate: 0.05,
            spike_iters: 700,
            stall_lanes: 6,
            stall_rate: 0.2,
            stall_iters: 900,
            pressure_period: 40,
            pressure_len: 15,
            pressure_iters: 300,
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let a = storm();
        let b = storm();
        for cycle in 0..500u64 {
            for node in 0..67u32 {
                assert_eq!(
                    a.spike_iters_for(cycle, node),
                    b.spike_iters_for(cycle, node)
                );
            }
            for lane in 0..6u32 {
                assert_eq!(
                    a.stall_iters_for(cycle, lane),
                    b.stall_iters_for(cycle, lane)
                );
            }
            assert_eq!(a.pressure_iters_for(cycle), b.pressure_iters_for(cycle));
        }
        let other = FaultPlan { seed: 1, ..storm() };
        let same: usize = (0..500u64)
            .map(|c| {
                (0..67u32)
                    .filter(|&n| a.spike_iters_for(c, n) == other.spike_iters_for(c, n))
                    .count()
            })
            .sum();
        assert!(same < 500 * 67, "different seeds must differ somewhere");
    }

    #[test]
    fn spike_rate_is_roughly_honored() {
        let plan = storm();
        let hits: usize = (0..2_000u64)
            .map(|c| {
                (0..67u32)
                    .filter(|&n| plan.spike_iters_for(c, n) > 0)
                    .count()
            })
            .sum();
        let rate = hits as f64 / (2_000.0 * 67.0);
        assert!((rate - 0.05).abs() < 0.01, "observed spike rate {rate}");
    }

    #[test]
    fn stall_totals_are_thread_count_invariant() {
        // Summing each worker's folded lanes must reproduce the per-lane
        // schedule no matter how many workers share it.
        let plan = storm();
        for cycle in 0..200u64 {
            let per_lane: u64 = (0..plan.stall_lanes)
                .map(|l| plan.stall_iters_for(cycle, l) as u64)
                .sum();
            for threads in 1..=8usize {
                let folded: u64 = (0..threads)
                    .map(|me| {
                        let mut sum = 0u64;
                        let mut lane = me as u32;
                        while lane < plan.stall_lanes {
                            sum += plan.stall_iters_for(cycle, lane) as u64;
                            lane += threads as u32;
                        }
                        sum
                    })
                    .sum();
                assert_eq!(folded, per_lane, "cycle {cycle}, {threads} threads");
            }
        }
    }

    #[test]
    fn pressure_wave_follows_period_and_len() {
        let plan = storm();
        for cycle in 0..200u64 {
            assert_eq!(
                plan.pressure_active(cycle),
                cycle % 40 < 15,
                "cycle {cycle}"
            );
        }
        assert!(!FaultPlan::quiet(9).pressure_active(0));
    }

    #[test]
    fn quiet_plan_never_fires_and_records_nothing() {
        let plan = FaultPlan::quiet(123);
        assert!(plan.is_quiet());
        assert!(!storm().is_quiet());
        let counters = CycleCounters::default();
        for cycle in 0..100u64 {
            assert_eq!(plan.cycle_injection_iters(cycle, 67), 0);
            for node in 0..67u32 {
                plan.inject_node(cycle, node, &counters);
            }
            plan.inject_stalls(cycle, 0, 1, &counters);
        }
        let mut snap = crate::telemetry::CounterSnapshot::default();
        counters.drain_into(&mut snap);
        assert_eq!(snap.fault_spikes, 0);
        assert_eq!(snap.fault_spike_iters, 0);
        assert_eq!(snap.fault_stalls, 0);
        assert_eq!(snap.fault_stall_iters, 0);
        assert_eq!(snap.fault_pressure_iters, 0);
    }

    #[test]
    fn injection_helpers_record_the_scheduled_totals() {
        let plan = storm();
        let counters = CycleCounters::default();
        let cycles = 120u64;
        let nodes = 31u32;
        let mut expect = 0u64;
        for cycle in 0..cycles {
            for node in 0..nodes {
                plan.inject_node(cycle, node, &counters);
            }
            // Split the lanes over three simulated workers.
            for me in 0..3 {
                plan.inject_stalls(cycle, me, 3, &counters);
            }
            expect += plan.cycle_injection_iters(cycle, nodes as usize);
        }
        let mut snap = crate::telemetry::CounterSnapshot::default();
        counters.drain_into(&mut snap);
        assert!(snap.fault_spikes > 0);
        assert!(snap.fault_stalls > 0);
        assert_eq!(
            snap.fault_spike_iters + snap.fault_stall_iters + snap.fault_pressure_iters,
            expect
        );
    }
}
