//! The flight recorder: always-on, real-time-safe span capture.
//!
//! [`trace::ScheduleTrace`](crate::trace::ScheduleTrace) is a one-off
//! capture: tracing a cycle allocates per-event and the result is drained
//! immediately (the Fig. 11 renderer). The flight recorder is the
//! always-on complement — a **pre-allocated, overwrite-oldest** per-worker
//! ring of [`Span`]s plus a driver-side ring of per-cycle [`CycleStamp`]s,
//! recorded by every executor behind a single `Relaxed` flag load (the
//! same zero-cost-when-disabled pattern as
//! [`set_faults`](crate::exec::GraphExecutor::set_faults)). When a cycle
//! blows its deadline, the last N cycles of Exec/BusyWait/Sleep/Steal/
//! Unpark/Fault intervals are still in the buffer and can be frozen into a
//! [`FlightWindow`] for forensic analysis (critical-path blame, Chrome
//! Trace export) — without any allocation ever happening on the hot path.
//!
//! # Memory-safety argument
//!
//! Each worker owns exactly one [`WorkerLane`] during a cycle and the
//! driver touches lanes only between cycles — the same epoch-protocol
//! ownership discipline as `DriverCell` (see `exec`). The cycle-stamp ring
//! is driver-only in both phases. All spans carry timestamps relative to
//! the recorder's `origin` instant, so windows from consecutive takes
//! share one timebase.

use std::cell::UnsafeCell;
use std::time::Instant;

/// What a recorded interval was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Executing a node's processor (includes any injected spike burn
    /// unless a separate [`SpanKind::Fault`] span was split off).
    Exec,
    /// Spinning on a dependency (BUSY, PLAN, HYBRID before parking).
    BusyWait,
    /// Parked on a dependency (SLEEP, HYBRID after the spin budget).
    Sleep,
    /// Idle with no work available (WS workers parked in the idle set).
    Idle,
    /// A successful steal sweep (WS).
    Steal,
    /// Waking a parked peer (SLEEP, HYBRID).
    Unpark,
    /// Injected fault work (spike/stall/pressure burn) from an installed
    /// [`FaultPlan`](crate::faults::FaultPlan).
    Fault,
    /// Receiving remote-deck packets into a jitter buffer (carved out of
    /// the owning node's Exec interval from its `net_wait_ns` counter).
    NetWait,
    /// Synthesizing concealment for late/lost network frames (carved the
    /// same way from `net_conceal_ns`).
    Conceal,
}

impl SpanKind {
    /// Stable label, used as the Chrome Trace `cat` field.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Exec => "exec",
            SpanKind::BusyWait => "busy_wait",
            SpanKind::Sleep => "sleep",
            SpanKind::Idle => "idle",
            SpanKind::Steal => "steal",
            SpanKind::Unpark => "unpark",
            SpanKind::Fault => "fault",
            SpanKind::NetWait => "net_wait",
            SpanKind::Conceal => "conceal",
        }
    }

    /// Parse a [`label`](Self::label) back (for trace round-trips).
    pub fn from_label(s: &str) -> Option<SpanKind> {
        Some(match s {
            "exec" => SpanKind::Exec,
            "busy_wait" => SpanKind::BusyWait,
            "sleep" => SpanKind::Sleep,
            "idle" => SpanKind::Idle,
            "steal" => SpanKind::Steal,
            "unpark" => SpanKind::Unpark,
            "fault" => SpanKind::Fault,
            "net_wait" => SpanKind::NetWait,
            "conceal" => SpanKind::Conceal,
            _ => return None,
        })
    }

    /// Spans that represent productive on-CPU work (or injected work
    /// masquerading as it) rather than waiting.
    pub fn is_work(self) -> bool {
        matches!(
            self,
            SpanKind::Exec | SpanKind::Fault | SpanKind::NetWait | SpanKind::Conceal
        )
    }

    /// Every kind, in a stable order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::Exec,
        SpanKind::BusyWait,
        SpanKind::Sleep,
        SpanKind::Idle,
        SpanKind::Steal,
        SpanKind::Unpark,
        SpanKind::Fault,
        SpanKind::NetWait,
        SpanKind::Conceal,
    ];
}

/// One recorded interval on one worker's timeline. Timestamps are
/// nanoseconds since the recorder's origin instant, so spans from
/// different cycles (and different takes of the same recorder) compare
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Executor epoch the span belongs to.
    pub cycle: u64,
    /// Node id, or [`Span::NO_NODE`] for spans not tied to a node
    /// (idle parks, stall burns).
    pub node: u32,
    /// Worker index.
    pub worker: u32,
    /// Start, ns since the recorder origin.
    pub start_ns: u64,
    /// End, ns since the recorder origin.
    pub end_ns: u64,
    /// What the interval was spent on.
    pub kind: SpanKind,
}

impl Span {
    /// Sentinel node id for spans not attached to a graph node.
    pub const NO_NODE: u32 = u32::MAX;

    /// Length of the span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Sizing of a [`FlightRecorder`]. Every buffer is allocated up front at
/// install time; nothing grows afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Span-ring capacity per worker (overwrite-oldest past this).
    pub spans_per_worker: usize,
    /// Cycle-stamp ring capacity (how many recent cycles stay addressable).
    pub cycles: usize,
    /// Venue session id stamped into exported windows (0 = single-session).
    pub session: u32,
}

impl Default for FlightConfig {
    /// Roughly 60 cycles of a 67-node graph per worker, 256 stamps.
    fn default() -> Self {
        FlightConfig {
            spans_per_worker: 4096,
            cycles: 256,
            session: 0,
        }
    }
}

/// Driver-side stamp of one finished cycle: its epoch and wall-clock
/// bounds on the recorder timebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleStamp {
    /// Executor epoch of the cycle.
    pub cycle: u64,
    /// Cycle start, ns since the recorder origin.
    pub start_ns: u64,
    /// Cycle end (driver observed completion), ns since the origin.
    pub end_ns: u64,
}

impl CycleStamp {
    /// Wall-clock duration of the cycle in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One worker's fixed-capacity overwrite-oldest span ring.
struct WorkerLane {
    spans: Box<[Span]>,
    /// Next write position.
    next: usize,
    /// Live spans (≤ capacity).
    len: usize,
    /// Total spans ever pushed since the last take.
    pushed: u64,
}

impl WorkerLane {
    fn new(capacity: usize) -> Self {
        let blank = Span {
            cycle: 0,
            node: Span::NO_NODE,
            worker: 0,
            start_ns: 0,
            end_ns: 0,
            kind: SpanKind::Idle,
        };
        WorkerLane {
            spans: vec![blank; capacity.max(1)].into_boxed_slice(),
            next: 0,
            len: 0,
            pushed: 0,
        }
    }

    #[inline]
    fn push(&mut self, span: Span) {
        self.spans[self.next] = span;
        self.next = (self.next + 1) % self.spans.len();
        if self.len < self.spans.len() {
            self.len += 1;
        }
        self.pushed += 1;
    }

    /// Copy live spans oldest-first into `out`, then reset the lane.
    fn drain_into(&mut self, out: &mut Vec<Span>) -> u64 {
        let cap = self.spans.len();
        let start = (self.next + cap - self.len) % cap;
        for k in 0..self.len {
            out.push(self.spans[(start + k) % cap]);
        }
        let dropped = self.pushed - self.len as u64;
        self.next = 0;
        self.len = 0;
        self.pushed = 0;
        dropped
    }
}

/// Interior-mutable lane: worker `w` writes lane `w` during a cycle, the
/// driver reads all lanes between cycles — disjoint in time and space.
struct LaneCell(UnsafeCell<WorkerLane>);

// SAFETY: see the module-level memory-safety argument — per-lane single
// writer during a cycle, driver-only access between cycles, ordered by the
// executors' epoch/done-count edges.
unsafe impl Sync for LaneCell {}

/// Driver-only ring of cycle stamps.
struct StampRing {
    stamps: Box<[CycleStamp]>,
    next: usize,
    len: usize,
}

impl StampRing {
    fn new(capacity: usize) -> Self {
        let blank = CycleStamp {
            cycle: 0,
            start_ns: 0,
            end_ns: 0,
        };
        StampRing {
            stamps: vec![blank; capacity.max(1)].into_boxed_slice(),
            next: 0,
            len: 0,
        }
    }

    fn push(&mut self, stamp: CycleStamp) {
        self.stamps[self.next] = stamp;
        self.next = (self.next + 1) % self.stamps.len();
        if self.len < self.stamps.len() {
            self.len += 1;
        }
    }

    fn drain_into(&mut self, out: &mut Vec<CycleStamp>) {
        let cap = self.stamps.len();
        let start = (self.next + cap - self.len) % cap;
        for k in 0..self.len {
            out.push(self.stamps[(start + k) % cap]);
        }
        self.next = 0;
        self.len = 0;
    }
}

/// The recorder proper: one span lane per worker plus the cycle-stamp
/// ring, all pre-allocated at construction.
pub struct FlightRecorder {
    origin: Instant,
    lanes: Box<[LaneCell]>,
    stamps: UnsafeCell<StampRing>,
    session: u32,
}

// SAFETY: lanes are per-worker single-writer (see `LaneCell`); the stamp
// ring is driver-only in every phase.
unsafe impl Sync for FlightRecorder {}
// SAFETY: all contents are owned plain data.
unsafe impl Send for FlightRecorder {}

impl FlightRecorder {
    /// Allocate a recorder for `workers` lanes sized by `cfg`. The origin
    /// instant (timestamp zero) is captured here.
    pub fn new(workers: usize, cfg: FlightConfig) -> Self {
        FlightRecorder {
            origin: Instant::now(),
            lanes: (0..workers.max(1))
                .map(|_| LaneCell(UnsafeCell::new(WorkerLane::new(cfg.spans_per_worker))))
                .collect(),
            stamps: UnsafeCell::new(StampRing::new(cfg.cycles)),
            session: cfg.session,
        }
    }

    /// Number of worker lanes.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// The recorder's timestamp origin.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Convert an instant to nanoseconds on the recorder timebase.
    #[inline]
    pub fn now_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin).as_nanos() as u64
    }

    /// Record a span into `worker`'s lane. No allocation, no atomics.
    ///
    /// # Safety
    /// Caller must be the exclusive owner of lane `worker` — i.e. worker
    /// `worker` during a cycle, or the driver between cycles.
    #[inline]
    pub unsafe fn record(&self, worker: usize, span: Span) {
        (*self.lanes[worker].0.get()).push(span);
    }

    /// Record a finished cycle's stamp.
    ///
    /// # Safety
    /// Driver-only, with no cycle in flight.
    pub unsafe fn stamp(&self, stamp: CycleStamp) {
        (*self.stamps.get()).push(stamp);
    }

    /// Freeze and take everything captured so far as a [`FlightWindow`]
    /// (sorted spans, stamps, drop accounting); recording continues into
    /// the emptied buffers. This is the only allocating operation and it
    /// runs on the driver between cycles, off the hot path.
    pub fn take_window(&mut self) -> FlightWindow {
        let workers = self.lanes.len();
        let mut spans = Vec::new();
        let mut dropped = 0u64;
        for lane in self.lanes.iter_mut() {
            dropped += lane.0.get_mut().drain_into(&mut spans);
        }
        spans.sort_by_key(|s| (s.start_ns, s.worker));
        let mut cycles = Vec::new();
        self.stamps.get_mut().drain_into(&mut cycles);
        FlightWindow {
            workers,
            spans,
            cycles,
            dropped_spans: dropped,
            session: self.session,
        }
    }
}

/// A frozen capture: every live span (sorted by start time) and cycle
/// stamp at take time, plus how many spans the overwrite-oldest policy
/// discarded since the previous take.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightWindow {
    /// Worker lanes the recorder had.
    pub workers: usize,
    /// All captured spans, sorted by `(start_ns, worker)`.
    pub spans: Vec<Span>,
    /// Cycle stamps, oldest first.
    pub cycles: Vec<CycleStamp>,
    /// Spans overwritten before they could be taken.
    pub dropped_spans: u64,
    /// Venue session id this window was captured for (0 = single-session).
    pub session: u32,
}

impl FlightWindow {
    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.cycles.is_empty()
    }

    /// The stamp of `cycle`, if it is still in the window.
    pub fn stamp_for(&self, cycle: u64) -> Option<CycleStamp> {
        self.cycles.iter().copied().find(|s| s.cycle == cycle)
    }

    /// All spans belonging to `cycle`, in start order.
    pub fn spans_in(&self, cycle: u64) -> Vec<Span> {
        self.spans
            .iter()
            .copied()
            .filter(|s| s.cycle == cycle)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cycle: u64, worker: u32, start: u64, end: u64, kind: SpanKind) -> Span {
        Span {
            cycle,
            node: 7,
            worker,
            start_ns: start,
            end_ns: end,
            kind,
        }
    }

    #[test]
    fn lane_overwrites_oldest() {
        let mut rec = FlightRecorder::new(
            1,
            FlightConfig {
                spans_per_worker: 3,
                cycles: 4,
                session: 0,
            },
        );
        for i in 0..5u64 {
            unsafe { rec.record(0, span(1, 0, i * 10, i * 10 + 5, SpanKind::Exec)) };
        }
        let w = rec.take_window();
        assert_eq!(w.spans.len(), 3);
        assert_eq!(w.dropped_spans, 2);
        // Oldest two (start 0, 10) were overwritten.
        assert_eq!(w.spans[0].start_ns, 20);
        assert_eq!(w.spans[2].start_ns, 40);
    }

    #[test]
    fn take_clears_and_recording_continues() {
        let mut rec = FlightRecorder::new(2, FlightConfig::default());
        unsafe {
            rec.record(0, span(1, 0, 0, 10, SpanKind::Exec));
            rec.record(1, span(1, 1, 5, 15, SpanKind::BusyWait));
            rec.stamp(CycleStamp {
                cycle: 1,
                start_ns: 0,
                end_ns: 20,
            });
        }
        let w1 = rec.take_window();
        assert_eq!(w1.spans.len(), 2);
        assert_eq!(w1.cycles.len(), 1);
        assert_eq!(w1.dropped_spans, 0);
        // Sorted across lanes by start.
        assert_eq!(w1.spans[0].worker, 0);
        assert_eq!(w1.spans[1].worker, 1);

        unsafe { rec.record(0, span(2, 0, 30, 40, SpanKind::Fault)) };
        let w2 = rec.take_window();
        assert_eq!(w2.spans.len(), 1);
        assert_eq!(w2.cycles.len(), 0);
        assert!(rec.take_window().is_empty());
    }

    #[test]
    fn stamp_ring_overwrites_oldest() {
        let mut rec = FlightRecorder::new(
            1,
            FlightConfig {
                spans_per_worker: 4,
                cycles: 2,
                session: 0,
            },
        );
        for c in 1..=3u64 {
            unsafe {
                rec.stamp(CycleStamp {
                    cycle: c,
                    start_ns: c * 100,
                    end_ns: c * 100 + 50,
                })
            };
        }
        let w = rec.take_window();
        assert_eq!(w.cycles.len(), 2);
        assert_eq!(w.stamp_for(1), None);
        assert_eq!(w.stamp_for(3).unwrap().duration_ns(), 50);
        assert!(w.spans_in(3).is_empty());
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_label(k.label()), Some(k));
        }
        assert_eq!(SpanKind::from_label("nope"), None);
        assert!(SpanKind::Exec.is_work());
        assert!(SpanKind::Fault.is_work());
        assert!(!SpanKind::Sleep.is_work());
    }

    #[test]
    fn window_queries_filter_by_cycle() {
        let mut rec = FlightRecorder::new(1, FlightConfig::default());
        unsafe {
            rec.record(0, span(1, 0, 0, 10, SpanKind::Exec));
            rec.record(0, span(2, 0, 20, 30, SpanKind::Exec));
            rec.record(0, span(2, 0, 30, 35, SpanKind::Steal));
        }
        let w = rec.take_window();
        assert_eq!(w.spans_in(1).len(), 1);
        assert_eq!(w.spans_in(2).len(), 2);
        assert_eq!(w.spans_in(2)[1].duration_ns(), 5);
    }
}
