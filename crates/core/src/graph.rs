//! The static task graph: nodes, dependency edges and the depth-sorted
//! execution queue.
//!
//! DJ Star implements its audio processing cycle as a task graph whose
//! "nodes represent different audio computations and the edges describe the
//! data flow" (§IV). The production implementation keeps the graph in "a
//! simple queue. Nodes are inserted according to their depth in the
//! dependency graph … column by column and from left to right" — so nodes
//! within one column (equal depth) never depend on each other and the queue
//! order is a valid sequential execution order. This module reproduces that
//! representation and validates its invariants.

use crate::processor::Processor;
use std::collections::VecDeque;
use std::fmt;

/// Index of a node in its [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The section of the DJ Star workbench a node belongs to (Fig. 3).
///
/// The work-stealing strategy seeds "nodes from the same section to the same
/// thread" to exploit data locality (§V-C), so the section is part of the
/// core graph model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    DeckA,
    DeckB,
    DeckC,
    DeckD,
    Master,
}

impl Section {
    /// All sections in deck order, master last.
    pub const ALL: [Section; 5] = [
        Section::DeckA,
        Section::DeckB,
        Section::DeckC,
        Section::DeckD,
        Section::Master,
    ];

    /// Deck index 0–3, or `None` for the master section.
    pub fn deck_index(self) -> Option<usize> {
        match self {
            Section::DeckA => Some(0),
            Section::DeckB => Some(1),
            Section::DeckC => Some(2),
            Section::DeckD => Some(3),
            Section::Master => None,
        }
    }

    /// The deck section with the given index (0–3).
    pub fn deck(i: usize) -> Section {
        match i {
            0 => Section::DeckA,
            1 => Section::DeckB,
            2 => Section::DeckC,
            3 => Section::DeckD,
            _ => panic!("deck index {i} out of range"),
        }
    }
}

/// Which precomputed topological order the queue-based executors walk.
///
/// DJ Star's production queue sorts by *depth* (distance from the sources).
/// "Longer Is Shorter" (He et al.) argues for prioritizing nodes on long
/// dependency chains instead: sort by *critical-path length* (the longest
/// chain from the node down to a sink), descending. Both orders are valid
/// topological orders — for any edge `p → n`, `cp_len(p) > cp_len(n)` and
/// `depth(p) < depth(n)` — so executors can switch between them freely and
/// both stay benchmarkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// The paper's queue order: ascending depth, insertion order within a
    /// column. This is the production DJ Star behavior.
    #[default]
    Depth,
    /// Descending critical-path length (longest path to a sink, counted in
    /// nodes), insertion order within a tie. Nodes that gate the most
    /// downstream work run first.
    CriticalPath,
    /// "Longer Is Shorter" path shaping (He et al.): descending
    /// critical-path length like [`Priority::CriticalPath`], but ties are
    /// broken by the longest *total* path through the node
    /// (`depth + cp_len`, descending) instead of insertion order. Nodes
    /// sitting on long end-to-end chains are serialized first, which
    /// lengthens the nominal priority list but shortens the parallel
    /// response time on skewed graphs. Still a valid topological order:
    /// edges strictly decrease `cp_len`, so ties never carry edges.
    LongerIsShorter,
    /// Global fixed-priority: one static, structure-derived priority per
    /// node (ascending depth, then descending `cp_len`, then descending
    /// out-degree), mirroring global fixed-priority DAG response-time
    /// analysis where every vertex carries a single system-wide priority.
    /// Ascending depth is the strictly monotone primary key, so the order
    /// stays topologically valid.
    GlobalFixed,
}

impl Priority {
    /// Every queue policy, in sweep order.
    pub const ALL: [Priority; 4] = [
        Priority::Depth,
        Priority::CriticalPath,
        Priority::LongerIsShorter,
        Priority::GlobalFixed,
    ];

    /// Short label for reports and benchmarks.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Depth => "depth",
            Priority::CriticalPath => "critical-path",
            Priority::LongerIsShorter => "longer-is-shorter",
            Priority::GlobalFixed => "global-fixed",
        }
    }
}

/// Errors detected while building a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A predecessor id referenced a node that does not exist.
    UnknownPredecessor { node: u32, pred: u32 },
    /// The dependency relation contains a cycle.
    Cyclic,
    /// The same predecessor was listed twice for one node.
    DuplicateEdge { node: u32, pred: u32 },
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownPredecessor { node, pred } => {
                write!(f, "node {node} references unknown predecessor {pred}")
            }
            GraphError::Cyclic => write!(f, "dependency graph contains a cycle"),
            GraphError::DuplicateEdge { node, pred } => {
                write!(f, "node {node} lists predecessor {pred} twice")
            }
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Immutable structural data of a validated graph, shared by executors and
/// the schedule simulator.
#[derive(Debug)]
pub struct GraphTopology {
    names: Vec<String>,
    sections: Vec<Section>,
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
    depth: Vec<u32>,
    /// Critical-path length of each node: longest chain (in nodes, including
    /// the node itself) from the node down to any sink.
    cp_len: Vec<u32>,
    /// Node ids in DJ Star queue order: sorted by depth, insertion order
    /// within equal depth ("column by column, left to right").
    queue: Vec<u32>,
    /// Node ids sorted by descending critical-path length (stable, so
    /// insertion order breaks ties). Also a valid topological order.
    cp_queue: Vec<u32>,
    /// "Longer Is Shorter" order: descending `cp_len`, ties by descending
    /// total path through the node (`depth + cp_len`). Topologically valid
    /// for the same reason as `cp_queue`.
    lis_queue: Vec<u32>,
    /// Global fixed-priority order: ascending depth, ties by descending
    /// `cp_len`, then descending out-degree. Topologically valid because
    /// depth strictly increases along edges.
    gfp_queue: Vec<u32>,
    /// Per-node successor lists re-sorted by ascending critical-path length.
    /// The work-stealing executor pushes released successors in this order so
    /// its LIFO deque pops the longest-path successor first.
    succs_by_cp: Vec<Vec<u32>>,
    /// Nodes with no predecessors, in queue order.
    sources: Vec<u32>,
}

impl GraphTopology {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the graph has no nodes (never, for validated graphs).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a node.
    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.idx()]
    }

    /// Section of a node.
    pub fn section(&self, n: NodeId) -> Section {
        self.sections[n.idx()]
    }

    /// Predecessors of a node.
    pub fn preds(&self, n: NodeId) -> &[u32] {
        &self.preds[n.idx()]
    }

    /// Successors of a node.
    pub fn succs(&self, n: NodeId) -> &[u32] {
        &self.succs[n.idx()]
    }

    /// Depth of a node: 0 for sources, else 1 + max depth of predecessors.
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depth[n.idx()]
    }

    /// Critical-path length of a node: the longest dependency chain (counted
    /// in nodes, including `n` itself) from `n` down to any sink. 1 for
    /// sinks.
    pub fn cp_len(&self, n: NodeId) -> u32 {
        self.cp_len[n.idx()]
    }

    /// The DJ Star execution queue (a valid topological order).
    pub fn queue(&self) -> &[u32] {
        &self.queue
    }

    /// Node ids by descending critical-path length (also a valid topological
    /// order: for any edge `p → n`, `cp_len(p) ≥ cp_len(n) + 1`, so ties
    /// never carry edges).
    pub fn cp_queue(&self) -> &[u32] {
        &self.cp_queue
    }

    /// The execution order selected by `priority`.
    pub fn order(&self, priority: Priority) -> &[u32] {
        match priority {
            Priority::Depth => &self.queue,
            Priority::CriticalPath => &self.cp_queue,
            Priority::LongerIsShorter => &self.lis_queue,
            Priority::GlobalFixed => &self.gfp_queue,
        }
    }

    /// Successors of `n` sorted by ascending critical-path length. Pushing
    /// released successors in this order makes a LIFO deque pop the
    /// longest-path successor first.
    pub fn succs_by_cp(&self, n: NodeId) -> &[u32] {
        &self.succs_by_cp[n.idx()]
    }

    /// The successor iteration order selected by `priority`: graph order for
    /// [`Priority::Depth`] and [`Priority::GlobalFixed`] (a single static
    /// rank needs no per-release reshuffle), ascending critical-path length
    /// for the path-shaping policies so a LIFO pop takes the longest path
    /// first.
    pub fn succ_order(&self, n: NodeId, priority: Priority) -> &[u32] {
        match priority {
            Priority::Depth | Priority::GlobalFixed => &self.succs[n.idx()],
            Priority::CriticalPath | Priority::LongerIsShorter => &self.succs_by_cp[n.idx()],
        }
    }

    /// Source nodes (no dependencies), in queue order.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Length of the critical path in *node count* (not time): the longest
    /// chain of dependencies, i.e. `max depth + 1`.
    pub fn critical_path_len(&self) -> usize {
        self.depth
            .iter()
            .copied()
            .max()
            .map_or(0, |d| d as usize + 1)
    }

    /// Verify that `order` is a permutation of all nodes consistent with the
    /// dependencies (every node after all its predecessors). Test helper for
    /// schedules and traces.
    pub fn is_valid_execution_order(&self, order: &[u32]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.len()];
        for (i, &n) in order.iter().enumerate() {
            let Some(slot) = pos.get_mut(n as usize) else {
                return false;
            };
            if *slot != usize::MAX {
                return false; // duplicate
            }
            *slot = i;
        }
        for n in 0..self.len() {
            for &p in &self.preds[n] {
                if pos[p as usize] >= pos[n] {
                    return false;
                }
            }
        }
        true
    }

    /// Render the graph in Graphviz DOT format (node names, one cluster per
    /// section).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph djstar {\n  rankdir=LR;\n");
        for (si, sec) in Section::ALL.iter().enumerate() {
            out.push_str(&format!(
                "  subgraph cluster_{si} {{\n    label=\"{sec:?}\";\n"
            ));
            for n in 0..self.len() {
                if self.sections[n] == *sec {
                    out.push_str(&format!("    n{} [label=\"{}\"];\n", n, self.names[n]));
                }
            }
            out.push_str("  }\n");
        }
        for n in 0..self.len() {
            for &p in &self.preds[n] {
                out.push_str(&format!("  n{p} -> n{n};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// A validated task graph: topology plus one processor per node.
pub struct TaskGraph {
    topo: GraphTopology,
    processors: Vec<Box<dyn Processor>>,
}

impl TaskGraph {
    /// The structural data.
    pub fn topology(&self) -> &GraphTopology {
        &self.topo
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.topo.len()
    }

    /// True when the graph has no nodes (never, for validated graphs).
    pub fn is_empty(&self) -> bool {
        self.topo.is_empty()
    }

    /// Decompose into topology and processors (used by `ExecGraph`).
    pub(crate) fn into_parts(self) -> (GraphTopology, Vec<Box<dyn Processor>>) {
        (self.topo, self.processors)
    }
}

impl fmt::Debug for TaskGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskGraph")
            .field("nodes", &self.topo.len())
            .finish()
    }
}

struct BuildNode {
    name: String,
    section: Section,
    processor: Box<dyn Processor>,
    preds: Vec<u32>,
}

/// Builder for [`TaskGraph`]: add nodes with their predecessors, then
/// [`build`](TaskGraphBuilder::build) validates and computes depths, the
/// queue order and successor lists.
#[derive(Default)]
pub struct TaskGraphBuilder {
    nodes: Vec<BuildNode>,
}

impl TaskGraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes were added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a node computing `processor`, depending on `preds`.
    /// Returns its id.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        section: Section,
        processor: Box<dyn Processor>,
        preds: &[NodeId],
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(BuildNode {
            name: name.into(),
            section,
            processor,
            preds: preds.iter().map(|p| p.0).collect(),
        });
        id
    }

    /// Validate and produce the graph.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        // Edge validation.
        for (i, node) in self.nodes.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &p in &node.preds {
                if p as usize >= n {
                    return Err(GraphError::UnknownPredecessor {
                        node: i as u32,
                        pred: p,
                    });
                }
                if !seen.insert(p) {
                    return Err(GraphError::DuplicateEdge {
                        node: i as u32,
                        pred: p,
                    });
                }
            }
        }
        // Kahn topological sort to detect cycles and compute depth.
        let mut indegree: Vec<u32> = self.nodes.iter().map(|nd| nd.preds.len() as u32).collect();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &p in &node.preds {
                succs[p as usize].push(i as u32);
            }
        }
        let mut depth = vec![0u32; n];
        let mut ready: VecDeque<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut visited = 0usize;
        while let Some(v) = ready.pop_front() {
            visited += 1;
            for &s in &succs[v as usize] {
                depth[s as usize] = depth[s as usize].max(depth[v as usize] + 1);
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    ready.push_back(s);
                }
            }
        }
        if visited != n {
            return Err(GraphError::Cyclic);
        }
        // DJ Star queue: stable sort by depth keeps insertion order within a
        // column ("column by column and from left to right").
        let mut queue: Vec<u32> = (0..n as u32).collect();
        queue.sort_by_key(|&i| depth[i as usize]);
        let sources: Vec<u32> = queue
            .iter()
            .copied()
            .filter(|&i| self.nodes[i as usize].preds.is_empty())
            .collect();
        // Critical-path length: walk the queue backwards so every successor
        // is finalized before its predecessors are visited.
        let mut cp_len = vec![1u32; n];
        for &v in queue.iter().rev() {
            for &s in &succs[v as usize] {
                cp_len[v as usize] = cp_len[v as usize].max(cp_len[s as usize] + 1);
            }
        }
        let mut cp_queue: Vec<u32> = (0..n as u32).collect();
        cp_queue.sort_by_key(|&i| std::cmp::Reverse(cp_len[i as usize]));
        // "Longer Is Shorter": same strictly monotone primary key as
        // cp_queue, but ties prefer the node on the longest end-to-end path
        // (depth + cp_len counts the node once per term, which is fine for
        // ranking).
        let mut lis_queue: Vec<u32> = (0..n as u32).collect();
        lis_queue.sort_by_key(|&i| {
            let i = i as usize;
            (
                std::cmp::Reverse(cp_len[i]),
                std::cmp::Reverse(depth[i] + cp_len[i]),
            )
        });
        // Global fixed-priority: one static rank per node. Ascending depth
        // keeps it a topological order; within a column the node gating the
        // longest tail (then the most successors) outranks its peers.
        let mut gfp_queue: Vec<u32> = (0..n as u32).collect();
        gfp_queue.sort_by_key(|&i| {
            let i = i as usize;
            (
                depth[i],
                std::cmp::Reverse(cp_len[i]),
                std::cmp::Reverse(succs[i].len()),
            )
        });
        let succs_by_cp: Vec<Vec<u32>> = succs
            .iter()
            .map(|ss| {
                let mut ss = ss.clone();
                ss.sort_by_key(|&s| cp_len[s as usize]);
                ss
            })
            .collect();

        let mut names = Vec::with_capacity(n);
        let mut sections = Vec::with_capacity(n);
        let mut preds = Vec::with_capacity(n);
        let mut processors = Vec::with_capacity(n);
        for node in self.nodes {
            names.push(node.name);
            sections.push(node.section);
            preds.push(node.preds);
            processors.push(node.processor);
        }
        Ok(TaskGraph {
            topo: GraphTopology {
                names,
                sections,
                preds,
                succs,
                depth,
                cp_len,
                queue,
                cp_queue,
                lis_queue,
                gfp_queue,
                succs_by_cp,
                sources,
            },
            processors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::Passthrough;

    fn pt() -> Box<dyn Processor> {
        Box::new(Passthrough)
    }

    /// a -> b -> d, a -> c -> d  (diamond)
    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b.add("a", Section::DeckA, pt(), &[]);
        let x = b.add("b", Section::DeckA, pt(), &[a]);
        let y = b.add("c", Section::DeckB, pt(), &[a]);
        b.add("d", Section::Master, pt(), &[x, y]);
        b.build().unwrap()
    }

    #[test]
    fn diamond_depths_and_queue() {
        let g = diamond();
        let t = g.topology();
        assert_eq!(t.depth(NodeId(0)), 0);
        assert_eq!(t.depth(NodeId(1)), 1);
        assert_eq!(t.depth(NodeId(2)), 1);
        assert_eq!(t.depth(NodeId(3)), 2);
        assert_eq!(t.queue(), &[0, 1, 2, 3]);
        assert_eq!(t.sources(), &[0]);
        assert_eq!(t.critical_path_len(), 3);
    }

    #[test]
    fn successors_computed() {
        let g = diamond();
        let t = g.topology();
        assert_eq!(t.succs(NodeId(0)), &[1, 2]);
        assert_eq!(t.succs(NodeId(1)), &[3]);
        assert_eq!(t.succs(NodeId(3)), &[] as &[u32]);
    }

    #[test]
    fn queue_is_valid_execution_order() {
        let g = diamond();
        let t = g.topology();
        assert!(t.is_valid_execution_order(t.queue()));
    }

    #[test]
    fn invalid_orders_rejected() {
        let g = diamond();
        let t = g.topology();
        assert!(!t.is_valid_execution_order(&[3, 1, 2, 0])); // sink first
        assert!(!t.is_valid_execution_order(&[0, 1, 2])); // missing node
        assert!(!t.is_valid_execution_order(&[0, 1, 1, 3])); // duplicate
        assert!(!t.is_valid_execution_order(&[0, 1, 2, 9])); // unknown id
    }

    #[test]
    fn cycle_detected() {
        // Build a 2-cycle by forward-referencing: a depends on b, b on a.
        let mut b = TaskGraphBuilder::new();
        let _a = b.add("a", Section::DeckA, pt(), &[NodeId(1)]);
        let _b = b.add("b", Section::DeckA, pt(), &[NodeId(0)]);
        assert_eq!(b.build().err(), Some(GraphError::Cyclic));
    }

    #[test]
    fn unknown_pred_detected() {
        let mut b = TaskGraphBuilder::new();
        b.add("a", Section::DeckA, pt(), &[NodeId(5)]);
        assert_eq!(
            b.build().err(),
            Some(GraphError::UnknownPredecessor { node: 0, pred: 5 })
        );
    }

    #[test]
    fn duplicate_edge_detected() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add("a", Section::DeckA, pt(), &[]);
        b.add("b", Section::DeckA, pt(), &[a, a]);
        assert_eq!(
            b.build().err(),
            Some(GraphError::DuplicateEdge { node: 1, pred: 0 })
        );
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(
            TaskGraphBuilder::new().build().err(),
            Some(GraphError::Empty)
        );
    }

    #[test]
    fn same_depth_nodes_never_depend_on_each_other() {
        // This is the "column property" the paper's queue relies on; it holds
        // by construction of depth. Verify on a random-ish DAG.
        let mut b = TaskGraphBuilder::new();
        let mut ids = Vec::new();
        for i in 0..30u32 {
            let preds: Vec<NodeId> = ids
                .iter()
                .copied()
                .filter(|p: &NodeId| (i + p.0).is_multiple_of(7))
                .collect();
            ids.push(b.add(format!("n{i}"), Section::Master, pt(), &preds));
        }
        let g = b.build().unwrap();
        let t = g.topology();
        for n in 0..t.len() {
            for &p in t.preds(NodeId(n as u32)) {
                assert!(t.depth(NodeId(p)) < t.depth(NodeId(n as u32)));
            }
        }
    }

    #[test]
    fn dot_export_mentions_all_nodes() {
        let g = diamond();
        let dot = g.topology().to_dot();
        for name in ["\"a\"", "\"b\"", "\"c\"", "\"d\""] {
            assert!(dot.contains(name), "missing {name} in {dot}");
        }
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n3"));
    }

    #[test]
    fn critical_path_lengths_on_diamond() {
        let g = diamond();
        let t = g.topology();
        assert_eq!(t.cp_len(NodeId(0)), 3);
        assert_eq!(t.cp_len(NodeId(1)), 2);
        assert_eq!(t.cp_len(NodeId(2)), 2);
        assert_eq!(t.cp_len(NodeId(3)), 1);
        assert_eq!(t.cp_queue(), &[0, 1, 2, 3]);
        assert_eq!(t.order(Priority::Depth), t.queue());
        assert_eq!(t.order(Priority::CriticalPath), t.cp_queue());
    }

    #[test]
    fn cp_queue_is_valid_execution_order() {
        // Random-ish DAG: cp order must respect every edge even when it
        // disagrees with the depth order.
        let mut b = TaskGraphBuilder::new();
        let mut ids = Vec::new();
        for i in 0..40u32 {
            let preds: Vec<NodeId> = ids
                .iter()
                .copied()
                .filter(|p: &NodeId| (i * 3 + p.0).is_multiple_of(5))
                .collect();
            ids.push(b.add(format!("n{i}"), Section::Master, pt(), &preds));
        }
        let g = b.build().unwrap();
        let t = g.topology();
        assert!(t.is_valid_execution_order(t.cp_queue()));
        // Edges strictly decrease cp_len, so equal-cp nodes never depend on
        // each other (the property that makes the stable sort safe).
        for n in 0..t.len() {
            let id = NodeId(n as u32);
            for &p in t.preds(id) {
                assert!(t.cp_len(NodeId(p)) > t.cp_len(id));
            }
        }
    }

    #[test]
    fn all_priority_orders_are_valid_execution_orders() {
        // Random-ish DAG: every precomputed policy order must respect every
        // edge, including the two DAG-literature policies.
        let mut b = TaskGraphBuilder::new();
        let mut ids = Vec::new();
        for i in 0..60u32 {
            let preds: Vec<NodeId> = ids
                .iter()
                .copied()
                .filter(|p: &NodeId| (i * 5 + p.0 * 2).is_multiple_of(7))
                .collect();
            ids.push(b.add(format!("n{i}"), Section::Master, pt(), &preds));
        }
        let g = b.build().unwrap();
        let t = g.topology();
        for pr in Priority::ALL {
            assert!(
                t.is_valid_execution_order(t.order(pr)),
                "{} order violates dependencies",
                pr.label()
            );
        }
    }

    #[test]
    fn longer_is_shorter_ties_prefer_long_total_paths() {
        // Two nodes with equal cp_len (2): node 1 sits on a depth-1 chain
        // (total path 3), node 2 is a source (total path 2). LIS must rank
        // the deeper chain first; plain CP keeps insertion order.
        let mut b = TaskGraphBuilder::new();
        let a = b.add("a", Section::DeckA, pt(), &[]);
        let x = b.add("x", Section::DeckA, pt(), &[a]); // depth 1, cp 2
        let y = b.add("y", Section::DeckB, pt(), &[]); // depth 0, cp 2
        b.add("xs", Section::Master, pt(), &[x]);
        b.add("ys", Section::Master, pt(), &[y]);
        let g = b.build().unwrap();
        let t = g.topology();
        assert_eq!(t.cp_len(x), t.cp_len(y));
        let lis = t.order(Priority::LongerIsShorter);
        let px = lis.iter().position(|&n| n == x.0).unwrap();
        let py = lis.iter().position(|&n| n == y.0).unwrap();
        assert!(
            px < py,
            "LIS must rank the longer total path first: {lis:?}"
        );
        assert!(t.is_valid_execution_order(lis));
    }

    #[test]
    fn global_fixed_ranks_within_columns() {
        // Same depth column: the node with the longer tail outranks its
        // peer regardless of insertion order.
        let mut b = TaskGraphBuilder::new();
        let a = b.add("a", Section::DeckA, pt(), &[]);
        let short = b.add("short", Section::DeckA, pt(), &[a]); // cp 1
        let long = b.add("long", Section::DeckB, pt(), &[a]); // cp 2
        b.add("tail", Section::Master, pt(), &[long]);
        let g = b.build().unwrap();
        let t = g.topology();
        let gfp = t.order(Priority::GlobalFixed);
        let ps = gfp.iter().position(|&n| n == short.0).unwrap();
        let pl = gfp.iter().position(|&n| n == long.0).unwrap();
        assert!(pl < ps, "GFP must rank the longer tail first: {gfp:?}");
        assert!(t.is_valid_execution_order(gfp));
    }

    #[test]
    fn succs_by_cp_sorted_ascending() {
        // chain 0 -> 1 -> 3 and edge 0 -> 2 (sink): succ 2 (cp 1) must come
        // before succ 1 (cp 2) so a LIFO pop takes the long path first.
        let mut b = TaskGraphBuilder::new();
        let a = b.add("a", Section::DeckA, pt(), &[]);
        let x = b.add("b", Section::DeckA, pt(), &[a]);
        b.add("c", Section::DeckB, pt(), &[a]);
        b.add("d", Section::Master, pt(), &[x]);
        let g = b.build().unwrap();
        let t = g.topology();
        assert_eq!(t.succs(NodeId(0)), &[1, 2]);
        assert_eq!(t.succs_by_cp(NodeId(0)), &[2, 1]);
        assert_eq!(t.succ_order(NodeId(0), Priority::Depth), &[1, 2]);
        assert_eq!(t.succ_order(NodeId(0), Priority::CriticalPath), &[2, 1]);
    }

    #[test]
    fn section_deck_round_trip() {
        for i in 0..4 {
            assert_eq!(Section::deck(i).deck_index(), Some(i));
        }
        assert_eq!(Section::Master.deck_index(), None);
    }
}
