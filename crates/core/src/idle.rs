//! Parking and waking idle work-stealing workers.
//!
//! §V-C/§VI: with work-stealing, "sleeping in fact only occurs when there
//! are solely nodes available with unfinished dependencies". When a worker
//! finds its own deque empty and nothing to steal, it registers in an
//! [`IdleSet`] and parks; a worker that releases new ready nodes wakes one
//! registered sleeper to come and steal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::Thread;

/// A set of parked workers, at most 64, tracked in a bitmask.
///
/// The protocol is the standard "register, re-check, park" pattern:
///
/// 1. The idle worker sets its bit, re-checks for work, and only then parks.
/// 2. A producer publishes work *before* calling [`wake_one`](IdleSet::wake_one);
///    if it clears a bit it unparks that worker, which re-checks and finds
///    the work.
///
/// A worker may be unparked spuriously (e.g. by the cycle-start broadcast);
/// callers must always re-check their condition in a loop.
#[derive(Debug)]
pub struct IdleSet {
    bits: AtomicU64,
    threads: Vec<Thread>,
}

impl IdleSet {
    /// An idle set over the given worker thread handles (index = worker id).
    ///
    /// # Panics
    /// Panics if more than 64 workers are supplied.
    pub fn new(threads: Vec<Thread>) -> Self {
        assert!(threads.len() <= 64, "IdleSet supports at most 64 workers");
        IdleSet {
            bits: AtomicU64::new(0),
            threads,
        }
    }

    /// Number of workers this set can track.
    pub fn worker_count(&self) -> usize {
        self.threads.len()
    }

    /// Register `worker` as idle. Call *before* the final work re-check.
    pub fn register(&self, worker: usize) {
        self.bits.fetch_or(1 << worker, Ordering::SeqCst);
    }

    /// Deregister `worker` (after waking or finding work).
    pub fn deregister(&self, worker: usize) {
        self.bits.fetch_and(!(1u64 << worker), Ordering::SeqCst);
    }

    /// True if `worker` is currently registered idle.
    pub fn is_registered(&self, worker: usize) -> bool {
        self.bits.load(Ordering::SeqCst) & (1 << worker) != 0
    }

    /// Number of registered idle workers.
    pub fn idle_count(&self) -> u32 {
        self.bits.load(Ordering::SeqCst).count_ones()
    }

    /// Wake one registered idle worker, if any. Returns the woken worker.
    pub fn wake_one(&self) -> Option<usize> {
        loop {
            let bits = self.bits.load(Ordering::SeqCst);
            if bits == 0 {
                return None;
            }
            let w = bits.trailing_zeros() as usize;
            if self
                .bits
                .compare_exchange(bits, bits & !(1 << w), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.threads[w].unpark();
                return Some(w);
            }
        }
    }

    /// Wake every registered idle worker (cycle end / shutdown broadcast).
    pub fn wake_all(&self) {
        let bits = self.bits.swap(0, Ordering::SeqCst);
        for w in 0..self.threads.len() {
            if bits & (1 << w) != 0 {
                self.threads[w].unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn register_and_wake_one() {
        let set = IdleSet::new(vec![std::thread::current(); 3]);
        set.register(1);
        assert!(set.is_registered(1));
        assert_eq!(set.idle_count(), 1);
        assert_eq!(set.wake_one(), Some(1));
        assert!(!set.is_registered(1));
        assert_eq!(set.wake_one(), None);
    }

    #[test]
    fn wake_one_picks_lowest_index() {
        let set = IdleSet::new(vec![std::thread::current(); 4]);
        set.register(3);
        set.register(1);
        assert_eq!(set.wake_one(), Some(1));
        assert_eq!(set.wake_one(), Some(3));
    }

    #[test]
    fn deregister_removes() {
        let set = IdleSet::new(vec![std::thread::current(); 2]);
        set.register(0);
        set.deregister(0);
        assert_eq!(set.wake_one(), None);
    }

    #[test]
    fn wake_all_clears() {
        let set = IdleSet::new(vec![std::thread::current(); 4]);
        for w in 0..4 {
            set.register(w);
        }
        set.wake_all();
        assert_eq!(set.idle_count(), 0);
    }

    /// A worker that parks via the protocol is actually woken by a producer.
    #[test]
    fn parked_worker_is_woken() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let work_ready = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::channel::<Thread>();
        let ready2 = Arc::clone(&work_ready);
        let handle = std::thread::spawn(move || {
            tx.send(std::thread::current()).unwrap();
            // Worker side: wait until someone wakes us AND work is ready.
            while !ready2.load(Ordering::SeqCst) {
                std::thread::park_timeout(Duration::from_millis(50));
            }
        });
        let worker_thread = rx.recv().unwrap();
        let set = IdleSet::new(vec![worker_thread]);
        set.register(0);
        // Producer: publish work, then wake.
        work_ready.store(true, Ordering::SeqCst);
        assert_eq!(set.wake_one(), Some(0));
        handle.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_workers_rejected() {
        IdleSet::new(vec![std::thread::current(); 65]);
    }
}
