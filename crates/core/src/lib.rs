//! The paper's primary contribution: the DJ Star audio **task graph** and the
//! three parallel scheduling strategies evaluated against it — busy-waiting,
//! thread-sleeping and work-stealing (§IV–V of *Parallelizing a Real-Time
//! Audio Application*, IPPS 2015).
//!
//! # Architecture
//!
//! * [`graph`] — the static task graph: nodes with audio processors,
//!   dependency edges, and the depth-sorted FIFO queue DJ Star stores the
//!   graph in ("nodes are inserted according to their depth in the
//!   dependency graph", §IV).
//! * [`processor`] — the [`Processor`](processor::Processor) trait node
//!   payloads implement, and the per-cycle context handed to them.
//! * [`exec`] — the runtime: an [`ExecGraph`](exec::ExecGraph) with atomic
//!   per-node dependency state, plus one executor per strategy:
//!   [`SequentialExecutor`](exec::SequentialExecutor),
//!   [`BusyExecutor`](exec::BusyExecutor),
//!   [`SleepExecutor`](exec::SleepExecutor),
//!   [`StealExecutor`](exec::StealExecutor) and the precompiled-schedule
//!   [`PlannedExecutor`](exec::PlannedExecutor) (a [`ScheduleBlueprint`]
//!   compiled offline, e.g. from `djstar-sim`'s list scheduler).
//! * [`deque`] — a fixed-capacity Chase–Lev work-stealing deque (owner pops
//!   LIFO from the bottom, thieves steal FIFO from the top — the exact
//!   convention of §V-C).
//! * [`idle`] — a bitmask-based idle-worker set used to park and wake
//!   work-stealing workers.
//! * [`pad`] — [`CachePadded`](pad::CachePadded), the cache-line padding
//!   applied to the hot shared atomics (deque ends, node completion state,
//!   cycle counters) to stop false sharing.
//! * [`trace`] — per-cycle schedule traces (which thread ran which node
//!   when, including wait intervals), the data behind Fig. 11.
//! * [`telemetry`] — real-time-safe per-worker cycle counters (spin
//!   iterations, park/unpark traffic, steal hit rates, execution time)
//!   drained between cycles into a fixed-capacity ring; the always-on
//!   complement to full tracing.
//! * [`faults`] — seeded, deterministic fault injection (node duration
//!   spikes, worker stalls, CPU-pressure episodes) hooked into every
//!   executor's node-execution path via [`exec::GraphExecutor::set_faults`];
//!   zero-cost when no plan is installed.
//! * [`net`] — seeded network-fault traces ([`net::NetFaultPlan`]: loss,
//!   duplication, reorder, jitter bursts per `(cycle, stream)`) and the
//!   zero-alloc adaptive [`net::JitterBuffer`] behind the engine's remote
//!   deck sources; deterministic by construction, no sockets involved.
//! * [`flight`] — the flight recorder: pre-allocated, overwrite-oldest
//!   per-worker span rings capturing the last N cycles of
//!   Exec/BusyWait/Sleep/Steal/Unpark/Fault intervals with zero hot-path
//!   allocation, behind [`exec::GraphExecutor::set_flight_recorder`]; the
//!   raw material for deadline-miss forensics and Chrome-trace export.
//!
//! # Memory-safety argument
//!
//! Node payloads live in `UnsafeCell`s and are accessed without locks. The
//! safety invariant, enforced by every executor, is *exactly-once ownership
//! per cycle*: a node is executed by exactly one thread per cycle, and a
//! thread only reads a predecessor's output after observing its
//! `done_epoch` equal to the current epoch with `Acquire` ordering (the
//! writer published it with `Release`). See `exec` for the detailed
//! proof obligations.

pub mod deque;
pub mod exec;
pub mod faults;
pub mod flight;
pub mod graph;
pub mod idle;
pub mod net;
pub mod pad;
pub mod processor;
pub mod telemetry;
pub mod trace;

pub use exec::{
    BlueprintError, BusyExecutor, CycleResult, ExecGraph, GraphExecutor, HybridExecutor,
    PlannedExecutor, PlannedNode, ScheduleBlueprint, SequentialExecutor, SleepExecutor,
    StagedGeneration, StealExecutor, Strategy, SwapError,
};
pub use faults::FaultPlan;
pub use flight::{CycleStamp, FlightConfig, FlightRecorder, FlightWindow, Span, SpanKind};
pub use graph::{GraphError, NodeId, Priority, Section, TaskGraph, TaskGraphBuilder};
pub use net::{JitterBuffer, JitterConfig, NetFaultPlan, NetStats};
pub use pad::CachePadded;
pub use processor::{CycleCtx, Processor};
pub use telemetry::{CounterSnapshot, CycleCounters, CycleRecord, TelemetryRing};
pub use trace::{ScheduleTrace, TraceEvent, TraceKind};
