//! Networked deck sources: seeded packet-fault traces and the adaptive
//! jitter buffer.
//!
//! The paper's engine assumes every deck's samples are already in local
//! memory. A venue-scale rig streams remote decks over a lossy network and
//! broadcasts the master bus back out — so this module opens that workload
//! axis *deterministically*: no sockets, no wall clocks, just a seeded
//! packet trace that is a pure function of `(seed, cycle, stream)`, the
//! same SplitMix64 idiom as [`crate::faults`].
//!
//! * [`NetFaultPlan`] — per-`(cycle, stream)` draws decide whether the
//!   packet sent that cycle is **lost**, how many cycles of **jitter**
//!   delay it picks up (with square-wave **jitter bursts**), whether it is
//!   **duplicated**, and whether it is **reordered** (held back behind its
//!   successors). Arrivals at a cycle are recovered by a bounded backward
//!   scan, so reception needs no queue and no allocation.
//! * [`JitterBuffer`] — a preallocated seq-indexed ring that re-orders and
//!   de-duplicates arrivals, conceals late/lost frames (hold-last with an
//!   exponential fade), and optionally adapts its playout depth between
//!   watermarks with min-dwell anti-oscillation and one-step-per-window
//!   chunked restore. Depth changes are mode transitions with a bounded
//!   cost: deepening holds one frame, shallowing skips one.
//!
//! Both halves are lock-free and allocation-free after construction:
//! the executors' exactly-once node ownership means a consuming node runs
//! on one worker per cycle, and every decision derives from the seed and
//! the cycle number — so a fixed trace seed produces byte-identical audio
//! on every strategy at every thread count.

use djstar_dsp::rng::SmallRng;
use djstar_dsp::AudioBuf;

/// Domain-separation salts: each draw class is an independent stream of
/// the same seed.
const SALT_LOSS: u64 = 0x4C4F_5353; // "LOSS"
const SALT_JIT: u64 = 0x4A49_5454; // "JITT"
const SALT_DUP: u64 = 0x4455_5053; // "DUPS"
const SALT_REORD: u64 = 0x524F_5244; // "RORD"
const SALT_LISTEN: u64 = 0x4C49_5354; // "LIST"

/// Hard bound on any single packet's delay in cycles; keeps the backward
/// arrival scan (and the jitter buffer's capacity) small and constant.
pub const MAX_DELAY: u32 = 48;

/// Upper bound on arrivals in one cycle for one stream: every send cycle
/// in the delay horizon could land here, once as a primary and once as a
/// duplicate.
pub const MAX_ARRIVALS: usize = 2 * (MAX_DELAY as usize + 1);

/// One packet arrival produced by [`NetFaultPlan::arrivals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Frame sequence number (== the cycle the packet was sent).
    pub seq: u64,
    /// True when this is the duplicate copy of an already-sent packet.
    pub dup: bool,
}

/// A seeded, immutable network-fault trace.
///
/// The model is cycle-synchronous: stream `s` sends exactly one packet per
/// cycle, carrying the frame with `seq == cycle`. Every per-packet
/// decision is a stateless SplitMix64 draw over `(seed, cycle, stream)`:
///
/// * **loss** — the packet never arrives (and neither does any duplicate);
/// * **jitter** — a uniform extra delay in `0..=jitter` cycles, widened to
///   `0..=jitter + burst_jitter` while the burst square wave
///   (`burst_period`/`burst_len`) is high;
/// * **reorder** — the packet is additionally held back `reorder_extra`
///   cycles, guaranteeing it arrives behind packets sent after it;
/// * **duplication** — a second copy arrives `dup_delay` cycles after the
///   first.
///
/// All fields are plain data so harnesses can describe scenarios without
/// touching executor internals; [`NetFaultPlan::quiet`] is the clean
/// network used to measure the cost of the machinery itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlan {
    /// Seed for every draw.
    pub seed: u64,
    /// Minimum transit delay of every packet, in cycles.
    pub base_delay: u32,
    /// Max extra delay cycles under quiet conditions (uniform draw).
    pub jitter: u32,
    /// Probability a packet is lost outright.
    pub loss_rate: f64,
    /// Probability a packet is duplicated.
    pub dup_rate: f64,
    /// Cycles the duplicate trails the original by.
    pub dup_delay: u32,
    /// Probability a packet is held back behind its successors.
    pub reorder_rate: f64,
    /// Extra delay a reordered packet picks up.
    pub reorder_extra: u32,
    /// Cycle period of the jitter-burst square wave (`0` disables bursts).
    pub burst_period: u64,
    /// Leading cycles of each period under burst jitter.
    pub burst_len: u64,
    /// Extra max jitter while a burst is high.
    pub burst_jitter: u32,
    /// Probability a broadcast listener's drain stalls in a given cycle
    /// (per-listener backpressure; see the engine's `BroadcastSink`).
    pub listener_stall_rate: f64,
}

impl NetFaultPlan {
    /// A clean network: every packet arrives after `base_delay` exactly,
    /// nothing is lost, duplicated or reordered. Used to measure the
    /// overhead of the reception path itself.
    pub fn quiet(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            base_delay: 0,
            jitter: 0,
            loss_rate: 0.0,
            dup_rate: 0.0,
            dup_delay: 1,
            reorder_rate: 0.0,
            reorder_extra: 0,
            burst_period: 0,
            burst_len: 0,
            burst_jitter: 0,
            listener_stall_rate: 0.0,
        }
    }

    /// True when no draw can ever perturb a packet.
    pub fn is_quiet(&self) -> bool {
        self.jitter == 0
            && self.loss_rate <= 0.0
            && self.dup_rate <= 0.0
            && (self.reorder_rate <= 0.0 || self.reorder_extra == 0)
            && (self.burst_period == 0 || self.burst_len == 0 || self.burst_jitter == 0)
            && self.listener_stall_rate <= 0.0
    }

    /// One stateless SplitMix64 draw for `(salt, a, b)`, mapped to `[0,1)`.
    #[inline]
    fn draw(&self, salt: u64, a: u64, b: u64) -> f64 {
        // Distinct odd multipliers keep (a, b) pairs from colliding under
        // xor; the SplitMix64 output mix does the rest.
        let key = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E6D_62D0_6F6A_9A9B))
            .wrapping_add(a.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(b.wrapping_mul(0xA076_1D64_78BD_642F));
        let h = SmallRng::seed_from_u64(key).next_u64();
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True while the jitter-burst square wave is high in `cycle`.
    #[inline]
    pub fn burst_active(&self, cycle: u64) -> bool {
        self.burst_period != 0
            && self.burst_jitter != 0
            && cycle % self.burst_period < self.burst_len
    }

    /// True when the packet stream `stream` sends in `cycle` is lost (no
    /// copy of it ever arrives).
    #[inline]
    pub fn lost(&self, cycle: u64, stream: u32) -> bool {
        self.loss_rate > 0.0 && self.draw(SALT_LOSS, cycle, stream as u64) < self.loss_rate
    }

    /// Transit delay (in cycles) of the packet `stream` sends in `cycle`,
    /// or `None` when it is lost. Pure per-`(seed, cycle, stream)`; the
    /// result is clamped so it never exceeds [`MAX_DELAY`].
    #[inline]
    pub fn delay_of(&self, cycle: u64, stream: u32) -> Option<u32> {
        if self.lost(cycle, stream) {
            return None;
        }
        let mut delay = self.base_delay;
        let span = self.jitter
            + if self.burst_active(cycle) {
                self.burst_jitter
            } else {
                0
            };
        if span > 0 {
            delay += (self.draw(SALT_JIT, cycle, stream as u64) * (span + 1) as f64) as u32;
        }
        if self.reorder_rate > 0.0
            && self.reorder_extra > 0
            && self.draw(SALT_REORD, cycle, stream as u64) < self.reorder_rate
        {
            delay += self.reorder_extra;
        }
        Some(delay.min(MAX_DELAY))
    }

    /// Arrival delay of the duplicate copy, when one exists.
    #[inline]
    pub fn dup_delay_of(&self, cycle: u64, stream: u32) -> Option<u32> {
        if self.dup_rate <= 0.0 || self.draw(SALT_DUP, cycle, stream as u64) >= self.dup_rate {
            return None;
        }
        self.delay_of(cycle, stream)
            .map(|d| (d + self.dup_delay.max(1)).min(MAX_DELAY))
    }

    /// Upper bound (inclusive) on any packet's delay under this plan.
    #[inline]
    pub fn max_delay(&self) -> u32 {
        let jitter_top = self.base_delay + self.jitter + self.burst_jitter + self.reorder_extra;
        (jitter_top + self.dup_delay.max(1)).min(MAX_DELAY)
    }

    /// Collect every arrival for `(cycle, stream)` into `out`, oldest seq
    /// first; returns the count. A bounded backward scan over the delay
    /// horizon: the packet sent at `cycle - d` arrives now iff its drawn
    /// delay equals `d`. Zero-allocation and independent of which worker
    /// (or strategy) runs the consuming node.
    pub fn arrivals(&self, cycle: u64, stream: u32, out: &mut [Arrival; MAX_ARRIVALS]) -> usize {
        let mut n = 0;
        let horizon = self.max_delay();
        // Oldest candidate first: d descends from the horizon to 0.
        let mut d = if cycle < horizon as u64 {
            cycle as u32
        } else {
            horizon
        };
        loop {
            let send = cycle - d as u64;
            if self.delay_of(send, stream) == Some(d) {
                out[n] = Arrival {
                    seq: send,
                    dup: false,
                };
                n += 1;
            }
            if self.dup_delay_of(send, stream) == Some(d) {
                out[n] = Arrival {
                    seq: send,
                    dup: true,
                };
                n += 1;
            }
            if d == 0 {
                break;
            }
            d -= 1;
        }
        n
    }

    /// True when broadcast listener `listener` cannot drain in `cycle`
    /// (its downlink stalled); the backpressure draw of `BroadcastSink`.
    #[inline]
    pub fn listener_stalled(&self, cycle: u64, listener: u32) -> bool {
        self.listener_stall_rate > 0.0
            && self.draw(SALT_LISTEN, cycle, listener as u64) < self.listener_stall_rate
    }
}

/// Deterministically synthesize the remote stream's frame `seq` into
/// `out`: a per-stream dual tone whose phase is a closed-form function of
/// `seq`, so frames are independent (a skip after a depth change resumes
/// the exact stream content) and any two receivers of the same stream
/// produce bit-identical audio.
pub fn fill_remote_frame(stream_seed: u64, seq: u64, out: &mut AudioBuf) {
    let frames = out.frames() as u64;
    let sr = djstar_dsp::SAMPLE_RATE as f64;
    let f0 = 110.0 + (stream_seed % 7) as f64 * 55.0;
    let f1 = f0 * 1.498; // detuned fifth keeps the signal non-periodic
    let w0 = core::f64::consts::TAU * f0 / sr;
    let w1 = core::f64::consts::TAU * f1 / sr;
    let base = seq * frames;
    let channels = out.channels();
    for ch in 0..channels {
        let chp = ch as f64 * 0.7;
        for i in 0..frames as usize {
            let n = (base + i as u64) as f64;
            // Reduce the phase in f64 before the sin so large seqs keep
            // full precision.
            let p0 = (w0 * n) % core::f64::consts::TAU;
            let p1 = (w1 * n + chp) % core::f64::consts::TAU;
            let s = 0.35 * p0.sin() + 0.18 * p1.sin();
            out.set_sample(ch, i, s as f32);
        }
    }
}

/// Watermark / adaptation parameters of a [`JitterBuffer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterConfig {
    /// Smallest playout depth the buffer will run at (cycles of latency).
    pub min_depth: u32,
    /// Largest playout depth.
    pub max_depth: u32,
    /// Initial playout depth (clamped into `[min_depth, max_depth]`).
    pub start_depth: u32,
    /// Enable watermark-driven depth adaptation.
    pub adapt: bool,
    /// Sliding window length (in pops) over which conceals are counted.
    pub window: u32,
    /// Deepen when conceals within a window reach this mark.
    pub high_water: u32,
    /// Shallow when a full window holds at most this many conceals.
    pub low_water: u32,
    /// Minimum cycles between two depth changes (anti-oscillation dwell).
    pub min_dwell: u64,
    /// Per-consecutive-conceal gain applied to the held frame.
    pub fade: f32,
}

impl Default for JitterConfig {
    fn default() -> Self {
        JitterConfig {
            min_depth: 1,
            max_depth: 12,
            start_depth: 1,
            adapt: false,
            window: 16,
            high_water: 2,
            low_water: 0,
            min_dwell: 24,
            fade: 0.7,
        }
    }
}

impl JitterConfig {
    /// A fixed-depth configuration (no adaptation).
    pub fn fixed(depth: u32) -> Self {
        JitterConfig {
            min_depth: depth,
            max_depth: depth,
            start_depth: depth,
            adapt: false,
            ..Default::default()
        }
    }

    /// An adaptive configuration over `[min_depth, max_depth]` starting at
    /// the minimum (latency-first).
    pub fn adaptive(min_depth: u32, max_depth: u32) -> Self {
        JitterConfig {
            min_depth,
            max_depth,
            start_depth: min_depth,
            adapt: true,
            ..Default::default()
        }
    }
}

/// Plain-value reception statistics of one [`JitterBuffer`]. Monotonic
/// over the buffer's lifetime; harnesses diff successive reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames accepted into the ring.
    pub received: u64,
    /// Packets the trace lost outright (observed at send horizon).
    pub lost: u64,
    /// Arrivals too late to play (their slot already popped).
    pub late: u64,
    /// Duplicate arrivals discarded.
    pub duplicated: u64,
    /// Frames concealed at pop time (the dropout count).
    pub concealed: u64,
    /// Depth changes applied (each holds or skips exactly one frame).
    pub depth_changes: u64,
    /// Frames skipped by shallowing transitions.
    pub skipped: u64,
}

/// Outcome of accepting one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Frame stored (the closure filled the slot).
    Stored,
    /// Arrival was behind the playout head; dropped and counted late.
    Late,
    /// Slot already held this seq; dropped and counted duplicated.
    Duplicate,
}

/// Outcome of one playout pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopOutcome {
    /// The expected frame was present and played.
    Played,
    /// The frame was missing; the previous frame was held (faded).
    Concealed,
    /// Initial buffering: nothing has played yet, output is silence.
    Preroll,
    /// A deepening transition held the last frame for one cycle.
    Held,
}

/// One ring slot: a preallocated frame plus the seq it currently holds.
struct Slot {
    seq: u64,
    valid: bool,
    frame: AudioBuf,
}

/// The lock-free, zero-alloc adaptive jitter buffer.
///
/// Single-owner by construction: exactly one graph node owns the buffer
/// and the executors guarantee exactly-once node execution per cycle, so
/// no interior synchronization is needed — "lock-free" the way the rest of
/// the hot path is: no locks, no waits, no allocation after construction.
///
/// The ring is seq-indexed (`seq % capacity`), which re-orders and
/// de-duplicates arrivals for free: a push lands in its slot regardless of
/// arrival order, and a second copy of a seq is detected by slot
/// inspection.
pub struct JitterBuffer {
    slots: Vec<Slot>,
    cfg: JitterConfig,
    depth: u32,
    target_depth: u32,
    /// Next seq to play; meaningful once `started`.
    next_play: u64,
    started: bool,
    /// First cycle at which a frame may play (start + initial depth).
    preroll_until: u64,
    /// True once a real frame has played (preroll over).
    warmed: bool,
    last: AudioBuf,
    conceal_gain: f32,
    stats: NetStats,
    // Adaptation state.
    window_pops: u32,
    window_conceals: u32,
    last_change: u64,
    has_changed: bool,
}

impl JitterBuffer {
    /// A buffer of `capacity` preallocated `channels`×`frames` slots.
    /// Capacity must exceed `cfg.max_depth` plus the trace's maximum
    /// delay so an in-horizon arrival can never collide with an unplayed
    /// slot.
    pub fn new(channels: usize, frames: usize, capacity: usize, cfg: JitterConfig) -> Self {
        let capacity = capacity.max(cfg.max_depth as usize + 2);
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: 0,
                valid: false,
                frame: AudioBuf::zeroed(channels, frames),
            })
            .collect();
        let depth = cfg.start_depth.clamp(cfg.min_depth, cfg.max_depth);
        JitterBuffer {
            slots,
            cfg,
            depth,
            target_depth: depth,
            next_play: 0,
            started: false,
            preroll_until: 0,
            warmed: false,
            last: AudioBuf::zeroed(channels, frames),
            conceal_gain: 1.0,
            stats: NetStats::default(),
            window_pops: 0,
            window_conceals: 0,
            last_change: 0,
            has_changed: false,
        }
    }

    /// Sized for `plan`: capacity covers the adaptation range plus the
    /// plan's delay horizon.
    pub fn for_plan(
        channels: usize,
        frames: usize,
        plan: &NetFaultPlan,
        cfg: JitterConfig,
    ) -> Self {
        let cap = cfg.max_depth as usize + plan.max_delay() as usize + 2;
        Self::new(channels, frames, cap, cfg)
    }

    /// Current playout depth (cycles of added latency).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The depth the buffer is transitioning toward.
    pub fn target_depth(&self) -> u32 {
        self.target_depth
    }

    /// Reception statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Depth floor/ceiling currently in force.
    pub fn depth_bounds(&self) -> (u32, u32) {
        (self.cfg.min_depth, self.cfg.max_depth)
    }

    /// Order a depth change (the engine's latency/dropout governor).
    /// Clamped into the configured bounds; applied one step per pop with
    /// the usual bounded transition cost.
    pub fn set_target_depth(&mut self, depth: u32) {
        self.target_depth = depth.clamp(self.cfg.min_depth, self.cfg.max_depth);
    }

    /// Widen or narrow the allowed depth range (governor reconfiguration).
    pub fn set_depth_bounds(&mut self, min_depth: u32, max_depth: u32) {
        self.cfg.min_depth = min_depth.min(max_depth);
        self.cfg.max_depth = max_depth.max(min_depth);
        self.target_depth = self
            .target_depth
            .clamp(self.cfg.min_depth, self.cfg.max_depth);
    }

    /// Record a packet the trace lost outright (reception observes this
    /// at the send horizon; see `NetFaultPlan::lost`).
    pub fn note_lost(&mut self) {
        self.stats.lost += 1;
    }

    /// Accept the arrival of frame `seq`; `fill` synthesizes/decodes the
    /// payload directly into the preallocated slot (no copy, no alloc).
    pub fn push_with(&mut self, seq: u64, fill: impl FnOnce(&mut AudioBuf)) -> PushOutcome {
        if self.started && seq < self.next_play {
            self.stats.late += 1;
            return PushOutcome::Late;
        }
        let cap = self.slots.len() as u64;
        if self.started && seq >= self.next_play + cap {
            // Beyond the ring horizon (cannot happen under a plan the
            // buffer was sized for); drop rather than corrupt.
            self.stats.late += 1;
            return PushOutcome::Late;
        }
        let slot = &mut self.slots[(seq % cap) as usize];
        if slot.valid && slot.seq == seq {
            self.stats.duplicated += 1;
            return PushOutcome::Duplicate;
        }
        slot.seq = seq;
        slot.valid = true;
        fill(&mut slot.frame);
        self.stats.received += 1;
        PushOutcome::Stored
    }

    /// Play one frame for `cycle` into `out`, advancing the playout head.
    /// Call after pushing the cycle's arrivals. Handles preroll, depth
    /// transitions (one bounded step per cycle), concealment, and — when
    /// `cfg.adapt` — watermark-driven depth adaptation.
    pub fn pop(&mut self, cycle: u64, out: &mut AudioBuf) -> PopOutcome {
        if !self.started {
            self.started = true;
            // The stream's first reachable frame is `cycle` (seq == send
            // cycle); bank `depth` cycles of arrivals before playing it,
            // which establishes the invariant `cycle - next_play == depth`.
            self.next_play = cycle;
            self.preroll_until = cycle + self.depth as u64;
            self.last_change = cycle;
        }
        if cycle < self.preroll_until {
            out.clear();
            return PopOutcome::Preroll;
        }
        // One bounded transition step per cycle toward the target depth.
        if self.depth != self.target_depth {
            if self.depth < self.target_depth {
                // Deepen: hold one frame, let the buffer fill one deeper.
                self.depth += 1;
                self.stats.depth_changes += 1;
                self.last_change = cycle;
                self.has_changed = true;
                self.emit_hold(out);
                self.note_pop(cycle, false);
                return PopOutcome::Held;
            }
            // Shallow: skip one frame to shed one cycle of latency.
            self.depth -= 1;
            self.stats.depth_changes += 1;
            self.stats.skipped += 1;
            self.last_change = cycle;
            self.has_changed = true;
            self.invalidate(self.next_play);
            self.next_play += 1;
        }
        let seq = self.next_play;
        let cap = self.slots.len() as u64;
        let slot = &mut self.slots[(seq % cap) as usize];
        let outcome = if slot.valid && slot.seq == seq {
            out.copy_from(&slot.frame);
            self.last.copy_from(&slot.frame);
            slot.valid = false;
            self.conceal_gain = 1.0;
            self.warmed = true;
            PopOutcome::Played
        } else if self.warmed {
            // Hold-last concealment with an exponential fade.
            self.conceal_gain *= self.cfg.fade;
            out.copy_from(&self.last);
            out.scale(self.conceal_gain);
            self.stats.concealed += 1;
            PopOutcome::Concealed
        } else {
            out.clear();
            PopOutcome::Preroll
        };
        self.next_play += 1;
        self.note_pop(cycle, outcome == PopOutcome::Concealed);
        outcome
    }

    fn invalidate(&mut self, seq: u64) {
        let cap = self.slots.len() as u64;
        let slot = &mut self.slots[(seq % cap) as usize];
        if slot.valid && slot.seq == seq {
            slot.valid = false;
        }
    }

    fn emit_hold(&mut self, out: &mut AudioBuf) {
        if self.warmed {
            out.copy_from(&self.last);
        } else {
            out.clear();
        }
    }

    /// Watermark adaptation: deepen fast when conceals cross the high
    /// mark, shallow only after a full clean window (chunked restore),
    /// both gated by the min-dwell.
    fn note_pop(&mut self, cycle: u64, concealed: bool) {
        if !self.cfg.adapt {
            return;
        }
        self.window_pops += 1;
        if concealed {
            self.window_conceals += 1;
        }
        let dwell_over =
            !self.has_changed || cycle.saturating_sub(self.last_change) >= self.cfg.min_dwell;
        if self.window_conceals >= self.cfg.high_water.max(1) {
            if self.target_depth < self.cfg.max_depth && dwell_over {
                self.target_depth += 1;
            }
            self.window_pops = 0;
            self.window_conceals = 0;
            return;
        }
        if self.window_pops >= self.cfg.window.max(1) {
            if self.window_conceals <= self.cfg.low_water
                && self.target_depth > self.cfg.min_depth
                && dwell_over
                && self.depth == self.target_depth
            {
                self.target_depth -= 1;
            }
            self.window_pops = 0;
            self.window_conceals = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stormy() -> NetFaultPlan {
        NetFaultPlan {
            seed: 0xE17,
            base_delay: 0,
            jitter: 2,
            loss_rate: 0.02,
            dup_rate: 0.05,
            dup_delay: 2,
            reorder_rate: 0.1,
            reorder_extra: 3,
            burst_period: 50,
            burst_len: 12,
            burst_jitter: 6,
            listener_stall_rate: 0.1,
        }
    }

    #[test]
    fn trace_is_a_pure_function_of_the_seed() {
        let a = stormy();
        let b = stormy();
        for cycle in 0..400u64 {
            for stream in 0..4u32 {
                assert_eq!(a.delay_of(cycle, stream), b.delay_of(cycle, stream));
                assert_eq!(a.dup_delay_of(cycle, stream), b.dup_delay_of(cycle, stream));
            }
        }
        let other = NetFaultPlan {
            seed: 1,
            ..stormy()
        };
        let same = (0..400u64)
            .filter(|&c| a.delay_of(c, 0) == other.delay_of(c, 0))
            .count();
        assert!(same < 400, "different seeds must differ somewhere");
    }

    #[test]
    fn every_sent_packet_arrives_exactly_once_or_is_lost() {
        // Over a long horizon, collecting arrivals per cycle must
        // reproduce each sent seq exactly once (plus tagged duplicates),
        // and never invent or drop one.
        let plan = stormy();
        let cycles = 600u64;
        let horizon = plan.max_delay() as u64;
        let mut primaries = vec![0u32; cycles as usize];
        let mut dups = vec![0u32; cycles as usize];
        let mut buf = [Arrival { seq: 0, dup: false }; MAX_ARRIVALS];
        for c in 0..cycles + horizon {
            let n = plan.arrivals(c, 2, &mut buf);
            for a in &buf[..n] {
                assert!(a.seq <= c, "arrival from the future");
                assert!(c - a.seq <= horizon, "arrival beyond the horizon");
                if (a.seq as usize) < primaries.len() {
                    if a.dup {
                        dups[a.seq as usize] += 1;
                    } else {
                        primaries[a.seq as usize] += 1;
                    }
                }
            }
        }
        let mut lost = 0u64;
        for c in 0..cycles {
            let want = u32::from(plan.delay_of(c, 2).is_some());
            assert_eq!(primaries[c as usize], want, "seq {c} primary count");
            let want_dup = u32::from(plan.dup_delay_of(c, 2).is_some());
            assert_eq!(dups[c as usize], want_dup, "seq {c} dup count");
            if want == 0 {
                lost += 1;
                assert_eq!(want_dup, 0, "a lost packet cannot be duplicated");
            }
        }
        assert!(lost > 0, "the storm should lose something in 600 cycles");
    }

    #[test]
    fn quiet_plan_delivers_everything_on_time() {
        let plan = NetFaultPlan::quiet(7);
        assert!(plan.is_quiet());
        assert!(!stormy().is_quiet());
        for c in 0..200u64 {
            assert_eq!(plan.delay_of(c, 0), Some(0));
            assert_eq!(plan.dup_delay_of(c, 0), None);
            assert!(!plan.listener_stalled(c, 3) || plan.listener_stall_rate > 0.0);
        }
    }

    #[test]
    fn burst_wave_follows_period_and_len() {
        let plan = stormy();
        for c in 0..200u64 {
            assert_eq!(plan.burst_active(c), c % 50 < 12, "cycle {c}");
        }
    }

    /// Drive a buffer against a plan for `cycles`, returning (played,
    /// concealed, out-of-order violations).
    fn drive(plan: &NetFaultPlan, cfg: JitterConfig, cycles: u64) -> (u64, u64, NetStats) {
        let mut jb = JitterBuffer::for_plan(2, 16, plan, cfg);
        let mut out = AudioBuf::zeroed(2, 16);
        let mut buf = [Arrival { seq: 0, dup: false }; MAX_ARRIVALS];
        let mut played = 0u64;
        let mut concealed = 0u64;
        for c in 0..cycles {
            let n = plan.arrivals(c, 0, &mut buf);
            for a in &buf[..n] {
                let seq = a.seq;
                jb.push_with(seq, |f| fill_remote_frame(42, seq, f));
            }
            if plan.lost(c, 0) {
                jb.note_lost();
            }
            match jb.pop(c, &mut out) {
                PopOutcome::Played => played += 1,
                PopOutcome::Concealed => concealed += 1,
                _ => {}
            }
        }
        (played, concealed, jb.stats())
    }

    #[test]
    fn clean_network_plays_every_frame_after_preroll() {
        let plan = NetFaultPlan::quiet(1);
        let (played, concealed, stats) = drive(&plan, JitterConfig::fixed(1), 300);
        assert_eq!(concealed, 0);
        assert_eq!(stats.concealed, 0);
        assert_eq!(stats.late, 0);
        assert_eq!(stats.duplicated, 0);
        // One preroll cycle at depth 1.
        assert_eq!(played, 299);
    }

    #[test]
    fn played_frames_are_bit_exact_and_in_order() {
        let plan = stormy();
        let mut jb = JitterBuffer::for_plan(2, 16, &plan, JitterConfig::fixed(4));
        let mut out = AudioBuf::zeroed(2, 16);
        let mut expect = AudioBuf::zeroed(2, 16);
        let mut buf = [Arrival { seq: 0, dup: false }; MAX_ARRIVALS];
        let mut last_played: Option<u64> = None;
        for c in 0..500u64 {
            let n = plan.arrivals(c, 1, &mut buf);
            for a in &buf[..n] {
                let seq = a.seq;
                jb.push_with(seq, |f| fill_remote_frame(9, seq, f));
            }
            if jb.pop(c, &mut out) == PopOutcome::Played {
                let seq = c - 4; // fixed depth, no transitions
                fill_remote_frame(9, seq, &mut expect);
                assert_eq!(out, expect, "cycle {c}");
                if let Some(prev) = last_played {
                    assert!(seq > prev, "out-of-order playout");
                }
                last_played = Some(seq);
            }
        }
        assert!(last_played.is_some());
    }

    #[test]
    fn deeper_fixed_buffers_conceal_less() {
        let plan = stormy();
        let (_, c1, _) = drive(&plan, JitterConfig::fixed(1), 800);
        let (_, c8, _) = drive(&plan, JitterConfig::fixed(8), 800);
        assert!(
            c8 < c1,
            "depth 8 must conceal less than depth 1 ({c8} vs {c1})"
        );
    }

    #[test]
    fn adaptive_depth_stays_within_watermarks() {
        let plan = stormy();
        let cfg = JitterConfig::adaptive(1, 8);
        let mut jb = JitterBuffer::for_plan(2, 16, &plan, cfg);
        let mut out = AudioBuf::zeroed(2, 16);
        let mut buf = [Arrival { seq: 0, dup: false }; MAX_ARRIVALS];
        let mut changes = 0u64;
        for c in 0..1_000u64 {
            let n = plan.arrivals(c, 0, &mut buf);
            for a in &buf[..n] {
                let seq = a.seq;
                jb.push_with(seq, |f| fill_remote_frame(3, seq, f));
            }
            jb.pop(c, &mut out);
            assert!(jb.depth() >= 1 && jb.depth() <= 8, "depth {}", jb.depth());
            assert!(jb.target_depth() >= 1 && jb.target_depth() <= 8);
            changes = jb.stats().depth_changes;
        }
        assert!(changes > 0, "the storm should provoke adaptation");
        // Min-dwell anti-oscillation: changes are bounded well below the
        // cycle count.
        assert!(changes < 1_000 / cfg.min_dwell + 8, "{changes} changes");
    }

    #[test]
    fn governor_ordered_depth_changes_apply_one_step_per_cycle() {
        let plan = NetFaultPlan::quiet(5);
        let mut jb = JitterBuffer::for_plan(2, 8, &plan, JitterConfig::fixed(2));
        jb.set_depth_bounds(1, 10);
        let mut out = AudioBuf::zeroed(2, 8);
        let mut buf = [Arrival { seq: 0, dup: false }; MAX_ARRIVALS];
        for c in 0..20u64 {
            let n = plan.arrivals(c, 0, &mut buf);
            for a in &buf[..n] {
                let seq = a.seq;
                jb.push_with(seq, |f| fill_remote_frame(1, seq, f));
            }
            jb.pop(c, &mut out);
        }
        assert_eq!(jb.depth(), 2);
        jb.set_target_depth(5);
        let mut held = 0;
        for c in 20..40u64 {
            let n = plan.arrivals(c, 0, &mut buf);
            for a in &buf[..n] {
                let seq = a.seq;
                jb.push_with(seq, |f| fill_remote_frame(1, seq, f));
            }
            if jb.pop(c, &mut out) == PopOutcome::Held {
                held += 1;
            }
        }
        assert_eq!(jb.depth(), 5);
        assert_eq!(held, 3, "deepening 2→5 holds exactly 3 frames");
        assert_eq!(jb.stats().depth_changes, 3);
        jb.set_target_depth(4);
        for c in 40..44u64 {
            let n = plan.arrivals(c, 0, &mut buf);
            for a in &buf[..n] {
                let seq = a.seq;
                jb.push_with(seq, |f| fill_remote_frame(1, seq, f));
            }
            jb.pop(c, &mut out);
        }
        assert_eq!(jb.depth(), 4);
        assert_eq!(jb.stats().skipped, 1, "shallowing 5→4 skips one frame");
    }

    #[test]
    fn duplicates_and_late_arrivals_are_counted_not_played() {
        let plan = NetFaultPlan::quiet(2);
        let mut jb = JitterBuffer::for_plan(2, 8, &plan, JitterConfig::fixed(1));
        let mut out = AudioBuf::zeroed(2, 8);
        assert_eq!(
            jb.push_with(0, |f| fill_remote_frame(0, 0, f)),
            PushOutcome::Stored
        );
        assert_eq!(
            jb.push_with(0, |f| fill_remote_frame(0, 0, f)),
            PushOutcome::Duplicate
        );
        jb.pop(0, &mut out); // preroll; head at seq 0 afterwards? depth 1 → head = 0, popped
        jb.pop(1, &mut out);
        assert_eq!(
            jb.push_with(0, |f| fill_remote_frame(0, 0, f)),
            PushOutcome::Late
        );
        let s = jb.stats();
        assert_eq!(s.duplicated, 1);
        assert_eq!(s.late, 1);
    }

    #[test]
    fn concealment_fades_the_held_frame() {
        let plan = NetFaultPlan::quiet(3);
        let mut jb = JitterBuffer::for_plan(1, 4, &plan, JitterConfig::fixed(0));
        let mut out = AudioBuf::zeroed(1, 4);
        // Depth 0 clamps to min_depth 0 via fixed(0): play seq c at cycle c.
        jb.push_with(0, |f| {
            for i in 0..4 {
                f.set_sample(0, i, 1.0);
            }
        });
        assert_eq!(jb.pop(0, &mut out), PopOutcome::Played);
        assert_eq!(jb.pop(1, &mut out), PopOutcome::Concealed);
        let fade = JitterConfig::default().fade;
        assert!((out.sample(0, 0) - fade).abs() < 1e-6);
        assert_eq!(jb.pop(2, &mut out), PopOutcome::Concealed);
        assert!((out.sample(0, 0) - fade * fade).abs() < 1e-6);
    }
}
