//! Cache-line padding for hot shared atomics.
//!
//! The executors' hot path is dominated by a handful of atomics that
//! different threads hammer concurrently: deque `bottom`/`top` pointers,
//! per-node completion epochs, the cycle's `done_count`. When two of those
//! land on the same cache line, every write by one thread invalidates the
//! line under the other — false sharing that turns independent operations
//! into a coherence ping-pong. [`CachePadded`] gives each such atomic its
//! own line (aligned to 128 bytes to also defeat the adjacent-line
//! prefetcher on modern x86, matching what `CycleCounters` already does).

use std::ops::{Deref, DerefMut};

/// Wraps a value so it occupies (at least) its own cache line.
///
/// 128-byte alignment covers the 64-byte line size of current x86/ARM cores
/// plus the spatial prefetcher that pulls line pairs.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` on its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consume the wrapper.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_never_share_a_line() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        let pair = [
            CachePadded::new(AtomicU64::new(1)),
            CachePadded::new(AtomicU64::new(2)),
        ];
        let a = &pair[0].value as *const _ as usize;
        let b = &pair[1].value as *const _ as usize;
        assert!(b.abs_diff(a) >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(AtomicU64::new(7));
        p.fetch_add(1, Ordering::Relaxed);
        *p.get_mut() += 1;
        assert_eq!(p.into_inner().into_inner(), 9);
    }
}
