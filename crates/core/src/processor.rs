//! The node payload trait and the per-cycle context.

use crate::telemetry::CycleCounters;
use djstar_dsp::AudioBuf;

/// Per-cycle context handed to every node processor.
///
/// The graph itself is application-agnostic; the engine supplies the audio
/// produced by preprocessing (one buffer per deck) and a flat array of
/// control values (fader positions, EQ gains, …) that processors index by
/// convention.
#[derive(Debug, Clone, Copy)]
pub struct CycleCtx<'a> {
    /// Monotonically increasing cycle number (also the dependency epoch).
    pub epoch: u64,
    /// External audio inputs produced by graph preprocessing, e.g. the
    /// time-stretched deck audio. Source nodes read these.
    pub external_audio: &'a [AudioBuf],
    /// External scalar controls (interpretation is up to the application).
    pub controls: &'a [f32],
    /// The executing worker's cycle counters, when telemetry or the flight
    /// recorder is armed. Processors with their own observability (e.g. the
    /// engine's network nodes) record into these; `None` costs nothing.
    pub counters: Option<&'a CycleCounters>,
}

impl<'a> CycleCtx<'a> {
    /// A context with no external inputs (useful in tests).
    pub fn bare(epoch: u64) -> CycleCtx<'static> {
        CycleCtx {
            epoch,
            external_audio: &[],
            controls: &[],
            counters: None,
        }
    }
}

/// A task-graph node payload: one audio computation per cycle.
///
/// `inputs` are the output buffers of the node's predecessors, in the order
/// the predecessors were declared when the graph was built. `output` is the
/// node's own buffer; it keeps its contents between cycles (processors
/// normally overwrite it completely).
///
/// Implementations must be `Send` (they migrate to worker threads) but need
/// not be `Sync`: the executors guarantee exclusive access during `process`.
pub trait Processor: Send {
    /// Compute this node for one cycle.
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>);

    /// Channel count of this node's output buffer (1 or 2; default stereo).
    fn output_channels(&self) -> usize {
        2
    }

    /// Downcast hook for applications that retune concrete processors at
    /// run time (e.g. the engine's event middleware turning EQ knobs).
    /// Implementations that support live control return `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// A pass-through processor: copies its first input (or clears the output
/// when there is none). Useful as a placeholder and in tests.
#[derive(Debug, Default, Clone)]
pub struct Passthrough;

impl Processor for Passthrough {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        match inputs.first() {
            Some(src) if src.channels() == output.channels() && src.frames() == output.frames() => {
                output.copy_from(src)
            }
            Some(src) => {
                output.clear();
                output.mix_add(src, 1.0);
            }
            None => output.clear(),
        }
    }
}

/// A processor driven by a plain closure (tests and synthetic workloads).
pub struct FnProcessor<F>(pub F);

impl<F> Processor for FnProcessor<F>
where
    F: FnMut(&[&AudioBuf], &mut AudioBuf, &CycleCtx<'_>) + Send,
{
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        (self.0)(inputs, output, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_copies_first_input() {
        let src = AudioBuf::from_fn(2, 8, |ch, i| (ch + i) as f32);
        let mut out = AudioBuf::zeroed(2, 8);
        let mut p = Passthrough;
        p.process(&[&src], &mut out, &CycleCtx::bare(0));
        assert_eq!(out, src);
    }

    #[test]
    fn passthrough_without_inputs_clears() {
        let mut out = AudioBuf::from_fn(2, 4, |_, _| 5.0);
        let mut p = Passthrough;
        p.process(&[], &mut out, &CycleCtx::bare(0));
        assert_eq!(out.peak(), 0.0);
    }

    #[test]
    fn passthrough_downmixes_on_layout_mismatch() {
        let src = AudioBuf::from_fn(2, 4, |ch, _| if ch == 0 { 1.0 } else { 3.0 });
        let mut out = AudioBuf::zeroed(1, 4);
        let mut p = Passthrough;
        p.process(&[&src], &mut out, &CycleCtx::bare(0));
        assert_eq!(out.sample(0, 0), 2.0);
    }

    #[test]
    fn fn_processor_runs_closure() {
        let mut p = FnProcessor(|_: &[&AudioBuf], out: &mut AudioBuf, ctx: &CycleCtx<'_>| {
            out.samples_mut()[0] = ctx.epoch as f32;
        });
        let mut out = AudioBuf::zeroed(1, 4);
        p.process(&[], &mut out, &CycleCtx::bare(7));
        assert_eq!(out.sample(0, 0), 7.0);
    }
}
