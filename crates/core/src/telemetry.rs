//! Real-time-safe telemetry: per-worker cycle counters and a per-cycle
//! record ring, shared by every executor strategy.
//!
//! The paper's evaluation (§VI) hinges on *where the time goes* inside an
//! audio processing cycle — spinning (BUSY), parked waiting (SLEEP), steal
//! traffic (WS). Schedule traces capture that, but tracing allocates and
//! costs a timestamp pair per interval, so it cannot stay on in production
//! runs. This module is the always-on counterpart: plain `Relaxed` atomic
//! counters, preallocated once per executor, recorded on the hot path and
//! drained by the driver into a fixed-capacity ring **between** cycles.
//!
//! Real-time discipline:
//!
//! * **Zero allocation inside a cycle.** Counters are preallocated per
//!   worker; the ring and every [`CycleRecord`] slot in it (including the
//!   per-worker snapshot storage) are allocated when telemetry is switched
//!   on. Recording is `fetch_add`/`fetch_max`; draining overwrites a ring
//!   slot in place.
//! * **No synchronization added to the hot path.** All counter updates are
//!   `Relaxed`; visibility to the draining driver rides on the executors'
//!   existing cycle-completion barriers (the `Release` done-count /
//!   cycle-exit increments that every worker already performs after its
//!   last counter update, acquired by the driver before it drains).
//! * **Bounded memory.** The ring overwrites its oldest record; a run of
//!   any length holds at most [`ring::DEFAULT_RING_CAPACITY`] records
//!   (unless a taker drains it periodically via
//!   [`GraphExecutor::take_telemetry`](crate::exec::GraphExecutor::take_telemetry)).

pub mod counters;
pub mod ring;

pub use counters::{CounterSnapshot, CycleCounters};
pub use ring::{CycleRecord, TelemetryRing, DEFAULT_RING_CAPACITY};
