//! Per-worker cycle counters: padded atomics recorded on the hot path.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// One worker's scheduling counters for the current cycle.
///
/// Padded to two cache lines so adjacent workers' counters never share a
/// line (the whole point is that recording must not perturb the schedule
/// being measured). All updates are `Relaxed`: the counters carry no
/// synchronization of their own — the executors' cycle-completion barriers
/// order every update before the driver's drain.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CycleCounters {
    /// Dependency-poll iterations while busy-waiting (BUSY, HYBRID).
    spin_iters: AtomicU64,
    /// Nanoseconds spent busy-waiting.
    busy_wait_ns: AtomicU64,
    /// `park()` calls while waiting for dependencies (SLEEP, HYBRID, WS).
    park_count: AtomicU64,
    /// Wake-ups this worker issued to parked peers.
    unpark_count: AtomicU64,
    /// Nanoseconds spent in park-based waits (register → ready).
    park_wait_ns: AtomicU64,
    /// Steal sweeps attempted (WS).
    steal_attempts: AtomicU64,
    /// Steal sweeps that yielded a node.
    steal_hits: AtomicU64,
    /// Steal sweeps that found every victim empty.
    steal_misses: AtomicU64,
    /// High-water mark of this worker's ready deque (WS).
    deque_high_water: AtomicU64,
    /// Nodes this worker executed.
    nodes_executed: AtomicU64,
    /// Nanoseconds spent executing nodes.
    exec_ns: AtomicU64,
    /// Injected node-duration spikes (`FaultInjected` events).
    fault_spikes: AtomicU64,
    /// Kernel iterations injected by spikes.
    fault_spike_iters: AtomicU64,
    /// Injected worker stalls (`FaultInjected` events).
    fault_stalls: AtomicU64,
    /// Kernel iterations injected by stalls.
    fault_stall_iters: AtomicU64,
    /// Kernel iterations injected by pressure episodes.
    fault_pressure_iters: AtomicU64,
    /// Remote-stream packets the trace lost outright.
    net_packets_lost: AtomicU64,
    /// Packets that arrived behind the playout head (too late to play).
    net_packets_late: AtomicU64,
    /// Duplicate packet arrivals discarded by the jitter buffer.
    net_packets_dup: AtomicU64,
    /// Frames concealed at playout (the audible dropout count).
    net_frames_concealed: AtomicU64,
    /// Jitter-buffer depth changes applied (latency/dropout trades).
    net_depth_changes: AtomicU64,
    /// Nanoseconds spent receiving packets into the jitter buffer.
    net_wait_ns: AtomicU64,
    /// Nanoseconds spent synthesizing concealment frames.
    net_conceal_ns: AtomicU64,
    /// Broadcast packets dropped by per-listener backpressure.
    broadcast_drops: AtomicU64,
}

impl CycleCounters {
    /// A zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a busy-wait: `iters` polls over `ns` nanoseconds.
    #[inline]
    pub fn add_spin(&self, iters: u64, ns: u64) {
        self.spin_iters.fetch_add(iters, Relaxed);
        self.busy_wait_ns.fetch_add(ns, Relaxed);
    }

    /// Record a park-based wait: `parks` actual `park()` calls (0 when the
    /// dependency arrived between registration and parking) over `ns`
    /// nanoseconds of waiting.
    #[inline]
    pub fn add_park(&self, parks: u64, ns: u64) {
        self.park_count.fetch_add(parks, Relaxed);
        self.park_wait_ns.fetch_add(ns, Relaxed);
    }

    /// Record one wake-up issued to a parked peer.
    #[inline]
    pub fn add_unpark(&self) {
        self.unpark_count.fetch_add(1, Relaxed);
    }

    /// Record one steal sweep and its outcome.
    #[inline]
    pub fn add_steal(&self, hit: bool) {
        self.steal_attempts.fetch_add(1, Relaxed);
        if hit {
            self.steal_hits.fetch_add(1, Relaxed);
        } else {
            self.steal_misses.fetch_add(1, Relaxed);
        }
    }

    /// Record the current ready-deque depth (keeps the maximum).
    #[inline]
    pub fn note_deque_depth(&self, depth: u64) {
        self.deque_high_water.fetch_max(depth, Relaxed);
    }

    /// Record one node execution taking `ns` nanoseconds.
    #[inline]
    pub fn add_exec(&self, ns: u64) {
        self.nodes_executed.fetch_add(1, Relaxed);
        self.exec_ns.fetch_add(ns, Relaxed);
    }

    /// Record one injected node-duration spike of `iters` kernel
    /// iterations (recorded by the worker that executed the node).
    #[inline]
    pub fn add_fault_spike(&self, iters: u64) {
        self.fault_spikes.fetch_add(1, Relaxed);
        self.fault_spike_iters.fetch_add(iters, Relaxed);
    }

    /// Record one injected worker stall of `iters` kernel iterations.
    #[inline]
    pub fn add_fault_stall(&self, iters: u64) {
        self.fault_stalls.fetch_add(1, Relaxed);
        self.fault_stall_iters.fetch_add(iters, Relaxed);
    }

    /// Record `iters` kernel iterations of injected pressure load.
    #[inline]
    pub fn add_fault_pressure(&self, iters: u64) {
        self.fault_pressure_iters.fetch_add(iters, Relaxed);
    }

    /// Record one cycle of jitter-buffer reception telemetry: packet
    /// events observed by the pushes plus the playout outcome. Called by
    /// the worker that executed the net source node, inside its timed
    /// execution window.
    #[inline]
    pub fn add_net_cycle(
        &self,
        lost: u64,
        late: u64,
        dup: u64,
        concealed: u64,
        depth_changes: u64,
    ) {
        if lost > 0 {
            self.net_packets_lost.fetch_add(lost, Relaxed);
        }
        if late > 0 {
            self.net_packets_late.fetch_add(late, Relaxed);
        }
        if dup > 0 {
            self.net_packets_dup.fetch_add(dup, Relaxed);
        }
        if concealed > 0 {
            self.net_frames_concealed.fetch_add(concealed, Relaxed);
        }
        if depth_changes > 0 {
            self.net_depth_changes.fetch_add(depth_changes, Relaxed);
        }
    }

    /// Record nanoseconds spent in packet reception (NetWait time).
    #[inline]
    pub fn add_net_wait_ns(&self, ns: u64) {
        self.net_wait_ns.fetch_add(ns, Relaxed);
    }

    /// Record nanoseconds spent synthesizing concealment (Conceal time).
    #[inline]
    pub fn add_net_conceal_ns(&self, ns: u64) {
        self.net_conceal_ns.fetch_add(ns, Relaxed);
    }

    /// Record broadcast packets dropped by listener backpressure.
    #[inline]
    pub fn add_broadcast_drops(&self, drops: u64) {
        self.broadcast_drops.fetch_add(drops, Relaxed);
    }

    /// Snapshot of the (wait, conceal) nanosecond counters without
    /// draining, `Relaxed`. Executors diff this around a node execution to
    /// carve `NetWait`/`Conceal` spans out of the Exec interval.
    #[inline]
    pub fn net_ns(&self) -> (u64, u64) {
        (
            self.net_wait_ns.load(Relaxed),
            self.net_conceal_ns.load(Relaxed),
        )
    }

    /// Move the current values into `out` and reset every counter to zero.
    /// Driver only, after the cycle-completion barrier.
    pub fn drain_into(&self, out: &mut CounterSnapshot) {
        out.spin_iters = self.spin_iters.swap(0, Relaxed);
        out.busy_wait_ns = self.busy_wait_ns.swap(0, Relaxed);
        out.park_count = self.park_count.swap(0, Relaxed);
        out.unpark_count = self.unpark_count.swap(0, Relaxed);
        out.park_wait_ns = self.park_wait_ns.swap(0, Relaxed);
        out.steal_attempts = self.steal_attempts.swap(0, Relaxed);
        out.steal_hits = self.steal_hits.swap(0, Relaxed);
        out.steal_misses = self.steal_misses.swap(0, Relaxed);
        out.deque_high_water = self.deque_high_water.swap(0, Relaxed);
        out.nodes_executed = self.nodes_executed.swap(0, Relaxed);
        out.exec_ns = self.exec_ns.swap(0, Relaxed);
        out.fault_spikes = self.fault_spikes.swap(0, Relaxed);
        out.fault_spike_iters = self.fault_spike_iters.swap(0, Relaxed);
        out.fault_stalls = self.fault_stalls.swap(0, Relaxed);
        out.fault_stall_iters = self.fault_stall_iters.swap(0, Relaxed);
        out.fault_pressure_iters = self.fault_pressure_iters.swap(0, Relaxed);
        out.net_packets_lost = self.net_packets_lost.swap(0, Relaxed);
        out.net_packets_late = self.net_packets_late.swap(0, Relaxed);
        out.net_packets_dup = self.net_packets_dup.swap(0, Relaxed);
        out.net_frames_concealed = self.net_frames_concealed.swap(0, Relaxed);
        out.net_depth_changes = self.net_depth_changes.swap(0, Relaxed);
        out.net_wait_ns = self.net_wait_ns.swap(0, Relaxed);
        out.net_conceal_ns = self.net_conceal_ns.swap(0, Relaxed);
        out.broadcast_drops = self.broadcast_drops.swap(0, Relaxed);
    }
}

/// A plain-value snapshot of one worker's counters for one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub spin_iters: u64,
    pub busy_wait_ns: u64,
    pub park_count: u64,
    pub unpark_count: u64,
    pub park_wait_ns: u64,
    pub steal_attempts: u64,
    pub steal_hits: u64,
    pub steal_misses: u64,
    pub deque_high_water: u64,
    pub nodes_executed: u64,
    pub exec_ns: u64,
    pub fault_spikes: u64,
    pub fault_spike_iters: u64,
    pub fault_stalls: u64,
    pub fault_stall_iters: u64,
    pub fault_pressure_iters: u64,
    pub net_packets_lost: u64,
    pub net_packets_late: u64,
    pub net_packets_dup: u64,
    pub net_frames_concealed: u64,
    pub net_depth_changes: u64,
    pub net_wait_ns: u64,
    pub net_conceal_ns: u64,
    pub broadcast_drops: u64,
}

impl CounterSnapshot {
    /// Total time spent waiting (busy or parked), in nanoseconds.
    pub fn wait_ns(&self) -> u64 {
        self.busy_wait_ns + self.park_wait_ns
    }

    /// Total `FaultInjected` events (spikes + stalls) this snapshot saw.
    pub fn fault_events(&self) -> u64 {
        self.fault_spikes + self.fault_stalls
    }

    /// Total kernel iterations injected by any fault class.
    pub fn fault_iters(&self) -> u64 {
        self.fault_spike_iters + self.fault_stall_iters + self.fault_pressure_iters
    }

    /// Total network packet-fault events (lost + late + duplicated).
    pub fn net_packet_events(&self) -> u64 {
        self.net_packets_lost + self.net_packets_late + self.net_packets_dup
    }

    /// True when every field is zero.
    pub fn is_zero(&self) -> bool {
        *self == CounterSnapshot::default()
    }

    /// Accumulate `other` into `self` (sums everywhere; the deque
    /// high-water mark takes the maximum).
    pub fn merge(&mut self, other: &CounterSnapshot) {
        self.spin_iters += other.spin_iters;
        self.busy_wait_ns += other.busy_wait_ns;
        self.park_count += other.park_count;
        self.unpark_count += other.unpark_count;
        self.park_wait_ns += other.park_wait_ns;
        self.steal_attempts += other.steal_attempts;
        self.steal_hits += other.steal_hits;
        self.steal_misses += other.steal_misses;
        self.deque_high_water = self.deque_high_water.max(other.deque_high_water);
        self.nodes_executed += other.nodes_executed;
        self.exec_ns += other.exec_ns;
        self.fault_spikes += other.fault_spikes;
        self.fault_spike_iters += other.fault_spike_iters;
        self.fault_stalls += other.fault_stalls;
        self.fault_stall_iters += other.fault_stall_iters;
        self.fault_pressure_iters += other.fault_pressure_iters;
        self.net_packets_lost += other.net_packets_lost;
        self.net_packets_late += other.net_packets_late;
        self.net_packets_dup += other.net_packets_dup;
        self.net_frames_concealed += other.net_frames_concealed;
        self.net_depth_changes += other.net_depth_changes;
        self.net_wait_ns += other.net_wait_ns;
        self.net_conceal_ns += other.net_conceal_ns;
        self.broadcast_drops += other.broadcast_drops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_drain_to_zero() {
        let c = CycleCounters::new();
        c.add_spin(10, 500);
        c.add_spin(5, 100);
        c.add_park(2, 3_000);
        c.add_unpark();
        c.add_steal(true);
        c.add_steal(false);
        c.add_steal(true);
        c.note_deque_depth(3);
        c.note_deque_depth(7);
        c.note_deque_depth(5);
        c.add_exec(1_000);
        c.add_exec(2_000);
        c.add_fault_spike(700);
        c.add_fault_spike(700);
        c.add_fault_stall(900);
        c.add_fault_pressure(300);
        c.add_net_cycle(4, 3, 2, 5, 1);
        c.add_net_wait_ns(250);
        c.add_net_conceal_ns(750);
        c.add_broadcast_drops(6);
        assert_eq!(c.net_ns(), (250, 750));

        let mut s = CounterSnapshot::default();
        c.drain_into(&mut s);
        assert_eq!(s.spin_iters, 15);
        assert_eq!(s.busy_wait_ns, 600);
        assert_eq!(s.park_count, 2);
        assert_eq!(s.unpark_count, 1);
        assert_eq!(s.park_wait_ns, 3_000);
        assert_eq!(s.steal_attempts, 3);
        assert_eq!(s.steal_hits, 2);
        assert_eq!(s.steal_misses, 1);
        assert_eq!(s.deque_high_water, 7);
        assert_eq!(s.nodes_executed, 2);
        assert_eq!(s.exec_ns, 3_000);
        assert_eq!(s.wait_ns(), 3_600);
        assert_eq!(s.fault_spikes, 2);
        assert_eq!(s.fault_spike_iters, 1_400);
        assert_eq!(s.fault_stalls, 1);
        assert_eq!(s.fault_stall_iters, 900);
        assert_eq!(s.fault_pressure_iters, 300);
        assert_eq!(s.fault_events(), 3);
        assert_eq!(s.fault_iters(), 2_600);
        assert_eq!(s.net_packets_lost, 4);
        assert_eq!(s.net_packets_late, 3);
        assert_eq!(s.net_packets_dup, 2);
        assert_eq!(s.net_frames_concealed, 5);
        assert_eq!(s.net_depth_changes, 1);
        assert_eq!(s.net_wait_ns, 250);
        assert_eq!(s.net_conceal_ns, 750);
        assert_eq!(s.broadcast_drops, 6);
        assert_eq!(s.net_packet_events(), 9);

        let mut again = CounterSnapshot::default();
        c.drain_into(&mut again);
        assert!(again.is_zero(), "drain must reset every counter");
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = CounterSnapshot {
            spin_iters: 1,
            deque_high_water: 4,
            exec_ns: 10,
            nodes_executed: 1,
            ..Default::default()
        };
        let b = CounterSnapshot {
            spin_iters: 2,
            deque_high_water: 3,
            exec_ns: 20,
            nodes_executed: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.spin_iters, 3);
        assert_eq!(a.deque_high_water, 4);
        assert_eq!(a.exec_ns, 30);
        assert_eq!(a.nodes_executed, 3);
    }

    #[test]
    fn counters_are_cache_line_padded() {
        assert!(std::mem::align_of::<CycleCounters>() >= 128);
    }
}
