//! A fixed-capacity ring of per-cycle telemetry records.

use super::counters::CounterSnapshot;

/// Default ring capacity: enough for the standard 10 000-cycle experiment
/// window at one record per cycle without unbounded memory.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Everything telemetry knows about one cycle: its sequence number, its
/// wall-clock graph time, and a drained counter snapshot per worker.
#[derive(Debug, Clone)]
pub struct CycleRecord {
    /// Cycle sequence number (the executor epoch).
    pub cycle: u64,
    /// Wall-clock graph execution time of the cycle, nanoseconds.
    pub graph_ns: u64,
    /// One drained snapshot per worker, indexed by worker id.
    pub workers: Box<[CounterSnapshot]>,
}

impl CycleRecord {
    /// Counters summed across workers (deque high-water takes the max).
    pub fn totals(&self) -> CounterSnapshot {
        let mut t = CounterSnapshot::default();
        for w in self.workers.iter() {
            t.merge(w);
        }
        t
    }
}

/// Fixed-capacity overwrite-oldest ring of [`CycleRecord`]s.
///
/// All slots — including every record's per-worker snapshot storage — are
/// allocated up front in [`TelemetryRing::new`]; pushing a record between
/// cycles only overwrites a slot in place.
#[derive(Debug)]
pub struct TelemetryRing {
    records: Box<[CycleRecord]>,
    /// Index the next push writes to.
    next: usize,
    /// Number of live records (`<= capacity`).
    len: usize,
    /// Total records ever pushed, including overwritten ones.
    pushed: u64,
    workers: usize,
    /// Venue session this ring belongs to (0 for single-session engines).
    session: u32,
}

impl TelemetryRing {
    /// Preallocate a ring of `capacity` records, each with `workers`
    /// snapshot slots.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `workers == 0`.
    pub fn new(capacity: usize, workers: usize) -> Self {
        Self::with_session(capacity, workers, 0)
    }

    /// Like [`TelemetryRing::new`], but tagging every record exported from
    /// this ring with a venue session id.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `workers == 0`.
    pub fn with_session(capacity: usize, workers: usize, session: u32) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(workers > 0, "ring needs at least one worker slot");
        let records = (0..capacity)
            .map(|_| CycleRecord {
                cycle: 0,
                graph_ns: 0,
                workers: vec![CounterSnapshot::default(); workers].into_boxed_slice(),
            })
            .collect();
        TelemetryRing {
            records,
            next: 0,
            len: 0,
            pushed: 0,
            workers,
            session,
        }
    }

    /// Number of worker slots per record.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Venue session id this ring's records are attributed to.
    pub fn session(&self) -> u32 {
        self.session
    }

    /// Maximum number of records held.
    pub fn capacity(&self) -> usize {
        self.records.len()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no record has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total records ever pushed, including ones since overwritten.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Records lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.len as u64
    }

    /// Claim the next slot (overwriting the oldest record when full), stamp
    /// it with `cycle` and `graph_ns`, and hand out its per-worker snapshot
    /// slots for the caller to fill (typically via
    /// [`CycleCounters::drain_into`](super::counters::CycleCounters::drain_into)).
    /// Does not allocate.
    pub fn begin_push(&mut self, cycle: u64, graph_ns: u64) -> &mut [CounterSnapshot] {
        let idx = self.next;
        self.next = (self.next + 1) % self.records.len();
        if self.len < self.records.len() {
            self.len += 1;
        }
        self.pushed += 1;
        let slot = &mut self.records[idx];
        slot.cycle = cycle;
        slot.graph_ns = graph_ns;
        &mut slot.workers
    }

    /// Live records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &CycleRecord> {
        let cap = self.records.len();
        let start = if self.len < cap { 0 } else { self.next };
        (0..self.len).map(move |i| &self.records[(start + i) % cap])
    }

    /// The most recently pushed record, if any.
    pub fn latest(&self) -> Option<&CycleRecord> {
        if self.len == 0 {
            return None;
        }
        let cap = self.records.len();
        Some(&self.records[(self.next + cap - 1) % cap])
    }

    /// Forget all live records (slots stay allocated).
    pub fn clear(&mut self) {
        self.next = 0;
        self.len = 0;
        self.pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(ring: &mut TelemetryRing, cycle: u64) {
        let slot = ring.begin_push(cycle, cycle * 10);
        slot[0].nodes_executed = cycle;
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut ring = TelemetryRing::new(3, 2);
        assert!(ring.is_empty());
        for c in 1..=2 {
            push(&mut ring, c);
        }
        assert_eq!(ring.len(), 2);
        let cycles: Vec<u64> = ring.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![1, 2]);

        for c in 3..=5 {
            push(&mut ring, c);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 5);
        assert_eq!(ring.dropped(), 2);
        let cycles: Vec<u64> = ring.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![3, 4, 5], "oldest first after wrap");
        assert_eq!(ring.latest().unwrap().cycle, 5);
        assert_eq!(ring.latest().unwrap().graph_ns, 50);
    }

    #[test]
    fn slots_are_fully_restamped_on_overwrite() {
        let mut ring = TelemetryRing::new(2, 1);
        push(&mut ring, 7);
        push(&mut ring, 8);
        push(&mut ring, 9);
        for r in ring.iter() {
            assert_eq!(r.workers[0].nodes_executed, r.cycle);
        }
    }

    #[test]
    fn totals_merge_workers() {
        let mut ring = TelemetryRing::new(2, 3);
        let slot = ring.begin_push(1, 100);
        slot[0].exec_ns = 10;
        slot[0].deque_high_water = 2;
        slot[1].exec_ns = 20;
        slot[1].deque_high_water = 5;
        slot[2].exec_ns = 30;
        let t = ring.latest().unwrap().totals();
        assert_eq!(t.exec_ns, 60);
        assert_eq!(t.deque_high_water, 5);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut ring = TelemetryRing::new(4, 1);
        push(&mut ring, 1);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 4);
        push(&mut ring, 2);
        assert_eq!(ring.iter().next().unwrap().cycle, 2);
    }
}
