//! Schedule traces: which worker executed which node when.
//!
//! Fig. 11 of the paper visualizes "typical schedule realizations": per
//! thread, the sequence of executed nodes, with gray boxes for busy-waiting
//! and white gaps for sleeping. A [`ScheduleTrace`] captures exactly that
//! data for one cycle; `djstar-sim::gantt` renders it.

/// What a worker was doing during a trace interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Executing the node.
    Exec,
    /// Busy-waiting on the node's dependencies (BUSY strategy).
    BusyWait,
    /// Parked waiting for the node's dependencies (SLEEP strategy).
    Sleep,
    /// Idle: no executable node found (WS strategy, before parking/stealing).
    Idle,
    /// A successful steal sweep that obtained the node (WS strategy).
    Steal,
    /// Waking the parked worker registered on the node (SLEEP/HYBRID
    /// strategies; recorded on the *waker*'s timeline).
    Unpark,
}

/// One interval of one worker's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Node id this interval refers to (`u32::MAX` for anonymous idling).
    pub node: u32,
    /// Worker index.
    pub worker: u32,
    /// Interval start, nanoseconds from cycle start.
    pub start_ns: u64,
    /// Interval end, nanoseconds from cycle start.
    pub end_ns: u64,
    /// Interval kind.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Interval length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The complete trace of one cycle.
#[derive(Debug, Clone, Default)]
pub struct ScheduleTrace {
    /// Number of workers that participated.
    pub workers: u32,
    /// All intervals, in no particular order.
    pub events: Vec<TraceEvent>,
}

impl ScheduleTrace {
    /// Events of one worker, sorted by start time.
    pub fn worker_timeline(&self, worker: u32) -> Vec<TraceEvent> {
        let mut v: Vec<TraceEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.worker == worker)
            .collect();
        v.sort_by_key(|e| e.start_ns);
        v
    }

    /// Execution events only, sorted by start time.
    pub fn executions(&self) -> Vec<TraceEvent> {
        let mut v: Vec<TraceEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.kind == TraceKind::Exec)
            .collect();
        v.sort_by_key(|e| e.start_ns);
        v
    }

    /// Node ids in execution *start* order (ties broken by node id).
    pub fn execution_order(&self) -> Vec<u32> {
        let mut v = self.executions();
        v.sort_by_key(|e| (e.start_ns, e.node));
        v.into_iter().map(|e| e.node).collect()
    }

    /// Makespan: the latest execution end time (ns).
    pub fn makespan_ns(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == TraceKind::Exec)
            .map(|e| e.end_ns)
            .max()
            .unwrap_or(0)
    }

    /// Total time spent in a given non-exec state across workers (ns).
    pub fn total_ns(&self, kind: TraceKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration_ns())
            .sum()
    }

    /// Check that no node started before every one of its predecessors (as
    /// given by `preds(node)`) had finished. This is the dependency-safety
    /// check the integration tests run against every strategy.
    pub fn respects_dependencies(&self, preds: impl Fn(u32) -> Vec<u32>) -> bool {
        let execs = self.executions();
        let mut end_of = std::collections::HashMap::new();
        for e in &execs {
            end_of.insert(e.node, e.end_ns);
        }
        for e in &execs {
            for p in preds(e.node) {
                match end_of.get(&p) {
                    Some(&pend) if pend <= e.start_ns => {}
                    _ => return false,
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: u32, worker: u32, start: u64, end: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            node,
            worker,
            start_ns: start,
            end_ns: end,
            kind,
        }
    }

    #[test]
    fn timeline_sorted_per_worker() {
        let t = ScheduleTrace {
            workers: 2,
            events: vec![
                ev(1, 0, 50, 80, TraceKind::Exec),
                ev(0, 0, 0, 40, TraceKind::Exec),
                ev(2, 1, 10, 90, TraceKind::Exec),
            ],
        };
        let w0 = t.worker_timeline(0);
        assert_eq!(w0.len(), 2);
        assert_eq!(w0[0].node, 0);
        assert_eq!(t.makespan_ns(), 90);
        assert_eq!(t.execution_order(), vec![0, 2, 1]);
    }

    #[test]
    fn dependency_check_passes_for_ordered_trace() {
        let t = ScheduleTrace {
            workers: 1,
            events: vec![
                ev(0, 0, 0, 10, TraceKind::Exec),
                ev(1, 0, 10, 20, TraceKind::Exec),
            ],
        };
        assert!(t.respects_dependencies(|n| if n == 1 { vec![0] } else { vec![] }));
    }

    #[test]
    fn dependency_check_fails_for_overlap() {
        let t = ScheduleTrace {
            workers: 2,
            events: vec![
                ev(0, 0, 0, 10, TraceKind::Exec),
                ev(1, 1, 5, 20, TraceKind::Exec),
            ],
        };
        assert!(!t.respects_dependencies(|n| if n == 1 { vec![0] } else { vec![] }));
    }

    #[test]
    fn dependency_check_fails_for_missing_pred() {
        let t = ScheduleTrace {
            workers: 1,
            events: vec![ev(1, 0, 0, 10, TraceKind::Exec)],
        };
        assert!(!t.respects_dependencies(|n| if n == 1 { vec![0] } else { vec![] }));
    }

    #[test]
    fn wait_time_accounting() {
        let t = ScheduleTrace {
            workers: 1,
            events: vec![
                ev(0, 0, 0, 10, TraceKind::BusyWait),
                ev(0, 0, 10, 30, TraceKind::Exec),
                ev(u32::MAX, 0, 30, 35, TraceKind::Idle),
            ],
        };
        assert_eq!(t.total_ns(TraceKind::BusyWait), 10);
        assert_eq!(t.total_ns(TraceKind::Idle), 5);
        assert_eq!(t.makespan_ns(), 30);
    }
}
