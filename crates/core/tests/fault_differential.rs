//! Cross-strategy differential test for the fault-injection layer.
//!
//! The fault schedule is a pure function of `(seed, cycle, node-or-lane)`,
//! so under one fixed plan every executor — regardless of strategy or
//! thread count — must (1) produce bit-exact audio with a fault-free run,
//! (2) record *identical* fault-event totals in telemetry, and (3) match,
//! per cycle, the injection totals the plan computes arithmetically.
//! A repeat run of the whole matrix must reproduce every number.

use djstar_core::exec::{
    BusyExecutor, GraphExecutor, HybridExecutor, PlannedExecutor, ScheduleBlueprint,
    SequentialExecutor, SleepExecutor, StealExecutor, Strategy,
};
use djstar_core::faults::FaultPlan;
use djstar_core::graph::{NodeId, Priority, Section, TaskGraph, TaskGraphBuilder};
use djstar_core::processor::{CycleCtx, FnProcessor};
use djstar_dsp::rng::SmallRng;
use djstar_dsp::AudioBuf;

const FRAMES: usize = 8;
const CYCLES: usize = 48;

/// Fault iteration counts are tiny: the test checks bookkeeping, not
/// timing, and the whole 6-strategy × 3-thread-count matrix runs twice.
fn storm() -> FaultPlan {
    FaultPlan {
        seed: 0xD1FF,
        spike_rate: 0.08,
        spike_iters: 50,
        stall_lanes: 5,
        stall_rate: 0.25,
        stall_iters: 80,
        pressure_period: 16,
        pressure_len: 6,
        pressure_iters: 30,
    }
}

/// Fixed random-ish DAG (~20 nodes) whose node values are
/// schedule-independent: node i writes `i + 1 + max(pred values)`.
fn graph() -> TaskGraph {
    let mut rng = SmallRng::seed_from_u64(0xFA17);
    let n = 20usize;
    let mut b = TaskGraphBuilder::new();
    for i in 0..n {
        let preds: Vec<NodeId> = (0..i as u32)
            .filter(|_| rng.chance(0.25))
            .take(8)
            .map(NodeId)
            .collect();
        let val = (i + 1) as f32;
        b.add(
            format!("n{i}"),
            Section::deck(i % 4),
            Box::new(FnProcessor(
                move |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    let base = inp.iter().map(|b| b.sample(0, 0)).fold(0.0f32, f32::max);
                    out.samples_mut().fill(base + val);
                },
            )),
            &preds,
        );
    }
    b.build().unwrap()
}

fn make_executor(strategy: Strategy, threads: usize) -> Box<dyn GraphExecutor> {
    let g = graph();
    match strategy {
        Strategy::Sequential => Box::new(SequentialExecutor::new(g, FRAMES)),
        Strategy::Busy => Box::new(BusyExecutor::new(g, threads, FRAMES)),
        Strategy::Sleep => Box::new(SleepExecutor::new(g, threads, FRAMES)),
        Strategy::Steal => Box::new(StealExecutor::new(g, threads, FRAMES)),
        Strategy::Hybrid => Box::new(HybridExecutor::new(g, threads, FRAMES, 500)),
        Strategy::Planned => {
            let bp = ScheduleBlueprint::round_robin(g.topology(), threads, Priority::Depth);
            Box::new(PlannedExecutor::new(g, FRAMES, bp))
        }
    }
}

/// Everything a run must reproduce: the sink's exact output bits and the
/// summed fault telemetry, broken out per class.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    sink_bits: Vec<u32>,
    spikes: u64,
    spike_iters: u64,
    stalls: u64,
    stall_iters: u64,
    pressure_iters: u64,
}

/// Run `CYCLES` cycles under `plan` and fingerprint the result. With a
/// plan installed, every telemetry record is also checked against the
/// plan's arithmetic ground truth for that exact cycle number.
fn run_one(strategy: Strategy, threads: usize, plan: Option<FaultPlan>, tag: &str) -> Fingerprint {
    let mut ex = make_executor(strategy, threads);
    let nodes = ex.topology().len();
    let sink = NodeId(nodes as u32 - 1);
    ex.set_faults(plan);
    ex.set_telemetry(true);
    for _ in 0..CYCLES {
        ex.run_cycle(&[], &[]);
    }
    let mut out = AudioBuf::zeroed(2, FRAMES);
    ex.read_output(sink, &mut out);
    let sink_bits: Vec<u32> = out.samples().iter().map(|s| s.to_bits()).collect();

    let ring = ex.take_telemetry().expect("telemetry was enabled");
    assert_eq!(ring.len(), CYCLES, "{tag}: ring must hold every cycle");
    let mut fp = Fingerprint {
        sink_bits,
        spikes: 0,
        spike_iters: 0,
        stalls: 0,
        stall_iters: 0,
        pressure_iters: 0,
    };
    for rec in ring.iter() {
        let t = rec.totals();
        if let Some(p) = &plan {
            assert_eq!(
                t.fault_iters(),
                p.cycle_injection_iters(rec.cycle, nodes),
                "{tag}: cycle {} telemetry diverged from the plan's schedule",
                rec.cycle
            );
        }
        fp.spikes += t.fault_spikes;
        fp.spike_iters += t.fault_spike_iters;
        fp.stalls += t.fault_stalls;
        fp.stall_iters += t.fault_stall_iters;
        fp.pressure_iters += t.fault_pressure_iters;
    }
    fp
}

/// The (strategy, threads) matrix under test. Sequential ignores the
/// thread count, so it appears once.
fn matrix() -> Vec<(Strategy, usize)> {
    let mut m = vec![(Strategy::Sequential, 1)];
    for strategy in Strategy::ALL {
        if strategy == Strategy::Sequential {
            continue;
        }
        for threads in [1usize, 2, 4] {
            m.push((strategy, threads));
        }
    }
    m
}

#[test]
fn fixed_seed_storm_is_identical_across_strategies_and_thread_counts() {
    let plan = storm();
    let mut reference: Option<Fingerprint> = None;
    for (strategy, threads) in matrix() {
        let tag = format!("{strategy:?} t={threads}");
        let fp = run_one(strategy, threads, Some(plan), &tag);
        assert!(fp.spikes > 0, "{tag}: storm produced no spikes");
        assert!(fp.stalls > 0, "{tag}: storm produced no stalls");
        assert!(fp.pressure_iters > 0, "{tag}: storm produced no pressure");
        match &reference {
            None => reference = Some(fp),
            Some(want) => assert_eq!(&fp, want, "{tag} diverged from SEQ"),
        }
    }
}

#[test]
fn faulted_runs_are_bit_exact_with_fault_free_runs() {
    for (strategy, threads) in matrix() {
        let tag = format!("{strategy:?} t={threads}");
        let base = run_one(strategy, threads, None, &tag);
        let faulted = run_one(strategy, threads, Some(storm()), &tag);
        assert_eq!(
            base.sink_bits, faulted.sink_bits,
            "{tag}: fault injection leaked into the audio path"
        );
        assert_eq!(base.spikes + base.stalls, 0, "{tag}: events without a plan");
    }
}

#[test]
fn repeat_runs_reproduce_every_fingerprint() {
    // Two full passes over a reduced matrix: same seed, same numbers.
    for (strategy, threads) in [
        (Strategy::Sequential, 1),
        (Strategy::Busy, 2),
        (Strategy::Steal, 4),
        (Strategy::Planned, 3),
    ] {
        let tag = format!("{strategy:?} t={threads}");
        let a = run_one(strategy, threads, Some(storm()), &tag);
        let b = run_one(strategy, threads, Some(storm()), &tag);
        assert_eq!(a, b, "{tag}: a repeat run diverged");
    }
}

#[test]
fn clearing_the_plan_silences_injection_mid_stream() {
    let mut ex = make_executor(Strategy::Busy, 2);
    ex.set_faults(Some(storm()));
    ex.set_telemetry(true);
    for _ in 0..16 {
        ex.run_cycle(&[], &[]);
    }
    ex.set_faults(None);
    for _ in 0..16 {
        ex.run_cycle(&[], &[]);
    }
    let ring = ex.take_telemetry().unwrap();
    let recs: Vec<_> = ring.iter().collect();
    let first: u64 = recs[..16].iter().map(|r| r.totals().fault_iters()).sum();
    let second: u64 = recs[16..].iter().map(|r| r.totals().fault_iters()).sum();
    assert!(first > 0, "storm phase must inject");
    assert_eq!(second, 0, "cleared plan must stop injecting immediately");
}
