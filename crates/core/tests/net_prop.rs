//! Property-style tests for the packet-fault trace and the jitter
//! buffer on randomly drawn plans. Plans are generated from a seeded
//! [`SmallRng`] so every run checks the same cases (the workspace builds
//! offline, without proptest).

use djstar_core::net::{
    Arrival, JitterBuffer, JitterConfig, NetFaultPlan, PopOutcome, MAX_ARRIVALS, MAX_DELAY,
};
use djstar_dsp::rng::SmallRng;
use djstar_dsp::AudioBuf;

const FRAMES: usize = 16;

fn random_plan(rng: &mut SmallRng) -> NetFaultPlan {
    let bursty = rng.chance(0.5);
    NetFaultPlan {
        seed: rng.next_u64(),
        base_delay: rng.below(4) as u32,
        jitter: rng.below(8) as u32,
        loss_rate: rng.f64() * 0.15,
        dup_rate: rng.f64() * 0.1,
        dup_delay: 1 + rng.below(3) as u32,
        reorder_rate: rng.f64() * 0.1,
        reorder_extra: rng.below(6) as u32,
        burst_period: if bursty { 32 + rng.below(96) as u64 } else { 0 },
        burst_len: 8 + rng.below(24) as u64,
        burst_jitter: rng.below(12) as u32,
        listener_stall_rate: 0.0,
    }
}

fn random_config(rng: &mut SmallRng) -> JitterConfig {
    let min = 1 + rng.below(3) as u32;
    let max = min + rng.below(10) as u32;
    if rng.chance(0.5) {
        JitterConfig::adaptive(min, max)
    } else {
        JitterConfig::fixed(min + rng.below((max - min + 1) as usize) as u32)
    }
}

/// Drive `buf` for `cycles` with `plan`'s arrivals for `stream`, the way
/// the engine's receiver does; returns per-cycle pop outcomes.
fn drive(plan: &NetFaultPlan, stream: u32, buf: &mut JitterBuffer, cycles: u64) -> Vec<PopOutcome> {
    let mut out = AudioBuf::zeroed(1, FRAMES);
    let mut arrivals = [Arrival { seq: 0, dup: false }; MAX_ARRIVALS];
    (0..cycles)
        .map(|cycle| {
            if plan.lost(cycle, stream) {
                buf.note_lost();
            }
            let n = plan.arrivals(cycle, stream, &mut arrivals);
            for a in &arrivals[..n] {
                let seq = a.seq;
                buf.push_with(seq, |slot| {
                    slot.samples_mut().fill(seq as f32);
                });
            }
            buf.pop(cycle, &mut out)
        })
        .collect()
}

#[test]
fn every_sent_packet_is_lost_late_or_arrives_in_horizon() {
    let mut rng = SmallRng::seed_from_u64(0x9E70);
    for _ in 0..40 {
        let plan = random_plan(&mut rng);
        let cycles = 300u64;
        let mut seen = vec![0u32; cycles as usize];
        let mut arrivals = [Arrival { seq: 0, dup: false }; MAX_ARRIVALS];
        for stream in 0..2u32 {
            seen.fill(0);
            for cycle in 0..cycles + MAX_DELAY as u64 {
                let n = plan.arrivals(cycle, stream, &mut arrivals);
                assert!(n <= MAX_ARRIVALS);
                for a in &arrivals[..n] {
                    // Arrivals come from the bounded horizon, never the
                    // future, and never from a lost send.
                    assert!(a.seq <= cycle);
                    assert!(cycle - a.seq <= MAX_DELAY as u64, "beyond horizon");
                    assert!(!plan.lost(a.seq, stream), "lost packet arrived");
                    if a.seq < cycles {
                        seen[a.seq as usize] += 1;
                    }
                }
            }
            for (seq, &copies) in seen.iter().enumerate() {
                let lost = plan.lost(seq as u64, stream);
                let dup = plan.dup_delay_of(seq as u64, stream).is_some();
                let want = if lost {
                    0
                } else if dup {
                    2
                } else {
                    1
                };
                assert_eq!(
                    copies, want,
                    "seq {seq}: lost={lost} dup={dup} copies={copies}"
                );
            }
        }
    }
}

#[test]
fn playout_accounts_for_every_cycle_and_respects_bounds() {
    let mut rng = SmallRng::seed_from_u64(0x9E71);
    for case in 0..40 {
        let plan = random_plan(&mut rng);
        let cfg = random_config(&mut rng);
        let (min_d, max_d) = (cfg.min_depth, cfg.max_depth);
        let mut buf = JitterBuffer::for_plan(1, FRAMES, &plan, cfg);
        let cycles = 400u64;
        let outcomes = drive(&plan, 0, &mut buf, cycles);
        // Every pop is accounted: played + concealed + preroll == cycles.
        let played = outcomes
            .iter()
            .filter(|o| matches!(o, PopOutcome::Played))
            .count() as u64;
        let concealed = outcomes
            .iter()
            .filter(|o| matches!(o, PopOutcome::Concealed | PopOutcome::Held))
            .count() as u64;
        let preroll = outcomes
            .iter()
            .filter(|o| matches!(o, PopOutcome::Preroll))
            .count() as u64;
        assert_eq!(played + concealed + preroll, cycles, "case {case}");
        let s = buf.stats();
        // Held pops are depth transitions, not conceals; only Concealed
        // outcomes hit the conceal counter.
        let held = outcomes
            .iter()
            .filter(|o| matches!(o, PopOutcome::Held))
            .count() as u64;
        assert_eq!(s.concealed + held, concealed, "case {case}: conceal drift");
        // Depth stays inside the configured bounds whatever the trace does.
        assert!(buf.depth() >= min_d && buf.depth() <= max_d, "case {case}");
        assert!(buf.target_depth() >= min_d && buf.target_depth() <= max_d);
        // Push accounting: every arrival copy the trace delivered was
        // stored, rejected as late, or detected as a duplicate — none
        // invented, none silently dropped.
        let mut arrivals = [Arrival { seq: 0, dup: false }; MAX_ARRIVALS];
        let pushes: u64 = (0..cycles)
            .map(|c| plan.arrivals(c, 0, &mut arrivals) as u64)
            .sum();
        assert_eq!(
            s.received + s.late + s.duplicated,
            pushes,
            "case {case}: push accounting"
        );
    }
}

#[test]
fn identical_drives_are_bit_identical() {
    let mut rng = SmallRng::seed_from_u64(0x9E72);
    for _ in 0..20 {
        let plan = random_plan(&mut rng);
        let cfg = random_config(&mut rng);
        let mut a = JitterBuffer::for_plan(1, FRAMES, &plan, cfg);
        let mut b = JitterBuffer::for_plan(1, FRAMES, &plan, cfg);
        assert_eq!(drive(&plan, 3, &mut a, 300), drive(&plan, 3, &mut b, 300));
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.depth(), b.depth());
    }
}

#[test]
fn deeper_fixed_buffers_never_conceal_more() {
    let mut rng = SmallRng::seed_from_u64(0x9E73);
    for case in 0..25 {
        let plan = NetFaultPlan {
            // Keep reordering out: a reordered packet is a fixed +extra
            // delay, so it still obeys monotonicity, but duplication of
            // reordered packets can land copies outside the shallow
            // buffer's window in either order; stick to the jitter/loss
            // core for the cleanest monotone claim.
            dup_rate: 0.0,
            reorder_rate: 0.0,
            ..random_plan(&mut rng)
        };
        // Count dropouts, not raw conceal stats: a buffer too shallow to
        // ever play a frame never "warms", so its misses surface as
        // Preroll rather than Concealed. Non-played cycles after the
        // fixed preroll window are the depth-monotone quantity.
        let dropouts_at = |depth: u32| {
            let mut buf = JitterBuffer::for_plan(1, FRAMES, &plan, JitterConfig::fixed(depth));
            let outcomes = drive(&plan, 1, &mut buf, 500);
            outcomes[depth as usize..]
                .iter()
                .filter(|o| !matches!(o, PopOutcome::Played))
                .count() as u64
        };
        let mut prev = u64::MAX;
        for depth in [1u32, 2, 4, 8, 16, 32] {
            let d = dropouts_at(depth);
            assert!(
                d <= prev,
                "case {case}: depth {depth} dropped {d} > shallower {prev}"
            );
            prev = d;
        }
        // At the full delay horizon every delivered frame is in the
        // buffer by playout time; only outright losses can drop.
        let horizon = 500 - MAX_DELAY as u64;
        let floor = (0..horizon).filter(|&c| plan.lost(c, 1)).count() as u64;
        assert_eq!(
            dropouts_at(MAX_DELAY),
            floor,
            "case {case}: full-depth dropouts should equal the loss floor"
        );
    }
}

#[test]
fn governor_retunes_are_clamped_and_stick() {
    let mut rng = SmallRng::seed_from_u64(0x9E74);
    for _ in 0..20 {
        let plan = random_plan(&mut rng);
        // adapt=false: only the external governor order moves the target
        // (watermark self-adaptation would fight the explicit setting).
        let cfg = JitterConfig {
            min_depth: 2,
            max_depth: 9,
            start_depth: 2,
            adapt: false,
            ..JitterConfig::default()
        };
        let mut buf = JitterBuffer::for_plan(1, FRAMES, &plan, cfg);
        drive(&plan, 0, &mut buf, 50);
        let order = rng.below(16) as u32;
        buf.set_target_depth(order);
        assert_eq!(buf.target_depth(), order.clamp(2, 9));
        drive(&plan, 0, &mut buf, 100);
        // One bounded step per pop: after 100 pops the depth reached the
        // clamped target.
        assert_eq!(buf.depth(), order.clamp(2, 9));
        buf.set_depth_bounds(1, 4);
        assert!(buf.target_depth() <= 4);
    }
}
