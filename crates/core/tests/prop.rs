//! Property-style tests for the task graph, the deque and the executors on
//! randomly generated DAGs. DAGs are generated from a seeded
//! [`SmallRng`] so every run checks the same cases (the workspace builds
//! offline, without proptest).

use djstar_core::deque::{Steal, WorkDeque};
use djstar_core::exec::{
    BusyExecutor, GraphExecutor, PlannedExecutor, ScheduleBlueprint, SequentialExecutor,
    SleepExecutor, StealExecutor,
};
use djstar_core::graph::{NodeId, Priority, Section, TaskGraph, TaskGraphBuilder};
use djstar_core::processor::{CycleCtx, FnProcessor};
use djstar_dsp::rng::SmallRng;
use djstar_dsp::AudioBuf;

/// Random DAG description: for node i, a set of predecessors drawn from the
/// earlier nodes (at most 8, matching MAX_INPUTS).
fn random_dag(rng: &mut SmallRng, max_nodes: usize) -> Vec<Vec<u32>> {
    let n = 1 + rng.below(max_nodes - 1);
    (0..n)
        .map(|i| {
            let mut ps: Vec<u32> = (0..i as u32).filter(|_| rng.chance(0.3)).collect();
            ps.truncate(8);
            ps
        })
        .collect()
}

/// Build a graph whose node i writes `i + 1 + max(pred values)` so the sink
/// values are schedule-independent but dependency-sensitive.
fn build_graph(preds: &[Vec<u32>]) -> TaskGraph {
    let mut b = TaskGraphBuilder::new();
    for (i, ps) in preds.iter().enumerate() {
        let pred_ids: Vec<NodeId> = ps.iter().map(|&p| NodeId(p)).collect();
        let val = (i + 1) as f32;
        b.add(
            format!("n{i}"),
            Section::deck(i % 4),
            Box::new(FnProcessor(
                move |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    let base = inp.iter().map(|b| b.sample(0, 0)).fold(0.0f32, f32::max);
                    out.samples_mut().fill(base + val);
                },
            )),
            &pred_ids,
        );
    }
    b.build().expect("forward edges only: always a DAG")
}

/// Expected node values of the arithmetic above, computed directly.
fn expected_values(preds: &[Vec<u32>]) -> Vec<f32> {
    let mut vals = vec![0.0f32; preds.len()];
    for i in 0..preds.len() {
        let base = preds[i]
            .iter()
            .map(|&p| vals[p as usize])
            .fold(0.0f32, f32::max);
        vals[i] = base + (i + 1) as f32;
    }
    vals
}

#[test]
fn random_dags_build_with_valid_queues() {
    let mut rng = SmallRng::seed_from_u64(0x9A6);
    for _ in 0..24 {
        let preds = random_dag(&mut rng, 24);
        let g = build_graph(&preds);
        let t = g.topology();
        assert!(t.is_valid_execution_order(t.queue()));
        // Depth is consistent: every edge increases depth.
        for n in 0..t.len() as u32 {
            for &p in t.preds(NodeId(n)) {
                assert!(t.depth(NodeId(p)) < t.depth(NodeId(n)));
            }
        }
        // Sources are exactly the nodes without predecessors.
        let src_count = (0..t.len() as u32)
            .filter(|&n| t.preds(NodeId(n)).is_empty())
            .count();
        assert_eq!(t.sources().len(), src_count);
    }
}

#[test]
fn all_executors_compute_correct_values_on_random_dags() {
    let mut rng = SmallRng::seed_from_u64(0xE8EC);
    for case in 0..24 {
        let preds = random_dag(&mut rng, 20);
        let threads = 1 + rng.below(4);
        let want = expected_values(&preds);
        let sink = preds.len() - 1;
        let frames = 4;
        let planned = {
            let g = build_graph(&preds);
            let bp = ScheduleBlueprint::round_robin(g.topology(), threads, Priority::Depth);
            PlannedExecutor::new(g, frames, bp)
        };
        let mut executors: Vec<Box<dyn GraphExecutor>> = vec![
            Box::new(SequentialExecutor::new(build_graph(&preds), frames)),
            Box::new(BusyExecutor::new(build_graph(&preds), threads, frames)),
            Box::new(SleepExecutor::new(build_graph(&preds), threads, frames)),
            Box::new(StealExecutor::new(build_graph(&preds), threads, frames)),
            Box::new(planned),
        ];
        for ex in &mut executors {
            for _ in 0..3 {
                ex.run_cycle(&[], &[]);
            }
            let mut out = AudioBuf::zeroed(2, frames);
            ex.read_output(NodeId(sink as u32), &mut out);
            assert!(
                (out.sample(0, 0) - want[sink]).abs() < 1e-4,
                "case {case} {:?}: got {}, want {}",
                ex.strategy(),
                out.sample(0, 0),
                want[sink]
            );
        }
    }
}

#[test]
fn traces_on_random_dags_respect_dependencies() {
    let mut rng = SmallRng::seed_from_u64(0x7A8);
    for _ in 0..16 {
        let preds = random_dag(&mut rng, 16);
        let threads = 2 + rng.below(3);
        let mut ex = StealExecutor::new(build_graph(&preds), threads, 4);
        ex.set_tracing(true);
        for _ in 0..5 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            assert_eq!(trace.executions().len(), preds.len());
            let topo = ex.topology();
            assert!(trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()));
        }
    }
}

#[test]
fn planned_executor_runs_every_node_exactly_once_on_random_dags() {
    let mut rng = SmallRng::seed_from_u64(0x91A7);
    for case in 0..16 {
        let preds = random_dag(&mut rng, 20);
        let threads = 1 + rng.below(8);
        let priority = if rng.chance(0.5) {
            Priority::Depth
        } else {
            Priority::CriticalPath
        };
        let g = build_graph(&preds);
        let bp = ScheduleBlueprint::round_robin(g.topology(), threads, priority);
        let mut ex = PlannedExecutor::new(g, 4, bp);
        ex.set_tracing(true);
        for _ in 0..5 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            // Exactly once: the execution count matches the node count and
            // no node appears twice.
            let mut nodes: Vec<u32> = trace.executions().iter().map(|e| e.node).collect();
            nodes.sort_unstable();
            assert_eq!(
                nodes,
                (0..preds.len() as u32).collect::<Vec<_>>(),
                "case {case} t={threads} {priority:?}"
            );
            // Every dependency edge is respected in wall-clock order.
            let topo = ex.topology();
            assert!(
                trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()),
                "case {case} t={threads} {priority:?}"
            );
        }
    }
}

#[test]
fn planned_executor_computes_correct_values_on_random_dags() {
    let mut rng = SmallRng::seed_from_u64(0xB1DE);
    for case in 0..16 {
        let preds = random_dag(&mut rng, 20);
        let threads = 1 + rng.below(8);
        let want = expected_values(&preds);
        let sink = preds.len() - 1;
        let g = build_graph(&preds);
        let bp = ScheduleBlueprint::round_robin(g.topology(), threads, Priority::CriticalPath);
        let mut ex = PlannedExecutor::new(g, 4, bp);
        for _ in 0..3 {
            ex.run_cycle(&[], &[]);
        }
        let mut out = AudioBuf::zeroed(2, 4);
        ex.read_output(NodeId(sink as u32), &mut out);
        assert!(
            (out.sample(0, 0) - want[sink]).abs() < 1e-4,
            "case {case} t={threads}: got {}, want {}",
            out.sample(0, 0),
            want[sink]
        );
    }
}

#[test]
fn deque_matches_sequential_model() {
    // Single-threaded model check: (push?, from_top?) operations against
    // a VecDeque reference. Owner pops bottom (back), thief steals top
    // (front).
    let mut rng = SmallRng::seed_from_u64(0xDE0E);
    for _ in 0..32 {
        let deque = WorkDeque::new(256);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut counter = 0u32;
        for _ in 0..200 {
            let push = rng.chance(0.5);
            let from_top = rng.chance(0.5);
            if push {
                counter += 1;
                if deque.push(counter).is_ok() {
                    model.push_back(counter);
                }
            } else if from_top {
                let got = match deque.steal() {
                    Steal::Success(v) => Some(v),
                    _ => None,
                };
                assert_eq!(got, model.pop_front());
            } else {
                assert_eq!(deque.pop(), model.pop_back());
            }
            assert_eq!(deque.len(), model.len());
        }
    }
}
