//! Property-based tests for the task graph, the deque and the executors on
//! randomly generated DAGs.

use djstar_core::deque::{Steal, WorkDeque};
use djstar_core::exec::{
    BusyExecutor, GraphExecutor, SequentialExecutor, SleepExecutor, StealExecutor,
};
use djstar_core::graph::{NodeId, Section, TaskGraph, TaskGraphBuilder};
use djstar_core::processor::{CycleCtx, FnProcessor};
use djstar_dsp::AudioBuf;
use proptest::prelude::*;

/// Random DAG description: for node i, a bitmask over earlier nodes
/// selecting predecessors (truncated to MAX_INPUTS).
fn dag_strategy(max_nodes: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), 0..max_nodes), 1..max_nodes)
        .prop_map(|masks| {
            masks
                .iter()
                .enumerate()
                .map(|(i, mask)| {
                    mask.iter()
                        .enumerate()
                        .filter(|&(j, &b)| j < i && b)
                        .map(|(j, _)| j as u32)
                        .take(8)
                        .collect()
                })
                .collect()
        })
}

/// Build a graph whose node i writes `i + 1 + max(pred values)` so the sink
/// values are schedule-independent but dependency-sensitive.
fn build_graph(preds: &[Vec<u32>]) -> TaskGraph {
    let mut b = TaskGraphBuilder::new();
    for (i, ps) in preds.iter().enumerate() {
        let pred_ids: Vec<NodeId> = ps.iter().map(|&p| NodeId(p)).collect();
        let val = (i + 1) as f32;
        b.add(
            format!("n{i}"),
            Section::deck(i % 4),
            Box::new(FnProcessor(
                move |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    let base = inp
                        .iter()
                        .map(|b| b.sample(0, 0))
                        .fold(0.0f32, f32::max);
                    out.samples_mut().fill(base + val);
                },
            )),
            &pred_ids,
        );
    }
    b.build().expect("forward edges only: always a DAG")
}

/// Expected node values of the arithmetic above, computed directly.
fn expected_values(preds: &[Vec<u32>]) -> Vec<f32> {
    let mut vals = vec![0.0f32; preds.len()];
    for i in 0..preds.len() {
        let base = preds[i]
            .iter()
            .map(|&p| vals[p as usize])
            .fold(0.0f32, f32::max);
        vals[i] = base + (i + 1) as f32;
    }
    vals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_dags_build_with_valid_queues(preds in dag_strategy(24)) {
        let g = build_graph(&preds);
        let t = g.topology();
        prop_assert!(t.is_valid_execution_order(t.queue()));
        // Depth is consistent: every edge increases depth.
        for n in 0..t.len() as u32 {
            for &p in t.preds(NodeId(n)) {
                prop_assert!(t.depth(NodeId(p)) < t.depth(NodeId(n)));
            }
        }
        // Sources are exactly the nodes without predecessors.
        let src_count = (0..t.len() as u32)
            .filter(|&n| t.preds(NodeId(n)).is_empty())
            .count();
        prop_assert_eq!(t.sources().len(), src_count);
    }

    #[test]
    fn all_executors_compute_correct_values_on_random_dags(
        preds in dag_strategy(20),
        threads in 1usize..5,
    ) {
        let want = expected_values(&preds);
        let sink = preds.len() - 1;
        let frames = 4;
        let mut executors: Vec<Box<dyn GraphExecutor>> = vec![
            Box::new(SequentialExecutor::new(build_graph(&preds), frames)),
            Box::new(BusyExecutor::new(build_graph(&preds), threads, frames)),
            Box::new(SleepExecutor::new(build_graph(&preds), threads, frames)),
            Box::new(StealExecutor::new(build_graph(&preds), threads, frames)),
        ];
        for ex in &mut executors {
            for _ in 0..3 {
                ex.run_cycle(&[], &[]);
            }
            let mut out = AudioBuf::zeroed(2, frames);
            ex.read_output(NodeId(sink as u32), &mut out);
            prop_assert!(
                (out.sample(0, 0) - want[sink]).abs() < 1e-4,
                "{:?}: got {}, want {}",
                ex.strategy(),
                out.sample(0, 0),
                want[sink]
            );
        }
    }

    #[test]
    fn traces_on_random_dags_respect_dependencies(
        preds in dag_strategy(16),
        threads in 2usize..5,
    ) {
        let mut ex = StealExecutor::new(build_graph(&preds), threads, 4);
        ex.set_tracing(true);
        for _ in 0..5 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            prop_assert_eq!(trace.executions().len(), preds.len());
            let topo = ex.topology();
            prop_assert!(trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()));
        }
    }

    #[test]
    fn deque_matches_sequential_model(ops in prop::collection::vec(any::<(bool, bool)>(), 0..200)) {
        // Single-threaded model check: (push?, from_top?) operations against
        // a VecDeque reference. Owner pops bottom (back), thief steals top
        // (front).
        let deque = WorkDeque::new(256);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut counter = 0u32;
        for (push, from_top) in ops {
            if push {
                counter += 1;
                if deque.push(counter).is_ok() {
                    model.push_back(counter);
                }
            } else if from_top {
                let got = match deque.steal() {
                    Steal::Success(v) => Some(v),
                    _ => None,
                };
                prop_assert_eq!(got, model.pop_front());
            } else {
                prop_assert_eq!(deque.pop(), model.pop_back());
            }
            prop_assert_eq!(deque.len(), model.len());
        }
    }
}
