//! Property-style tests for the task graph, the deque and the executors on
//! randomly generated DAGs. DAGs are generated from a seeded
//! [`SmallRng`] so every run checks the same cases (the workspace builds
//! offline, without proptest).

use djstar_core::deque::{Steal, WorkDeque};
use djstar_core::exec::{
    BusyExecutor, GraphExecutor, HybridExecutor, PlannedExecutor, ScheduleBlueprint,
    SequentialExecutor, SleepExecutor, StagedGeneration, StealExecutor, Strategy, SwapError,
};
use djstar_core::graph::{NodeId, Priority, Section, TaskGraph, TaskGraphBuilder};
use djstar_core::processor::{CycleCtx, FnProcessor};
use djstar_dsp::rng::SmallRng;
use djstar_dsp::AudioBuf;

/// Random DAG description: for node i, a set of predecessors drawn from the
/// earlier nodes (at most 8, matching MAX_INPUTS).
fn random_dag(rng: &mut SmallRng, max_nodes: usize) -> Vec<Vec<u32>> {
    let n = 1 + rng.below(max_nodes - 1);
    (0..n)
        .map(|i| {
            let mut ps: Vec<u32> = (0..i as u32).filter(|_| rng.chance(0.3)).collect();
            ps.truncate(8);
            ps
        })
        .collect()
}

/// Build a graph whose node i writes `i + 1 + max(pred values)` so the sink
/// values are schedule-independent but dependency-sensitive.
fn build_graph(preds: &[Vec<u32>]) -> TaskGraph {
    let mut b = TaskGraphBuilder::new();
    for (i, ps) in preds.iter().enumerate() {
        let pred_ids: Vec<NodeId> = ps.iter().map(|&p| NodeId(p)).collect();
        let val = (i + 1) as f32;
        b.add(
            format!("n{i}"),
            Section::deck(i % 4),
            Box::new(FnProcessor(
                move |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    let base = inp.iter().map(|b| b.sample(0, 0)).fold(0.0f32, f32::max);
                    out.samples_mut().fill(base + val);
                },
            )),
            &pred_ids,
        );
    }
    b.build().expect("forward edges only: always a DAG")
}

/// Expected node values of the arithmetic above, computed directly.
fn expected_values(preds: &[Vec<u32>]) -> Vec<f32> {
    let mut vals = vec![0.0f32; preds.len()];
    for i in 0..preds.len() {
        let base = preds[i]
            .iter()
            .map(|&p| vals[p as usize])
            .fold(0.0f32, f32::max);
        vals[i] = base + (i + 1) as f32;
    }
    vals
}

#[test]
fn random_dags_build_with_valid_queues() {
    let mut rng = SmallRng::seed_from_u64(0x9A6);
    for _ in 0..24 {
        let preds = random_dag(&mut rng, 24);
        let g = build_graph(&preds);
        let t = g.topology();
        assert!(t.is_valid_execution_order(t.queue()));
        // Depth is consistent: every edge increases depth.
        for n in 0..t.len() as u32 {
            for &p in t.preds(NodeId(n)) {
                assert!(t.depth(NodeId(p)) < t.depth(NodeId(n)));
            }
        }
        // Sources are exactly the nodes without predecessors.
        let src_count = (0..t.len() as u32)
            .filter(|&n| t.preds(NodeId(n)).is_empty())
            .count();
        assert_eq!(t.sources().len(), src_count);
    }
}

#[test]
fn all_executors_compute_correct_values_on_random_dags() {
    let mut rng = SmallRng::seed_from_u64(0xE8EC);
    for case in 0..24 {
        let preds = random_dag(&mut rng, 20);
        let threads = 1 + rng.below(4);
        let want = expected_values(&preds);
        let sink = preds.len() - 1;
        let frames = 4;
        let planned = {
            let g = build_graph(&preds);
            let bp = ScheduleBlueprint::round_robin(g.topology(), threads, Priority::Depth);
            PlannedExecutor::new(g, frames, bp)
        };
        let mut executors: Vec<Box<dyn GraphExecutor>> = vec![
            Box::new(SequentialExecutor::new(build_graph(&preds), frames)),
            Box::new(BusyExecutor::new(build_graph(&preds), threads, frames)),
            Box::new(SleepExecutor::new(build_graph(&preds), threads, frames)),
            Box::new(StealExecutor::new(build_graph(&preds), threads, frames)),
            Box::new(planned),
        ];
        for ex in &mut executors {
            for _ in 0..3 {
                ex.run_cycle(&[], &[]);
            }
            let mut out = AudioBuf::zeroed(2, frames);
            ex.read_output(NodeId(sink as u32), &mut out);
            assert!(
                (out.sample(0, 0) - want[sink]).abs() < 1e-4,
                "case {case} {:?}: got {}, want {}",
                ex.strategy(),
                out.sample(0, 0),
                want[sink]
            );
        }
    }
}

#[test]
fn traces_on_random_dags_respect_dependencies() {
    let mut rng = SmallRng::seed_from_u64(0x7A8);
    for _ in 0..16 {
        let preds = random_dag(&mut rng, 16);
        let threads = 2 + rng.below(3);
        let mut ex = StealExecutor::new(build_graph(&preds), threads, 4);
        ex.set_tracing(true);
        for _ in 0..5 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            assert_eq!(trace.executions().len(), preds.len());
            let topo = ex.topology();
            assert!(trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()));
        }
    }
}

#[test]
fn planned_executor_runs_every_node_exactly_once_on_random_dags() {
    let mut rng = SmallRng::seed_from_u64(0x91A7);
    for case in 0..16 {
        let preds = random_dag(&mut rng, 20);
        let threads = 1 + rng.below(8);
        let priority = if rng.chance(0.5) {
            Priority::Depth
        } else {
            Priority::CriticalPath
        };
        let g = build_graph(&preds);
        let bp = ScheduleBlueprint::round_robin(g.topology(), threads, priority);
        let mut ex = PlannedExecutor::new(g, 4, bp);
        ex.set_tracing(true);
        for _ in 0..5 {
            ex.run_cycle(&[], &[]);
            let trace = ex.take_trace().unwrap();
            // Exactly once: the execution count matches the node count and
            // no node appears twice.
            let mut nodes: Vec<u32> = trace.executions().iter().map(|e| e.node).collect();
            nodes.sort_unstable();
            assert_eq!(
                nodes,
                (0..preds.len() as u32).collect::<Vec<_>>(),
                "case {case} t={threads} {priority:?}"
            );
            // Every dependency edge is respected in wall-clock order.
            let topo = ex.topology();
            assert!(
                trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()),
                "case {case} t={threads} {priority:?}"
            );
        }
    }
}

#[test]
fn planned_executor_computes_correct_values_on_random_dags() {
    let mut rng = SmallRng::seed_from_u64(0xB1DE);
    for case in 0..16 {
        let preds = random_dag(&mut rng, 20);
        let threads = 1 + rng.below(8);
        let want = expected_values(&preds);
        let sink = preds.len() - 1;
        let g = build_graph(&preds);
        let bp = ScheduleBlueprint::round_robin(g.topology(), threads, Priority::CriticalPath);
        let mut ex = PlannedExecutor::new(g, 4, bp);
        for _ in 0..3 {
            ex.run_cycle(&[], &[]);
        }
        let mut out = AudioBuf::zeroed(2, 4);
        ex.read_output(NodeId(sink as u32), &mut out);
        assert!(
            (out.sample(0, 0) - want[sink]).abs() < 1e-4,
            "case {case} t={threads}: got {}, want {}",
            out.sample(0, 0),
            want[sink]
        );
    }
}

/// Build a fresh executor of `strategy` over `graph` with `threads`
/// workers. Sequential ignores `threads`; Planned gets a round-robin
/// blueprint (the swap path exercises the `plan: None` fallback).
fn make_executor(
    strategy: Strategy,
    graph: TaskGraph,
    threads: usize,
    frames: usize,
) -> Box<dyn GraphExecutor> {
    match strategy {
        Strategy::Sequential => Box::new(SequentialExecutor::new(graph, frames)),
        Strategy::Busy => Box::new(BusyExecutor::new(graph, threads, frames)),
        Strategy::Sleep => Box::new(SleepExecutor::new(graph, threads, frames)),
        Strategy::Steal => Box::new(StealExecutor::new(graph, threads, frames)),
        Strategy::Hybrid => Box::new(HybridExecutor::new(graph, threads, frames, 2000)),
        Strategy::Planned => {
            let bp = ScheduleBlueprint::round_robin(graph.topology(), threads, Priority::Depth);
            Box::new(PlannedExecutor::new(graph, frames, bp))
        }
    }
}

/// Run `cycles` traced cycles and check exactly-once execution, dependency
/// safety and the schedule-independent sink value against `preds`.
fn check_cycles(ex: &mut dyn GraphExecutor, preds: &[Vec<u32>], cycles: usize, tag: &str) {
    let want = expected_values(preds);
    let sink = preds.len() - 1;
    ex.set_tracing(true);
    for c in 0..cycles {
        ex.run_cycle(&[], &[]);
        let trace = ex.take_trace().unwrap();
        let mut nodes: Vec<u32> = trace.executions().iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        assert_eq!(
            nodes,
            (0..preds.len() as u32).collect::<Vec<_>>(),
            "{tag} cycle {c}: not exactly-once"
        );
        let topo = ex.topology();
        assert!(
            trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()),
            "{tag} cycle {c}: dependency violated"
        );
    }
    ex.set_tracing(false);
    let mut out = AudioBuf::zeroed(2, 4);
    ex.read_output(NodeId(sink as u32), &mut out);
    assert!(
        (out.sample(0, 0) - want[sink]).abs() < 1e-4,
        "{tag}: got {}, want {}",
        out.sample(0, 0),
        want[sink]
    );
}

#[test]
fn generation_swaps_preserve_exactly_once_and_dep_safety() {
    // All six strategies x 1..=8 threads; each executor lives through two
    // topology swaps (A -> B -> C) with correctness checked before and
    // after every swap.
    let mut rng = SmallRng::seed_from_u64(0x5A0B);
    for strategy in Strategy::ALL {
        for threads in 1..=8usize {
            let a = random_dag(&mut rng, 20);
            let b = random_dag(&mut rng, 20);
            let c = random_dag(&mut rng, 20);
            let tag = format!("{strategy:?} t={threads}");
            let mut ex = make_executor(strategy, build_graph(&a), threads, 4);
            assert_eq!(ex.generation(), 0, "{tag}");
            check_cycles(ex.as_mut(), &a, 3, &format!("{tag} gen0"));
            for (gen, preds) in [(1u64, &b), (2, &c)] {
                let staged = StagedGeneration::new(build_graph(preds), 4);
                let got = ex.adopt_generation(staged).expect("swap must succeed");
                assert_eq!(got, gen, "{tag}");
                assert_eq!(ex.generation(), gen, "{tag}");
                assert_eq!(ex.topology().len(), preds.len(), "{tag}");
                check_cycles(ex.as_mut(), preds, 3, &format!("{tag} gen{gen}"));
            }
        }
    }
}

#[test]
fn planned_swap_accepts_staged_blueprint_and_rejects_misfits() {
    let mut rng = SmallRng::seed_from_u64(0x5B1);
    let a = random_dag(&mut rng, 16);
    let b = random_dag(&mut rng, 16);
    let threads = 3;
    let g_a = build_graph(&a);
    let bp_a = ScheduleBlueprint::round_robin(g_a.topology(), threads, Priority::Depth);
    let mut ex = PlannedExecutor::new(g_a, 4, bp_a);
    check_cycles(&mut ex, &a, 2, "planned pre-swap");

    // A staged generation carrying a freshly compiled blueprint.
    let g_b = build_graph(&b);
    let bp_b = ScheduleBlueprint::round_robin(g_b.topology(), threads, Priority::CriticalPath);
    let staged = StagedGeneration::with_plan(g_b, 4, bp_b);
    assert!(staged.has_plan());
    assert_eq!(ex.adopt_generation(staged).unwrap(), 1);
    check_cycles(&mut ex, &b, 2, "planned post-swap");

    // Wrong worker count: rejected, running generation untouched.
    let bad_plan = {
        let g = build_graph(&a);
        ScheduleBlueprint::round_robin(g.topology(), threads + 1, Priority::Depth)
    };
    let staged = StagedGeneration::with_plan(build_graph(&a), 4, bad_plan);
    match ex.adopt_generation(staged) {
        Err(SwapError::ThreadMismatch { expected, got }) => {
            assert_eq!((expected, got), (threads, threads + 1));
        }
        other => panic!("expected ThreadMismatch, got {other:?}"),
    }
    assert_eq!(ex.generation(), 1);
    check_cycles(&mut ex, &b, 2, "planned after rejected swap");

    // Blueprint for a different node set: rejected by recompilation.
    let stale = ex.blueprint().clone();
    let bigger: Vec<Vec<u32>> = (0..b.len() + 4).map(|_| Vec::new()).collect();
    let staged = StagedGeneration::with_plan(build_graph(&bigger), 4, stale);
    match ex.adopt_generation(staged) {
        Err(SwapError::Blueprint(_)) => {}
        other => panic!("expected Blueprint error, got {other:?}"),
    }
    assert_eq!(ex.generation(), 1);
    check_cycles(&mut ex, &b, 2, "planned after second rejected swap");
}

/// A graph holding a stateful counter node named "acc" (its output value
/// increments every cycle) surrounded by `extra` stateless nodes so the
/// two generations differ in shape.
fn counter_graph(extra: usize, prefix: &str) -> TaskGraph {
    let mut b = TaskGraphBuilder::new();
    let mut count = 0.0f32;
    let acc = b.add(
        "acc".to_string(),
        Section::Master,
        Box::new(FnProcessor(
            move |_: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                count += 1.0;
                out.samples_mut().fill(count);
            },
        )),
        &[],
    );
    for i in 0..extra {
        b.add(
            format!("{prefix}{i}"),
            Section::deck(i % 4),
            Box::new(FnProcessor(
                |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    out.samples_mut()
                        .fill(inp.first().map(|b| b.sample(0, 0)).unwrap_or(0.0));
                },
            )),
            &[acc],
        );
    }
    b.build().unwrap()
}

fn node_named(ex: &dyn GraphExecutor, name: &str) -> NodeId {
    let topo = ex.topology();
    (0..topo.len() as u32)
        .map(NodeId)
        .find(|&n| topo.name(n) == name)
        .expect("node present")
}

#[test]
fn swap_carries_processor_state_by_name() {
    // Both the sequential path (executor-owned graph) and the shared path
    // (adopt_exec) must keep the stateful "acc" processor running across
    // a swap to a differently shaped graph.
    let execs: Vec<Box<dyn GraphExecutor>> = vec![
        Box::new(SequentialExecutor::new(counter_graph(2, "a"), 4)),
        Box::new(BusyExecutor::new(counter_graph(2, "a"), 2, 4)),
    ];
    for mut ex in execs {
        let tag = format!("{:?}", ex.strategy());
        for _ in 0..5 {
            ex.run_cycle(&[], &[]);
        }
        let mut out = AudioBuf::zeroed(2, 4);
        ex.read_output(node_named(ex.as_ref(), "acc"), &mut out);
        assert_eq!(out.sample(0, 0), 5.0, "{tag} pre-swap");

        ex.adopt_generation(StagedGeneration::new(counter_graph(5, "b"), 4))
            .unwrap();
        for _ in 0..3 {
            ex.run_cycle(&[], &[]);
        }
        let mut out = AudioBuf::zeroed(2, 4);
        ex.read_output(node_named(ex.as_ref(), "acc"), &mut out);
        // 5 pre-swap cycles + 3 post-swap cycles: the counter kept its
        // state through the handover.
        assert_eq!(out.sample(0, 0), 8.0, "{tag} post-swap");
        // The swapped-in stateless node computes from the carried value.
        let mut tap = AudioBuf::zeroed(2, 4);
        ex.read_output(node_named(ex.as_ref(), "b0"), &mut tap);
        assert_eq!(tap.sample(0, 0), 8.0, "{tag} successor");
    }
}

#[test]
fn swap_to_larger_graph_grows_steal_deques() {
    // The staged graph has more nodes than the original deque capacity;
    // adopt must rebuild the deques before the first post-swap cycle.
    let small: Vec<Vec<u32>> = (0..3).map(|_| Vec::new()).collect();
    let big: Vec<Vec<u32>> = (0..120)
        .map(|i| {
            if i == 0 {
                Vec::new()
            } else {
                vec![i as u32 - 1]
            }
        })
        .collect();
    let mut ex = StealExecutor::new(build_graph(&small), 4, 4);
    check_cycles(&mut ex, &small, 2, "steal small");
    ex.adopt_generation(StagedGeneration::new(build_graph(&big), 4))
        .unwrap();
    check_cycles(&mut ex, &big, 3, "steal big");
}

#[test]
fn deque_matches_sequential_model() {
    // Single-threaded model check: (push?, from_top?) operations against
    // a VecDeque reference. Owner pops bottom (back), thief steals top
    // (front).
    let mut rng = SmallRng::seed_from_u64(0xDE0E);
    for _ in 0..32 {
        let deque = WorkDeque::new(256);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut counter = 0u32;
        for _ in 0..200 {
            let push = rng.chance(0.5);
            let from_top = rng.chance(0.5);
            if push {
                counter += 1;
                if deque.push(counter).is_ok() {
                    model.push_back(counter);
                }
            } else if from_top {
                let got = match deque.steal() {
                    Steal::Success(v) => Some(v),
                    _ => None,
                };
                assert_eq!(got, model.pop_front());
            } else {
                assert_eq!(deque.pop(), model.pop_back());
            }
            assert_eq!(deque.len(), model.len());
        }
    }
}
