//! Consistency properties of the telemetry layer, checked against the
//! tracing layer on randomly generated DAGs across every strategy and
//! 1–8 worker threads (seeded [`SmallRng`]; the workspace builds offline,
//! without proptest).
//!
//! The load-bearing property is *exactness*: when tracing and telemetry
//! are both enabled, each node execution feeds the same `Instant` pair to
//! both layers, so the sum of per-worker `exec_ns` must equal the trace's
//! total execution time to the nanosecond.

use djstar_core::exec::{
    BusyExecutor, GraphExecutor, HybridExecutor, SequentialExecutor, SleepExecutor, StealExecutor,
};
use djstar_core::graph::{NodeId, Section, TaskGraph, TaskGraphBuilder};
use djstar_core::processor::{CycleCtx, FnProcessor};
use djstar_core::trace::TraceKind;
use djstar_dsp::rng::SmallRng;
use djstar_dsp::AudioBuf;

/// Random DAG: node i draws predecessors from earlier nodes (≤ 8).
fn random_dag(rng: &mut SmallRng, max_nodes: usize) -> Vec<Vec<u32>> {
    let n = 2 + rng.below(max_nodes - 2);
    (0..n)
        .map(|i| {
            let mut ps: Vec<u32> = (0..i as u32).filter(|_| rng.chance(0.3)).collect();
            ps.truncate(8);
            ps
        })
        .collect()
}

fn build_graph(preds: &[Vec<u32>]) -> TaskGraph {
    let mut b = TaskGraphBuilder::new();
    for (i, ps) in preds.iter().enumerate() {
        let pred_ids: Vec<NodeId> = ps.iter().map(|&p| NodeId(p)).collect();
        b.add(
            format!("n{i}"),
            Section::deck(i % 4),
            Box::new(FnProcessor(
                |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                    let base = inp.iter().map(|b| b.sample(0, 0)).sum::<f32>();
                    // A little arithmetic per frame so executions take
                    // measurable (but tiny) time.
                    for s in out.samples_mut() {
                        *s = (base + 1.0).sin();
                    }
                },
            )),
            &pred_ids,
        );
    }
    b.build().expect("forward edges only: always a DAG")
}

/// Every strategy at `threads` workers (SEQ only when threads == 1).
fn executors(graph: &[Vec<u32>], threads: usize) -> Vec<(&'static str, Box<dyn GraphExecutor>)> {
    const FRAMES: usize = 8;
    let mut v: Vec<(&'static str, Box<dyn GraphExecutor>)> = vec![
        (
            "BUSY",
            Box::new(BusyExecutor::new(build_graph(graph), threads, FRAMES)),
        ),
        (
            "SLEEP",
            Box::new(SleepExecutor::new(build_graph(graph), threads, FRAMES)),
        ),
        (
            "WS",
            Box::new(StealExecutor::new(build_graph(graph), threads, FRAMES)),
        ),
        (
            "HYBRID",
            Box::new(HybridExecutor::new(
                build_graph(graph),
                threads,
                FRAMES,
                200,
            )),
        ),
    ];
    if threads == 1 {
        v.push((
            "SEQ",
            Box::new(SequentialExecutor::new(build_graph(graph), FRAMES)),
        ));
    }
    v
}

#[test]
fn counters_are_consistent_with_traces_on_all_strategies() {
    let mut rng = SmallRng::seed_from_u64(0x7E1E_3E7E);
    for threads in 1..=8usize {
        let dag = random_dag(&mut rng, 40);
        let nodes = dag.len() as u64;
        for (label, mut exec) in executors(&dag, threads) {
            exec.set_tracing(true);
            exec.set_telemetry(true);
            for cycle in 0..4u64 {
                exec.run_cycle(&[], &[]);
                let trace = exec.take_trace().expect("tracing on");
                let ring = exec.take_telemetry().expect("telemetry on");
                assert_eq!(ring.len(), 1, "{label}/{threads}t: one record per take");
                let rec = ring.latest().unwrap();
                assert_eq!(rec.workers.len(), if label == "SEQ" { 1 } else { threads });
                let t = rec.totals();

                // Every node executed exactly once; counters were drained
                // (reset) after the previous cycle, or this would be
                // (cycle+1) * nodes.
                assert_eq!(
                    t.nodes_executed, nodes,
                    "{label}/{threads}t cycle {cycle}: node count"
                );

                // Exactness: both layers timed each execution with the
                // same Instant pair.
                let trace_exec_ns: u64 = trace.executions().iter().map(|e| e.duration_ns()).sum();
                assert_eq!(
                    t.exec_ns, trace_exec_ns,
                    "{label}/{threads}t cycle {cycle}: exec_ns vs trace"
                );

                // Steal accounting is internally consistent.
                assert!(t.steal_hits <= t.steal_attempts, "{label}/{threads}t");
                assert_eq!(
                    t.steal_hits + t.steal_misses,
                    t.steal_attempts,
                    "{label}/{threads}t"
                );
                if label != "WS" {
                    assert_eq!(t.steal_attempts, 0, "{label} must not steal");
                }
                // Steal hits in the counters match Steal events in the
                // trace (both are recorded on the same successful sweep).
                let steal_events = trace
                    .events
                    .iter()
                    .filter(|e| e.kind == TraceKind::Steal)
                    .count() as u64;
                assert_eq!(t.steal_hits, steal_events, "{label}/{threads}t");

                // Unparks were counted waker-side and never exceed parks
                // plus the workers a cycle can wake at exit (wake_all at
                // cycle end is uncounted, so unpark_count can be lower).
                if label == "SEQ" || label == "BUSY" {
                    assert_eq!(t.park_count, 0, "{label} never parks");
                    assert_eq!(t.unpark_count, 0, "{label} never unparks");
                }
            }
        }
    }
}

#[test]
fn ring_accumulates_one_record_per_cycle() {
    let mut rng = SmallRng::seed_from_u64(0x00C7_A9E5);
    let dag = random_dag(&mut rng, 24);
    let nodes = dag.len() as u64;
    for (label, mut exec) in executors(&dag, 3) {
        exec.set_telemetry(true);
        for _ in 0..6 {
            exec.run_cycle(&[], &[]);
        }
        let ring = exec.take_telemetry().expect("telemetry on");
        assert_eq!(ring.len(), 6, "{label}: one record per cycle");
        assert_eq!(ring.total_pushed(), 6, "{label}");
        let mut last_cycle = 0;
        for rec in ring.iter() {
            assert!(rec.cycle > last_cycle, "{label}: cycles ascend");
            last_cycle = rec.cycle;
            assert_eq!(rec.totals().nodes_executed, nodes, "{label}");
            assert!(rec.graph_ns > 0, "{label}");
            // exec time happened within the cycle wall-clock on every
            // worker (per-worker, not summed: workers run concurrently).
            for w in rec.workers.iter() {
                assert!(
                    w.exec_ns <= rec.graph_ns,
                    "{label}: worker exec {} > cycle {}",
                    w.exec_ns,
                    rec.graph_ns
                );
            }
        }
        // Taking replaced the ring with an empty one; recording continues.
        exec.run_cycle(&[], &[]);
        let next = exec.take_telemetry().expect("still on");
        assert_eq!(next.len(), 1, "{label}: fresh ring after take");
    }
}

#[test]
fn telemetry_off_records_nothing_and_costs_no_drain() {
    let mut rng = SmallRng::seed_from_u64(0xD15AB1ED);
    let dag = random_dag(&mut rng, 16);
    for (label, mut exec) in executors(&dag, 2) {
        // Off by default.
        exec.run_cycle(&[], &[]);
        assert!(exec.take_telemetry().is_none(), "{label}: off by default");
        // On, then off again: disabling drops the ring.
        exec.set_telemetry(true);
        exec.run_cycle(&[], &[]);
        exec.set_telemetry(false);
        assert!(exec.take_telemetry().is_none(), "{label}: disabled");
        // Re-enabling starts from a clean ring and zeroed counters (any
        // counts recorded while on were drained by the cycle that
        // recorded them; the first new record must cover one cycle only).
        exec.set_telemetry(true);
        exec.run_cycle(&[], &[]);
        let ring = exec.take_telemetry().expect("re-enabled");
        assert_eq!(ring.len(), 1, "{label}");
        assert_eq!(
            ring.latest().unwrap().totals().nodes_executed,
            dag.len() as u64,
            "{label}: no leakage across off/on"
        );
    }
}

#[test]
fn parallel_strategies_account_waits_when_dependencies_block() {
    // A deep chain forces waiting on every parallel strategy: with more
    // workers than ready nodes, someone always spins/parks/misses steals.
    let chain: Vec<Vec<u32>> = (0..24u32)
        .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
        .collect();
    for (label, mut exec) in executors(&chain, 4) {
        if label == "SEQ" {
            continue;
        }
        exec.set_telemetry(true);
        for _ in 0..5 {
            exec.run_cycle(&[], &[]);
        }
        let ring = exec.take_telemetry().unwrap();
        let mut totals = djstar_core::telemetry::CounterSnapshot::default();
        for rec in ring.iter() {
            totals.merge(&rec.totals());
        }
        match label {
            "BUSY" => assert!(totals.spin_iters > 0, "BUSY must spin on a chain"),
            "SLEEP" => assert!(
                totals.park_count > 0 || totals.wait_ns() > 0,
                "SLEEP must park on a chain"
            ),
            "WS" => assert!(
                totals.steal_attempts > 0,
                "WS must attempt steals on a chain"
            ),
            "HYBRID" => assert!(
                totals.spin_iters > 0 || totals.park_count > 0,
                "HYBRID must wait on a chain"
            ),
            _ => {}
        }
    }
}
