//! Proof that the telemetry hot path allocates nothing.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after
//! warm-up, running telemetry-enabled (tracing-off) cycles on every
//! strategy must not allocate on the *driver* thread or any worker: the
//! ring and all counter storage are preallocated, and `begin_push` only
//! overwrites a slot in place.
//!
//! This lives in its own integration test binary because a global
//! allocator is process-wide; the single test keeps the count
//! interpretable (the default test harness is multi-threaded, so any
//! sibling test's allocations would pollute the window).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use djstar_core::exec::{
    BusyExecutor, GraphExecutor, HybridExecutor, PlannedExecutor, ScheduleBlueprint,
    SequentialExecutor, SleepExecutor, StealExecutor,
};
use djstar_core::faults::FaultPlan;
use djstar_core::flight::FlightConfig;
use djstar_core::graph::{NodeId, Priority, Section, TaskGraph, TaskGraphBuilder};
use djstar_core::processor::{CycleCtx, FnProcessor};
use djstar_dsp::AudioBuf;

/// A diamond-ish graph with enough nodes to exercise waiting paths.
fn graph() -> TaskGraph {
    let mut b = TaskGraphBuilder::new();
    let mut layer: Vec<NodeId> = Vec::new();
    let mut prev: Vec<NodeId> = Vec::new();
    for depth in 0..6 {
        layer.clear();
        for i in 0..4usize {
            let preds: Vec<NodeId> = if depth == 0 {
                vec![]
            } else if i == 0 {
                prev.clone()
            } else {
                vec![prev[i]]
            };
            layer.push(b.add(
                format!("d{depth}n{i}"),
                Section::deck(i),
                Box::new(FnProcessor(
                    |inp: &[&AudioBuf], out: &mut AudioBuf, _: &CycleCtx<'_>| {
                        let base = inp.iter().map(|b| b.sample(0, 0)).sum::<f32>();
                        out.samples_mut().fill(base + 1.0);
                    },
                )),
                &preds,
            ));
        }
        prev = layer.clone();
    }
    b.build().unwrap()
}

#[test]
fn telemetry_cycles_do_not_allocate() {
    const FRAMES: usize = 8;
    const THREADS: usize = 3;
    let execs: Vec<(&str, Box<dyn GraphExecutor>)> = vec![
        ("SEQ", Box::new(SequentialExecutor::new(graph(), FRAMES))),
        (
            "BUSY",
            Box::new(BusyExecutor::new(graph(), THREADS, FRAMES)),
        ),
        (
            "SLEEP",
            Box::new(SleepExecutor::new(graph(), THREADS, FRAMES)),
        ),
        ("WS", Box::new(StealExecutor::new(graph(), THREADS, FRAMES))),
        (
            "HYBRID",
            Box::new(HybridExecutor::new(graph(), THREADS, FRAMES, 200)),
        ),
        ("PLAN", {
            let g = graph();
            let bp = ScheduleBlueprint::round_robin(g.topology(), THREADS, Priority::Depth);
            Box::new(PlannedExecutor::new(g, FRAMES, bp))
        }),
    ];
    for (label, mut exec) in execs {
        exec.set_telemetry(true);
        let mut cycles_run = 0u64;
        // Warm up: first telemetry-on cycles may lazily settle thread
        // stacks, parker state, etc.
        for _ in 0..20 {
            exec.run_cycle(&[], &[]);
            cycles_run += 1;
        }
        // Count allocations across a 50-cycle window. A genuine hot-path
        // allocation repeats every window, so re-measuring once filters
        // the rare one-shot lazy initialization std performs under
        // memory pressure without weakening the per-cycle claim.
        let measure = |exec: &mut Box<dyn GraphExecutor>, cycles_run: &mut u64| -> u64 {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            for _ in 0..50 {
                exec.run_cycle(&[], &[]);
                *cycles_run += 1;
            }
            ALLOCATIONS.load(Ordering::SeqCst) - before
        };
        let mut allocs = measure(&mut exec, &mut cycles_run);
        if allocs > 0 {
            allocs = measure(&mut exec, &mut cycles_run);
        }
        assert_eq!(
            allocs, 0,
            "{label}: telemetry-on cycles allocated {allocs} times"
        );
        // The planar buffer arena shares the hot path: every node's
        // output is a view into one per-graph allocation made at build
        // time, so cycles interleaved with output reads into preallocated
        // sinks (both matching and mismatching layouts, which take the
        // copy and the clear + mix_add paths) must also allocate nothing.
        let mut stereo_sink = AudioBuf::zeroed(2, FRAMES);
        let mut mono_sink = AudioBuf::zeroed(1, FRAMES);
        let measure_reads = |exec: &mut Box<dyn GraphExecutor>,
                             cycles_run: &mut u64,
                             stereo: &mut AudioBuf,
                             mono: &mut AudioBuf|
         -> u64 {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            for _ in 0..50 {
                exec.run_cycle(&[], &[]);
                *cycles_run += 1;
                exec.read_output(NodeId(23), stereo);
                exec.read_output(NodeId(0), mono);
            }
            ALLOCATIONS.load(Ordering::SeqCst) - before
        };
        let mut allocs =
            measure_reads(&mut exec, &mut cycles_run, &mut stereo_sink, &mut mono_sink);
        if allocs > 0 {
            allocs = measure_reads(&mut exec, &mut cycles_run, &mut stereo_sink, &mut mono_sink);
        }
        assert_eq!(
            allocs, 0,
            "{label}: arena output reads allocated {allocs} times"
        );
        assert!(
            stereo_sink.samples().iter().any(|&s| s != 0.0),
            "{label}: arena read produced silence"
        );
        // Fault injection shares the hot path: cycles with a firing storm
        // plan and with an enabled-but-idle quiet plan must also allocate
        // nothing — the plan is plain `Copy` data and every draw is
        // stateless arithmetic.
        let storm = FaultPlan {
            seed: 0xA110C,
            spike_rate: 0.1,
            spike_iters: 40,
            stall_lanes: 4,
            stall_rate: 0.25,
            stall_iters: 60,
            pressure_period: 8,
            pressure_len: 3,
            pressure_iters: 20,
        };
        for (phase, plan) in [("storm", storm), ("quiet", FaultPlan::quiet(7))] {
            exec.set_faults(Some(plan));
            exec.run_cycle(&[], &[]);
            cycles_run += 1;
            let mut allocs = measure(&mut exec, &mut cycles_run);
            if allocs > 0 {
                allocs = measure(&mut exec, &mut cycles_run);
            }
            assert_eq!(
                allocs, 0,
                "{label}/{phase}: faulted cycles allocated {allocs} times"
            );
        }
        exec.set_faults(None);
        // The flight recorder shares the hot path: with a deliberately
        // tiny window the span lanes *wrap* during the measured cycles,
        // so both the record and the overwrite-oldest path must run
        // allocation-free.
        exec.set_flight_recorder(Some(FlightConfig {
            spans_per_worker: 256,
            cycles: 16,
            session: 0,
        }));
        exec.run_cycle(&[], &[]);
        cycles_run += 1;
        let mut allocs = measure(&mut exec, &mut cycles_run);
        if allocs > 0 {
            allocs = measure(&mut exec, &mut cycles_run);
        }
        assert_eq!(
            allocs, 0,
            "{label}: recorder-on cycles allocated {allocs} times"
        );
        let window = exec.take_flight_window().expect("recorder installed");
        assert!(!window.is_empty(), "{label}: recorder captured nothing");
        assert!(
            window.dropped_spans > 0,
            "{label}: the tiny ring never wrapped, the overwrite path went untested"
        );
        exec.set_flight_recorder(None);
        // The ring still has every record (nothing was traded for the
        // zero-alloc property).
        let ring = exec.take_telemetry().unwrap();
        assert_eq!(ring.len(), cycles_run as usize, "{label}");
    }
}
