//! One cache-aligned allocation backing every node output of a graph.
//!
//! The executor graph used to give each of its ~67 nodes an independently
//! heap-allocated `Vec<f32>` output buffer. [`BufferArena`] replaces those
//! with *slots* carved out of a single 64-byte-aligned block: each slot
//! starts on a cache-line boundary (no false sharing between neighbouring
//! node outputs, and aligned lane loads for the vector kernels), and the
//! whole arena is allocated once at graph build/reconfig time — the audio
//! hot path never touches the allocator.
//!
//! Slots are handed out as [`AudioBuf`] *views* ([`BufferArena::view`]).
//! The safety contract is narrow and enforced by the only caller (the
//! executor graph): the arena outlives every view, slots never overlap,
//! and per-cycle access to a slot is serialized by the executor's epoch
//! protocol.

use crate::buffer::AudioBuf;
use core::cell::UnsafeCell;

/// Floats per cache line; slot offsets are rounded up to this.
const LINE_FLOATS: usize = 16;

/// A 64-byte-aligned tile of samples.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct CacheLine([f32; LINE_FLOATS]);

/// One buffer's window into the arena.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Offset in floats from the arena base.
    offset: usize,
    channels: usize,
    frames: usize,
}

/// A single cache-aligned block of `f32` storage carved into buffer slots.
pub struct BufferArena {
    storage: Box<[UnsafeCell<CacheLine>]>,
    slots: Vec<Slot>,
}

// SAFETY: the arena itself is only carved up at build time; all runtime
// access goes through the `AudioBuf` views, whose aliasing is governed by
// the executor's epoch protocol (see `AudioBuf`'s Send/Sync rationale).
unsafe impl Send for BufferArena {}
unsafe impl Sync for BufferArena {}

impl BufferArena {
    /// Allocate one slot per `(channels, frames)` spec, each starting on a
    /// cache-line boundary.
    pub fn new(specs: &[(usize, usize)]) -> Self {
        let mut offset = 0usize;
        let mut slots = Vec::with_capacity(specs.len());
        for &(channels, frames) in specs {
            assert!(
                channels == 1 || channels == 2,
                "only mono and stereo buffers are supported"
            );
            slots.push(Slot {
                offset,
                channels,
                frames,
            });
            // Round each slot up to whole cache lines so the next slot is
            // aligned and no two slots share a line.
            let floats = channels * frames;
            offset += floats.div_ceil(LINE_FLOATS) * LINE_FLOATS;
        }
        let lines = offset / LINE_FLOATS;
        let storage = (0..lines)
            .map(|_| UnsafeCell::new(CacheLine([0.0; LINE_FLOATS])))
            .collect();
        BufferArena { storage, slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the arena holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total backing size in floats (including alignment padding).
    pub fn capacity_floats(&self) -> usize {
        self.storage.len() * LINE_FLOATS
    }

    /// The `(channels, frames)` layout of `slot`.
    pub fn slot_layout(&self, slot: usize) -> (usize, usize) {
        let s = self.slots[slot];
        (s.channels, s.frames)
    }

    /// A zeroed-at-allocation [`AudioBuf`] view of `slot`.
    ///
    /// # Safety
    /// The caller must keep this arena alive for the whole lifetime of the
    /// returned view and must not create two views of the same slot that
    /// are accessed concurrently outside the executor's epoch protocol.
    ///
    /// # Panics
    /// Panics when `slot` is out of range.
    pub unsafe fn view(&self, slot: usize) -> AudioBuf {
        let s = self.slots[slot];
        let base = self.storage.as_ptr() as *mut f32;
        // SAFETY: `offset` stays within the storage block by construction.
        let ptr = unsafe { base.add(s.offset) };
        unsafe { AudioBuf::from_raw_view(ptr, s.channels, s.frames) }
    }
}

impl core::fmt::Debug for BufferArena {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BufferArena")
            .field("slots", &self.slots.len())
            .field("capacity_floats", &self.capacity_floats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_cache_aligned_and_disjoint() {
        let arena = BufferArena::new(&[(2, 128), (1, 7), (2, 33)]);
        assert_eq!(arena.len(), 3);
        let views: Vec<AudioBuf> = (0..3).map(|i| unsafe { arena.view(i) }).collect();
        for (i, v) in views.iter().enumerate() {
            assert!(v.is_view());
            assert_eq!(
                (v.channels(), v.frames()),
                arena.slot_layout(i),
                "slot {i} layout"
            );
            assert_eq!(v.samples().as_ptr() as usize % 64, 0, "slot {i} alignment");
            assert!(v.samples().iter().all(|&s| s == 0.0), "slot {i} zeroed");
        }
    }

    #[test]
    fn writes_stay_inside_their_slot() {
        let arena = BufferArena::new(&[(1, 16), (1, 16)]);
        let mut a = unsafe { arena.view(0) };
        let b = unsafe { arena.view(1) };
        a.samples_mut().fill(1.0);
        assert!(b.samples().iter().all(|&s| s == 0.0));
        assert_eq!(a.rms(), 1.0);
    }

    #[test]
    fn odd_sizes_round_up_to_lines() {
        let arena = BufferArena::new(&[(1, 1), (2, 3)]);
        assert_eq!(arena.capacity_floats(), 32);
        let v = unsafe { arena.view(1) };
        assert_eq!(v.samples().as_ptr() as usize % 64, 0);
    }
}
