//! RBJ ("Audio EQ Cookbook") biquad filters and cascades.
//!
//! These are the workhorse of the channel strips and sample-preprocess (SP)
//! filter nodes in the DJ Star graph. Coefficients follow Robert
//! Bristow-Johnson's cookbook formulas; the state uses transposed direct
//! form II, which is well-behaved in `f32`.
//!
//! Whole-buffer filtering is vectorized with channels-in-lanes: both
//! channels of a frame ride one [`F32x4`], and [`process_chain`] fuses a
//! whole cascade into a *single* pass over the buffer (per-section state
//! lives in registers), instead of one read-modify-write pass per section.
//! The fused pass is bit-identical to the per-section reference: section
//! `k` still sees exactly the sequence section `k-1` produced, and every
//! lane operation is the same IEEE-754 single operation the scalar
//! expression performs (no FMA, no reassociation).

use crate::buffer::AudioBuf;
use crate::simd::{self, F32x4};

/// Filter kinds supported by [`BiquadCoeffs::design`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    Lowpass,
    Highpass,
    Bandpass,
    Notch,
    /// Peaking EQ with the given gain in dB.
    Peaking {
        gain_db: f32,
    },
    /// Low shelf with the given gain in dB.
    LowShelf {
        gain_db: f32,
    },
    /// High shelf with the given gain in dB.
    HighShelf {
        gain_db: f32,
    },
}

/// Normalized biquad coefficients (a0 divided out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiquadCoeffs {
    pub b0: f32,
    pub b1: f32,
    pub b2: f32,
    pub a1: f32,
    pub a2: f32,
}

impl BiquadCoeffs {
    /// Identity (pass-through) coefficients.
    pub fn identity() -> Self {
        BiquadCoeffs {
            b0: 1.0,
            b1: 0.0,
            b2: 0.0,
            a1: 0.0,
            a2: 0.0,
        }
    }

    /// Design a filter at `freq_hz` with quality factor `q` for `sample_rate`.
    ///
    /// `freq_hz` is clamped into `(0, sample_rate/2)` and `q` to a sane
    /// minimum, so a UI sweeping a knob to its end stop cannot produce an
    /// unstable filter.
    pub fn design(kind: FilterKind, freq_hz: f32, q: f32, sample_rate: u32) -> Self {
        let fs = sample_rate as f32;
        let f = freq_hz.clamp(1.0, 0.499 * fs);
        let q = q.max(0.05);
        let w0 = core::f32::consts::TAU * f / fs;
        let (sin, cos) = w0.sin_cos();
        let alpha = sin / (2.0 * q);

        let (b0, b1, b2, a0, a1, a2) = match kind {
            FilterKind::Lowpass => {
                let b1 = 1.0 - cos;
                (b1 / 2.0, b1, b1 / 2.0, 1.0 + alpha, -2.0 * cos, 1.0 - alpha)
            }
            FilterKind::Highpass => {
                let b1 = -(1.0 + cos);
                let b0 = (1.0 + cos) / 2.0;
                (b0, b1, b0, 1.0 + alpha, -2.0 * cos, 1.0 - alpha)
            }
            FilterKind::Bandpass => (alpha, 0.0, -alpha, 1.0 + alpha, -2.0 * cos, 1.0 - alpha),
            FilterKind::Notch => (1.0, -2.0 * cos, 1.0, 1.0 + alpha, -2.0 * cos, 1.0 - alpha),
            FilterKind::Peaking { gain_db } => {
                let a = 10f32.powf(gain_db / 40.0);
                (
                    1.0 + alpha * a,
                    -2.0 * cos,
                    1.0 - alpha * a,
                    1.0 + alpha / a,
                    -2.0 * cos,
                    1.0 - alpha / a,
                )
            }
            FilterKind::LowShelf { gain_db } => {
                let a = 10f32.powf(gain_db / 40.0);
                let sq = 2.0 * a.sqrt() * alpha;
                (
                    a * ((a + 1.0) - (a - 1.0) * cos + sq),
                    2.0 * a * ((a - 1.0) - (a + 1.0) * cos),
                    a * ((a + 1.0) - (a - 1.0) * cos - sq),
                    (a + 1.0) + (a - 1.0) * cos + sq,
                    -2.0 * ((a - 1.0) + (a + 1.0) * cos),
                    (a + 1.0) + (a - 1.0) * cos - sq,
                )
            }
            FilterKind::HighShelf { gain_db } => {
                let a = 10f32.powf(gain_db / 40.0);
                let sq = 2.0 * a.sqrt() * alpha;
                (
                    a * ((a + 1.0) + (a - 1.0) * cos + sq),
                    -2.0 * a * ((a - 1.0) + (a + 1.0) * cos),
                    a * ((a + 1.0) + (a - 1.0) * cos - sq),
                    (a + 1.0) - (a - 1.0) * cos + sq,
                    2.0 * ((a - 1.0) - (a + 1.0) * cos),
                    (a + 1.0) - (a - 1.0) * cos - sq,
                )
            }
        };
        BiquadCoeffs {
            b0: b0 / a0,
            b1: b1 / a0,
            b2: b2 / a0,
            a1: a1 / a0,
            a2: a2 / a0,
        }
    }
}

/// A stereo biquad filter (independent state per channel), transposed
/// direct form II.
#[derive(Debug, Clone)]
pub struct Biquad {
    coeffs: BiquadCoeffs,
    // Two state variables per channel.
    z1: [f32; 2],
    z2: [f32; 2],
}

impl Biquad {
    /// Filter with the given coefficients.
    pub fn new(coeffs: BiquadCoeffs) -> Self {
        Biquad {
            coeffs,
            z1: [0.0; 2],
            z2: [0.0; 2],
        }
    }

    /// Convenience: design and construct in one step.
    pub fn design(kind: FilterKind, freq_hz: f32, q: f32, sample_rate: u32) -> Self {
        Self::new(BiquadCoeffs::design(kind, freq_hz, q, sample_rate))
    }

    /// Replace the coefficients, keeping state (for smooth knob sweeps).
    pub fn set_coeffs(&mut self, coeffs: BiquadCoeffs) {
        self.coeffs = coeffs;
    }

    /// Current coefficients.
    pub fn coeffs(&self) -> BiquadCoeffs {
        self.coeffs
    }

    /// Clear the filter state.
    pub fn reset(&mut self) {
        self.z1 = [0.0; 2];
        self.z2 = [0.0; 2];
    }

    /// The per-channel delay state `(z1, z2)`, for parity checks.
    pub fn state(&self) -> ([f32; 2], [f32; 2]) {
        (self.z1, self.z2)
    }

    /// Process one sample on `channel` (0 or 1).
    #[inline]
    pub fn tick(&mut self, channel: usize, x: f32) -> f32 {
        let c = &self.coeffs;
        let y = c.b0 * x + self.z1[channel];
        self.z1[channel] = c.b1 * x - c.a1 * y + self.z2[channel];
        self.z2[channel] = c.b2 * x - c.a2 * y;
        y
    }

    /// Filter a whole buffer in place.
    pub fn process(&mut self, buf: &mut AudioBuf) {
        let _t = crate::kprof::timer(crate::kprof::Family::Biquad);
        if simd::wide_enabled() {
            process_chunk_wide(core::slice::from_mut(self), buf);
        } else {
            self.process_scalar(buf);
        }
    }

    /// Scalar reference for [`Biquad::process`]: the seed's per-sample
    /// `tick` loop. Bit-identical to the vector path.
    pub fn process_scalar(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            for ch in 0..channels {
                let y = self.tick(ch, buf.sample(ch, i));
                buf.set_sample(ch, i, y);
            }
        }
    }
}

/// Most fused sections per buffer pass; longer chains run in fused chunks.
const MAX_FUSED: usize = 8;

/// Filter `buf` through every section of `chain` in series, fusing up to
/// [`MAX_FUSED`] sections into one pass over the buffer.
pub fn process_chain(chain: &mut [Biquad], buf: &mut AudioBuf) {
    let _t = crate::kprof::timer(crate::kprof::Family::Biquad);
    chain_dispatch(chain, buf);
}

/// [`process_chain`] without the kernel-family timer, for callers (the EQ)
/// that account the time to their own family.
pub(crate) fn chain_dispatch(chain: &mut [Biquad], buf: &mut AudioBuf) {
    if simd::wide_enabled() {
        for chunk in chain.chunks_mut(MAX_FUSED) {
            process_chunk_wide(chunk, buf);
        }
    } else {
        process_chain_scalar(chain, buf);
    }
}

/// Scalar reference for [`process_chain`]: one buffer pass per section.
pub fn process_chain_scalar(chain: &mut [Biquad], buf: &mut AudioBuf) {
    for section in chain {
        section.process_scalar(buf);
    }
}

/// One fused pass: per-section coefficients and state in lanes, channels
/// 0/1 in lanes 0/1. Lanes 2–3 (and lane 1 for mono buffers) carry zeros
/// whose results are discarded, so unused channel state is left untouched.
fn process_chunk_wide(chain: &mut [Biquad], buf: &mut AudioBuf) {
    let n = chain.len();
    debug_assert!(n <= MAX_FUSED);
    if n == 0 {
        return;
    }
    let channels = buf.channels();
    let stereo = channels == 2;
    let mut b0 = [F32x4::zero(); MAX_FUSED];
    let mut b1 = [F32x4::zero(); MAX_FUSED];
    let mut b2 = [F32x4::zero(); MAX_FUSED];
    let mut a1 = [F32x4::zero(); MAX_FUSED];
    let mut a2 = [F32x4::zero(); MAX_FUSED];
    let mut z1 = [F32x4::zero(); MAX_FUSED];
    let mut z2 = [F32x4::zero(); MAX_FUSED];
    for (k, s) in chain.iter().enumerate() {
        let c = s.coeffs;
        b0[k] = F32x4::splat(c.b0);
        b1[k] = F32x4::splat(c.b1);
        b2[k] = F32x4::splat(c.b2);
        a1[k] = F32x4::splat(c.a1);
        a2[k] = F32x4::splat(c.a2);
        let r1 = if stereo { s.z1[1] } else { 0.0 };
        let r2 = if stereo { s.z2[1] } else { 0.0 };
        z1[k] = F32x4::from_array([s.z1[0], r1, 0.0, 0.0]);
        z2[k] = F32x4::from_array([s.z2[0], r2, 0.0, 0.0]);
    }
    let frames = buf.frames();
    let (l, r) = buf.as_planar_slices_mut();
    for i in 0..frames {
        let xr = if stereo { r[i] } else { 0.0 };
        let mut x = F32x4::from_array([l[i], xr, 0.0, 0.0]);
        for k in 0..n {
            let y = b0[k].mul(x).add(z1[k]);
            z1[k] = b1[k].mul(x).sub(a1[k].mul(y)).add(z2[k]);
            z2[k] = b2[k].mul(x).sub(a2[k].mul(y));
            x = y;
        }
        let out = x.to_array();
        l[i] = out[0];
        if stereo {
            r[i] = out[1];
        }
    }
    for (k, s) in chain.iter_mut().enumerate() {
        let s1 = z1[k].to_array();
        let s2 = z2[k].to_array();
        s.z1[0] = s1[0];
        s.z2[0] = s2[0];
        if stereo {
            s.z1[1] = s1[1];
            s.z2[1] = s2[1];
        }
    }
}

/// A cascade of identical-topology biquads applied in series, e.g. a 4th
/// order lowpass built from two 2nd-order sections.
#[derive(Debug, Clone)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

impl BiquadCascade {
    /// Cascade of `n` sections with the same design.
    pub fn design(kind: FilterKind, freq_hz: f32, q: f32, sample_rate: u32, n: usize) -> Self {
        BiquadCascade {
            sections: (0..n)
                .map(|_| Biquad::design(kind, freq_hz, q, sample_rate))
                .collect(),
        }
    }

    /// Number of second-order sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when the cascade has no sections (pass-through).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Clear all section states.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Filter a buffer in place through every section (one fused pass).
    pub fn process(&mut self, buf: &mut AudioBuf) {
        process_chain(&mut self.sections, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::{Oscillator, Waveform};

    /// Measure output RMS of a steady sine through a filter.
    fn response(kind: FilterKind, cutoff: f32, tone: f32) -> f32 {
        let mut osc = Oscillator::new(Waveform::Sine, tone, 44_100);
        let mut filt = Biquad::design(kind, cutoff, core::f32::consts::FRAC_1_SQRT_2, 44_100);
        // Let transients settle, then measure.
        let mut buf = AudioBuf::zeroed(1, 4096);
        for s in buf.samples_mut() {
            *s = osc.next_sample();
        }
        filt.process(&mut buf);
        let mut buf2 = AudioBuf::zeroed(1, 4096);
        for s in buf2.samples_mut() {
            *s = osc.next_sample();
        }
        filt.process(&mut buf2);
        buf2.rms() / core::f32::consts::FRAC_1_SQRT_2 // normalize: sine RMS = 1/sqrt(2)
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        let low = response(FilterKind::Lowpass, 1000.0, 100.0);
        let high = response(FilterKind::Lowpass, 1000.0, 10_000.0);
        assert!(low > 0.9, "low band gain {low}");
        assert!(high < 0.05, "high band gain {high}");
    }

    #[test]
    fn highpass_blocks_low_passes_high() {
        let low = response(FilterKind::Highpass, 1000.0, 100.0);
        let high = response(FilterKind::Highpass, 1000.0, 10_000.0);
        assert!(low < 0.05, "low band gain {low}");
        assert!(high > 0.9, "high band gain {high}");
    }

    #[test]
    fn bandpass_peaks_at_center() {
        let center = response(FilterKind::Bandpass, 1000.0, 1000.0);
        let off = response(FilterKind::Bandpass, 1000.0, 8000.0);
        assert!(center > off * 3.0, "center {center} vs off {off}");
    }

    #[test]
    fn notch_rejects_center() {
        let center = response(FilterKind::Notch, 1000.0, 1000.0);
        let off = response(FilterKind::Notch, 1000.0, 4000.0);
        assert!(center < 0.1, "notch center gain {center}");
        assert!(off > 0.8, "notch off-center gain {off}");
    }

    #[test]
    fn peaking_boosts_center() {
        let boosted = response(FilterKind::Peaking { gain_db: 12.0 }, 1000.0, 1000.0);
        assert!(
            boosted > 3.0 && boosted < 4.5,
            "peak gain {boosted} (expect ~4x)"
        );
    }

    #[test]
    fn shelves_shape_spectrum() {
        let lo = response(FilterKind::LowShelf { gain_db: -12.0 }, 1000.0, 100.0);
        let hi = response(FilterKind::LowShelf { gain_db: -12.0 }, 1000.0, 10_000.0);
        assert!(lo < 0.35 && hi > 0.8, "lowshelf lo {lo} hi {hi}");
        let lo = response(FilterKind::HighShelf { gain_db: 12.0 }, 1000.0, 100.0);
        let hi = response(FilterKind::HighShelf { gain_db: 12.0 }, 1000.0, 10_000.0);
        assert!(hi / lo > 3.0, "highshelf lo {lo} hi {hi}");
    }

    #[test]
    fn filter_is_stable_on_noise() {
        use crate::osc::NoiseSource;
        let mut noise = NoiseSource::new(3);
        let mut filt = Biquad::design(FilterKind::Lowpass, 200.0, 4.0, 44_100);
        let mut buf = AudioBuf::zeroed(2, 128);
        for _ in 0..200 {
            for s in buf.samples_mut() {
                *s = noise.next_sample();
            }
            filt.process(&mut buf);
            assert!(buf.is_finite());
            assert!(buf.peak() < 20.0, "unstable: peak {}", buf.peak());
        }
    }

    #[test]
    fn identity_coeffs_pass_through() {
        let mut filt = Biquad::new(BiquadCoeffs::identity());
        let mut buf = AudioBuf::from_fn(2, 16, |ch, i| (ch + i) as f32 * 0.01);
        let orig = buf.clone();
        filt.process(&mut buf);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn design_clamps_out_of_range_cutoff() {
        // Nyquist-exceeding cutoff must still give a finite, stable filter.
        let mut filt = Biquad::design(FilterKind::Lowpass, 96_000.0, 0.7, 44_100);
        let mut buf = AudioBuf::from_fn(1, 256, |_, i| if i == 0 { 1.0 } else { 0.0 });
        filt.process(&mut buf);
        assert!(buf.is_finite());
    }

    #[test]
    fn cascade_is_steeper_than_single() {
        let single = response(FilterKind::Lowpass, 1000.0, 4000.0);
        let mut osc = Oscillator::new(Waveform::Sine, 4000.0, 44_100);
        let mut casc = BiquadCascade::design(
            FilterKind::Lowpass,
            1000.0,
            core::f32::consts::FRAC_1_SQRT_2,
            44_100,
            3,
        );
        let mut buf = AudioBuf::zeroed(1, 4096);
        for s in buf.samples_mut() {
            *s = osc.next_sample();
        }
        casc.process(&mut buf);
        let mut buf2 = AudioBuf::zeroed(1, 4096);
        for s in buf2.samples_mut() {
            *s = osc.next_sample();
        }
        casc.process(&mut buf2);
        let triple = buf2.rms() / core::f32::consts::FRAC_1_SQRT_2;
        assert!(triple < single * 0.1, "single {single}, cascade {triple}");
    }

    #[test]
    fn fused_chain_matches_per_section_scalar_exactly() {
        use crate::osc::NoiseSource;
        // Long enough to exceed MAX_FUSED (forces chunking) and odd frame
        // counts for the tails; both mono and stereo.
        for &(channels, frames, sections) in &[(2usize, 128usize, 6usize), (1, 37, 9), (2, 5, 1)] {
            let mk = || -> Vec<Biquad> {
                (0..sections)
                    .map(|k| {
                        Biquad::design(
                            FilterKind::Peaking {
                                gain_db: 3.0 + k as f32,
                            },
                            300.0 * (k + 1) as f32,
                            0.8,
                            44_100,
                        )
                    })
                    .collect()
            };
            let mut wide_chain = mk();
            let mut scalar_chain = mk();
            let mut noise = NoiseSource::new(11);
            for _ in 0..5 {
                let buf = AudioBuf::from_fn(channels, frames, |_, _| noise.next_sample() * 0.5);
                let mut a = buf.clone();
                let mut b = buf.clone();
                process_chain(&mut wide_chain, &mut a);
                process_chain_scalar(&mut scalar_chain, &mut b);
                assert_eq!(
                    a.samples(),
                    b.samples(),
                    "{channels}ch x {frames} x {sections} sections"
                );
            }
        }
    }

    #[test]
    fn single_biquad_wide_matches_scalar_exactly() {
        use crate::osc::NoiseSource;
        let mut noise = NoiseSource::new(5);
        let mut wide = Biquad::design(FilterKind::Lowpass, 900.0, 0.9, 44_100);
        let mut scalar = wide.clone();
        for _ in 0..8 {
            let buf = AudioBuf::from_fn(2, 61, |_, _| noise.next_sample());
            let mut a = buf.clone();
            let mut b = buf.clone();
            wide.process(&mut a);
            scalar.process_scalar(&mut b);
            assert_eq!(a.samples(), b.samples());
        }
    }

    #[test]
    fn mono_buffers_leave_right_channel_state_untouched() {
        let mut filt = Biquad::design(FilterKind::Lowpass, 500.0, 0.7, 44_100);
        // Charge the right-channel state via a stereo buffer.
        let mut st = AudioBuf::from_fn(2, 32, |_, _| 1.0);
        filt.process(&mut st);
        let before = filt.clone();
        let mut mono = AudioBuf::from_fn(1, 32, |_, _| 0.25);
        filt.process(&mut mono);
        assert_eq!(filt.z1[1], before.z1[1]);
        assert_eq!(filt.z2[1], before.z2[1]);
        assert_ne!(filt.z1[0], before.z1[0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut filt = Biquad::design(FilterKind::Lowpass, 500.0, 0.7, 44_100);
        let mut buf = AudioBuf::from_fn(1, 64, |_, _| 1.0);
        filt.process(&mut buf);
        filt.reset();
        let mut impulse = AudioBuf::from_fn(1, 1, |_, _| 0.0);
        filt.process(&mut impulse);
        assert_eq!(impulse.sample(0, 0), 0.0);
    }
}
