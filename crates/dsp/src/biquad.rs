//! RBJ ("Audio EQ Cookbook") biquad filters and cascades.
//!
//! These are the workhorse of the channel strips and sample-preprocess (SP)
//! filter nodes in the DJ Star graph. Coefficients follow Robert
//! Bristow-Johnson's cookbook formulas; the state uses transposed direct
//! form II, which is well-behaved in `f32`.

use crate::buffer::AudioBuf;

/// Filter kinds supported by [`BiquadCoeffs::design`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    Lowpass,
    Highpass,
    Bandpass,
    Notch,
    /// Peaking EQ with the given gain in dB.
    Peaking {
        gain_db: f32,
    },
    /// Low shelf with the given gain in dB.
    LowShelf {
        gain_db: f32,
    },
    /// High shelf with the given gain in dB.
    HighShelf {
        gain_db: f32,
    },
}

/// Normalized biquad coefficients (a0 divided out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiquadCoeffs {
    pub b0: f32,
    pub b1: f32,
    pub b2: f32,
    pub a1: f32,
    pub a2: f32,
}

impl BiquadCoeffs {
    /// Identity (pass-through) coefficients.
    pub fn identity() -> Self {
        BiquadCoeffs {
            b0: 1.0,
            b1: 0.0,
            b2: 0.0,
            a1: 0.0,
            a2: 0.0,
        }
    }

    /// Design a filter at `freq_hz` with quality factor `q` for `sample_rate`.
    ///
    /// `freq_hz` is clamped into `(0, sample_rate/2)` and `q` to a sane
    /// minimum, so a UI sweeping a knob to its end stop cannot produce an
    /// unstable filter.
    pub fn design(kind: FilterKind, freq_hz: f32, q: f32, sample_rate: u32) -> Self {
        let fs = sample_rate as f32;
        let f = freq_hz.clamp(1.0, 0.499 * fs);
        let q = q.max(0.05);
        let w0 = core::f32::consts::TAU * f / fs;
        let (sin, cos) = w0.sin_cos();
        let alpha = sin / (2.0 * q);

        let (b0, b1, b2, a0, a1, a2) = match kind {
            FilterKind::Lowpass => {
                let b1 = 1.0 - cos;
                (b1 / 2.0, b1, b1 / 2.0, 1.0 + alpha, -2.0 * cos, 1.0 - alpha)
            }
            FilterKind::Highpass => {
                let b1 = -(1.0 + cos);
                let b0 = (1.0 + cos) / 2.0;
                (b0, b1, b0, 1.0 + alpha, -2.0 * cos, 1.0 - alpha)
            }
            FilterKind::Bandpass => (alpha, 0.0, -alpha, 1.0 + alpha, -2.0 * cos, 1.0 - alpha),
            FilterKind::Notch => (1.0, -2.0 * cos, 1.0, 1.0 + alpha, -2.0 * cos, 1.0 - alpha),
            FilterKind::Peaking { gain_db } => {
                let a = 10f32.powf(gain_db / 40.0);
                (
                    1.0 + alpha * a,
                    -2.0 * cos,
                    1.0 - alpha * a,
                    1.0 + alpha / a,
                    -2.0 * cos,
                    1.0 - alpha / a,
                )
            }
            FilterKind::LowShelf { gain_db } => {
                let a = 10f32.powf(gain_db / 40.0);
                let sq = 2.0 * a.sqrt() * alpha;
                (
                    a * ((a + 1.0) - (a - 1.0) * cos + sq),
                    2.0 * a * ((a - 1.0) - (a + 1.0) * cos),
                    a * ((a + 1.0) - (a - 1.0) * cos - sq),
                    (a + 1.0) + (a - 1.0) * cos + sq,
                    -2.0 * ((a - 1.0) + (a + 1.0) * cos),
                    (a + 1.0) + (a - 1.0) * cos - sq,
                )
            }
            FilterKind::HighShelf { gain_db } => {
                let a = 10f32.powf(gain_db / 40.0);
                let sq = 2.0 * a.sqrt() * alpha;
                (
                    a * ((a + 1.0) + (a - 1.0) * cos + sq),
                    -2.0 * a * ((a - 1.0) + (a + 1.0) * cos),
                    a * ((a + 1.0) + (a - 1.0) * cos - sq),
                    (a + 1.0) - (a - 1.0) * cos + sq,
                    2.0 * ((a - 1.0) - (a + 1.0) * cos),
                    (a + 1.0) - (a - 1.0) * cos - sq,
                )
            }
        };
        BiquadCoeffs {
            b0: b0 / a0,
            b1: b1 / a0,
            b2: b2 / a0,
            a1: a1 / a0,
            a2: a2 / a0,
        }
    }
}

/// A stereo biquad filter (independent state per channel), transposed
/// direct form II.
#[derive(Debug, Clone)]
pub struct Biquad {
    coeffs: BiquadCoeffs,
    // Two state variables per channel.
    z1: [f32; 2],
    z2: [f32; 2],
}

impl Biquad {
    /// Filter with the given coefficients.
    pub fn new(coeffs: BiquadCoeffs) -> Self {
        Biquad {
            coeffs,
            z1: [0.0; 2],
            z2: [0.0; 2],
        }
    }

    /// Convenience: design and construct in one step.
    pub fn design(kind: FilterKind, freq_hz: f32, q: f32, sample_rate: u32) -> Self {
        Self::new(BiquadCoeffs::design(kind, freq_hz, q, sample_rate))
    }

    /// Replace the coefficients, keeping state (for smooth knob sweeps).
    pub fn set_coeffs(&mut self, coeffs: BiquadCoeffs) {
        self.coeffs = coeffs;
    }

    /// Current coefficients.
    pub fn coeffs(&self) -> BiquadCoeffs {
        self.coeffs
    }

    /// Clear the filter state.
    pub fn reset(&mut self) {
        self.z1 = [0.0; 2];
        self.z2 = [0.0; 2];
    }

    /// Process one sample on `channel` (0 or 1).
    #[inline]
    pub fn tick(&mut self, channel: usize, x: f32) -> f32 {
        let c = &self.coeffs;
        let y = c.b0 * x + self.z1[channel];
        self.z1[channel] = c.b1 * x - c.a1 * y + self.z2[channel];
        self.z2[channel] = c.b2 * x - c.a2 * y;
        y
    }

    /// Filter a whole buffer in place.
    pub fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        let data = buf.samples_mut();
        for i in 0..frames {
            for ch in 0..channels {
                let idx = i * channels + ch;
                data[idx] = self.tick(ch, data[idx]);
            }
        }
    }
}

/// A cascade of identical-topology biquads applied in series, e.g. a 4th
/// order lowpass built from two 2nd-order sections.
#[derive(Debug, Clone)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

impl BiquadCascade {
    /// Cascade of `n` sections with the same design.
    pub fn design(kind: FilterKind, freq_hz: f32, q: f32, sample_rate: u32, n: usize) -> Self {
        BiquadCascade {
            sections: (0..n)
                .map(|_| Biquad::design(kind, freq_hz, q, sample_rate))
                .collect(),
        }
    }

    /// Number of second-order sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when the cascade has no sections (pass-through).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Clear all section states.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Filter a buffer in place through every section.
    pub fn process(&mut self, buf: &mut AudioBuf) {
        for s in &mut self.sections {
            s.process(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::{Oscillator, Waveform};

    /// Measure output RMS of a steady sine through a filter.
    fn response(kind: FilterKind, cutoff: f32, tone: f32) -> f32 {
        let mut osc = Oscillator::new(Waveform::Sine, tone, 44_100);
        let mut filt = Biquad::design(kind, cutoff, core::f32::consts::FRAC_1_SQRT_2, 44_100);
        // Let transients settle, then measure.
        let mut buf = AudioBuf::zeroed(1, 4096);
        for s in buf.samples_mut() {
            *s = osc.next_sample();
        }
        filt.process(&mut buf);
        let mut buf2 = AudioBuf::zeroed(1, 4096);
        for s in buf2.samples_mut() {
            *s = osc.next_sample();
        }
        filt.process(&mut buf2);
        buf2.rms() / core::f32::consts::FRAC_1_SQRT_2 // normalize: sine RMS = 1/sqrt(2)
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        let low = response(FilterKind::Lowpass, 1000.0, 100.0);
        let high = response(FilterKind::Lowpass, 1000.0, 10_000.0);
        assert!(low > 0.9, "low band gain {low}");
        assert!(high < 0.05, "high band gain {high}");
    }

    #[test]
    fn highpass_blocks_low_passes_high() {
        let low = response(FilterKind::Highpass, 1000.0, 100.0);
        let high = response(FilterKind::Highpass, 1000.0, 10_000.0);
        assert!(low < 0.05, "low band gain {low}");
        assert!(high > 0.9, "high band gain {high}");
    }

    #[test]
    fn bandpass_peaks_at_center() {
        let center = response(FilterKind::Bandpass, 1000.0, 1000.0);
        let off = response(FilterKind::Bandpass, 1000.0, 8000.0);
        assert!(center > off * 3.0, "center {center} vs off {off}");
    }

    #[test]
    fn notch_rejects_center() {
        let center = response(FilterKind::Notch, 1000.0, 1000.0);
        let off = response(FilterKind::Notch, 1000.0, 4000.0);
        assert!(center < 0.1, "notch center gain {center}");
        assert!(off > 0.8, "notch off-center gain {off}");
    }

    #[test]
    fn peaking_boosts_center() {
        let boosted = response(FilterKind::Peaking { gain_db: 12.0 }, 1000.0, 1000.0);
        assert!(
            boosted > 3.0 && boosted < 4.5,
            "peak gain {boosted} (expect ~4x)"
        );
    }

    #[test]
    fn shelves_shape_spectrum() {
        let lo = response(FilterKind::LowShelf { gain_db: -12.0 }, 1000.0, 100.0);
        let hi = response(FilterKind::LowShelf { gain_db: -12.0 }, 1000.0, 10_000.0);
        assert!(lo < 0.35 && hi > 0.8, "lowshelf lo {lo} hi {hi}");
        let lo = response(FilterKind::HighShelf { gain_db: 12.0 }, 1000.0, 100.0);
        let hi = response(FilterKind::HighShelf { gain_db: 12.0 }, 1000.0, 10_000.0);
        assert!(hi / lo > 3.0, "highshelf lo {lo} hi {hi}");
    }

    #[test]
    fn filter_is_stable_on_noise() {
        use crate::osc::NoiseSource;
        let mut noise = NoiseSource::new(3);
        let mut filt = Biquad::design(FilterKind::Lowpass, 200.0, 4.0, 44_100);
        let mut buf = AudioBuf::zeroed(2, 128);
        for _ in 0..200 {
            for s in buf.samples_mut() {
                *s = noise.next_sample();
            }
            filt.process(&mut buf);
            assert!(buf.is_finite());
            assert!(buf.peak() < 20.0, "unstable: peak {}", buf.peak());
        }
    }

    #[test]
    fn identity_coeffs_pass_through() {
        let mut filt = Biquad::new(BiquadCoeffs::identity());
        let mut buf = AudioBuf::from_fn(2, 16, |ch, i| (ch + i) as f32 * 0.01);
        let orig = buf.clone();
        filt.process(&mut buf);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn design_clamps_out_of_range_cutoff() {
        // Nyquist-exceeding cutoff must still give a finite, stable filter.
        let mut filt = Biquad::design(FilterKind::Lowpass, 96_000.0, 0.7, 44_100);
        let mut buf = AudioBuf::from_fn(1, 256, |_, i| if i == 0 { 1.0 } else { 0.0 });
        filt.process(&mut buf);
        assert!(buf.is_finite());
    }

    #[test]
    fn cascade_is_steeper_than_single() {
        let single = response(FilterKind::Lowpass, 1000.0, 4000.0);
        let mut osc = Oscillator::new(Waveform::Sine, 4000.0, 44_100);
        let mut casc = BiquadCascade::design(
            FilterKind::Lowpass,
            1000.0,
            core::f32::consts::FRAC_1_SQRT_2,
            44_100,
            3,
        );
        let mut buf = AudioBuf::zeroed(1, 4096);
        for s in buf.samples_mut() {
            *s = osc.next_sample();
        }
        casc.process(&mut buf);
        let mut buf2 = AudioBuf::zeroed(1, 4096);
        for s in buf2.samples_mut() {
            *s = osc.next_sample();
        }
        casc.process(&mut buf2);
        let triple = buf2.rms() / core::f32::consts::FRAC_1_SQRT_2;
        assert!(triple < single * 0.1, "single {single}, cascade {triple}");
    }

    #[test]
    fn reset_clears_state() {
        let mut filt = Biquad::design(FilterKind::Lowpass, 500.0, 0.7, 44_100);
        let mut buf = AudioBuf::from_fn(1, 64, |_, _| 1.0);
        filt.process(&mut buf);
        filt.reset();
        let mut impulse = AudioBuf::from_fn(1, 1, |_, _| 0.0);
        filt.process(&mut impulse);
        assert_eq!(impulse.sample(0, 0), 0.0);
    }
}
