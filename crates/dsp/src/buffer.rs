//! Interleaved floating-point audio buffers.

/// An interleaved audio buffer with 1 or 2 channels of `f32` samples.
///
/// This is the unit of data flowing along the edges of the DJ Star task
/// graph: each node owns one output buffer, reads the output buffers of its
/// predecessors, and the sound card consumes the final one per cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct AudioBuf {
    channels: usize,
    frames: usize,
    data: Vec<f32>,
}

impl AudioBuf {
    /// A silent buffer with `channels` channels and `frames` frames.
    ///
    /// # Panics
    /// Panics unless `channels` is 1 or 2, the only layouts DJ Star uses.
    pub fn zeroed(channels: usize, frames: usize) -> Self {
        assert!(
            channels == 1 || channels == 2,
            "only mono and stereo buffers are supported"
        );
        AudioBuf {
            channels,
            frames,
            data: vec![0.0; channels * frames],
        }
    }

    /// A silent stereo buffer of the engine's standard 128 frames.
    pub fn stereo_default() -> Self {
        Self::zeroed(2, crate::BUFFER_FRAMES)
    }

    /// Build a buffer by evaluating `f(channel, frame)`.
    pub fn from_fn(channels: usize, frames: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut buf = Self::zeroed(channels, frames);
        for i in 0..frames {
            for ch in 0..channels {
                buf.data[i * channels + ch] = f(ch, i);
            }
        }
        buf
    }

    /// Number of channels (1 or 2).
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of frames.
    #[inline]
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Interleaved samples.
    #[inline]
    pub fn samples(&self) -> &[f32] {
        &self.data
    }

    /// Mutable interleaved samples.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Sample of `channel` at `frame`.
    #[inline]
    pub fn sample(&self, channel: usize, frame: usize) -> f32 {
        self.data[frame * self.channels + channel]
    }

    /// Set the sample of `channel` at `frame`.
    #[inline]
    pub fn set_sample(&mut self, channel: usize, frame: usize, value: f32) {
        self.data[frame * self.channels + channel] = value;
    }

    /// Zero every sample without reallocating.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Copy the contents of `src`, which must have the same layout.
    ///
    /// # Panics
    /// Panics on layout mismatch; graph wiring guarantees matching layouts.
    pub fn copy_from(&mut self, src: &AudioBuf) {
        assert_eq!(self.channels, src.channels, "channel-count mismatch");
        assert_eq!(self.frames, src.frames, "frame-count mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Add `gain * src` into this buffer. When `src` is mono and `self` is
    /// stereo the mono signal is added to both channels; the symmetric
    /// downmix averages left and right.
    pub fn mix_add(&mut self, src: &AudioBuf, gain: f32) {
        assert_eq!(self.frames, src.frames, "frame-count mismatch");
        match (self.channels, src.channels) {
            (a, b) if a == b => {
                for (d, s) in self.data.iter_mut().zip(&src.data) {
                    *d += gain * s;
                }
            }
            (2, 1) => {
                for i in 0..self.frames {
                    let s = gain * src.data[i];
                    self.data[2 * i] += s;
                    self.data[2 * i + 1] += s;
                }
            }
            (1, 2) => {
                for i in 0..self.frames {
                    let s = 0.5 * (src.data[2 * i] + src.data[2 * i + 1]);
                    self.data[i] += gain * s;
                }
            }
            _ => unreachable!("buffers are mono or stereo"),
        }
    }

    /// Multiply every sample by `gain`.
    pub fn scale(&mut self, gain: f32) {
        for s in &mut self.data {
            *s *= gain;
        }
    }

    /// Root-mean-square level over all channels.
    pub fn rms(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f32 = self.data.iter().map(|s| s * s).sum();
        (sum / self.data.len() as f32).sqrt()
    }

    /// Largest absolute sample value.
    pub fn peak(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, s| m.max(s.abs()))
    }

    /// Sum of squared samples (signal energy); drives the data-dependent
    /// node cost model, mirroring the paper's observation that node run-time
    /// "additionally depends on the actual audio stream data" (§IV).
    pub fn energy(&self) -> f32 {
        self.data.iter().map(|s| s * s).sum()
    }

    /// True if every sample is finite (no NaN/inf escaped a filter).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|s| s.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_silent() {
        let b = AudioBuf::zeroed(2, 16);
        assert_eq!(b.channels(), 2);
        assert_eq!(b.frames(), 16);
        assert_eq!(b.samples().len(), 32);
        assert_eq!(b.rms(), 0.0);
        assert_eq!(b.peak(), 0.0);
    }

    #[test]
    #[should_panic(expected = "mono and stereo")]
    fn rejects_surround() {
        AudioBuf::zeroed(6, 16);
    }

    #[test]
    fn from_fn_interleaves() {
        let b = AudioBuf::from_fn(2, 3, |ch, i| (ch * 10 + i) as f32);
        assert_eq!(b.samples(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(b.sample(1, 2), 12.0);
    }

    #[test]
    fn mix_add_same_layout() {
        let mut a = AudioBuf::from_fn(2, 2, |_, _| 1.0);
        let b = AudioBuf::from_fn(2, 2, |_, _| 2.0);
        a.mix_add(&b, 0.5);
        assert!(a.samples().iter().all(|&s| (s - 2.0).abs() < 1e-6));
    }

    #[test]
    fn mix_add_mono_into_stereo() {
        let mut st = AudioBuf::zeroed(2, 2);
        let mono = AudioBuf::from_fn(1, 2, |_, i| i as f32 + 1.0);
        st.mix_add(&mono, 1.0);
        assert_eq!(st.sample(0, 0), 1.0);
        assert_eq!(st.sample(1, 0), 1.0);
        assert_eq!(st.sample(0, 1), 2.0);
    }

    #[test]
    fn mix_add_stereo_into_mono_averages() {
        let mut mono = AudioBuf::zeroed(1, 1);
        let mut st = AudioBuf::zeroed(2, 1);
        st.set_sample(0, 0, 1.0);
        st.set_sample(1, 0, 3.0);
        mono.mix_add(&st, 1.0);
        assert_eq!(mono.sample(0, 0), 2.0);
    }

    #[test]
    fn rms_and_peak_of_known_signal() {
        let b = AudioBuf::from_fn(1, 4, |_, i| if i % 2 == 0 { 1.0 } else { -1.0 });
        assert!((b.rms() - 1.0).abs() < 1e-6);
        assert_eq!(b.peak(), 1.0);
        assert!((b.energy() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn copy_and_clear() {
        let src = AudioBuf::from_fn(2, 4, |_, i| i as f32);
        let mut dst = AudioBuf::zeroed(2, 4);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.clear();
        assert_eq!(dst.peak(), 0.0);
    }

    #[test]
    fn finite_detects_nan() {
        let mut b = AudioBuf::zeroed(1, 2);
        assert!(b.is_finite());
        b.set_sample(0, 1, f32::NAN);
        assert!(!b.is_finite());
    }
}
