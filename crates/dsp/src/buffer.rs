//! Planar floating-point audio buffers.
//!
//! Samples are stored **deinterleaved** (planar): all of channel 0, then
//! all of channel 1, i.e. `data[ch * frames + i]`. Planar storage is what
//! the vectorized kernels want — each channel is one contiguous run of
//! lanes with no stride math per sample — and interleaving happens only at
//! the WAV/soundcard boundary ([`AudioBuf::extend_interleaved_into`]).
//!
//! A buffer either owns its samples (`Vec<f32>`) or is a *view* into a
//! [`crate::arena::BufferArena`] — one cache-aligned allocation shared by
//! every node output of an executor graph. Views are created once at graph
//! build time, so the audio hot path never touches the allocator.

use crate::simd::{self, F32x4};

/// How a buffer's samples are stored.
enum Storage {
    /// The buffer owns its samples.
    Owned(Vec<f32>),
    /// A fixed-size window into a [`crate::arena::BufferArena`].
    ///
    /// The arena outlives the view (enforced by the arena's only caller,
    /// the executor graph, which owns both and never lets a view escape
    /// its graph's lifetime).
    View { ptr: *mut f32, len: usize },
}

/// A planar audio buffer with 1 or 2 channels of `f32` samples.
///
/// This is the unit of data flowing along the edges of the DJ Star task
/// graph: each node owns one output buffer, reads the output buffers of its
/// predecessors, and the sound card consumes the final one per cycle.
pub struct AudioBuf {
    channels: usize,
    frames: usize,
    storage: Storage,
}

// SAFETY: `Owned` buffers are ordinary `Vec`s. `View` buffers alias only
// their own arena slot (slots never overlap), and access to a node's output
// buffer is serialized by the executor's epoch protocol: exactly one worker
// owns a node per cycle, and readers observe the owner's Release store
// before touching the buffer. Views never outlive the graph that owns the
// arena.
unsafe impl Send for AudioBuf {}
unsafe impl Sync for AudioBuf {}

impl AudioBuf {
    /// A silent buffer with `channels` channels and `frames` frames.
    ///
    /// # Panics
    /// Panics unless `channels` is 1 or 2, the only layouts DJ Star uses.
    pub fn zeroed(channels: usize, frames: usize) -> Self {
        assert!(
            channels == 1 || channels == 2,
            "only mono and stereo buffers are supported"
        );
        AudioBuf {
            channels,
            frames,
            storage: Storage::Owned(vec![0.0; channels * frames]),
        }
    }

    /// A silent stereo buffer of the engine's standard 128 frames.
    pub fn stereo_default() -> Self {
        Self::zeroed(2, crate::BUFFER_FRAMES)
    }

    /// A view over `channels * frames` floats starting at `ptr`.
    ///
    /// # Safety
    /// `ptr` must stay valid (and unaliased by other views) for the view's
    /// whole lifetime; only [`crate::arena::BufferArena`] calls this.
    pub(crate) unsafe fn from_raw_view(ptr: *mut f32, channels: usize, frames: usize) -> Self {
        assert!(
            channels == 1 || channels == 2,
            "only mono and stereo buffers are supported"
        );
        AudioBuf {
            channels,
            frames,
            storage: Storage::View {
                ptr,
                len: channels * frames,
            },
        }
    }

    /// Build a buffer by evaluating `f(channel, frame)`.
    ///
    /// `f` is called in frame-major order — `f(0, 0), f(1, 0), f(0, 1), …`
    /// — the order stateful closures (oscillators, noise sources) have
    /// always observed. Hot code should write channel slices directly via
    /// [`AudioBuf::channel_mut`] instead of paying a closure call per
    /// sample.
    pub fn from_fn(channels: usize, frames: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut buf = Self::zeroed(channels, frames);
        let data = buf.as_mut_slice();
        for i in 0..frames {
            for ch in 0..channels {
                data[ch * frames + i] = f(ch, i);
            }
        }
        buf
    }

    #[inline]
    fn as_slice(&self) -> &[f32] {
        match &self.storage {
            Storage::Owned(v) => v,
            // SAFETY: see the Send/Sync rationale — the arena outlives the
            // view and slots never overlap.
            Storage::View { ptr, len } => unsafe { core::slice::from_raw_parts(*ptr, *len) },
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [f32] {
        match &mut self.storage {
            Storage::Owned(v) => v,
            // SAFETY: as above, plus `&mut self` makes this the only live
            // reference derived from this view.
            Storage::View { ptr, len } => unsafe { core::slice::from_raw_parts_mut(*ptr, *len) },
        }
    }

    /// True when this buffer is an arena view rather than an owner.
    #[inline]
    pub fn is_view(&self) -> bool {
        matches!(self.storage, Storage::View { .. })
    }

    /// Number of channels (1 or 2).
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of frames.
    #[inline]
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// All samples, planar: channel 0's frames, then channel 1's.
    #[inline]
    pub fn samples(&self) -> &[f32] {
        self.as_slice()
    }

    /// Mutable planar samples.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }

    /// The contiguous samples of one channel.
    #[inline]
    pub fn channel(&self, channel: usize) -> &[f32] {
        let frames = self.frames;
        &self.as_slice()[channel * frames..(channel + 1) * frames]
    }

    /// The mutable contiguous samples of one channel.
    #[inline]
    pub fn channel_mut(&mut self, channel: usize) -> &mut [f32] {
        let frames = self.frames;
        &mut self.as_mut_slice()[channel * frames..(channel + 1) * frames]
    }

    /// Both channel planes at once; mono buffers return an empty right
    /// plane.
    #[inline]
    pub fn as_planar_slices(&self) -> (&[f32], &[f32]) {
        let frames = self.frames;
        if self.channels == 2 {
            self.as_slice().split_at(frames)
        } else {
            (self.as_slice(), &[])
        }
    }

    /// Both mutable channel planes at once; mono buffers return an empty
    /// right plane.
    #[inline]
    pub fn as_planar_slices_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        let frames = self.frames;
        if self.channels == 2 {
            self.as_mut_slice().split_at_mut(frames)
        } else {
            (self.as_mut_slice(), &mut [])
        }
    }

    /// Iterate frame ranges in chunks of at most `chunk` frames, yielding
    /// the matching slice of each channel plane (the right plane is empty
    /// for mono). Kernels that need per-frame cross-channel state (the
    /// limiter's envelope, the compressor's RMS) use this to stage work
    /// through fixed stack arrays without per-sample `(channel, frame)`
    /// indexing.
    pub fn frames_chunks_mut(
        &mut self,
        chunk: usize,
    ) -> impl Iterator<Item = (&mut [f32], &mut [f32])> {
        assert!(chunk > 0, "chunk must be positive");
        let channels = self.channels;
        let (l, r) = self.as_planar_slices_mut();
        let mut right = r.chunks_mut(chunk);
        l.chunks_mut(chunk).map(move |lc| {
            let rc = if channels == 2 {
                right.next().expect("planes have equal length")
            } else {
                &mut []
            };
            (lc, rc)
        })
    }

    /// Sample of `channel` at `frame`.
    #[inline]
    pub fn sample(&self, channel: usize, frame: usize) -> f32 {
        self.as_slice()[channel * self.frames + frame]
    }

    /// Set the sample of `channel` at `frame`.
    #[inline]
    pub fn set_sample(&mut self, channel: usize, frame: usize, value: f32) {
        let frames = self.frames;
        self.as_mut_slice()[channel * frames + frame] = value;
    }

    /// Zero every sample without reallocating.
    pub fn clear(&mut self) {
        self.as_mut_slice().fill(0.0);
    }

    /// Copy the contents of `src`, which must have the same layout.
    ///
    /// # Panics
    /// Panics on layout mismatch; graph wiring guarantees matching layouts.
    pub fn copy_from(&mut self, src: &AudioBuf) {
        assert_eq!(self.channels, src.channels, "channel-count mismatch");
        assert_eq!(self.frames, src.frames, "frame-count mismatch");
        self.as_mut_slice().copy_from_slice(src.as_slice());
    }

    /// Append this buffer's frames to `sink` in interleaved order
    /// (`L0 R0 L1 R1 …`) — the WAV/soundcard boundary format.
    pub fn extend_interleaved_into(&self, sink: &mut Vec<f32>) {
        match self.channels {
            1 => sink.extend_from_slice(self.as_slice()),
            _ => {
                let (l, r) = self.as_planar_slices();
                sink.reserve(self.frames * 2);
                for (a, b) in l.iter().zip(r) {
                    sink.push(*a);
                    sink.push(*b);
                }
            }
        }
    }

    /// Add `gain * src` into this buffer. When `src` is mono and `self` is
    /// stereo the mono signal is added to both channels; the symmetric
    /// downmix averages left and right.
    pub fn mix_add(&mut self, src: &AudioBuf, gain: f32) {
        assert_eq!(self.frames, src.frames, "frame-count mismatch");
        if simd::wide_enabled() {
            self.mix_add_wide(src, gain);
        } else {
            self.mix_add_scalar(src, gain);
        }
    }

    /// Scalar reference for [`AudioBuf::mix_add`]; bit-identical to the
    /// vector path (same per-element operations).
    pub fn mix_add_scalar(&mut self, src: &AudioBuf, gain: f32) {
        assert_eq!(self.frames, src.frames, "frame-count mismatch");
        match (self.channels, src.channels) {
            (a, b) if a == b => {
                for (d, s) in self.as_mut_slice().iter_mut().zip(src.as_slice()) {
                    *d += gain * s;
                }
            }
            (2, 1) => {
                let mono = src.channel(0);
                let (l, r) = self.as_planar_slices_mut();
                for i in 0..mono.len() {
                    let s = gain * mono[i];
                    l[i] += s;
                    r[i] += s;
                }
            }
            (1, 2) => {
                let (sl, sr) = src.as_planar_slices();
                let d = self.channel_mut(0);
                for i in 0..d.len() {
                    let s = 0.5 * (sl[i] + sr[i]);
                    d[i] += gain * s;
                }
            }
            _ => unreachable!("buffers are mono or stereo"),
        }
    }

    fn mix_add_wide(&mut self, src: &AudioBuf, gain: f32) {
        let g = F32x4::splat(gain);
        match (self.channels, src.channels) {
            (a, b) if a == b => {
                axpy_wide(self.as_mut_slice(), src.as_slice(), g, gain);
            }
            (2, 1) => {
                let mono = src.channel(0);
                let (l, r) = self.as_planar_slices_mut();
                let n = mono.len() & !3;
                let mut i = 0;
                while i < n {
                    let s = g.mul(F32x4::load(&mono[i..]));
                    F32x4::load(&l[i..]).add(s).store(&mut l[i..]);
                    F32x4::load(&r[i..]).add(s).store(&mut r[i..]);
                    i += 4;
                }
                for i in n..mono.len() {
                    let s = gain * mono[i];
                    l[i] += s;
                    r[i] += s;
                }
            }
            (1, 2) => {
                let (sl, sr) = src.as_planar_slices();
                let d = self.channel_mut(0);
                let half = F32x4::splat(0.5);
                let n = d.len() & !3;
                let mut i = 0;
                while i < n {
                    let s = half.mul(F32x4::load(&sl[i..]).add(F32x4::load(&sr[i..])));
                    F32x4::load(&d[i..]).add(g.mul(s)).store(&mut d[i..]);
                    i += 4;
                }
                for i in n..d.len() {
                    let s = 0.5 * (sl[i] + sr[i]);
                    d[i] += gain * s;
                }
            }
            _ => unreachable!("buffers are mono or stereo"),
        }
    }

    /// Multiply every sample by `gain`.
    pub fn scale(&mut self, gain: f32) {
        if simd::wide_enabled() {
            scale_slice_wide(self.as_mut_slice(), gain);
        } else {
            self.scale_scalar(gain);
        }
    }

    /// Scalar reference for [`AudioBuf::scale`].
    pub fn scale_scalar(&mut self, gain: f32) {
        for s in self.as_mut_slice() {
            *s *= gain;
        }
    }

    /// Root-mean-square level over all channels.
    pub fn rms(&self) -> f32 {
        let data = self.as_slice();
        if data.is_empty() {
            return 0.0;
        }
        let sum = if simd::wide_enabled() {
            sum_squares_wide(data)
        } else {
            data.iter().map(|s| s * s).sum()
        };
        (sum / data.len() as f32).sqrt()
    }

    /// Scalar reference for [`AudioBuf::rms`].
    pub fn rms_scalar(&self) -> f32 {
        let data = self.as_slice();
        if data.is_empty() {
            return 0.0;
        }
        let sum: f32 = data.iter().map(|s| s * s).sum();
        (sum / data.len() as f32).sqrt()
    }

    /// Largest absolute sample value.
    pub fn peak(&self) -> f32 {
        let data = self.as_slice();
        if simd::wide_enabled() && data.len() >= 4 {
            let mut acc = F32x4::zero();
            let n = data.len() & !3;
            let mut i = 0;
            while i < n {
                acc = acc.max(F32x4::load(&data[i..]).abs());
                i += 4;
            }
            let mut m = acc.hmax();
            for s in &data[n..] {
                m = m.max(s.abs());
            }
            m
        } else {
            self.peak_scalar()
        }
    }

    /// Scalar reference for [`AudioBuf::peak`].
    pub fn peak_scalar(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |m, s| m.max(s.abs()))
    }

    /// Sum of squared samples (signal energy); drives the data-dependent
    /// node cost model, mirroring the paper's observation that node run-time
    /// "additionally depends on the actual audio stream data" (§IV).
    pub fn energy(&self) -> f32 {
        let data = self.as_slice();
        if simd::wide_enabled() {
            sum_squares_wide(data)
        } else {
            self.energy_scalar()
        }
    }

    /// Scalar reference for [`AudioBuf::energy`].
    pub fn energy_scalar(&self) -> f32 {
        self.as_slice().iter().map(|s| s * s).sum()
    }

    /// True if every sample is finite (no NaN/inf escaped a filter).
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|s| s.is_finite())
    }
}

/// `dst[i] += g * src[i]` over equal-length slices, 4 lanes at a time.
fn axpy_wide(dst: &mut [f32], src: &[f32], g: F32x4, gain: f32) {
    let n = dst.len() & !3;
    let mut i = 0;
    while i < n {
        F32x4::load(&dst[i..])
            .add(g.mul(F32x4::load(&src[i..])))
            .store(&mut dst[i..]);
        i += 4;
    }
    for i in n..dst.len() {
        dst[i] += gain * src[i];
    }
}

/// `s[i] *= gain` over a slice, 4 lanes at a time.
pub(crate) fn scale_slice_wide(data: &mut [f32], gain: f32) {
    let g = F32x4::splat(gain);
    let n = data.len() & !3;
    let mut i = 0;
    while i < n {
        g.mul(F32x4::load(&data[i..])).store(&mut data[i..]);
        i += 4;
    }
    for s in &mut data[n..] {
        *s *= gain;
    }
}

/// Four-accumulator sum of squares (reassociated; reductions are not part
/// of the bit-exactness contract, only within-1e-6 agreement).
fn sum_squares_wide(data: &[f32]) -> f32 {
    let mut acc = F32x4::zero();
    let n = data.len() & !3;
    let mut i = 0;
    while i < n {
        let v = F32x4::load(&data[i..]);
        acc = acc.add(v.mul(v));
        i += 4;
    }
    let mut sum = acc.hsum();
    for s in &data[n..] {
        sum += s * s;
    }
    sum
}

impl Clone for AudioBuf {
    /// Cloning always yields an *owned* buffer (views deep-copy).
    fn clone(&self) -> Self {
        AudioBuf {
            channels: self.channels,
            frames: self.frames,
            storage: Storage::Owned(self.as_slice().to_vec()),
        }
    }
}

impl PartialEq for AudioBuf {
    fn eq(&self, other: &Self) -> bool {
        self.channels == other.channels
            && self.frames == other.frames
            && self.as_slice() == other.as_slice()
    }
}

impl core::fmt::Debug for AudioBuf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AudioBuf")
            .field("channels", &self.channels)
            .field("frames", &self.frames)
            .field("view", &self.is_view())
            .field("data", &self.as_slice())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_silent() {
        let b = AudioBuf::zeroed(2, 16);
        assert_eq!(b.channels(), 2);
        assert_eq!(b.frames(), 16);
        assert_eq!(b.samples().len(), 32);
        assert_eq!(b.rms(), 0.0);
        assert_eq!(b.peak(), 0.0);
    }

    #[test]
    #[should_panic(expected = "mono and stereo")]
    fn rejects_surround() {
        AudioBuf::zeroed(6, 16);
    }

    #[test]
    fn from_fn_is_planar() {
        let b = AudioBuf::from_fn(2, 3, |ch, i| (ch * 10 + i) as f32);
        assert_eq!(b.samples(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(b.sample(1, 2), 12.0);
        assert_eq!(b.channel(0), &[0.0, 1.0, 2.0]);
        assert_eq!(b.channel(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_fn_calls_in_frame_major_order() {
        // Stateful closures (oscillators, noise) rely on the historical
        // call order f(0,0), f(1,0), f(0,1), ...
        let mut n = 0;
        let b = AudioBuf::from_fn(2, 3, |_, _| {
            n += 1;
            n as f32
        });
        assert_eq!(b.sample(0, 0), 1.0);
        assert_eq!(b.sample(1, 0), 2.0);
        assert_eq!(b.sample(0, 1), 3.0);
        assert_eq!(b.sample(1, 2), 6.0);
    }

    #[test]
    fn planar_slices_and_chunks() {
        let mut b = AudioBuf::from_fn(2, 6, |ch, i| (ch * 100 + i) as f32);
        {
            let (l, r) = b.as_planar_slices();
            assert_eq!(l, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
            assert_eq!(r[0], 100.0);
        }
        let chunks: Vec<(usize, usize)> = b
            .frames_chunks_mut(4)
            .map(|(l, r)| (l.len(), r.len()))
            .collect();
        assert_eq!(chunks, vec![(4, 4), (2, 2)]);
        let mut mono = AudioBuf::zeroed(1, 5);
        let chunks: Vec<(usize, usize)> = mono
            .frames_chunks_mut(4)
            .map(|(l, r)| (l.len(), r.len()))
            .collect();
        assert_eq!(chunks, vec![(4, 0), (1, 0)]);
    }

    #[test]
    fn interleave_at_the_boundary() {
        let b = AudioBuf::from_fn(2, 3, |ch, i| (ch * 10 + i) as f32);
        let mut sink = Vec::new();
        b.extend_interleaved_into(&mut sink);
        assert_eq!(sink, vec![0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        let mono = AudioBuf::from_fn(1, 2, |_, i| i as f32);
        sink.clear();
        mono.extend_interleaved_into(&mut sink);
        assert_eq!(sink, vec![0.0, 1.0]);
    }

    #[test]
    fn mix_add_same_layout() {
        let mut a = AudioBuf::from_fn(2, 2, |_, _| 1.0);
        let b = AudioBuf::from_fn(2, 2, |_, _| 2.0);
        a.mix_add(&b, 0.5);
        assert!(a.samples().iter().all(|&s| (s - 2.0).abs() < 1e-6));
    }

    #[test]
    fn mix_add_mono_into_stereo() {
        let mut st = AudioBuf::zeroed(2, 2);
        let mono = AudioBuf::from_fn(1, 2, |_, i| i as f32 + 1.0);
        st.mix_add(&mono, 1.0);
        assert_eq!(st.sample(0, 0), 1.0);
        assert_eq!(st.sample(1, 0), 1.0);
        assert_eq!(st.sample(0, 1), 2.0);
    }

    #[test]
    fn mix_add_stereo_into_mono_averages() {
        let mut mono = AudioBuf::zeroed(1, 1);
        let mut st = AudioBuf::zeroed(2, 1);
        st.set_sample(0, 0, 1.0);
        st.set_sample(1, 0, 3.0);
        mono.mix_add(&st, 1.0);
        assert_eq!(mono.sample(0, 0), 2.0);
    }

    #[test]
    fn wide_mix_matches_scalar_exactly() {
        // Odd frame counts exercise the non-lane-multiple tails.
        for (dc, sc, frames) in [(2, 2, 19), (2, 1, 19), (1, 2, 19), (1, 1, 4), (2, 2, 3)] {
            let src = AudioBuf::from_fn(sc, frames, |ch, i| ((ch + 1) * (i + 3)) as f32 * 0.013);
            let mut a = AudioBuf::from_fn(dc, frames, |ch, i| (ch as f32 - i as f32) * 0.07);
            let mut b = a.clone();
            a.mix_add(&src, 0.8);
            b.mix_add_scalar(&src, 0.8);
            assert_eq!(a.samples(), b.samples(), "{dc}ch += {sc}ch x {frames}");
        }
    }

    #[test]
    fn wide_scale_matches_scalar_exactly() {
        let mut a = AudioBuf::from_fn(2, 21, |ch, i| (ch + i) as f32 * 0.31);
        let mut b = a.clone();
        a.scale(0.77);
        b.scale_scalar(0.77);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn reductions_agree_with_scalar() {
        let b = AudioBuf::from_fn(2, 37, |ch, i| ((ch * 37 + i) as f32 * 0.7).sin());
        assert_eq!(b.peak(), b.peak_scalar());
        assert!((b.rms() - b.rms_scalar()).abs() < 1e-6);
        assert!((b.energy() - b.energy_scalar()).abs() < 1e-4);
    }

    #[test]
    fn rms_and_peak_of_known_signal() {
        let b = AudioBuf::from_fn(1, 4, |_, i| if i % 2 == 0 { 1.0 } else { -1.0 });
        assert!((b.rms() - 1.0).abs() < 1e-6);
        assert_eq!(b.peak(), 1.0);
        assert!((b.energy() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn copy_and_clear() {
        let src = AudioBuf::from_fn(2, 4, |_, i| i as f32);
        let mut dst = AudioBuf::zeroed(2, 4);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.clear();
        assert_eq!(dst.peak(), 0.0);
    }

    #[test]
    fn finite_detects_nan() {
        let mut b = AudioBuf::zeroed(1, 2);
        assert!(b.is_finite());
        b.set_sample(0, 1, f32::NAN);
        assert!(!b.is_finite());
    }

    #[test]
    fn clone_of_view_is_owned() {
        let arena = crate::arena::BufferArena::new(&[(2, 8)]);
        // SAFETY: arena outlives the view within this test.
        let mut v = unsafe { arena.view(0) };
        assert!(v.is_view());
        v.set_sample(1, 3, 0.5);
        let c = v.clone();
        assert!(!c.is_view());
        assert_eq!(c, v);
    }
}
