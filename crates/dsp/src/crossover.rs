//! Linkwitz–Riley 4th-order crossover: splits audio into frequency bands
//! that sum back to a flat (allpass) response.
//!
//! The SP ("sample preprocess") nodes of the DJ Star graph form a per-deck
//! filterbank whose outputs the first effect node recombines (Fig. 3). For
//! that recombination to be transparent, the band filters must be a proper
//! crossover — LR4 (two cascaded 2nd-order Butterworth sections per side)
//! is the standard choice: each split's low + high outputs sum to an
//! allpass, so any tree of splits reconstructs the input spectrum flat.

use crate::biquad::{Biquad, FilterKind};
use crate::buffer::AudioBuf;

/// One LR4 two-way split (low side + high side, each a double Butterworth).
#[derive(Debug, Clone)]
pub struct Lr4Split {
    low: [Biquad; 2],
    high: [Biquad; 2],
}

/// Butterworth Q for each cascaded section of an LR4 half.
const BUTTERWORTH_Q: f32 = core::f32::consts::FRAC_1_SQRT_2;

impl Lr4Split {
    /// A split at `freq_hz`.
    pub fn new(freq_hz: f32, sample_rate: u32) -> Self {
        let mk = |kind| Biquad::design(kind, freq_hz, BUTTERWORTH_Q, sample_rate);
        Lr4Split {
            low: [mk(FilterKind::Lowpass), mk(FilterKind::Lowpass)],
            high: [mk(FilterKind::Highpass), mk(FilterKind::Highpass)],
        }
    }

    /// Split `input` into `low_out` and `high_out` (all same layout).
    pub fn split(&mut self, input: &AudioBuf, low_out: &mut AudioBuf, high_out: &mut AudioBuf) {
        low_out.copy_from(input);
        for s in &mut self.low {
            s.process(low_out);
        }
        high_out.copy_from(input);
        for s in &mut self.high {
            s.process(high_out);
        }
    }

    /// Clear filter state.
    pub fn reset(&mut self) {
        for s in self.low.iter_mut().chain(self.high.iter_mut()) {
            s.reset();
        }
    }
}

/// A 4-band crossover built from three LR4 splits in a tree:
/// `in → [low | rest]`, `rest → [mid-low | rest2]`, `rest2 → [mid-high | high]`.
///
/// Because every LR4 split sums allpass-flat, the four bands sum back to
/// the input magnitude (with the tree's phase rotation).
#[derive(Debug, Clone)]
pub struct FourBandCrossover {
    splits: [Lr4Split; 3],
    scratch: [AudioBuf; 2],
}

impl FourBandCrossover {
    /// Crossover at the three ascending frequencies `f1 < f2 < f3`.
    ///
    /// # Panics
    /// Panics if the frequencies are not strictly ascending.
    pub fn new(
        f1: f32,
        f2: f32,
        f3: f32,
        sample_rate: u32,
        channels: usize,
        frames: usize,
    ) -> Self {
        assert!(f1 < f2 && f2 < f3, "crossover points must ascend");
        FourBandCrossover {
            splits: [
                Lr4Split::new(f1, sample_rate),
                Lr4Split::new(f2, sample_rate),
                Lr4Split::new(f3, sample_rate),
            ],
            scratch: [
                AudioBuf::zeroed(channels, frames),
                AudioBuf::zeroed(channels, frames),
            ],
        }
    }

    /// The standard DJ Star SP filterbank: 200 / 1200 / 5000 Hz.
    pub fn djstar_default(channels: usize, frames: usize) -> Self {
        Self::new(
            200.0,
            1_200.0,
            5_000.0,
            crate::SAMPLE_RATE,
            channels,
            frames,
        )
    }

    /// Split `input` into the four `bands` (lowest first).
    pub fn split(&mut self, input: &AudioBuf, bands: &mut [AudioBuf; 4]) {
        let [scratch_a, scratch_b] = &mut self.scratch;
        // in → band0 | rest (scratch_a)
        self.splits[0].split(input, &mut bands[0], scratch_a);
        // rest → band1 | rest2 (scratch_b)
        self.splits[1].split(scratch_a, &mut bands[1], scratch_b);
        // rest2 → band2 | band3
        let (b2, b3) = bands.split_at_mut(3);
        self.splits[2].split(scratch_b, &mut b2[2], &mut b3[0]);
    }

    /// Clear all filter state.
    pub fn reset(&mut self) {
        for s in &mut self.splits {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::{Oscillator, Waveform};

    /// Band-sum magnitude at `tone` Hz after settling.
    fn reconstruction_gain(tone: f32) -> f32 {
        let mut xo = FourBandCrossover::djstar_default(1, 512);
        let mut osc = Oscillator::new(Waveform::Sine, tone, 44_100);
        let mut bands = [
            AudioBuf::zeroed(1, 512),
            AudioBuf::zeroed(1, 512),
            AudioBuf::zeroed(1, 512),
            AudioBuf::zeroed(1, 512),
        ];
        let mut sum = AudioBuf::zeroed(1, 512);
        let mut gain = 0.0;
        for block in 0..24 {
            let input = AudioBuf::from_fn(1, 512, |_, _| osc.next_sample());
            xo.split(&input, &mut bands);
            sum.clear();
            for b in &bands {
                sum.mix_add(b, 1.0);
            }
            if block >= 16 {
                gain = sum.rms() / core::f32::consts::FRAC_1_SQRT_2;
            }
        }
        gain
    }

    #[test]
    fn band_sum_is_flat_across_the_spectrum() {
        for tone in [
            50.0, 120.0, 200.0, 500.0, 1_200.0, 3_000.0, 5_000.0, 9_000.0, 14_000.0,
        ] {
            let g = reconstruction_gain(tone);
            assert!(
                (0.85..=1.15).contains(&g),
                "reconstruction at {tone} Hz: {g}"
            );
        }
    }

    #[test]
    fn bands_are_selective() {
        // A 60 Hz tone lands in band 0; a 10 kHz tone in band 3.
        let mut xo = FourBandCrossover::djstar_default(1, 512);
        let mut bands = [
            AudioBuf::zeroed(1, 512),
            AudioBuf::zeroed(1, 512),
            AudioBuf::zeroed(1, 512),
            AudioBuf::zeroed(1, 512),
        ];
        let mut osc = Oscillator::new(Waveform::Sine, 60.0, 44_100);
        for _ in 0..20 {
            let input = AudioBuf::from_fn(1, 512, |_, _| osc.next_sample());
            xo.split(&input, &mut bands);
        }
        assert!(
            bands[0].rms() > bands[3].rms() * 10.0,
            "60 Hz leaked upward"
        );

        let mut xo = FourBandCrossover::djstar_default(1, 512);
        let mut osc = Oscillator::new(Waveform::Sine, 10_000.0, 44_100);
        for _ in 0..20 {
            let input = AudioBuf::from_fn(1, 512, |_, _| osc.next_sample());
            xo.split(&input, &mut bands);
        }
        assert!(
            bands[3].rms() > bands[0].rms() * 10.0,
            "10 kHz leaked downward"
        );
    }

    #[test]
    fn lr4_two_way_sums_flat_at_crossover() {
        // The hardest point is the crossover frequency itself (-6 dB per
        // side, in phase → exact reconstruction for LR).
        let mut split = Lr4Split::new(1_000.0, 44_100);
        let mut osc = Oscillator::new(Waveform::Sine, 1_000.0, 44_100);
        let mut lo = AudioBuf::zeroed(1, 512);
        let mut hi = AudioBuf::zeroed(1, 512);
        let mut gain = 0.0;
        for block in 0..24 {
            let input = AudioBuf::from_fn(1, 512, |_, _| osc.next_sample());
            split.split(&input, &mut lo, &mut hi);
            let mut sum = lo.clone();
            sum.mix_add(&hi, 1.0);
            if block >= 16 {
                gain = sum.rms() / core::f32::consts::FRAC_1_SQRT_2;
            }
        }
        assert!((gain - 1.0).abs() < 0.05, "crossover-point gain {gain}");
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn rejects_unordered_crossover_points() {
        FourBandCrossover::new(1_000.0, 500.0, 5_000.0, 44_100, 1, 64);
    }
}
