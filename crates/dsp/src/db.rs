//! Decibel/linear conversions and pan laws.

/// Convert a gain in decibels to a linear amplitude factor.
#[inline]
pub fn db_to_gain(db: f32) -> f32 {
    10f32.powf(db / 20.0)
}

/// Convert a linear amplitude factor to decibels. Zero or negative input
/// saturates to -120 dB, the engine's silence floor.
#[inline]
pub fn gain_to_db(gain: f32) -> f32 {
    if gain <= 0.0 {
        -120.0
    } else {
        (20.0 * gain.log10()).max(-120.0)
    }
}

/// Equal-power pan law. `pos` ranges from -1 (hard left) to +1 (hard right);
/// returns `(left_gain, right_gain)` with `l² + r² = 1`.
#[inline]
pub fn pan_gains(pos: f32) -> (f32, f32) {
    let pos = pos.clamp(-1.0, 1.0);
    let theta = (pos + 1.0) * core::f32::consts::FRAC_PI_4;
    (theta.cos(), theta.sin())
}

/// Equal-power crossfade between two sources. `x` ranges 0 (all `a`) to 1
/// (all `b`); returns `(gain_a, gain_b)`. This is the law of the DJ mixer's
/// crossfader.
#[inline]
pub fn crossfade_gains(x: f32) -> (f32, f32) {
    let x = x.clamp(0.0, 1.0);
    let theta = x * core::f32::consts::FRAC_PI_2;
    (theta.cos(), theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for db in [-60.0f32, -6.0, 0.0, 6.0, 12.0] {
            let back = gain_to_db(db_to_gain(db));
            assert!((back - db).abs() < 1e-3, "{db} -> {back}");
        }
    }

    #[test]
    fn zero_db_is_unity() {
        assert!((db_to_gain(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn silence_floor() {
        assert_eq!(gain_to_db(0.0), -120.0);
        assert_eq!(gain_to_db(-1.0), -120.0);
    }

    #[test]
    fn pan_is_equal_power() {
        for pos in [-1.0f32, -0.5, 0.0, 0.5, 1.0] {
            let (l, r) = pan_gains(pos);
            assert!((l * l + r * r - 1.0).abs() < 1e-5, "pos {pos}");
        }
        let (l, r) = pan_gains(-1.0);
        assert!((l - 1.0).abs() < 1e-6 && r.abs() < 1e-6);
        let (l, r) = pan_gains(0.0);
        assert!((l - r).abs() < 1e-6);
    }

    #[test]
    fn crossfade_endpoints() {
        let (a, b) = crossfade_gains(0.0);
        assert!((a - 1.0).abs() < 1e-6 && b.abs() < 1e-6);
        let (a, b) = crossfade_gains(1.0);
        assert!(a.abs() < 1e-6 && (b - 1.0).abs() < 1e-6);
        let (a, b) = crossfade_gains(0.5);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn crossfade_clamps() {
        assert_eq!(crossfade_gains(2.0), crossfade_gains(1.0));
        assert_eq!(crossfade_gains(-1.0), crossfade_gains(0.0));
    }
}
