//! Fractional delay lines, the backbone of the time-based effects
//! (delay/echo, flanger, chorus).

/// A circular mono delay line with linear-interpolated fractional reads.
#[derive(Debug, Clone)]
pub struct DelayLine {
    buf: Vec<f32>,
    write: usize,
}

impl DelayLine {
    /// A delay line holding up to `capacity` samples of history.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "delay line needs capacity");
        DelayLine {
            buf: vec![0.0; capacity],
            write: 0,
        }
    }

    /// Maximum delay in samples.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Push one sample of input.
    #[inline]
    pub fn push(&mut self, x: f32) {
        self.buf[self.write] = x;
        self.write = (self.write + 1) % self.buf.len();
    }

    /// Read the sample `delay` samples in the past (integer tap).
    /// `delay` is clamped to the capacity; `delay = 1` reads the most
    /// recently pushed sample.
    #[inline]
    pub fn read(&self, delay: usize) -> f32 {
        let n = self.buf.len();
        let d = delay.clamp(1, n);
        let idx = (self.write + n - d) % n;
        self.buf[idx]
    }

    /// Read a fractional tap with linear interpolation.
    /// `delay` is clamped to `[1, capacity - 1]`.
    #[inline]
    pub fn read_frac(&self, delay: f32) -> f32 {
        let max = (self.buf.len() - 1) as f32;
        let d = delay.clamp(1.0, max);
        let d0 = d.floor();
        let frac = d - d0;
        let a = self.read(d0 as usize);
        let b = self.read(d0 as usize + 1);
        a * (1.0 - frac) + b * frac
    }

    /// Zero the whole history.
    pub fn clear(&mut self) {
        self.buf.fill(0.0);
        self.write = 0;
    }
}

/// A pair of delay lines for stereo processing.
#[derive(Debug, Clone)]
pub struct StereoDelayLine {
    lines: [DelayLine; 2],
}

impl StereoDelayLine {
    /// Stereo delay with `capacity` samples of history per channel.
    pub fn new(capacity: usize) -> Self {
        StereoDelayLine {
            lines: [DelayLine::new(capacity), DelayLine::new(capacity)],
        }
    }

    /// The delay line of `channel` (0 or 1).
    pub fn channel(&mut self, channel: usize) -> &mut DelayLine {
        &mut self.lines[channel]
    }

    /// Immutable access to channel line (for reads).
    pub fn channel_ref(&self, channel: usize) -> &DelayLine {
        &self.lines[channel]
    }

    /// Clear both channels.
    pub fn clear(&mut self) {
        for l in &mut self.lines {
            l.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_by_exact_samples() {
        let mut dl = DelayLine::new(8);
        for i in 0..8 {
            dl.push(i as f32);
        }
        assert_eq!(dl.read(1), 7.0);
        assert_eq!(dl.read(3), 5.0);
        assert_eq!(dl.read(8), 0.0);
    }

    #[test]
    fn wraps_around() {
        let mut dl = DelayLine::new(4);
        for i in 0..10 {
            dl.push(i as f32);
        }
        assert_eq!(dl.read(1), 9.0);
        assert_eq!(dl.read(4), 6.0);
    }

    #[test]
    fn fractional_read_interpolates() {
        let mut dl = DelayLine::new(8);
        for i in 0..8 {
            dl.push(i as f32);
        }
        // Between delay 2 (=6.0) and delay 3 (=5.0).
        let v = dl.read_frac(2.5);
        assert!((v - 5.5).abs() < 1e-6, "v = {v}");
    }

    #[test]
    fn read_clamps_delay() {
        let mut dl = DelayLine::new(4);
        dl.push(1.0);
        dl.push(2.0);
        assert_eq!(dl.read(0), dl.read(1));
        assert_eq!(dl.read(100), dl.read(4));
        let f = dl.read_frac(1000.0);
        assert_eq!(f, dl.read(3));
    }

    #[test]
    fn clear_silences() {
        let mut dl = DelayLine::new(4);
        dl.push(5.0);
        dl.clear();
        assert_eq!(dl.read(1), 0.0);
    }

    #[test]
    fn stereo_channels_are_independent() {
        let mut sdl = StereoDelayLine::new(4);
        sdl.channel(0).push(1.0);
        sdl.channel(1).push(2.0);
        assert_eq!(sdl.channel_ref(0).read(1), 1.0);
        assert_eq!(sdl.channel_ref(1).read(1), 2.0);
    }
}
