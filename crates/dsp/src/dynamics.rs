//! Dynamics processing: limiter, hard clipper and a soft-knee compressor.
//!
//! Fig. 3's master section runs "Limiter, Clip" on the record buffer and the
//! audio outputs; these are those processors.
//!
//! The limiter and compressor have a serial per-frame envelope follower
//! sandwiched between two embarrassingly-parallel phases. The vector path
//! stages frames through fixed stack chunks: per-frame peaks (or mean
//! squares) are computed 4 lanes at a time, the envelope/gain recurrence
//! runs scalar over the chunk, and the gains are applied back to each
//! channel plane 4 lanes at a time. Every per-frame formula matches the
//! scalar reference operation-for-operation, so the result is
//! bit-identical.

use crate::buffer::AudioBuf;
use crate::simd::{self, F32x4};

/// Frames staged per stack chunk (one engine buffer); no heap involved.
const CHUNK: usize = 128;

/// Hard clipper: clamps every sample into `[-ceiling, ceiling]`.
#[derive(Debug, Clone)]
pub struct HardClip {
    ceiling: f32,
}

impl HardClip {
    /// Clipper at the given ceiling (> 0).
    pub fn new(ceiling: f32) -> Self {
        HardClip {
            ceiling: ceiling.max(1e-3),
        }
    }

    /// Clip a buffer in place; returns the number of clipped samples (a
    /// diagnostic DJ Star surfaces as a clip indicator).
    pub fn process(&self, buf: &mut AudioBuf) -> usize {
        // Kept scalar on purpose: vector min/max would change NaN
        // propagation vs these strict comparisons, and clipping is cheap.
        let _t = crate::kprof::timer(crate::kprof::Family::Dynamics);
        let c = self.ceiling;
        let mut clipped = 0;
        for s in buf.samples_mut() {
            if *s > c {
                *s = c;
                clipped += 1;
            } else if *s < -c {
                *s = -c;
                clipped += 1;
            }
        }
        clipped
    }
}

/// A lookahead-free peak limiter with exponential attack/release gain
/// smoothing. Output never exceeds the ceiling by more than the attack
/// transient of a single sample step (then the hard clip safety net holds).
#[derive(Debug, Clone)]
pub struct Limiter {
    ceiling: f32,
    attack_coeff: f32,
    release_coeff: f32,
    envelope: f32,
}

impl Limiter {
    /// Limiter with `ceiling` amplitude, `attack_ms` and `release_ms` time
    /// constants at `sample_rate`.
    pub fn new(ceiling: f32, attack_ms: f32, release_ms: f32, sample_rate: u32) -> Self {
        let fs = sample_rate as f32;
        let coeff = |ms: f32| (-1.0 / (ms.max(0.01) * 1e-3 * fs)).exp();
        Limiter {
            ceiling: ceiling.max(1e-3),
            attack_coeff: coeff(attack_ms),
            release_coeff: coeff(release_ms),
            envelope: 0.0,
        }
    }

    /// Default master limiter: -0.3 dBFS ceiling, 0.5 ms attack, 50 ms release.
    pub fn master(sample_rate: u32) -> Self {
        Self::new(0.966, 0.5, 50.0, sample_rate)
    }

    /// Clear envelope state.
    pub fn reset(&mut self) {
        self.envelope = 0.0;
    }

    /// Limit a buffer in place.
    pub fn process(&mut self, buf: &mut AudioBuf) {
        let _t = crate::kprof::timer(crate::kprof::Family::Dynamics);
        if simd::wide_enabled() {
            self.process_wide(buf);
        } else {
            self.process_scalar(buf);
        }
    }

    /// Scalar reference for [`Limiter::process`]: the seed's per-frame
    /// loop. Bit-identical to the vector path.
    pub fn process_scalar(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            // Peak across channels of this frame.
            let mut peak = 0.0f32;
            for ch in 0..channels {
                peak = peak.max(buf.sample(ch, i).abs());
            }
            let gain = self.gain_step(peak);
            for ch in 0..channels {
                let s = buf.sample(ch, i) * gain;
                // Safety clamp for attack transients.
                buf.set_sample(ch, i, s.clamp(-self.ceiling, self.ceiling));
            }
        }
    }

    /// Advance the envelope by one frame peak and return the frame gain.
    #[inline]
    fn gain_step(&mut self, peak: f32) -> f32 {
        let coeff = if peak > self.envelope {
            self.attack_coeff
        } else {
            self.release_coeff
        };
        self.envelope = coeff * self.envelope + (1.0 - coeff) * peak;
        let over = self.envelope.max(peak);
        if over > self.ceiling {
            self.ceiling / over
        } else {
            1.0
        }
    }

    fn process_wide(&mut self, buf: &mut AudioBuf) {
        let ceiling = self.ceiling;
        let lo = F32x4::splat(-ceiling);
        let hi = F32x4::splat(ceiling);
        let mut peaks = [0.0f32; CHUNK];
        let mut gains = [0.0f32; CHUNK];
        for (l, r) in buf.frames_chunks_mut(CHUNK) {
            let m = l.len();
            let stereo = !r.is_empty();
            let n = m & !3;
            let mut i = 0;
            while i < n {
                let mut p = F32x4::zero().max(F32x4::load(&l[i..]).abs());
                if stereo {
                    p = p.max(F32x4::load(&r[i..]).abs());
                }
                p.store(&mut peaks[i..]);
                i += 4;
            }
            for i in n..m {
                let mut peak = 0.0f32.max(l[i].abs());
                if stereo {
                    peak = peak.max(r[i].abs());
                }
                peaks[i] = peak;
            }
            // The envelope recurrence is inherently serial.
            for i in 0..m {
                gains[i] = self.gain_step(peaks[i]);
            }
            for plane in [&mut *l, r] {
                if plane.is_empty() {
                    continue;
                }
                let mut i = 0;
                while i < n {
                    let g = F32x4::load(&gains[i..]);
                    F32x4::load(&plane[i..])
                        .mul(g)
                        .max(lo)
                        .min(hi)
                        .store(&mut plane[i..]);
                    i += 4;
                }
                for i in n..m {
                    plane[i] = (plane[i] * gains[i]).clamp(-ceiling, ceiling);
                }
            }
        }
    }
}

/// A soft-knee RMS compressor used by the auto-gain bookkeeping node.
#[derive(Debug, Clone)]
pub struct Compressor {
    threshold: f32,
    ratio: f32,
    coeff: f32,
    envelope: f32,
}

impl Compressor {
    /// Compressor with linear `threshold`, compression `ratio` (>= 1) and a
    /// `window_ms` RMS smoothing window.
    pub fn new(threshold: f32, ratio: f32, window_ms: f32, sample_rate: u32) -> Self {
        let fs = sample_rate as f32;
        Compressor {
            threshold: threshold.max(1e-4),
            ratio: ratio.max(1.0),
            coeff: (-1.0 / (window_ms.max(0.1) * 1e-3 * fs)).exp(),
            envelope: 0.0,
        }
    }

    /// Clear envelope state.
    pub fn reset(&mut self) {
        self.envelope = 0.0;
    }

    /// Compress a buffer in place; returns the final gain applied (for
    /// metering).
    pub fn process(&mut self, buf: &mut AudioBuf) -> f32 {
        let _t = crate::kprof::timer(crate::kprof::Family::Dynamics);
        if simd::wide_enabled() {
            self.process_wide(buf)
        } else {
            self.process_scalar(buf)
        }
    }

    /// Scalar reference for [`Compressor::process`]: the seed's per-frame
    /// loop. Bit-identical to the vector path.
    pub fn process_scalar(&mut self, buf: &mut AudioBuf) -> f32 {
        let channels = buf.channels();
        let frames = buf.frames();
        let mut last_gain = 1.0;
        for i in 0..frames {
            let mut sq = 0.0f32;
            for ch in 0..channels {
                let s = buf.sample(ch, i);
                sq += s * s;
            }
            sq /= channels as f32;
            let gain = self.gain_step(sq);
            last_gain = gain;
            for ch in 0..channels {
                let s = buf.sample(ch, i);
                buf.set_sample(ch, i, s * gain);
            }
        }
        last_gain
    }

    /// Advance the RMS envelope by one frame mean-square and return the
    /// frame gain.
    #[inline]
    fn gain_step(&mut self, sq: f32) -> f32 {
        self.envelope = self.coeff * self.envelope + (1.0 - self.coeff) * sq;
        let rms = self.envelope.sqrt();
        if rms > self.threshold {
            // Gain reduction toward threshold + (rms-threshold)/ratio.
            let target = self.threshold + (rms - self.threshold) / self.ratio;
            target / rms
        } else {
            1.0
        }
    }

    fn process_wide(&mut self, buf: &mut AudioBuf) -> f32 {
        let mut sqs = [0.0f32; CHUNK];
        let mut gains = [0.0f32; CHUNK];
        let mut last_gain = 1.0f32;
        for (l, r) in buf.frames_chunks_mut(CHUNK) {
            let m = l.len();
            let stereo = !r.is_empty();
            let n = m & !3;
            // Mean square per frame: dividing by 1 or 2 channels is exact,
            // so the halving multiply below rounds identically to the
            // scalar division.
            let half = F32x4::splat(0.5);
            let mut i = 0;
            while i < n {
                let lv = F32x4::load(&l[i..]);
                let mut sq = F32x4::zero().add(lv.mul(lv));
                if stereo {
                    let rv = F32x4::load(&r[i..]);
                    sq = sq.add(rv.mul(rv)).mul(half);
                }
                sq.store(&mut sqs[i..]);
                i += 4;
            }
            for i in n..m {
                let mut sq = l[i] * l[i];
                if stereo {
                    sq += r[i] * r[i];
                    sq /= 2.0;
                }
                sqs[i] = sq;
            }
            for i in 0..m {
                gains[i] = self.gain_step(sqs[i]);
            }
            if m > 0 {
                last_gain = gains[m - 1];
            }
            for plane in [&mut *l, r] {
                if plane.is_empty() {
                    continue;
                }
                let mut i = 0;
                while i < n {
                    F32x4::load(&plane[i..])
                        .mul(F32x4::load(&gains[i..]))
                        .store(&mut plane[i..]);
                    i += 4;
                }
                for i in n..m {
                    plane[i] *= gains[i];
                }
            }
        }
        last_gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_clip_bounds_and_counts() {
        let clip = HardClip::new(0.5);
        let mut buf = AudioBuf::from_fn(1, 8, |_, i| i as f32 * 0.2 - 0.8);
        let clipped = clip.process(&mut buf);
        assert!(buf.peak() <= 0.5);
        assert!(clipped > 0);
    }

    #[test]
    fn limiter_holds_ceiling_on_loud_input() {
        let mut lim = Limiter::new(0.9, 0.5, 50.0, 44_100);
        for _ in 0..20 {
            let mut buf = AudioBuf::from_fn(2, 128, |_, i| if i % 2 == 0 { 3.0 } else { -3.0 });
            lim.process(&mut buf);
            assert!(buf.peak() <= 0.9 + 1e-5, "peak {}", buf.peak());
        }
    }

    #[test]
    fn limiter_transparent_below_ceiling() {
        let mut lim = Limiter::new(1.0, 0.5, 50.0, 44_100);
        let orig = AudioBuf::from_fn(2, 128, |_, i| 0.25 * ((i as f32) * 0.3).sin());
        let mut buf = orig.clone();
        lim.process(&mut buf);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn limiter_releases_after_transient() {
        let mut lim = Limiter::new(0.5, 0.1, 5.0, 44_100);
        // Loud block, then quiet blocks: gain must recover.
        let mut loud = AudioBuf::from_fn(1, 128, |_, _| 2.0);
        lim.process(&mut loud);
        let mut rms_track = Vec::new();
        for _ in 0..40 {
            let mut quiet = AudioBuf::from_fn(1, 128, |_, i| 0.3 * ((i as f32) * 0.5).sin());
            lim.process(&mut quiet);
            rms_track.push(quiet.rms());
        }
        assert!(
            rms_track.last().unwrap() > &(rms_track.first().unwrap() * 0.99),
            "gain did not recover: {:?}",
            &rms_track[..3]
        );
    }

    #[test]
    fn compressor_reduces_loud_rms() {
        let mut comp = Compressor::new(0.2, 4.0, 5.0, 44_100);
        // settle
        for _ in 0..20 {
            let mut buf = AudioBuf::from_fn(1, 128, |_, i| 0.8 * ((i as f32) * 0.7).sin());
            comp.process(&mut buf);
        }
        let mut buf = AudioBuf::from_fn(1, 128, |_, i| 0.8 * ((i as f32) * 0.7).sin());
        let gain = comp.process(&mut buf);
        assert!(gain < 0.8, "gain {gain}");
        assert!(buf.rms() < 0.5);
    }

    #[test]
    fn limiter_wide_matches_scalar_exactly() {
        // Mono + stereo, odd frame counts (tail path), envelope carried
        // across several buffers.
        for channels in [1usize, 2] {
            let mut wide = Limiter::new(0.6, 0.3, 8.0, 44_100);
            let mut scalar = wide.clone();
            for (block, frames) in [(0u32, 128usize), (1, 37), (2, 128), (3, 5)] {
                let buf = AudioBuf::from_fn(channels, frames, |ch, i| {
                    1.8 * ((block as usize * 131 + ch * 7 + i) as f32 * 0.23).sin()
                });
                let mut a = buf.clone();
                let mut b = buf;
                wide.process(&mut a);
                scalar.process_scalar(&mut b);
                assert_eq!(a.samples(), b.samples(), "ch={channels} block={block}");
            }
            assert_eq!(wide.envelope, scalar.envelope);
        }
    }

    #[test]
    fn compressor_wide_matches_scalar_exactly() {
        for channels in [1usize, 2] {
            let mut wide = Compressor::new(0.15, 4.0, 5.0, 44_100);
            let mut scalar = wide.clone();
            for (block, frames) in [(0u32, 128usize), (1, 41), (2, 128), (3, 3)] {
                let buf = AudioBuf::from_fn(channels, frames, |ch, i| {
                    0.9 * ((block as usize * 97 + ch * 11 + i) as f32 * 0.31).sin()
                });
                let mut a = buf.clone();
                let mut b = buf;
                let ga = wide.process(&mut a);
                let gb = scalar.process_scalar(&mut b);
                assert_eq!(a.samples(), b.samples(), "ch={channels} block={block}");
                assert_eq!(ga, gb);
            }
            assert_eq!(wide.envelope, scalar.envelope);
        }
    }

    #[test]
    fn compressor_transparent_below_threshold() {
        let mut comp = Compressor::new(0.5, 4.0, 5.0, 44_100);
        let orig = AudioBuf::from_fn(1, 256, |_, i| 0.05 * ((i as f32) * 0.2).sin());
        let mut buf = orig.clone();
        let gain = comp.process(&mut buf);
        assert_eq!(gain, 1.0);
        assert_eq!(buf, orig);
    }
}
