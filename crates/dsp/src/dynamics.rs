//! Dynamics processing: limiter, hard clipper and a soft-knee compressor.
//!
//! Fig. 3's master section runs "Limiter, Clip" on the record buffer and the
//! audio outputs; these are those processors.

use crate::buffer::AudioBuf;

/// Hard clipper: clamps every sample into `[-ceiling, ceiling]`.
#[derive(Debug, Clone)]
pub struct HardClip {
    ceiling: f32,
}

impl HardClip {
    /// Clipper at the given ceiling (> 0).
    pub fn new(ceiling: f32) -> Self {
        HardClip {
            ceiling: ceiling.max(1e-3),
        }
    }

    /// Clip a buffer in place; returns the number of clipped samples (a
    /// diagnostic DJ Star surfaces as a clip indicator).
    pub fn process(&self, buf: &mut AudioBuf) -> usize {
        let c = self.ceiling;
        let mut clipped = 0;
        for s in buf.samples_mut() {
            if *s > c {
                *s = c;
                clipped += 1;
            } else if *s < -c {
                *s = -c;
                clipped += 1;
            }
        }
        clipped
    }
}

/// A lookahead-free peak limiter with exponential attack/release gain
/// smoothing. Output never exceeds the ceiling by more than the attack
/// transient of a single sample step (then the hard clip safety net holds).
#[derive(Debug, Clone)]
pub struct Limiter {
    ceiling: f32,
    attack_coeff: f32,
    release_coeff: f32,
    envelope: f32,
}

impl Limiter {
    /// Limiter with `ceiling` amplitude, `attack_ms` and `release_ms` time
    /// constants at `sample_rate`.
    pub fn new(ceiling: f32, attack_ms: f32, release_ms: f32, sample_rate: u32) -> Self {
        let fs = sample_rate as f32;
        let coeff = |ms: f32| (-1.0 / (ms.max(0.01) * 1e-3 * fs)).exp();
        Limiter {
            ceiling: ceiling.max(1e-3),
            attack_coeff: coeff(attack_ms),
            release_coeff: coeff(release_ms),
            envelope: 0.0,
        }
    }

    /// Default master limiter: -0.3 dBFS ceiling, 0.5 ms attack, 50 ms release.
    pub fn master(sample_rate: u32) -> Self {
        Self::new(0.966, 0.5, 50.0, sample_rate)
    }

    /// Clear envelope state.
    pub fn reset(&mut self) {
        self.envelope = 0.0;
    }

    /// Limit a buffer in place.
    pub fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            // Peak across channels of this frame.
            let mut peak = 0.0f32;
            for ch in 0..channels {
                peak = peak.max(buf.sample(ch, i).abs());
            }
            // Envelope follower.
            let coeff = if peak > self.envelope {
                self.attack_coeff
            } else {
                self.release_coeff
            };
            self.envelope = coeff * self.envelope + (1.0 - coeff) * peak;
            let over = self.envelope.max(peak);
            let gain = if over > self.ceiling {
                self.ceiling / over
            } else {
                1.0
            };
            for ch in 0..channels {
                let s = buf.sample(ch, i) * gain;
                // Safety clamp for attack transients.
                buf.set_sample(ch, i, s.clamp(-self.ceiling, self.ceiling));
            }
        }
    }
}

/// A soft-knee RMS compressor used by the auto-gain bookkeeping node.
#[derive(Debug, Clone)]
pub struct Compressor {
    threshold: f32,
    ratio: f32,
    coeff: f32,
    envelope: f32,
}

impl Compressor {
    /// Compressor with linear `threshold`, compression `ratio` (>= 1) and a
    /// `window_ms` RMS smoothing window.
    pub fn new(threshold: f32, ratio: f32, window_ms: f32, sample_rate: u32) -> Self {
        let fs = sample_rate as f32;
        Compressor {
            threshold: threshold.max(1e-4),
            ratio: ratio.max(1.0),
            coeff: (-1.0 / (window_ms.max(0.1) * 1e-3 * fs)).exp(),
            envelope: 0.0,
        }
    }

    /// Clear envelope state.
    pub fn reset(&mut self) {
        self.envelope = 0.0;
    }

    /// Compress a buffer in place; returns the final gain applied (for
    /// metering).
    pub fn process(&mut self, buf: &mut AudioBuf) -> f32 {
        let channels = buf.channels();
        let frames = buf.frames();
        let mut last_gain = 1.0;
        for i in 0..frames {
            let mut sq = 0.0f32;
            for ch in 0..channels {
                let s = buf.sample(ch, i);
                sq += s * s;
            }
            sq /= channels as f32;
            self.envelope = self.coeff * self.envelope + (1.0 - self.coeff) * sq;
            let rms = self.envelope.sqrt();
            let gain = if rms > self.threshold {
                // Gain reduction toward threshold + (rms-threshold)/ratio.
                let target = self.threshold + (rms - self.threshold) / self.ratio;
                target / rms
            } else {
                1.0
            };
            last_gain = gain;
            for ch in 0..channels {
                let s = buf.sample(ch, i);
                buf.set_sample(ch, i, s * gain);
            }
        }
        last_gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_clip_bounds_and_counts() {
        let clip = HardClip::new(0.5);
        let mut buf = AudioBuf::from_fn(1, 8, |_, i| i as f32 * 0.2 - 0.8);
        let clipped = clip.process(&mut buf);
        assert!(buf.peak() <= 0.5);
        assert!(clipped > 0);
    }

    #[test]
    fn limiter_holds_ceiling_on_loud_input() {
        let mut lim = Limiter::new(0.9, 0.5, 50.0, 44_100);
        for _ in 0..20 {
            let mut buf = AudioBuf::from_fn(2, 128, |_, i| if i % 2 == 0 { 3.0 } else { -3.0 });
            lim.process(&mut buf);
            assert!(buf.peak() <= 0.9 + 1e-5, "peak {}", buf.peak());
        }
    }

    #[test]
    fn limiter_transparent_below_ceiling() {
        let mut lim = Limiter::new(1.0, 0.5, 50.0, 44_100);
        let orig = AudioBuf::from_fn(2, 128, |_, i| 0.25 * ((i as f32) * 0.3).sin());
        let mut buf = orig.clone();
        lim.process(&mut buf);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn limiter_releases_after_transient() {
        let mut lim = Limiter::new(0.5, 0.1, 5.0, 44_100);
        // Loud block, then quiet blocks: gain must recover.
        let mut loud = AudioBuf::from_fn(1, 128, |_, _| 2.0);
        lim.process(&mut loud);
        let mut rms_track = Vec::new();
        for _ in 0..40 {
            let mut quiet = AudioBuf::from_fn(1, 128, |_, i| 0.3 * ((i as f32) * 0.5).sin());
            lim.process(&mut quiet);
            rms_track.push(quiet.rms());
        }
        assert!(
            rms_track.last().unwrap() > &(rms_track.first().unwrap() * 0.99),
            "gain did not recover: {:?}",
            &rms_track[..3]
        );
    }

    #[test]
    fn compressor_reduces_loud_rms() {
        let mut comp = Compressor::new(0.2, 4.0, 5.0, 44_100);
        // settle
        for _ in 0..20 {
            let mut buf = AudioBuf::from_fn(1, 128, |_, i| 0.8 * ((i as f32) * 0.7).sin());
            comp.process(&mut buf);
        }
        let mut buf = AudioBuf::from_fn(1, 128, |_, i| 0.8 * ((i as f32) * 0.7).sin());
        let gain = comp.process(&mut buf);
        assert!(gain < 0.8, "gain {gain}");
        assert!(buf.rms() < 0.5);
    }

    #[test]
    fn compressor_transparent_below_threshold() {
        let mut comp = Compressor::new(0.5, 4.0, 5.0, 44_100);
        let orig = AudioBuf::from_fn(1, 256, |_, i| 0.05 * ((i as f32) * 0.2).sin());
        let mut buf = orig.clone();
        let gain = comp.process(&mut buf);
        assert_eq!(gain, 1.0);
        assert_eq!(buf, orig);
    }
}
