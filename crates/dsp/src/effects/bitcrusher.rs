//! Bitcrusher: bit-depth and sample-rate reduction.

use crate::buffer::AudioBuf;
use crate::effects::Effect;

/// Lo-fi effect quantizing amplitude to `bits` levels and holding each
/// sample for `downsample` frames.
#[derive(Debug, Clone)]
pub struct Bitcrusher {
    bits: f32,
    downsample: usize,
    mix: f32,
    hold: [f32; 2],
    counter: usize,
}

impl Bitcrusher {
    /// Crusher with effective `bits` (1–16), hold factor `downsample` (>= 1)
    /// and dry/wet `mix`.
    pub fn new(bits: f32, downsample: usize, mix: f32) -> Self {
        Bitcrusher {
            bits: bits.clamp(1.0, 16.0),
            downsample: downsample.max(1),
            mix: mix.clamp(0.0, 1.0),
            hold: [0.0; 2],
            counter: 0,
        }
    }

    #[inline]
    fn quantize(&self, x: f32) -> f32 {
        let levels = 2f32.powf(self.bits);
        (x * levels).round() / levels
    }
}

impl Effect for Bitcrusher {
    fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            if self.counter == 0 {
                for ch in 0..channels.min(2) {
                    self.hold[ch] = self.quantize(buf.sample(ch, i));
                }
            }
            self.counter = (self.counter + 1) % self.downsample;
            for ch in 0..channels.min(2) {
                let dry = buf.sample(ch, i);
                buf.set_sample(ch, i, dry * (1.0 - self.mix) + self.hold[ch] * self.mix);
            }
        }
    }

    fn reset(&mut self) {
        self.hold = [0.0; 2];
        self.counter = 0;
    }

    fn name(&self) -> &'static str {
        "bitcrusher"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_reduces_distinct_levels() {
        let mut fx = Bitcrusher::new(2.0, 1, 1.0); // 4 levels per unit
        let mut buf = AudioBuf::from_fn(1, 100, |_, i| i as f32 / 100.0);
        fx.process(&mut buf);
        let mut levels: Vec<i32> = buf
            .samples()
            .iter()
            .map(|s| (s * 1000.0).round() as i32)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 6, "levels: {}", levels.len());
    }

    #[test]
    fn downsample_holds_values() {
        let mut fx = Bitcrusher::new(16.0, 4, 1.0);
        let mut buf = AudioBuf::from_fn(1, 16, |_, i| i as f32 * 0.01);
        fx.process(&mut buf);
        // Every group of 4 output samples is constant.
        for g in 0..4 {
            let v = buf.sample(0, g * 4);
            for k in 1..4 {
                assert_eq!(buf.sample(0, g * 4 + k), v);
            }
        }
    }

    #[test]
    fn dry_mix_passes_signal() {
        let mut fx = Bitcrusher::new(2.0, 8, 0.0);
        let orig = AudioBuf::from_fn(2, 32, |ch, i| (ch as f32 + i as f32) * 0.01);
        let mut buf = orig.clone();
        fx.process(&mut buf);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn params_clamped() {
        let fx = Bitcrusher::new(0.0, 0, 2.0);
        assert_eq!(fx.bits, 1.0);
        assert_eq!(fx.downsample, 1);
        assert_eq!(fx.mix, 1.0);
    }
}
