//! Chorus: two detuned modulated-delay voices layered with the dry signal.

use crate::buffer::AudioBuf;
use crate::delayline::StereoDelayLine;
use crate::effects::Effect;
use crate::osc::{Oscillator, Waveform};

/// A two-voice stereo chorus. Each voice reads a 15–30 ms delay tap swept by
/// its own LFO; voices run at slightly different rates so left and right
/// decorrelate.
pub struct Chorus {
    lines: StereoDelayLine,
    lfo_a: Oscillator,
    lfo_b: Oscillator,
    mix: f32,
    sample_rate: f32,
    rate_hz: f32,
}

const CENTER_S: f32 = 0.022;
const SWING_S: f32 = 0.007;

impl Chorus {
    /// Chorus with base LFO `rate_hz` and dry/wet `mix`.
    pub fn new(sample_rate: u32, rate_hz: f32, mix: f32) -> Self {
        let cap = ((CENTER_S + SWING_S) * sample_rate as f32) as usize + 4;
        Chorus {
            lines: StereoDelayLine::new(cap),
            lfo_a: Oscillator::new(Waveform::Sine, rate_hz, sample_rate),
            lfo_b: Oscillator::new(Waveform::Sine, rate_hz * 1.31, sample_rate),
            mix: mix.clamp(0.0, 1.0),
            sample_rate: sample_rate as f32,
            rate_hz,
        }
    }
}

impl Effect for Chorus {
    fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        let center = CENTER_S * self.sample_rate;
        let swing = SWING_S * self.sample_rate;
        for i in 0..frames {
            let la = self.lfo_a.next_sample();
            let lb = self.lfo_b.next_sample();
            let d_a = center + swing * la;
            let d_b = center + swing * lb;
            for ch in 0..channels.min(2) {
                let dry = buf.sample(ch, i);
                let line = self.lines.channel(ch);
                line.push(dry);
                let wet = 0.5 * (line.read_frac(d_a) + line.read_frac(d_b));
                buf.set_sample(ch, i, dry * (1.0 - self.mix) + wet * self.mix);
            }
        }
    }

    fn reset(&mut self) {
        self.lines.clear();
        self.lfo_a = Oscillator::new(Waveform::Sine, self.rate_hz, self.sample_rate as u32);
        self.lfo_b = Oscillator::new(Waveform::Sine, self.rate_hz * 1.31, self.sample_rate as u32);
    }

    fn name(&self) -> &'static str {
        "chorus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chorus_delays_impulse_into_multiple_taps() {
        let mut fx = Chorus::new(44_100, 0.8, 1.0);
        let mut buf = AudioBuf::from_fn(1, 2048, |_, i| if i == 0 { 1.0 } else { 0.0 });
        fx.process(&mut buf);
        // Wet-only output: energy appears around the 15-30 ms region
        // (662-1323 samples), not at t=0.
        assert!(buf.sample(0, 0).abs() < 1e-6);
        let tail_energy: f32 = (600..1400).map(|i| buf.sample(0, i).powi(2)).sum();
        assert!(tail_energy > 0.1, "tail energy {tail_energy}");
    }

    #[test]
    fn output_bounded() {
        let mut fx = Chorus::new(44_100, 2.0, 0.5);
        for _ in 0..50 {
            let mut buf = AudioBuf::from_fn(2, 128, |_, i| if i % 2 == 0 { 0.9 } else { -0.9 });
            fx.process(&mut buf);
            assert!(buf.is_finite());
            assert!(buf.peak() < 2.0);
        }
    }
}
