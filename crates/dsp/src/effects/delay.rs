//! Feedback echo/delay effect.

use crate::buffer::AudioBuf;
use crate::delayline::StereoDelayLine;
use crate::effects::Effect;

/// A classic feedback delay ("echo"): the signal is delayed by a fixed time
/// and fed back with a gain < 1, mixed with the dry signal.
#[derive(Debug, Clone)]
pub struct EchoDelay {
    lines: StereoDelayLine,
    delay_samples: usize,
    feedback: f32,
    mix: f32,
}

impl EchoDelay {
    /// Echo with `delay_s` seconds of delay, `feedback` in `[0, 0.95]` and
    /// dry/wet `mix` in `[0, 1]`.
    pub fn new(sample_rate: u32, delay_s: f32, feedback: f32, mix: f32) -> Self {
        let delay_samples = ((delay_s * sample_rate as f32) as usize).max(1);
        EchoDelay {
            lines: StereoDelayLine::new(delay_samples + 1),
            delay_samples,
            feedback: feedback.clamp(0.0, 0.95),
            mix: mix.clamp(0.0, 1.0),
        }
    }

    /// Delay length in samples.
    pub fn delay_samples(&self) -> usize {
        self.delay_samples
    }
}

impl Effect for EchoDelay {
    fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            for ch in 0..channels.min(2) {
                let dry = buf.sample(ch, i);
                let line = self.lines.channel(ch);
                let wet = line.read(self.delay_samples);
                line.push(dry + wet * self.feedback);
                buf.set_sample(ch, i, dry * (1.0 - self.mix) + wet * self.mix);
            }
        }
    }

    fn reset(&mut self) {
        self.lines.clear();
    }

    fn name(&self) -> &'static str {
        "echo-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_appears_after_delay_time() {
        // 10-sample delay, full wet.
        let mut fx = EchoDelay {
            lines: StereoDelayLine::new(11),
            delay_samples: 10,
            feedback: 0.0,
            mix: 1.0,
        };
        let mut buf = AudioBuf::from_fn(1, 32, |_, i| if i == 0 { 1.0 } else { 0.0 });
        fx.process(&mut buf);
        // Fully wet output: impulse reappears at frame 10 only.
        assert!(buf.sample(0, 0).abs() < 1e-6);
        assert!((buf.sample(0, 10) - 1.0).abs() < 1e-6);
        assert!(buf.sample(0, 11).abs() < 1e-6);
    }

    #[test]
    fn feedback_produces_decaying_repeats() {
        let mut fx = EchoDelay {
            lines: StereoDelayLine::new(5),
            delay_samples: 4,
            feedback: 0.5,
            mix: 1.0,
        };
        let mut buf = AudioBuf::from_fn(1, 16, |_, i| if i == 0 { 1.0 } else { 0.0 });
        fx.process(&mut buf);
        assert!((buf.sample(0, 4) - 1.0).abs() < 1e-6);
        assert!((buf.sample(0, 8) - 0.5).abs() < 1e-6);
        assert!((buf.sample(0, 12) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn feedback_is_clamped_for_stability() {
        let fx = EchoDelay::new(44_100, 0.1, 5.0, 0.5);
        assert!(fx.feedback <= 0.95);
    }

    #[test]
    fn default_constructor_sane() {
        let fx = EchoDelay::new(44_100, 0.25, 0.4, 0.5);
        assert_eq!(fx.delay_samples(), (0.25 * 44_100.0) as usize);
    }
}
