//! Flanger: short LFO-modulated delay mixed with the dry signal.

use crate::buffer::AudioBuf;
use crate::delayline::StereoDelayLine;
use crate::effects::Effect;
use crate::osc::{Oscillator, Waveform};

/// A stereo flanger sweeping a 1–8 ms delay with a sine LFO.
pub struct Flanger {
    lines: StereoDelayLine,
    lfo: Oscillator,
    depth: f32,
    mix: f32,
    sample_rate: f32,
}

/// Shortest modulated delay (seconds).
const MIN_DELAY_S: f32 = 0.001;
/// Longest modulated delay (seconds).
const MAX_DELAY_S: f32 = 0.008;

impl Flanger {
    /// Flanger with LFO rate `rate_hz`, sweep `depth` in `[0, 1]` and
    /// dry/wet `mix` in `[0, 1]`.
    pub fn new(sample_rate: u32, rate_hz: f32, depth: f32, mix: f32) -> Self {
        let cap = (MAX_DELAY_S * sample_rate as f32) as usize + 4;
        Flanger {
            lines: StereoDelayLine::new(cap),
            lfo: Oscillator::new(Waveform::Sine, rate_hz, sample_rate),
            depth: depth.clamp(0.0, 1.0),
            mix: mix.clamp(0.0, 1.0),
            sample_rate: sample_rate as f32,
        }
    }
}

impl Effect for Flanger {
    fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        let center = (MIN_DELAY_S + MAX_DELAY_S) / 2.0 * self.sample_rate;
        let swing = (MAX_DELAY_S - MIN_DELAY_S) / 2.0 * self.sample_rate * self.depth;
        for i in 0..frames {
            let lfo = self.lfo.next_sample();
            let delay = center + swing * lfo;
            for ch in 0..channels.min(2) {
                let dry = buf.sample(ch, i);
                let line = self.lines.channel(ch);
                line.push(dry);
                let wet = line.read_frac(delay);
                buf.set_sample(ch, i, dry * (1.0 - self.mix) + wet * self.mix);
            }
        }
    }

    fn reset(&mut self) {
        self.lines.clear();
        self.lfo = Oscillator::new(Waveform::Sine, self.lfo.freq(), self.sample_rate as u32);
    }

    fn name(&self) -> &'static str {
        "flanger"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::NoiseSource;

    #[test]
    fn flanger_creates_comb_notches() {
        // A flanger summing x[n] + x[n-d] creates notches; on white noise the
        // output spectrum differs from the input, which shows up as a changed
        // autocorrelation at the delay lag. We check more simply that the
        // output differs and is bounded.
        let mut fx = Flanger::new(44_100, 0.5, 1.0, 0.5);
        let mut n = NoiseSource::new(5);
        let orig = AudioBuf::from_fn(2, 512, |_, _| n.next_sample());
        let mut buf = orig.clone();
        fx.process(&mut buf);
        assert!(buf.is_finite());
        let diff: f32 = buf
            .samples()
            .iter()
            .zip(orig.samples())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.1);
    }

    #[test]
    fn zero_depth_is_fixed_comb() {
        let mut fx = Flanger::new(44_100, 1.0, 0.0, 0.5);
        // With depth 0 the delay is a constant 4.5 ms (198.45 samples): an
        // impulse yields the dry spike at 0 plus the wet spike spread over
        // the two taps the fractional read interpolates between.
        let mut buf = AudioBuf::from_fn(1, 512, |_, i| if i == 0 { 1.0 } else { 0.0 });
        fx.process(&mut buf);
        let nonzero: Vec<usize> = (0..512)
            .filter(|&i| buf.sample(0, i).abs() > 1e-4)
            .collect();
        assert!(
            nonzero.len() == 2 || nonzero.len() == 3,
            "spikes at {nonzero:?}"
        );
        assert_eq!(nonzero[0], 0);
        let center = (MIN_DELAY_S + MAX_DELAY_S) / 2.0 * 44_100.0;
        for &i in &nonzero[1..] {
            assert!(
                (i as f32 - center).abs() <= 1.5,
                "wet spike at {i}, expected near {center}"
            );
        }
    }

    #[test]
    fn params_clamped() {
        let fx = Flanger::new(44_100, 0.5, 7.0, -3.0);
        assert_eq!(fx.depth, 1.0);
        assert_eq!(fx.mix, 0.0);
    }
}
