//! Audio effects: the FX1–FX4 slots of each DJ Star deck (Fig. 3).
//!
//! The paper notes the original effect algorithms are proprietary and
//! "strictly sequential" (§V); these replacements are real sequential DSP
//! with comparable structure: per-sample state machines over 128-frame
//! buffers.

mod bitcrusher;
mod chorus;
mod delay;
mod flanger;
mod overdrive;
mod phaser;
mod reverb;
mod spectral;
mod tremolo;
mod widener;

pub use bitcrusher::Bitcrusher;
pub use chorus::Chorus;
pub use delay::EchoDelay;
pub use flanger::Flanger;
pub use overdrive::Overdrive;
pub use phaser::Phaser;
pub use reverb::Reverb;
pub use spectral::SpectralFilter;
pub use tremolo::Tremolo;
pub use widener::StereoWidener;

use crate::buffer::AudioBuf;

/// A stateful in-place audio effect.
pub trait Effect: Send {
    /// Process `buf` in place.
    fn process(&mut self, buf: &mut AudioBuf);

    /// Clear internal state (delay lines, LFO phases, filter memory).
    fn reset(&mut self);

    /// Short human-readable name.
    fn name(&self) -> &'static str;
}

/// Identifier for constructing each of the built-in effects uniformly;
/// the workload crate uses this to assemble deck effect chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectKind {
    EchoDelay,
    Flanger,
    Phaser,
    Bitcrusher,
    Overdrive,
    Chorus,
    Tremolo,
    StereoWidener,
    Reverb,
    SpectralFilter,
}

impl EffectKind {
    /// All built-in effect kinds.
    pub const ALL: [EffectKind; 10] = [
        EffectKind::EchoDelay,
        EffectKind::Flanger,
        EffectKind::Phaser,
        EffectKind::Bitcrusher,
        EffectKind::Overdrive,
        EffectKind::Chorus,
        EffectKind::Tremolo,
        EffectKind::StereoWidener,
        EffectKind::Reverb,
        EffectKind::SpectralFilter,
    ];

    /// Construct a boxed instance with default parameters at `sample_rate`.
    pub fn build(self, sample_rate: u32) -> Box<dyn Effect> {
        match self {
            EffectKind::EchoDelay => Box::new(EchoDelay::new(sample_rate, 0.25, 0.45, 0.5)),
            EffectKind::Flanger => Box::new(Flanger::new(sample_rate, 0.4, 0.7, 0.5)),
            EffectKind::Phaser => Box::new(Phaser::new(sample_rate, 0.3, 4, 0.6)),
            EffectKind::Bitcrusher => Box::new(Bitcrusher::new(8.0, 4, 0.6)),
            EffectKind::Overdrive => Box::new(Overdrive::new(3.0, 0.7)),
            EffectKind::Chorus => Box::new(Chorus::new(sample_rate, 0.8, 0.5)),
            EffectKind::Tremolo => Box::new(Tremolo::new(sample_rate, 5.0, 0.7)),
            EffectKind::StereoWidener => Box::new(StereoWidener::new(1.6)),
            EffectKind::Reverb => Box::new(Reverb::new(sample_rate, 0.5, 0.3, 0.35)),
            EffectKind::SpectralFilter => {
                Box::new(SpectralFilter::new(sample_rate, 300.0, 3_400.0, 0.8))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::NoiseSource;

    fn noisy_buf(seed: u32) -> AudioBuf {
        let mut n = NoiseSource::new(seed);
        AudioBuf::from_fn(2, 128, |_, _| n.next_sample() * 0.5)
    }

    /// Every effect must keep output finite and bounded on hot noise input,
    /// and must be deterministic after reset.
    #[test]
    fn all_effects_bounded_finite_and_deterministic() {
        for kind in EffectKind::ALL {
            let mut fx = kind.build(44_100);
            let mut first = Vec::new();
            for block in 0..50 {
                let mut buf = noisy_buf(block + 1);
                fx.process(&mut buf);
                assert!(buf.is_finite(), "{:?} produced non-finite output", kind);
                assert!(
                    buf.peak() < 10.0,
                    "{:?} exploded: peak {}",
                    kind,
                    buf.peak()
                );
                if block == 0 {
                    first = buf.samples().to_vec();
                }
            }
            fx.reset();
            let mut buf = noisy_buf(1);
            fx.process(&mut buf);
            assert_eq!(
                buf.samples(),
                &first[..],
                "{:?} not deterministic after reset",
                kind
            );
        }
    }

    /// Every effect must actually change the signal (no accidental bypass).
    #[test]
    fn all_effects_alter_signal() {
        for kind in EffectKind::ALL {
            let mut fx = kind.build(44_100);
            // Feed a few blocks so delay-based effects have history.
            for block in 0..4 {
                let mut buf = noisy_buf(block + 10);
                fx.process(&mut buf);
            }
            let orig = noisy_buf(99);
            let mut buf = orig.clone();
            fx.process(&mut buf);
            let diff: f32 = buf
                .samples()
                .iter()
                .zip(orig.samples())
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert!(
                diff > 1e-3,
                "{:?} appears to be a bypass (diff {diff})",
                kind
            );
        }
    }

    /// Silence in, silence (or decaying tail) out - no effect may generate
    /// energy from nothing indefinitely.
    #[test]
    fn effects_decay_on_silence() {
        for kind in EffectKind::ALL {
            let mut fx = kind.build(44_100);
            for block in 0..4 {
                let mut buf = noisy_buf(block + 20);
                fx.process(&mut buf);
            }
            // Feed 100 blocks of silence; the tail must decay.
            let mut last_rms = f32::INFINITY;
            for _ in 0..100 {
                let mut buf = AudioBuf::zeroed(2, 128);
                fx.process(&mut buf);
                last_rms = buf.rms();
            }
            assert!(
                last_rms < 0.05,
                "{:?} still ringing after silence: rms {last_rms}",
                kind
            );
        }
    }
}
