//! Overdrive: tanh waveshaping distortion with drive and output level.

use crate::buffer::AudioBuf;
use crate::effects::Effect;

/// Soft-clipping waveshaper: `out = tanh(drive * in) * level`.
#[derive(Debug, Clone)]
pub struct Overdrive {
    drive: f32,
    level: f32,
}

impl Overdrive {
    /// Overdrive with input `drive` (>= 0.1) and output `level` in `[0, 1]`.
    pub fn new(drive: f32, level: f32) -> Self {
        Overdrive {
            drive: drive.max(0.1),
            level: level.clamp(0.0, 1.0),
        }
    }
}

impl Effect for Overdrive {
    fn process(&mut self, buf: &mut AudioBuf) {
        for s in buf.samples_mut() {
            *s = (*s * self.drive).tanh() * self.level;
        }
    }

    fn reset(&mut self) {
        // Stateless.
    }

    fn name(&self) -> &'static str {
        "overdrive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_bounded_by_level() {
        let mut fx = Overdrive::new(100.0, 0.8);
        let mut buf = AudioBuf::from_fn(1, 64, |_, i| (i as f32 - 32.0) * 10.0);
        fx.process(&mut buf);
        assert!(buf.peak() <= 0.8 + 1e-6);
    }

    #[test]
    fn small_signals_pass_nearly_linear() {
        let mut fx = Overdrive::new(1.0, 1.0);
        let mut buf = AudioBuf::from_fn(1, 4, |_, _| 0.01);
        fx.process(&mut buf);
        assert!((buf.sample(0, 0) - 0.01).abs() < 1e-4);
    }

    #[test]
    fn monotone_odd_symmetric() {
        let mut fx = Overdrive::new(3.0, 1.0);
        let mut pos = AudioBuf::from_fn(1, 1, |_, _| 0.5);
        let mut neg = AudioBuf::from_fn(1, 1, |_, _| -0.5);
        fx.process(&mut pos);
        fx.process(&mut neg);
        assert!((pos.sample(0, 0) + neg.sample(0, 0)).abs() < 1e-6);
        assert!(pos.sample(0, 0) > 0.0);
    }
}
