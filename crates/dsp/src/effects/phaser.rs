//! Phaser: a chain of LFO-swept first-order allpass sections.

use crate::buffer::AudioBuf;
use crate::effects::Effect;
use crate::osc::{Oscillator, Waveform};

/// First-order allpass section state per channel.
#[derive(Debug, Clone, Copy, Default)]
struct AllpassState {
    x1: f32,
    y1: f32,
}

impl AllpassState {
    /// y[n] = -a*x[n] + x[n-1] + a*y[n-1]  (first-order allpass)
    #[inline]
    fn tick(&mut self, a: f32, x: f32) -> f32 {
        let y = -a * x + self.x1 + a * self.y1;
        self.x1 = x;
        self.y1 = y;
        y
    }
}

/// A stereo phaser with `stages` allpass sections swept by a sine LFO.
pub struct Phaser {
    stages: Vec<[AllpassState; 2]>,
    lfo: Oscillator,
    mix: f32,
    sample_rate: f32,
}

impl Phaser {
    /// Phaser with LFO `rate_hz`, `stages` allpass sections (2–12 typical)
    /// and dry/wet `mix`.
    pub fn new(sample_rate: u32, rate_hz: f32, stages: usize, mix: f32) -> Self {
        Phaser {
            stages: vec![[AllpassState::default(); 2]; stages.clamp(1, 16)],
            lfo: Oscillator::new(Waveform::Sine, rate_hz, sample_rate),
            mix: mix.clamp(0.0, 1.0),
            sample_rate: sample_rate as f32,
        }
    }

    /// Number of allpass stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }
}

impl Effect for Phaser {
    fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            // Sweep the allpass coefficient between 0.2 and 0.8.
            let lfo = self.lfo.next_sample();
            let a = 0.5 + 0.3 * lfo;
            for ch in 0..channels.min(2) {
                let dry = buf.sample(ch, i);
                let mut wet = dry;
                for st in &mut self.stages {
                    wet = st[ch].tick(a, wet);
                }
                buf.set_sample(ch, i, dry * (1.0 - self.mix) + wet * self.mix);
            }
        }
    }

    fn reset(&mut self) {
        for st in &mut self.stages {
            *st = [AllpassState::default(); 2];
        }
        self.lfo = Oscillator::new(Waveform::Sine, self.lfo.freq(), self.sample_rate as u32);
    }

    fn name(&self) -> &'static str {
        "phaser"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allpass_preserves_energy_of_steady_tone() {
        // A pure allpass chain (mix irrelevant here: feed wet only) keeps the
        // magnitude of a steady sine at ~1.
        use crate::osc::{Oscillator, Waveform};
        let mut st = AllpassState::default();
        let mut osc = Oscillator::new(Waveform::Sine, 1000.0, 44_100);
        // settle
        for _ in 0..4096 {
            st.tick(0.5, osc.next_sample());
        }
        let mut inp = 0.0f32;
        let mut out = 0.0f32;
        for _ in 0..4096 {
            let x = osc.next_sample();
            let y = st.tick(0.5, x);
            inp += x * x;
            out += y * y;
        }
        let ratio = (out / inp).sqrt();
        assert!((ratio - 1.0).abs() < 0.02, "allpass gain {ratio}");
    }

    #[test]
    fn stage_count_clamped() {
        assert_eq!(Phaser::new(44_100, 1.0, 0, 0.5).stage_count(), 1);
        assert_eq!(Phaser::new(44_100, 1.0, 100, 0.5).stage_count(), 16);
    }

    #[test]
    fn phaser_output_bounded_on_square_wave() {
        let mut fx = Phaser::new(44_100, 2.0, 6, 0.7);
        let mut osc = Oscillator::new(Waveform::Square, 200.0, 44_100);
        for _ in 0..100 {
            let mut buf = AudioBuf::from_fn(2, 128, |_, _| osc.next_sample() * 0.8);
            fx.process(&mut buf);
            assert!(buf.is_finite());
            assert!(buf.peak() < 4.0);
        }
    }
}
