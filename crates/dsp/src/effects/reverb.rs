//! Schroeder reverberator: four parallel feedback combs into two series
//! allpass diffusers, per channel (with slightly detuned right-channel
//! delays for stereo width).

use crate::buffer::AudioBuf;
use crate::delayline::DelayLine;
use crate::effects::Effect;

struct Comb {
    line: DelayLine,
    delay: usize,
    feedback: f32,
    /// One-pole lowpass in the feedback path (damping).
    damp_state: f32,
    damp: f32,
}

impl Comb {
    fn new(delay: usize, feedback: f32, damp: f32) -> Self {
        Comb {
            line: DelayLine::new(delay + 1),
            delay,
            feedback,
            damp_state: 0.0,
            damp,
        }
    }

    #[inline]
    fn tick(&mut self, x: f32) -> f32 {
        let out = self.line.read(self.delay);
        self.damp_state = out * (1.0 - self.damp) + self.damp_state * self.damp;
        self.line.push(x + self.damp_state * self.feedback);
        out
    }

    fn clear(&mut self) {
        self.line.clear();
        self.damp_state = 0.0;
    }
}

struct Allpass {
    line: DelayLine,
    delay: usize,
    gain: f32,
}

impl Allpass {
    fn new(delay: usize, gain: f32) -> Self {
        Allpass {
            line: DelayLine::new(delay + 1),
            delay,
            gain,
        }
    }

    #[inline]
    fn tick(&mut self, x: f32) -> f32 {
        let delayed = self.line.read(self.delay);
        let y = -self.gain * x + delayed;
        self.line.push(x + self.gain * y);
        y
    }

    fn clear(&mut self) {
        self.line.clear();
    }
}

/// A classic Schroeder reverb.
pub struct Reverb {
    combs: [Vec<Comb>; 2],
    allpasses: [Vec<Allpass>; 2],
    mix: f32,
}

/// Comb delays (samples at 44.1 kHz), from the classic Freeverb tuning.
const COMB_DELAYS: [usize; 4] = [1557, 1617, 1491, 1422];
/// Allpass delays.
const ALLPASS_DELAYS: [usize; 2] = [225, 556];
/// Right-channel detune (samples).
const STEREO_SPREAD: usize = 23;

impl Reverb {
    /// Reverb with tail length set by `room` in `[0, 1]`, high-frequency
    /// `damp` in `[0, 1]`, and dry/wet `mix`.
    pub fn new(sample_rate: u32, room: f32, damp: f32, mix: f32) -> Self {
        let scale = sample_rate as f32 / 44_100.0;
        let room = room.clamp(0.0, 1.0);
        let damp = damp.clamp(0.0, 0.99);
        let feedback = 0.7 + 0.28 * room;
        let make = |spread: usize| -> (Vec<Comb>, Vec<Allpass>) {
            (
                COMB_DELAYS
                    .iter()
                    .map(|&d| Comb::new(((d + spread) as f32 * scale) as usize, feedback, damp))
                    .collect(),
                ALLPASS_DELAYS
                    .iter()
                    .map(|&d| Allpass::new(((d + spread) as f32 * scale) as usize, 0.5))
                    .collect(),
            )
        };
        let (cl, al) = make(0);
        let (cr, ar) = make(STEREO_SPREAD);
        Reverb {
            combs: [cl, cr],
            allpasses: [al, ar],
            mix: mix.clamp(0.0, 1.0),
        }
    }
}

impl Effect for Reverb {
    fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            for ch in 0..channels.min(2) {
                let dry = buf.sample(ch, i);
                let mut wet = 0.0;
                for comb in &mut self.combs[ch] {
                    wet += comb.tick(dry);
                }
                wet *= 0.25;
                for ap in &mut self.allpasses[ch] {
                    wet = ap.tick(wet);
                }
                buf.set_sample(ch, i, dry * (1.0 - self.mix) + wet * self.mix);
            }
        }
    }

    fn reset(&mut self) {
        for ch in 0..2 {
            for c in &mut self.combs[ch] {
                c.clear();
            }
            for a in &mut self.allpasses[ch] {
                a.clear();
            }
        }
    }

    fn name(&self) -> &'static str {
        "reverb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_produces_a_decaying_tail() {
        let mut rv = Reverb::new(44_100, 0.6, 0.3, 1.0);
        let mut first = AudioBuf::from_fn(2, 128, |_, i| if i == 0 { 1.0 } else { 0.0 });
        rv.process(&mut first);
        // Feed silence; the tail must appear and then decay.
        let mut peak_early = 0.0f32;
        let mut peak_late = 0.0f32;
        for block in 0..400 {
            let mut silence = AudioBuf::zeroed(2, 128);
            rv.process(&mut silence);
            let p = silence.peak();
            if block < 40 {
                peak_early = peak_early.max(p);
            }
            if block > 350 {
                peak_late = peak_late.max(p);
            }
        }
        assert!(peak_early > 1e-3, "no reverb tail: {peak_early}");
        assert!(
            peak_late < peak_early * 0.5,
            "tail not decaying: early {peak_early}, late {peak_late}"
        );
    }

    #[test]
    fn longer_room_means_longer_tail() {
        let tail_energy = |room: f32| -> f32 {
            let mut rv = Reverb::new(44_100, room, 0.2, 1.0);
            let mut first = AudioBuf::from_fn(2, 128, |_, i| if i == 0 { 1.0 } else { 0.0 });
            rv.process(&mut first);
            let mut energy = 0.0;
            for block in 0..300 {
                let mut silence = AudioBuf::zeroed(2, 128);
                rv.process(&mut silence);
                if block > 100 {
                    energy += silence.energy();
                }
            }
            energy
        };
        assert!(tail_energy(0.9) > tail_energy(0.1) * 2.0);
    }

    #[test]
    fn stereo_channels_decorrelate() {
        let mut rv = Reverb::new(44_100, 0.7, 0.2, 1.0);
        let mut buf = AudioBuf::from_fn(2, 2048, |_, i| if i == 0 { 1.0 } else { 0.0 });
        rv.process(&mut buf);
        let mut diff = 0.0f32;
        for i in 1600..2048 {
            diff += (buf.sample(0, i) - buf.sample(1, i)).abs();
        }
        assert!(diff > 1e-3, "channels identical: spread not applied");
    }

    #[test]
    fn stable_on_sustained_input() {
        let mut rv = Reverb::new(44_100, 0.95, 0.1, 0.5);
        for k in 0..300 {
            let mut buf =
                AudioBuf::from_fn(2, 128, |_, i| 0.8 * ((k * 128 + i) as f32 * 0.2).sin());
            rv.process(&mut buf);
            assert!(buf.is_finite());
            assert!(buf.peak() < 10.0, "reverb unstable: {}", buf.peak());
        }
    }
}
