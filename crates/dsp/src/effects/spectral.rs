//! Spectral band filter ("telephone" effect): per-block FFT band masking.
//!
//! §III-B: "audio effects heavily rely on core algorithms such as Fourier
//! transformation". This effect is the FFT consumer in the effect family:
//! each 128-sample block (conveniently a power of two) is transformed,
//! bins outside the pass band are attenuated, and the block is transformed
//! back. Block-wise processing without overlap introduces mild frame
//! artifacts — part of the lo-fi "telephone voice" character DJs use it
//! for.

use crate::buffer::AudioBuf;
use crate::effects::Effect;
use crate::fft::{Complex, Fft};

/// FFT band-pass effect.
pub struct SpectralFilter {
    low_hz: f32,
    high_hz: f32,
    mix: f32,
    sample_rate: f32,
    scratch: Vec<Complex>,
    /// FFT plan, built lazily for the host's block size and reused for
    /// every subsequent block (no per-block trigonometry).
    plan: Option<Fft>,
}

impl SpectralFilter {
    /// Pass band `[low_hz, high_hz]` with dry/wet `mix`.
    pub fn new(sample_rate: u32, low_hz: f32, high_hz: f32, mix: f32) -> Self {
        SpectralFilter {
            low_hz: low_hz.max(0.0),
            high_hz: high_hz.max(low_hz),
            mix: mix.clamp(0.0, 1.0),
            sample_rate: sample_rate as f32,
            scratch: Vec::new(),
            plan: None,
        }
    }

    /// The classic telephone voice: 300–3400 Hz, fully wet.
    pub fn telephone(sample_rate: u32) -> Self {
        Self::new(sample_rate, 300.0, 3_400.0, 1.0)
    }

    fn process_channel(&mut self, buf: &mut AudioBuf, ch: usize) {
        let n = buf.frames();
        if !n.is_power_of_two() || n < 2 {
            return; // non-power-of-two hosts bypass rather than crash
        }
        if self.plan.as_ref().map(Fft::len) != Some(n) {
            self.plan = Some(Fft::new(n));
        }
        self.scratch.clear();
        self.scratch
            .extend(buf.channel(ch).iter().map(|&s| Complex::new(s, 0.0)));
        let plan = self.plan.as_mut().expect("plan built above");
        plan.process(&mut self.scratch, false);
        let bin_hz = self.sample_rate / n as f32;
        for k in 0..n {
            // Frequency of bin k (mirror bins share the magnitude).
            let f = if k <= n / 2 {
                k as f32 * bin_hz
            } else {
                (n - k) as f32 * bin_hz
            };
            if f < self.low_hz || f > self.high_hz {
                self.scratch[k] = Complex::new(0.0, 0.0);
            }
        }
        let plan = self.plan.as_mut().expect("plan built above");
        plan.process(&mut self.scratch, true);
        let dry_gain = 1.0 - self.mix;
        for (dry, wet) in buf.channel_mut(ch).iter_mut().zip(&self.scratch) {
            *dry = *dry * dry_gain + wet.re * self.mix;
        }
    }
}

impl Effect for SpectralFilter {
    fn process(&mut self, buf: &mut AudioBuf) {
        for ch in 0..buf.channels().min(2) {
            self.process_channel(buf, ch);
        }
    }

    fn reset(&mut self) {
        // Blockwise and stateless across blocks.
    }

    fn name(&self) -> &'static str {
        "spectral-filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone_block(freq: f32) -> AudioBuf {
        AudioBuf::from_fn(1, 128, |_, i| {
            (core::f32::consts::TAU * freq * i as f32 / 44_100.0).sin() * 0.7
        })
    }

    #[test]
    fn telephone_band_passes_voice_frequencies() {
        let mut fx = SpectralFilter::telephone(44_100);
        // 1 kHz ≈ bin 2.9 at 128 samples; use an exact bin: bin 3 = 1033 Hz.
        let mut voice = tone_block(3.0 * 44_100.0 / 128.0);
        let before = voice.rms();
        fx.process(&mut voice);
        assert!(voice.rms() > before * 0.7, "voice band attenuated");
    }

    #[test]
    fn telephone_band_rejects_bass_and_treble() {
        let mut fx = SpectralFilter::telephone(44_100);
        // Bin 0 region: 60 Hz is inside bin 0 leakage — use DC-free exact
        // bins: bin 0 is DC; 128-sample bins are 344.5 Hz apart, so the
        // lowest non-DC bin (344.5 Hz) is *inside* the telephone band. Use
        // a high bin for rejection instead: bin 30 = 10.3 kHz.
        let mut treble = tone_block(30.0 * 44_100.0 / 128.0);
        fx.process(&mut treble);
        assert!(treble.rms() < 0.05, "treble leaked: {}", treble.rms());
        // And DC is removed.
        let mut dc = AudioBuf::from_fn(1, 128, |_, _| 0.5);
        fx.process(&mut dc);
        assert!(dc.rms() < 0.05, "DC leaked: {}", dc.rms());
    }

    #[test]
    fn dry_mix_is_transparent() {
        let mut fx = SpectralFilter::new(44_100, 300.0, 3_400.0, 0.0);
        let orig = tone_block(5_000.0);
        let mut buf = orig.clone();
        fx.process(&mut buf);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn stereo_channels_processed_independently() {
        let mut fx = SpectralFilter::telephone(44_100);
        let mut buf = AudioBuf::from_fn(2, 128, |ch, i| {
            let f = if ch == 0 { 1_033.0 } else { 10_335.0 };
            (core::f32::consts::TAU * f * i as f32 / 44_100.0).sin() * 0.7
        });
        fx.process(&mut buf);
        let mut left = 0.0f32;
        let mut right = 0.0f32;
        for i in 0..128 {
            left += buf.sample(0, i).powi(2);
            right += buf.sample(1, i).powi(2);
        }
        assert!(left > right * 20.0, "left {left}, right {right}");
    }

    #[test]
    fn non_power_of_two_blocks_bypass() {
        let mut fx = SpectralFilter::telephone(44_100);
        let orig = AudioBuf::from_fn(1, 100, |_, i| (i as f32 * 0.3).sin());
        let mut buf = orig.clone();
        fx.process(&mut buf);
        assert_eq!(buf, orig);
    }
}
