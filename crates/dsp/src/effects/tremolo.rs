//! Tremolo: LFO amplitude modulation.

use crate::buffer::AudioBuf;
use crate::effects::Effect;
use crate::osc::{Oscillator, Waveform};

/// Amplitude modulation by a sine LFO: gain sweeps `[1 - depth, 1]`.
pub struct Tremolo {
    lfo: Oscillator,
    depth: f32,
    sample_rate: f32,
}

impl Tremolo {
    /// Tremolo at `rate_hz` with `depth` in `[0, 1]`.
    pub fn new(sample_rate: u32, rate_hz: f32, depth: f32) -> Self {
        Tremolo {
            lfo: Oscillator::new(Waveform::Sine, rate_hz, sample_rate),
            depth: depth.clamp(0.0, 1.0),
            sample_rate: sample_rate as f32,
        }
    }
}

impl Effect for Tremolo {
    fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            let lfo = self.lfo.next_sample(); // [-1, 1]
            let gain = 1.0 - self.depth * (0.5 + 0.5 * lfo);
            for ch in 0..channels.min(2) {
                let s = buf.sample(ch, i);
                buf.set_sample(ch, i, s * gain);
            }
        }
    }

    fn reset(&mut self) {
        self.lfo = Oscillator::new(Waveform::Sine, self.lfo.freq(), self.sample_rate as u32);
    }

    fn name(&self) -> &'static str {
        "tremolo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_never_exceeds_unity() {
        let mut fx = Tremolo::new(44_100, 100.0, 1.0);
        let mut buf = AudioBuf::from_fn(2, 4096, |_, _| 1.0);
        fx.process(&mut buf);
        assert!(buf.peak() <= 1.0 + 1e-6);
        // With depth 1 the gain reaches ~0 somewhere in a full LFO period.
        let min = buf.samples().iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(min < 0.05, "min gain {min}");
    }

    #[test]
    fn zero_depth_is_transparent() {
        let mut fx = Tremolo::new(44_100, 5.0, 0.0);
        let orig = AudioBuf::from_fn(1, 128, |_, i| (i as f32 * 0.1).sin());
        let mut buf = orig.clone();
        fx.process(&mut buf);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn modulation_at_requested_rate() {
        // 344.53 cycles/buffer-rate: use a rate that completes one period in
        // exactly 441 samples and check periodicity.
        let mut fx = Tremolo::new(44_100, 100.0, 0.5);
        let mut buf = AudioBuf::from_fn(1, 882, |_, _| 1.0);
        fx.process(&mut buf);
        for i in 0..441 {
            assert!(
                (buf.sample(0, i) - buf.sample(0, i + 441)).abs() < 1e-3,
                "not periodic at {i}"
            );
        }
    }
}
