//! Stereo widener: mid/side balance adjustment.

use crate::buffer::AudioBuf;
use crate::effects::Effect;

/// Scales the side (L-R) component relative to the mid (L+R) component.
/// `width` 1.0 is transparent, 0.0 collapses to mono, > 1.0 widens.
#[derive(Debug, Clone)]
pub struct StereoWidener {
    width: f32,
}

impl StereoWidener {
    /// Widener with `width` clamped to `[0, 2]`.
    pub fn new(width: f32) -> Self {
        StereoWidener {
            width: width.clamp(0.0, 2.0),
        }
    }
}

impl Effect for StereoWidener {
    fn process(&mut self, buf: &mut AudioBuf) {
        if buf.channels() != 2 {
            return; // mono signals have no stereo image to widen
        }
        let frames = buf.frames();
        for i in 0..frames {
            let l = buf.sample(0, i);
            let r = buf.sample(1, i);
            let mid = 0.5 * (l + r);
            let side = 0.5 * (l - r) * self.width;
            buf.set_sample(0, i, mid + side);
            buf.set_sample(1, i, mid - side);
        }
    }

    fn reset(&mut self) {
        // Stateless.
    }

    fn name(&self) -> &'static str {
        "stereo-widener"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_zero_collapses_to_mono() {
        let mut fx = StereoWidener::new(0.0);
        let mut buf = AudioBuf::from_fn(2, 8, |ch, i| if ch == 0 { i as f32 } else { -(i as f32) });
        fx.process(&mut buf);
        for i in 0..8 {
            assert!((buf.sample(0, i) - buf.sample(1, i)).abs() < 1e-6);
        }
    }

    #[test]
    fn width_one_is_transparent() {
        let mut fx = StereoWidener::new(1.0);
        let orig = AudioBuf::from_fn(2, 8, |ch, i| (ch as f32 + 1.0) * i as f32 * 0.1);
        let mut buf = orig.clone();
        fx.process(&mut buf);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn widening_preserves_mid() {
        let mut fx = StereoWidener::new(2.0);
        let mut buf = AudioBuf::from_fn(2, 4, |ch, _| if ch == 0 { 0.8 } else { 0.2 });
        fx.process(&mut buf);
        // Mid = 0.5 stays; side doubled: l = 0.5 + 0.6, r = 0.5 - 0.6.
        assert!((buf.sample(0, 0) - 1.1).abs() < 1e-6);
        assert!((buf.sample(1, 0) + 0.1).abs() < 1e-6);
    }

    #[test]
    fn mono_input_untouched() {
        let mut fx = StereoWidener::new(2.0);
        let orig = AudioBuf::from_fn(1, 8, |_, i| i as f32 * 0.05);
        let mut buf = orig.clone();
        fx.process(&mut buf);
        assert_eq!(buf, orig);
    }
}
