//! Channel-strip equalization: a 3-band DJ EQ and the single-knob
//! channel filter, matching the "Channel: Filter, EQ" nodes of Fig. 3.

use crate::biquad::{Biquad, FilterKind};
use crate::buffer::AudioBuf;

/// A classic DJ mixer 3-band EQ: low shelf, mid peaking, high shelf.
///
/// Band gains range from full kill (-26 dB, like an "isolator" EQ) to
/// +12 dB boost. The three sections are stored as one contiguous chain so
/// [`ThreeBandEq::process`] runs a single fused buffer pass.
#[derive(Debug, Clone)]
pub struct ThreeBandEq {
    /// `[low shelf, mid peaking, high shelf]`.
    sections: [Biquad; 3],
    gains_db: [f32; 3],
    sample_rate: u32,
}

const LOW: usize = 0;
const MID: usize = 1;
const HIGH: usize = 2;

/// Crossover frequencies of the EQ bands (Hz).
const LOW_FREQ: f32 = 250.0;
const MID_FREQ: f32 = 1_200.0;
const HIGH_FREQ: f32 = 5_000.0;
/// Gain limits (dB).
const MIN_GAIN_DB: f32 = -26.0;
const MAX_GAIN_DB: f32 = 12.0;

impl ThreeBandEq {
    /// A flat EQ.
    pub fn new(sample_rate: u32) -> Self {
        let mut eq = ThreeBandEq {
            sections: [
                Biquad::design(
                    FilterKind::LowShelf { gain_db: 0.0 },
                    LOW_FREQ,
                    0.7,
                    sample_rate,
                ),
                Biquad::design(
                    FilterKind::Peaking { gain_db: 0.0 },
                    MID_FREQ,
                    0.9,
                    sample_rate,
                ),
                Biquad::design(
                    FilterKind::HighShelf { gain_db: 0.0 },
                    HIGH_FREQ,
                    0.7,
                    sample_rate,
                ),
            ],
            gains_db: [0.0; 3],
            sample_rate,
        };
        eq.set_gains(0.0, 0.0, 0.0);
        eq
    }

    /// Set band gains in dB; each is clamped into `[-26, +12]`.
    pub fn set_gains(&mut self, low_db: f32, mid_db: f32, high_db: f32) {
        let clamp = |g: f32| g.clamp(MIN_GAIN_DB, MAX_GAIN_DB);
        self.gains_db = [clamp(low_db), clamp(mid_db), clamp(high_db)];
        self.sections[LOW].set_coeffs(crate::biquad::BiquadCoeffs::design(
            FilterKind::LowShelf {
                gain_db: self.gains_db[0],
            },
            LOW_FREQ,
            0.7,
            self.sample_rate,
        ));
        self.sections[MID].set_coeffs(crate::biquad::BiquadCoeffs::design(
            FilterKind::Peaking {
                gain_db: self.gains_db[1],
            },
            MID_FREQ,
            0.9,
            self.sample_rate,
        ));
        self.sections[HIGH].set_coeffs(crate::biquad::BiquadCoeffs::design(
            FilterKind::HighShelf {
                gain_db: self.gains_db[2],
            },
            HIGH_FREQ,
            0.7,
            self.sample_rate,
        ));
    }

    /// Current band gains in dB.
    pub fn gains_db(&self) -> [f32; 3] {
        self.gains_db
    }

    /// Clear filter state.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Equalize a buffer in place (one fused three-section pass).
    pub fn process(&mut self, buf: &mut AudioBuf) {
        let _t = crate::kprof::timer(crate::kprof::Family::Eq);
        crate::biquad::chain_dispatch(&mut self.sections, buf);
    }

    /// Scalar reference for [`ThreeBandEq::process`]: one buffer pass per
    /// band, the seed's algorithm. Bit-identical to the fused pass.
    pub fn process_scalar(&mut self, buf: &mut AudioBuf) {
        crate::biquad::process_chain_scalar(&mut self.sections, buf);
    }
}

/// The single-knob DJ channel filter: the knob sweeps from lowpass
/// (negative positions) through neutral (center) to highpass (positive).
#[derive(Debug, Clone)]
pub struct ChannelFilter {
    filter: Biquad,
    position: f32,
    sample_rate: u32,
}

impl ChannelFilter {
    /// Neutral filter.
    pub fn new(sample_rate: u32) -> Self {
        let mut cf = ChannelFilter {
            filter: Biquad::new(crate::biquad::BiquadCoeffs::identity()),
            position: 0.0,
            sample_rate,
        };
        cf.set_position(0.0);
        cf
    }

    /// Set the knob position in `[-1, 1]`. Near the center (|pos| < 0.02)
    /// the filter is bypassed.
    pub fn set_position(&mut self, pos: f32) {
        self.position = pos.clamp(-1.0, 1.0);
        let coeffs = if self.position.abs() < 0.02 {
            crate::biquad::BiquadCoeffs::identity()
        } else if self.position < 0.0 {
            // Lowpass sweeping from 20 kHz down toward 100 Hz.
            let t = -self.position;
            let f = 20_000.0 * (100.0f32 / 20_000.0).powf(t);
            crate::biquad::BiquadCoeffs::design(FilterKind::Lowpass, f, 1.0, self.sample_rate)
        } else {
            // Highpass sweeping from 20 Hz up toward 8 kHz.
            let t = self.position;
            let f = 20.0 * (8_000.0f32 / 20.0).powf(t);
            crate::biquad::BiquadCoeffs::design(FilterKind::Highpass, f, 1.0, self.sample_rate)
        };
        self.filter.set_coeffs(coeffs);
    }

    /// Current knob position.
    pub fn position(&self) -> f32 {
        self.position
    }

    /// Clear filter state.
    pub fn reset(&mut self) {
        self.filter.reset();
    }

    /// Filter a buffer in place.
    pub fn process(&mut self, buf: &mut AudioBuf) {
        self.filter.process(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::{Oscillator, Waveform};

    fn tone_buf(freq: f32, frames: usize) -> AudioBuf {
        let mut osc = Oscillator::new(Waveform::Sine, freq, 44_100);
        let mut buf = AudioBuf::zeroed(1, frames);
        for s in buf.samples_mut() {
            *s = osc.next_sample();
        }
        buf
    }

    #[test]
    fn flat_eq_is_nearly_transparent() {
        let mut eq = ThreeBandEq::new(44_100);
        let mut buf = tone_buf(1000.0, 4096);
        let before = buf.rms();
        eq.process(&mut buf);
        eq.process(&mut buf); // settle
        assert!((buf.rms() / before - 1.0).abs() < 0.05);
    }

    #[test]
    fn low_kill_removes_bass() {
        let mut eq = ThreeBandEq::new(44_100);
        eq.set_gains(-26.0, 0.0, 0.0);
        let mut bass = tone_buf(60.0, 8192);
        let before = bass.rms();
        eq.process(&mut bass);
        let mut settle = tone_buf(60.0, 8192);
        eq.process(&mut settle);
        assert!(
            settle.rms() < before * 0.2,
            "bass remaining {}",
            settle.rms() / before
        );
    }

    #[test]
    fn gains_clamped() {
        let mut eq = ThreeBandEq::new(44_100);
        eq.set_gains(-100.0, 100.0, 0.0);
        assert_eq!(eq.gains_db(), [-26.0, 12.0, 0.0]);
    }

    #[test]
    fn channel_filter_center_is_bypass() {
        let mut cf = ChannelFilter::new(44_100);
        cf.set_position(0.0);
        let mut buf = tone_buf(500.0, 512);
        let orig = buf.clone();
        cf.process(&mut buf);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn channel_filter_left_kills_treble() {
        let mut cf = ChannelFilter::new(44_100);
        cf.set_position(-0.9);
        let mut hi = tone_buf(10_000.0, 8192);
        cf.process(&mut hi);
        let mut settled = tone_buf(10_000.0, 8192);
        cf.process(&mut settled);
        assert!(settled.rms() < 0.05, "treble remaining {}", settled.rms());
    }

    #[test]
    fn channel_filter_right_kills_bass() {
        let mut cf = ChannelFilter::new(44_100);
        cf.set_position(0.9);
        let mut lo = tone_buf(60.0, 8192);
        cf.process(&mut lo);
        let mut settled = tone_buf(60.0, 8192);
        cf.process(&mut settled);
        assert!(settled.rms() < 0.1, "bass remaining {}", settled.rms());
    }

    #[test]
    fn fused_eq_matches_scalar_exactly() {
        let mut fused = ThreeBandEq::new(44_100);
        let mut scalar = ThreeBandEq::new(44_100);
        fused.set_gains(-6.0, 4.0, 9.0);
        scalar.set_gains(-6.0, 4.0, 9.0);
        let mut osc = Oscillator::new(Waveform::Sine, 523.0, 44_100);
        for _ in 0..6 {
            let buf = AudioBuf::from_fn(2, 97, |_, _| osc.next_sample() * 0.8);
            let mut a = buf.clone();
            let mut b = buf;
            fused.process(&mut a);
            scalar.process_scalar(&mut b);
            assert_eq!(a.samples(), b.samples());
        }
    }

    #[test]
    fn eq_stable_across_parameter_sweeps() {
        let mut eq = ThreeBandEq::new(44_100);
        let mut buf = tone_buf(440.0, 128);
        for i in 0..100 {
            let g = (i as f32 / 100.0) * 24.0 - 12.0;
            eq.set_gains(g, -g, g);
            eq.process(&mut buf);
            assert!(buf.is_finite());
        }
    }
}
