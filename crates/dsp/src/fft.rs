//! Radix-2 FFT and spectral helpers.
//!
//! §III-B of the paper notes that "audio effects heavily rely on core
//! algorithms such as Fourier transformation". This is a from-scratch
//! iterative radix-2 Cooley–Tukey implementation used by the spectral
//! effects and the master spectrum analyzer.

use core::f32::consts::TAU;

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f32,
    pub im: f32,
}

impl Complex {
    /// Construct from real and imaginary parts.
    pub fn new(re: f32, im: f32) -> Self {
        Complex { re, im }
    }

    /// Magnitude.
    pub fn abs(self) -> f32 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// Complex multiplication.
    #[inline]
    #[allow(clippy::should_implement_trait)] // tiny internal helper, not an ops overload
    pub fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    #[inline]
    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    #[inline]
    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// In-place FFT. `inverse` selects the inverse transform (which also
/// divides by the length, so `ifft(fft(x)) == x`).
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * TAU / len as f32;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f32;
        for c in data {
            c.re *= scale;
            c.im *= scale;
        }
    }
}

/// Forward FFT of a real signal; returns the full complex spectrum.
///
/// # Panics
/// Panics unless `signal.len()` is a power of two.
pub fn fft_real(signal: &[f32]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
    fft_inplace(&mut data, false);
    data
}

/// Magnitude spectrum of a real signal (first `n/2 + 1` bins).
pub fn magnitude_spectrum(signal: &[f32]) -> Vec<f32> {
    let spec = fft_real(signal);
    let n = spec.len();
    spec.iter().take(n / 2 + 1).map(|c| c.abs()).collect()
}

/// Index of the strongest non-DC bin and its frequency in Hz.
pub fn dominant_frequency(signal: &[f32], sample_rate: u32) -> f32 {
    let mags = magnitude_spectrum(signal);
    let (idx, _) = mags
        .iter()
        .enumerate()
        .skip(1)
        .fold(
            (0usize, 0.0f32),
            |best, (i, &m)| {
                if m > best.1 {
                    (i, m)
                } else {
                    best
                }
            },
        );
    idx as f32 * sample_rate as f32 / signal.len() as f32
}

/// A Hann window of length `n`.
pub fn hann_window(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| 0.5 - 0.5 * (TAU * i as f32 / n as f32).cos())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, cycles: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (TAU * cycles * i as f32 / n as f32).sin())
            .collect()
    }

    #[test]
    fn round_trip_identity() {
        let signal = sine(256, 7.0);
        let mut data: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for (c, &s) in data.iter().zip(&signal) {
            assert!((c.re - s).abs() < 1e-4, "{} vs {}", c.re, s);
            assert!(c.im.abs() < 1e-4);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_its_bin() {
        let signal = sine(512, 17.0);
        let mags = magnitude_spectrum(&signal);
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 17);
        // A full-scale sine of exact bin frequency: |X[k]| = n/2.
        assert!((mags[17] - 256.0).abs() < 1.0, "{}", mags[17]);
    }

    #[test]
    fn dominant_frequency_detects_tone() {
        let sr = 44_100u32;
        let n = 1024;
        // 10 full cycles in 1024 samples → 10 * 44100/1024 ≈ 430.7 Hz.
        let signal = sine(n, 10.0);
        let f = dominant_frequency(&signal, sr);
        assert!((f - 430.66).abs() < 1.0, "f = {f}");
    }

    #[test]
    fn parseval_energy_conservation() {
        let signal = sine(128, 3.0);
        let time_energy: f32 = signal.iter().map(|s| s * s).sum();
        let spec = fft_real(&signal);
        let freq_energy: f32 =
            spec.iter().map(|c| c.abs() * c.abs()).sum::<f32>() / signal.len() as f32;
        assert!(
            (time_energy - freq_energy).abs() < 1e-2 * time_energy,
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn linearity() {
        let a = sine(64, 2.0);
        let b = sine(64, 5.0);
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft_real(&a);
        let fb = fft_real(&b);
        let fsum = fft_real(&sum);
        for i in 0..64 {
            assert!((fa[i].re + fb[i].re - fsum[i].re).abs() < 1e-3);
            assert!((fa[i].im + fb[i].im - fsum[i].im).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        fft_real(&[0.0; 100]);
    }

    #[test]
    fn hann_window_shape() {
        let w = hann_window(64);
        assert!(w[0] < 1e-6);
        assert!((w[32] - 1.0).abs() < 1e-3);
        assert_eq!(w.len(), 64);
    }

    #[test]
    fn tiny_transforms() {
        let mut one = vec![Complex::new(3.0, 0.0)];
        fft_inplace(&mut one, false);
        assert_eq!(one[0].re, 3.0);
        let mut two = vec![Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)];
        fft_inplace(&mut two, false);
        assert!((two[0].re - 3.0).abs() < 1e-6);
        assert!((two[1].re + 1.0).abs() < 1e-6);
    }
}
