//! Radix-2 FFT and spectral helpers.
//!
//! §III-B of the paper notes that "audio effects heavily rely on core
//! algorithms such as Fourier transformation". This is a from-scratch
//! iterative radix-2 Cooley–Tukey implementation used by the spectral
//! effects and the master spectrum analyzer.
//!
//! Two entry points:
//!
//! * [`fft_inplace`] — the original one-shot transform; recomputes twiddle
//!   factors incrementally on every call.
//! * [`Fft`] — a reusable plan that precomputes the bit-reversal table and
//!   per-stage twiddles once, then runs butterflies over split re/im planes
//!   4 lanes at a time. The plan's scalar and vector paths share the same
//!   twiddle tables and evaluate the same formulas element-for-element, so
//!   they are bit-identical to each other (and the scalar path reproduces
//!   [`fft_inplace`] exactly, because the tables are built with the same
//!   incremental recurrence).

use crate::simd::{self, F32x4};
use core::f32::consts::TAU;

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f32,
    pub im: f32,
}

impl Complex {
    /// Construct from real and imaginary parts.
    pub fn new(re: f32, im: f32) -> Self {
        Complex { re, im }
    }

    /// Magnitude.
    pub fn abs(self) -> f32 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// Complex multiplication.
    #[inline]
    #[allow(clippy::should_implement_trait)] // tiny internal helper, not an ops overload
    pub fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    #[inline]
    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    #[inline]
    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// In-place FFT. `inverse` selects the inverse transform (which also
/// divides by the length, so `ifft(fft(x)) == x`).
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let _t = crate::kprof::timer(crate::kprof::Family::Fft);
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * TAU / len as f32;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f32;
        for c in data {
            c.re *= scale;
            c.im *= scale;
        }
    }
}

/// A reusable FFT plan for one transform length.
///
/// Precomputes per-stage twiddle factors (both directions) and owns the
/// split re/im scratch planes the butterflies run over, so repeated
/// transforms (the spectral effect runs two per block per channel) do no
/// trigonometry and no allocation.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Forward twiddles, stage-major: stages `len = 2, 4, .., n`, each
    /// contributing `len/2` factors.
    fwd_re: Vec<f32>,
    fwd_im: Vec<f32>,
    /// Inverse twiddles in the same layout.
    inv_re: Vec<f32>,
    inv_im: Vec<f32>,
    scratch_re: Vec<f32>,
    scratch_im: Vec<f32>,
}

/// Twiddle tables for one direction, built with the same incremental
/// `w = w * wlen` recurrence as [`fft_inplace`] so plan outputs match it
/// bit-for-bit.
fn twiddle_tables(n: usize, sign: f32) -> (Vec<f32>, Vec<f32>) {
    let count = n.saturating_sub(1);
    let mut re = Vec::with_capacity(count);
    let mut im = Vec::with_capacity(count);
    let mut len = 2;
    while len <= n {
        let ang = sign * TAU / len as f32;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut w = Complex::new(1.0, 0.0);
        for _ in 0..len / 2 {
            re.push(w.re);
            im.push(w.im);
            w = w.mul(wlen);
        }
        len <<= 1;
    }
    (re, im)
}

impl Fft {
    /// Plan a transform of length `n`.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two");
        let (fwd_re, fwd_im) = twiddle_tables(n, -1.0);
        let (inv_re, inv_im) = twiddle_tables(n, 1.0);
        Fft {
            n,
            fwd_re,
            fwd_im,
            inv_re,
            inv_im,
            scratch_re: vec![0.0; n],
            scratch_im: vec![0.0; n],
        }
    }

    /// The transform length this plan serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is zero (it never is; for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place transform of `data` (`inverse` also divides by the length,
    /// so `ifft(fft(x)) == x`).
    ///
    /// # Panics
    /// Panics unless `data.len()` equals the planned length.
    pub fn process(&mut self, data: &mut [Complex], inverse: bool) {
        let _t = crate::kprof::timer(crate::kprof::Family::Fft);
        self.run(data, inverse, simd::wide_enabled());
    }

    /// Scalar reference for [`Fft::process`]; bit-identical to the vector
    /// path (and to [`fft_inplace`]).
    pub fn process_scalar(&mut self, data: &mut [Complex], inverse: bool) {
        self.run(data, inverse, false);
    }

    fn run(&mut self, data: &mut [Complex], inverse: bool, wide: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "buffer length must match the plan");
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation, then split into planes.
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = ((i as u32).reverse_bits() >> (32 - bits)) as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        for (i, c) in data.iter().enumerate() {
            self.scratch_re[i] = c.re;
            self.scratch_im[i] = c.im;
        }
        let (tw_re, tw_im) = if inverse {
            (&self.inv_re, &self.inv_im)
        } else {
            (&self.fwd_re, &self.fwd_im)
        };
        let mut off = 0;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let wr = &tw_re[off..off + half];
            let wi = &tw_im[off..off + half];
            let mut i = 0;
            while i < n {
                let (ur, vr) = self.scratch_re[i..i + len].split_at_mut(half);
                let (ui, vi) = self.scratch_im[i..i + len].split_at_mut(half);
                butterflies(ur, vr, ui, vi, wr, wi, wide);
                i += len;
            }
            off += half;
            len <<= 1;
        }
        if inverse {
            let scale = 1.0 / n as f32;
            for (i, c) in data.iter_mut().enumerate() {
                *c = Complex::new(self.scratch_re[i] * scale, self.scratch_im[i] * scale);
            }
        } else {
            for (i, c) in data.iter_mut().enumerate() {
                *c = Complex::new(self.scratch_re[i], self.scratch_im[i]);
            }
        }
    }
}

/// One stage's butterflies over a split block: `u ± w·v` with `u` in
/// `(ur, ui)` and `v` in `(vr, vi)`. The vector and scalar loops evaluate
/// the identical per-element formula (no reassociation), so the paths are
/// bit-identical.
fn butterflies(
    ur: &mut [f32],
    vr: &mut [f32],
    ui: &mut [f32],
    vi: &mut [f32],
    wr: &[f32],
    wi: &[f32],
    wide: bool,
) {
    let half = wr.len();
    let mut k = 0;
    if wide {
        while k + 4 <= half {
            let wrv = F32x4::load(&wr[k..]);
            let wiv = F32x4::load(&wi[k..]);
            let vrv = F32x4::load(&vr[k..]);
            let viv = F32x4::load(&vi[k..]);
            let tr = vrv.mul(wrv).sub(viv.mul(wiv));
            let ti = vrv.mul(wiv).add(viv.mul(wrv));
            let urv = F32x4::load(&ur[k..]);
            let uiv = F32x4::load(&ui[k..]);
            urv.add(tr).store(&mut ur[k..]);
            uiv.add(ti).store(&mut ui[k..]);
            urv.sub(tr).store(&mut vr[k..]);
            uiv.sub(ti).store(&mut vi[k..]);
            k += 4;
        }
    }
    while k < half {
        let tr = vr[k] * wr[k] - vi[k] * wi[k];
        let ti = vr[k] * wi[k] + vi[k] * wr[k];
        let (a, b) = (ur[k], ui[k]);
        ur[k] = a + tr;
        ui[k] = b + ti;
        vr[k] = a - tr;
        vi[k] = b - ti;
        k += 1;
    }
}

/// Forward FFT of a real signal; returns the full complex spectrum.
///
/// # Panics
/// Panics unless `signal.len()` is a power of two.
pub fn fft_real(signal: &[f32]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
    fft_inplace(&mut data, false);
    data
}

/// Magnitude spectrum of a real signal (first `n/2 + 1` bins).
pub fn magnitude_spectrum(signal: &[f32]) -> Vec<f32> {
    let spec = fft_real(signal);
    let n = spec.len();
    spec.iter().take(n / 2 + 1).map(|c| c.abs()).collect()
}

/// Index of the strongest non-DC bin and its frequency in Hz.
pub fn dominant_frequency(signal: &[f32], sample_rate: u32) -> f32 {
    let mags = magnitude_spectrum(signal);
    let (idx, _) = mags
        .iter()
        .enumerate()
        .skip(1)
        .fold(
            (0usize, 0.0f32),
            |best, (i, &m)| {
                if m > best.1 {
                    (i, m)
                } else {
                    best
                }
            },
        );
    idx as f32 * sample_rate as f32 / signal.len() as f32
}

/// A Hann window of length `n`.
pub fn hann_window(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| 0.5 - 0.5 * (TAU * i as f32 / n as f32).cos())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, cycles: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (TAU * cycles * i as f32 / n as f32).sin())
            .collect()
    }

    #[test]
    fn round_trip_identity() {
        let signal = sine(256, 7.0);
        let mut data: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for (c, &s) in data.iter().zip(&signal) {
            assert!((c.re - s).abs() < 1e-4, "{} vs {}", c.re, s);
            assert!(c.im.abs() < 1e-4);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_its_bin() {
        let signal = sine(512, 17.0);
        let mags = magnitude_spectrum(&signal);
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 17);
        // A full-scale sine of exact bin frequency: |X[k]| = n/2.
        assert!((mags[17] - 256.0).abs() < 1.0, "{}", mags[17]);
    }

    #[test]
    fn dominant_frequency_detects_tone() {
        let sr = 44_100u32;
        let n = 1024;
        // 10 full cycles in 1024 samples → 10 * 44100/1024 ≈ 430.7 Hz.
        let signal = sine(n, 10.0);
        let f = dominant_frequency(&signal, sr);
        assert!((f - 430.66).abs() < 1.0, "f = {f}");
    }

    #[test]
    fn parseval_energy_conservation() {
        let signal = sine(128, 3.0);
        let time_energy: f32 = signal.iter().map(|s| s * s).sum();
        let spec = fft_real(&signal);
        let freq_energy: f32 =
            spec.iter().map(|c| c.abs() * c.abs()).sum::<f32>() / signal.len() as f32;
        assert!(
            (time_energy - freq_energy).abs() < 1e-2 * time_energy,
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn linearity() {
        let a = sine(64, 2.0);
        let b = sine(64, 5.0);
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft_real(&a);
        let fb = fft_real(&b);
        let fsum = fft_real(&sum);
        for i in 0..64 {
            assert!((fa[i].re + fb[i].re - fsum[i].re).abs() < 1e-3);
            assert!((fa[i].im + fb[i].im - fsum[i].im).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        fft_real(&[0.0; 100]);
    }

    #[test]
    fn hann_window_shape() {
        let w = hann_window(64);
        assert!(w[0] < 1e-6);
        assert!((w[32] - 1.0).abs() < 1e-3);
        assert_eq!(w.len(), 64);
    }

    #[test]
    fn plan_matches_fft_inplace_exactly() {
        for n in [2usize, 8, 64, 128, 512] {
            let signal = sine(n, 3.0);
            let mut legacy: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
            let mut planned = legacy.clone();
            let mut plan = Fft::new(n);
            for inverse in [false, true] {
                fft_inplace(&mut legacy, inverse);
                plan.process_scalar(&mut planned, inverse);
                for (a, b) in legacy.iter().zip(&planned) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n} inverse={inverse}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n} inverse={inverse}");
                }
            }
        }
    }

    #[test]
    fn plan_wide_matches_scalar_exactly() {
        for n in [2usize, 4, 16, 128, 1024] {
            let signal = sine(n, 5.0);
            let mut a: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.25)).collect();
            let mut b = a.clone();
            let mut plan = Fft::new(n);
            for inverse in [false, true] {
                plan.process(&mut a, inverse);
                plan.process_scalar(&mut b, inverse);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits(), "n={n} inverse={inverse}");
                    assert_eq!(x.im.to_bits(), y.im.to_bits(), "n={n} inverse={inverse}");
                }
            }
        }
    }

    #[test]
    fn plan_round_trip_identity() {
        let signal = sine(256, 7.0);
        let mut plan = Fft::new(256);
        let mut data: Vec<Complex> = signal.iter().map(|&s| Complex::new(s, 0.0)).collect();
        plan.process(&mut data, false);
        plan.process(&mut data, true);
        for (c, &s) in data.iter().zip(&signal) {
            assert!((c.re - s).abs() < 1e-4, "{} vs {}", c.re, s);
            assert!(c.im.abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn plan_rejects_non_power_of_two() {
        Fft::new(100);
    }

    #[test]
    fn tiny_transforms() {
        let mut one = vec![Complex::new(3.0, 0.0)];
        fft_inplace(&mut one, false);
        assert_eq!(one[0].re, 3.0);
        let mut two = vec![Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)];
        fft_inplace(&mut two, false);
        assert!((two[0].re - 3.0).abs() < 1e-6);
        assert!((two[1].re + 1.0).abs() < 1e-6);
    }
}
