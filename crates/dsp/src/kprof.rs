//! Per-kernel-family time accounting for hotspot analysis.
//!
//! `hotspot_analysis` (E1) needs to break the engine's `apc/graph` share
//! down by DSP kernel family (biquad / eq / mix / fft / stretch /
//! dynamics). The executors run nodes on worker threads, so the accounting
//! lives here, at the kernel call sites, as a handful of global atomics:
//! each public kernel entry point opens a [`timer`] for its family and the
//! elapsed nanoseconds accumulate into a per-family counter.
//!
//! Disabled (the default) the cost is one relaxed load per kernel call and
//! no `Instant` reads — far below timer resolution — so the real-time hot
//! path is unaffected; only the profiling binary enables it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The kernel families `hotspot_analysis` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Biquad,
    Eq,
    Mix,
    Fft,
    Stretch,
    Dynamics,
}

impl Family {
    /// Every family, in report order.
    pub const ALL: [Family; 6] = [
        Family::Biquad,
        Family::Eq,
        Family::Mix,
        Family::Fft,
        Family::Stretch,
        Family::Dynamics,
    ];

    /// Short lowercase label used in report keys.
    pub fn label(self) -> &'static str {
        match self {
            Family::Biquad => "biquad",
            Family::Eq => "eq",
            Family::Mix => "mix",
            Family::Fft => "fft",
            Family::Stretch => "stretch",
            Family::Dynamics => "dynamics",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTALS: [AtomicU64; 6] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Turn family accounting on or off (process-wide).
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Release);
}

/// True when kernel entry points should time themselves.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drain and reset the per-family nanosecond totals, in [`Family::ALL`]
/// order.
pub fn take_totals() -> [u64; 6] {
    let mut out = [0u64; 6];
    for (slot, total) in out.iter_mut().zip(TOTALS.iter()) {
        *slot = total.swap(0, Ordering::Relaxed);
    }
    out
}

/// An RAII scope crediting its lifetime to `family` when accounting is on.
pub struct KernelTimer {
    start: Option<(Family, Instant)>,
}

/// Open a timing scope for `family`; a no-op unless [`set_enabled`] is on.
#[inline]
pub fn timer(family: Family) -> KernelTimer {
    KernelTimer {
        start: if enabled() {
            Some((family, Instant::now()))
        } else {
            None
        },
    }
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        if let Some((family, start)) = self.start.take() {
            let ns = start.elapsed().as_nanos() as u64;
            TOTALS[family as usize].fetch_add(ns, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timers_record_nothing() {
        set_enabled(false);
        let _ = take_totals();
        {
            let _t = timer(Family::Mix);
        }
        assert_eq!(take_totals(), [0; 6]);
    }

    #[test]
    fn enabled_timers_accumulate_and_drain() {
        set_enabled(true);
        let _ = take_totals();
        {
            let _t = timer(Family::Biquad);
            std::hint::black_box(0u64);
        }
        set_enabled(false);
        let totals = take_totals();
        assert!(totals[Family::Biquad as usize] > 0);
        assert_eq!(take_totals(), [0; 6], "drain resets");
    }
}
