//! Audio DSP substrate for the DJ Star reproduction.
//!
//! The paper's application ("DJ Star") processes 128-sample stereo buffers at
//! 44.1 kHz through per-deck effect chains, channel strips (filter + EQ), a
//! mixer and a master section (§II, Fig. 3). The original effects are
//! proprietary; this crate provides real, from-scratch DSP with equivalent
//! cost characteristics: RBJ biquad filters, a 3-band EQ, eight audio
//! effects, dynamics (limiter/clipper/compressor), metering, a WSOLA time
//! stretcher and a resampler.
//!
//! All processors operate in place on [`AudioBuf`] and implement the
//! [`Effect`] trait so the task-graph nodes in `djstar-engine` can hold them
//! uniformly.

pub mod arena;
pub mod biquad;
pub mod buffer;
pub mod crossover;
pub mod db;
pub mod delayline;
pub mod dynamics;
pub mod effects;
pub mod eq;
pub mod fft;
pub mod kprof;
pub mod meter;
pub mod mix;
pub mod osc;
pub mod resample;
pub mod rng;
pub mod simd;
pub mod stretch;
pub mod svf;
pub mod wav;
pub mod work;

pub use arena::BufferArena;
pub use buffer::AudioBuf;
pub use effects::Effect;

/// The sample rate DJ Star runs at (§III-A).
pub const SAMPLE_RATE: u32 = 44_100;

/// The standard buffer size of DJ Star: 128 samples, requested by the sound
/// card at 344.53 Hz, i.e. every 2.9 ms (§III-A).
pub const BUFFER_FRAMES: usize = 128;
