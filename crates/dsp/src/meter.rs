//! Level metering: RMS and peak with ballistic decay — the per-deck and
//! master "level meter" bookkeeping nodes of the DJ Star graph.

use crate::buffer::AudioBuf;

/// A level meter with instant peak attack and exponential decay, plus a
/// smoothed RMS track.
#[derive(Debug, Clone)]
pub struct LevelMeter {
    peak: f32,
    rms_sq: f32,
    decay: f32,
    rms_coeff: f32,
}

impl LevelMeter {
    /// Meter with `decay_ms` peak fallback and `rms_ms` RMS smoothing,
    /// assuming one `update` per buffer of `frames` frames at `sample_rate`.
    pub fn new(decay_ms: f32, rms_ms: f32, frames: usize, sample_rate: u32) -> Self {
        let buffers_per_sec = sample_rate as f32 / frames.max(1) as f32;
        let coeff = |ms: f32| (-1.0 / (ms.max(0.1) * 1e-3 * buffers_per_sec)).exp();
        LevelMeter {
            peak: 0.0,
            rms_sq: 0.0,
            decay: coeff(decay_ms),
            rms_coeff: coeff(rms_ms),
        }
    }

    /// Standard DJ Star meter for the default 128-frame buffer.
    pub fn standard() -> Self {
        Self::new(300.0, 80.0, crate::BUFFER_FRAMES, crate::SAMPLE_RATE)
    }

    /// Feed one buffer; returns `(peak, rms)` after the update.
    pub fn update(&mut self, buf: &AudioBuf) -> (f32, f32) {
        let p = buf.peak();
        self.peak = if p >= self.peak {
            p
        } else {
            self.peak * self.decay
        };
        let sq = buf.rms().powi(2);
        self.rms_sq = self.rms_coeff * self.rms_sq + (1.0 - self.rms_coeff) * sq;
        (self.peak, self.rms())
    }

    /// Current peak reading.
    pub fn peak(&self) -> f32 {
        self.peak
    }

    /// Current smoothed RMS reading.
    pub fn rms(&self) -> f32 {
        self.rms_sq.sqrt()
    }

    /// Reset readings to silence.
    pub fn reset(&mut self) {
        self.peak = 0.0;
        self.rms_sq = 0.0;
    }
}

/// Goertzel single-bin spectral power of `samples` at `freq_hz`.
///
/// The spectrum-tap bookkeeping node evaluates a handful of bands per cycle
/// with this; it is the cheap alternative to a full FFT for a small number
/// of bins.
pub fn goertzel_power(samples: &[f32], freq_hz: f32, sample_rate: u32) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    let w = core::f32::consts::TAU * freq_hz / sample_rate as f32;
    let coeff = 2.0 * w.cos();
    let mut s_prev = 0.0f32;
    let mut s_prev2 = 0.0f32;
    for &x in samples {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
    power.max(0.0) / (samples.len() as f32 * samples.len() as f32 / 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goertzel_detects_its_bin() {
        let tone: Vec<f32> = (0..512)
            .map(|i| (core::f32::consts::TAU * 1000.0 * i as f32 / 44_100.0).sin())
            .collect();
        let on = goertzel_power(&tone, 1000.0, 44_100);
        let off = goertzel_power(&tone, 4000.0, 44_100);
        assert!(on > off * 20.0, "on {on}, off {off}");
        // A full-scale sine concentrates ~unit power in its bin.
        assert!(on > 0.5 && on < 2.0, "on {on}");
    }

    #[test]
    fn goertzel_empty_is_zero() {
        assert_eq!(goertzel_power(&[], 1000.0, 44_100), 0.0);
    }

    #[test]
    fn goertzel_silence_is_zero() {
        let z = vec![0.0f32; 256];
        assert_eq!(goertzel_power(&z, 500.0, 44_100), 0.0);
    }

    #[test]
    fn peak_attacks_instantly() {
        let mut m = LevelMeter::standard();
        let buf = AudioBuf::from_fn(2, 128, |_, _| 0.7);
        let (p, _) = m.update(&buf);
        assert!((p - 0.7).abs() < 1e-6);
    }

    #[test]
    fn peak_decays_on_silence() {
        let mut m = LevelMeter::standard();
        m.update(&AudioBuf::from_fn(2, 128, |_, _| 1.0));
        let mut last = 1.0;
        for _ in 0..200 {
            let (p, _) = m.update(&AudioBuf::zeroed(2, 128));
            assert!(p <= last);
            last = p;
        }
        assert!(last < 0.2, "peak after decay {last}");
    }

    #[test]
    fn rms_converges_to_signal_level() {
        let mut m = LevelMeter::standard();
        let buf = AudioBuf::from_fn(2, 128, |_, _| 0.5);
        let mut rms = 0.0;
        for _ in 0..500 {
            let (_, r) = m.update(&buf);
            rms = r;
        }
        assert!((rms - 0.5).abs() < 0.01, "rms {rms}");
    }

    #[test]
    fn reset_clears() {
        let mut m = LevelMeter::standard();
        m.update(&AudioBuf::from_fn(1, 128, |_, _| 1.0));
        m.reset();
        assert_eq!(m.peak(), 0.0);
        assert_eq!(m.rms(), 0.0);
    }
}
