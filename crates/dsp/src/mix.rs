//! Mixer arithmetic: gains, pans, crossfades and channel summing —
//! the "Mixer" node of Fig. 3.

use crate::buffer::AudioBuf;
use crate::db::{crossfade_gains, pan_gains};

/// Per-channel strip settings feeding the mixer.
#[derive(Debug, Clone, Copy)]
pub struct ChannelStripParams {
    /// Channel fader gain (linear, >= 0).
    pub fader: f32,
    /// Pan position in `[-1, 1]`.
    pub pan: f32,
    /// Crossfader side assignment: -1 = side A, 0 = center (unaffected),
    /// +1 = side B.
    pub crossfader_side: f32,
}

impl Default for ChannelStripParams {
    fn default() -> Self {
        ChannelStripParams {
            fader: 1.0,
            pan: 0.0,
            crossfader_side: 0.0,
        }
    }
}

/// Apply fader gain and equal-power pan to a stereo buffer in place.
pub fn apply_strip(buf: &mut AudioBuf, params: &ChannelStripParams) {
    let (pl, pr) = pan_gains(params.pan);
    // Scale pan gains so center position is transparent (cos 45° ≈ 0.707
    // would otherwise attenuate both channels).
    let norm = core::f32::consts::SQRT_2;
    let gl = params.fader * pl * norm;
    let gr = params.fader * pr * norm;
    match buf.channels() {
        2 => {
            let frames = buf.frames();
            for i in 0..frames {
                let l = buf.sample(0, i);
                let r = buf.sample(1, i);
                buf.set_sample(0, i, l * gl);
                buf.set_sample(1, i, r * gr);
            }
        }
        _ => buf.scale(params.fader),
    }
}

/// The gain contribution of a channel given the master crossfader position
/// `x` in `[0, 1]` and the channel's side assignment.
pub fn crossfader_gain(x: f32, side: f32) -> f32 {
    let (a, b) = crossfade_gains(x);
    if side < -0.5 {
        a
    } else if side > 0.5 {
        b
    } else {
        1.0
    }
}

/// Sum `inputs[i] * gains[i]` into `out` (cleared first).
///
/// # Panics
/// Panics if `inputs` and `gains` lengths differ.
pub fn mix_into(out: &mut AudioBuf, inputs: &[&AudioBuf], gains: &[f32]) {
    assert_eq!(inputs.len(), gains.len(), "one gain per input");
    out.clear();
    for (buf, &g) in inputs.iter().zip(gains) {
        out.mix_add(buf, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_strip_is_transparent() {
        let params = ChannelStripParams::default();
        let orig = AudioBuf::from_fn(2, 16, |ch, i| (ch as f32 + 1.0) * i as f32 * 0.01);
        let mut buf = orig.clone();
        apply_strip(&mut buf, &params);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn hard_left_pan_silences_right() {
        let params = ChannelStripParams {
            pan: -1.0,
            ..Default::default()
        };
        let mut buf = AudioBuf::from_fn(2, 4, |_, _| 1.0);
        apply_strip(&mut buf, &params);
        assert!(buf.sample(1, 0).abs() < 1e-6);
        assert!(buf.sample(0, 0) > 1.0); // sqrt(2) * cos(0)
    }

    #[test]
    fn fader_scales() {
        let params = ChannelStripParams {
            fader: 0.5,
            ..Default::default()
        };
        let mut buf = AudioBuf::from_fn(2, 2, |_, _| 1.0);
        apply_strip(&mut buf, &params);
        assert!((buf.sample(0, 0) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn crossfader_sides() {
        assert!((crossfader_gain(0.0, -1.0) - 1.0).abs() < 1e-6);
        assert!(crossfader_gain(1.0, -1.0).abs() < 1e-6);
        assert!(crossfader_gain(0.0, 1.0).abs() < 1e-6);
        assert!((crossfader_gain(1.0, 1.0) - 1.0).abs() < 1e-6);
        assert_eq!(crossfader_gain(0.3, 0.0), 1.0);
    }

    #[test]
    fn mix_into_sums_weighted() {
        let a = AudioBuf::from_fn(2, 2, |_, _| 1.0);
        let b = AudioBuf::from_fn(2, 2, |_, _| 2.0);
        let mut out = AudioBuf::from_fn(2, 2, |_, _| 99.0); // must be cleared
        mix_into(&mut out, &[&a, &b], &[1.0, 0.5]);
        assert!(out.samples().iter().all(|&s| (s - 2.0).abs() < 1e-6));
    }

    #[test]
    fn mixing_is_linear() {
        // mix(a, gains g) + mix(b, gains g) == mix(a + b, gains g)
        let a = AudioBuf::from_fn(2, 8, |ch, i| (ch + i) as f32 * 0.1);
        let b = AudioBuf::from_fn(2, 8, |ch, i| (ch as f32 - i as f32) * 0.05);
        let mut ab = a.clone();
        ab.mix_add(&b, 1.0);

        let mut out_a = AudioBuf::zeroed(2, 8);
        let mut out_b = AudioBuf::zeroed(2, 8);
        let mut out_ab = AudioBuf::zeroed(2, 8);
        mix_into(&mut out_a, &[&a], &[0.7]);
        mix_into(&mut out_b, &[&b], &[0.7]);
        mix_into(&mut out_ab, &[&ab], &[0.7]);
        for i in 0..out_ab.samples().len() {
            let sum = out_a.samples()[i] + out_b.samples()[i];
            assert!((sum - out_ab.samples()[i]).abs() < 1e-5);
        }
    }
}
