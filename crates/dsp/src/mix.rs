//! Mixer arithmetic: gains, pans, crossfades and channel summing —
//! the "Mixer" node of Fig. 3.
//!
//! [`mix_into`] is the hottest loop in the graph (every summing node runs
//! it): when all inputs share the output's layout it makes a *single*
//! fused pass per channel plane — each output lane block accumulates every
//! input in registers — instead of one clear pass plus one read-modify-
//! write pass per input. Accumulation order matches the scalar reference
//! add-for-add, so the fused pass is bit-identical.

use crate::buffer::AudioBuf;
use crate::db::{crossfade_gains, pan_gains};
use crate::simd::{self, F32x4};

/// Per-channel strip settings feeding the mixer.
#[derive(Debug, Clone, Copy)]
pub struct ChannelStripParams {
    /// Channel fader gain (linear, >= 0).
    pub fader: f32,
    /// Pan position in `[-1, 1]`.
    pub pan: f32,
    /// Crossfader side assignment: -1 = side A, 0 = center (unaffected),
    /// +1 = side B.
    pub crossfader_side: f32,
}

impl Default for ChannelStripParams {
    fn default() -> Self {
        ChannelStripParams {
            fader: 1.0,
            pan: 0.0,
            crossfader_side: 0.0,
        }
    }
}

/// Apply fader gain and equal-power pan to a stereo buffer in place.
pub fn apply_strip(buf: &mut AudioBuf, params: &ChannelStripParams) {
    let _t = crate::kprof::timer(crate::kprof::Family::Mix);
    let (gl, gr) = strip_gains(params);
    match buf.channels() {
        2 => {
            let (l, r) = buf.as_planar_slices_mut();
            if simd::wide_enabled() {
                crate::buffer::scale_slice_wide(l, gl);
                crate::buffer::scale_slice_wide(r, gr);
            } else {
                for s in l {
                    *s *= gl;
                }
                for s in r {
                    *s *= gr;
                }
            }
        }
        _ => buf.scale(params.fader),
    }
}

/// Scalar reference for [`apply_strip`]; bit-identical to the vector path.
pub fn apply_strip_scalar(buf: &mut AudioBuf, params: &ChannelStripParams) {
    let (gl, gr) = strip_gains(params);
    match buf.channels() {
        2 => {
            let frames = buf.frames();
            for i in 0..frames {
                let l = buf.sample(0, i);
                let r = buf.sample(1, i);
                buf.set_sample(0, i, l * gl);
                buf.set_sample(1, i, r * gr);
            }
        }
        _ => buf.scale_scalar(params.fader),
    }
}

/// Left/right linear gains of a strip: fader x equal-power pan, scaled so
/// center position is transparent (cos 45° ≈ 0.707 would otherwise
/// attenuate both channels).
fn strip_gains(params: &ChannelStripParams) -> (f32, f32) {
    let (pl, pr) = pan_gains(params.pan);
    let norm = core::f32::consts::SQRT_2;
    (params.fader * pl * norm, params.fader * pr * norm)
}

/// The gain contribution of a channel given the master crossfader position
/// `x` in `[0, 1]` and the channel's side assignment.
pub fn crossfader_gain(x: f32, side: f32) -> f32 {
    let (a, b) = crossfade_gains(x);
    if side < -0.5 {
        a
    } else if side > 0.5 {
        b
    } else {
        1.0
    }
}

/// Sum `inputs[i] * gains[i]` into `out` (cleared first).
///
/// When every input shares `out`'s layout this is a single fused pass per
/// channel plane; mixed layouts (mono taps into a stereo bus and vice
/// versa) fall back to per-input [`AudioBuf::mix_add`] passes.
///
/// # Panics
/// Panics if `inputs` and `gains` lengths differ.
pub fn mix_into(out: &mut AudioBuf, inputs: &[&AudioBuf], gains: &[f32]) {
    assert_eq!(inputs.len(), gains.len(), "one gain per input");
    let _t = crate::kprof::timer(crate::kprof::Family::Mix);
    let uniform = inputs
        .iter()
        .all(|b| b.channels() == out.channels() && b.frames() == out.frames());
    if simd::wide_enabled() && uniform && !inputs.is_empty() && inputs.len() <= MAX_FUSED_INPUTS {
        #[cfg(target_arch = "x86_64")]
        {
            if simd::avx512_available() {
                // SAFETY: AVX-512F presence was just verified at runtime.
                unsafe { mix_into_fused_avx512(out, inputs, gains) };
                return;
            }
            if simd::avx_available() {
                // SAFETY: AVX presence was just verified at runtime.
                unsafe { mix_into_fused_avx(out, inputs, gains) };
                return;
            }
        }
        mix_into_fused(out, inputs, gains);
    } else {
        out.clear();
        for (buf, &g) in inputs.iter().zip(gains) {
            out.mix_add(buf, g);
        }
    }
}

/// Scalar reference for [`mix_into`]: clear, then one read-modify-write
/// pass per input — the seed's algorithm. Bit-identical to the fused pass.
pub fn mix_into_scalar(out: &mut AudioBuf, inputs: &[&AudioBuf], gains: &[f32]) {
    assert_eq!(inputs.len(), gains.len(), "one gain per input");
    out.clear();
    for (buf, &g) in inputs.iter().zip(gains) {
        out.mix_add_scalar(buf, g);
    }
}

/// Most inputs the fused pass handles (the graph's widest summing node is
/// well under this); wider mixes fall back to per-input passes.
const MAX_FUSED_INPUTS: usize = 16;

fn mix_into_fused(out: &mut AudioBuf, inputs: &[&AudioBuf], gains: &[f32]) {
    let mut gv = [F32x4::zero(); MAX_FUSED_INPUTS];
    for (slot, &g) in gv.iter_mut().zip(gains) {
        *slot = F32x4::splat(g);
    }
    let frames = out.frames();
    let mut planes: [&[f32]; MAX_FUSED_INPUTS] = [&[]; MAX_FUSED_INPUTS];
    for ch in 0..out.channels() {
        for (slot, input) in planes.iter_mut().zip(inputs) {
            *slot = input.channel(ch);
        }
        let planes = &planes[..inputs.len()];
        let plane = out.channel_mut(ch);
        let mut i = 0;
        // Four independent accumulator chains per 16-frame block. Each
        // output sample still sums its inputs zero-seeded in input order
        // (the scalar clear + mix_add sequence, bit-for-bit); the chains
        // only overlap *different* samples, hiding the vector-add latency
        // a single accumulator would serialize on. The fixed-length
        // sub-slices let the bounds checks collapse to one per input.
        while i + 16 <= frames {
            let mut a0 = F32x4::zero();
            let mut a1 = F32x4::zero();
            let mut a2 = F32x4::zero();
            let mut a3 = F32x4::zero();
            for (k, src) in planes.iter().enumerate() {
                let s = &src[i..i + 16];
                let g = gv[k];
                a0 = a0.add(g.mul(F32x4::load(&s[0..])));
                a1 = a1.add(g.mul(F32x4::load(&s[4..])));
                a2 = a2.add(g.mul(F32x4::load(&s[8..])));
                a3 = a3.add(g.mul(F32x4::load(&s[12..])));
            }
            let d = &mut plane[i..i + 16];
            a0.store(&mut d[0..]);
            a1.store(&mut d[4..]);
            a2.store(&mut d[8..]);
            a3.store(&mut d[12..]);
            i += 16;
        }
        while i + 4 <= frames {
            let mut acc = F32x4::zero();
            for (k, src) in planes.iter().enumerate() {
                acc = acc.add(gv[k].mul(F32x4::load(&src[i..i + 4])));
            }
            acc.store(&mut plane[i..i + 4]);
            i += 4;
        }
        for i in i..frames {
            let mut acc = 0.0f32;
            for (k, src) in planes.iter().enumerate() {
                acc += gains[k] * src[i];
            }
            plane[i] = acc;
        }
    }
}

/// The 8-lane AVX variant of [`mix_into_fused`]. Identical per-sample add
/// sequence (zero-seeded, input order, lane-wise `vmulps`/`vaddps`, no
/// FMA), so the output is bit-for-bit the same as the SSE2 and scalar
/// paths — the wider lanes and four independent accumulator chains only
/// raise arithmetic throughput, which is what the fused pass saturates
/// once memory traffic is already minimal.
///
/// # Safety
/// The caller must verify AVX support first ([`simd::avx_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn mix_into_fused_avx(out: &mut AudioBuf, inputs: &[&AudioBuf], gains: &[f32]) {
    use core::arch::x86_64::*;
    let mut gv = [_mm256_setzero_ps(); MAX_FUSED_INPUTS];
    for (slot, &g) in gv.iter_mut().zip(gains) {
        *slot = _mm256_set1_ps(g);
    }
    let frames = out.frames();
    let mut srcs: [*const f32; MAX_FUSED_INPUTS] = [core::ptr::null(); MAX_FUSED_INPUTS];
    for ch in 0..out.channels() {
        // Raw plane pointers: every offset below stays within
        // `[0, frames)` of planes that are all exactly `frames` long, and
        // `out` cannot alias the (shared-borrowed) inputs.
        for (slot, input) in srcs.iter_mut().zip(inputs) {
            *slot = input.channel(ch).as_ptr();
        }
        let srcs = &srcs[..inputs.len()];
        let dst = out.channel_mut(ch).as_mut_ptr();
        let mut i = 0;
        while i + 32 <= frames {
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            for (k, &src) in srcs.iter().enumerate() {
                let s = src.add(i);
                let g = gv[k];
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(g, _mm256_loadu_ps(s)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(g, _mm256_loadu_ps(s.add(8))));
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(g, _mm256_loadu_ps(s.add(16))));
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(g, _mm256_loadu_ps(s.add(24))));
            }
            _mm256_storeu_ps(dst.add(i), a0);
            _mm256_storeu_ps(dst.add(i + 8), a1);
            _mm256_storeu_ps(dst.add(i + 16), a2);
            _mm256_storeu_ps(dst.add(i + 24), a3);
            i += 32;
        }
        while i + 8 <= frames {
            let mut acc = _mm256_setzero_ps();
            for (k, &src) in srcs.iter().enumerate() {
                acc = _mm256_add_ps(acc, _mm256_mul_ps(gv[k], _mm256_loadu_ps(src.add(i))));
            }
            _mm256_storeu_ps(dst.add(i), acc);
            i += 8;
        }
        for i in i..frames {
            let mut acc = 0.0f32;
            for (k, &src) in srcs.iter().enumerate() {
                acc += gains[k] * *src.add(i);
            }
            *dst.add(i) = acc;
        }
    }
}

/// The 16-lane AVX-512 variant of [`mix_into_fused`]; same bit-exactness
/// argument as [`mix_into_fused_avx`] (lane-wise `vmulps`/`vaddps`, no FMA,
/// zero-seeded input-order accumulation), with 64-frame blocks so four
/// independent zmm accumulator chains keep both FP ports saturated.
///
/// # Safety
/// The caller must verify AVX-512F support first
/// ([`simd::avx512_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mix_into_fused_avx512(out: &mut AudioBuf, inputs: &[&AudioBuf], gains: &[f32]) {
    use core::arch::x86_64::*;
    let mut gv = [_mm512_setzero_ps(); MAX_FUSED_INPUTS];
    for (slot, &g) in gv.iter_mut().zip(gains) {
        *slot = _mm512_set1_ps(g);
    }
    let frames = out.frames();
    let mut srcs: [*const f32; MAX_FUSED_INPUTS] = [core::ptr::null(); MAX_FUSED_INPUTS];
    for ch in 0..out.channels() {
        // Raw plane pointers: every offset below stays within
        // `[0, frames)` of planes that are all exactly `frames` long, and
        // `out` cannot alias the (shared-borrowed) inputs.
        for (slot, input) in srcs.iter_mut().zip(inputs) {
            *slot = input.channel(ch).as_ptr();
        }
        let srcs = &srcs[..inputs.len()];
        let dst = out.channel_mut(ch).as_mut_ptr();
        let mut i = 0;
        while i + 64 <= frames {
            let mut a0 = _mm512_setzero_ps();
            let mut a1 = _mm512_setzero_ps();
            let mut a2 = _mm512_setzero_ps();
            let mut a3 = _mm512_setzero_ps();
            for (k, &src) in srcs.iter().enumerate() {
                let s = src.add(i);
                let g = gv[k];
                a0 = _mm512_add_ps(a0, _mm512_mul_ps(g, _mm512_loadu_ps(s)));
                a1 = _mm512_add_ps(a1, _mm512_mul_ps(g, _mm512_loadu_ps(s.add(16))));
                a2 = _mm512_add_ps(a2, _mm512_mul_ps(g, _mm512_loadu_ps(s.add(32))));
                a3 = _mm512_add_ps(a3, _mm512_mul_ps(g, _mm512_loadu_ps(s.add(48))));
            }
            _mm512_storeu_ps(dst.add(i), a0);
            _mm512_storeu_ps(dst.add(i + 16), a1);
            _mm512_storeu_ps(dst.add(i + 32), a2);
            _mm512_storeu_ps(dst.add(i + 48), a3);
            i += 64;
        }
        while i + 16 <= frames {
            let mut acc = _mm512_setzero_ps();
            for (k, &src) in srcs.iter().enumerate() {
                acc = _mm512_add_ps(acc, _mm512_mul_ps(gv[k], _mm512_loadu_ps(src.add(i))));
            }
            _mm512_storeu_ps(dst.add(i), acc);
            i += 16;
        }
        for i in i..frames {
            let mut acc = 0.0f32;
            for (k, &src) in srcs.iter().enumerate() {
                acc += gains[k] * *src.add(i);
            }
            *dst.add(i) = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_strip_is_transparent() {
        let params = ChannelStripParams::default();
        let orig = AudioBuf::from_fn(2, 16, |ch, i| (ch as f32 + 1.0) * i as f32 * 0.01);
        let mut buf = orig.clone();
        apply_strip(&mut buf, &params);
        for (a, b) in buf.samples().iter().zip(orig.samples()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn hard_left_pan_silences_right() {
        let params = ChannelStripParams {
            pan: -1.0,
            ..Default::default()
        };
        let mut buf = AudioBuf::from_fn(2, 4, |_, _| 1.0);
        apply_strip(&mut buf, &params);
        assert!(buf.sample(1, 0).abs() < 1e-6);
        assert!(buf.sample(0, 0) > 1.0); // sqrt(2) * cos(0)
    }

    #[test]
    fn fader_scales() {
        let params = ChannelStripParams {
            fader: 0.5,
            ..Default::default()
        };
        let mut buf = AudioBuf::from_fn(2, 2, |_, _| 1.0);
        apply_strip(&mut buf, &params);
        assert!((buf.sample(0, 0) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn crossfader_sides() {
        assert!((crossfader_gain(0.0, -1.0) - 1.0).abs() < 1e-6);
        assert!(crossfader_gain(1.0, -1.0).abs() < 1e-6);
        assert!(crossfader_gain(0.0, 1.0).abs() < 1e-6);
        assert!((crossfader_gain(1.0, 1.0) - 1.0).abs() < 1e-6);
        assert_eq!(crossfader_gain(0.3, 0.0), 1.0);
    }

    #[test]
    fn mix_into_sums_weighted() {
        let a = AudioBuf::from_fn(2, 2, |_, _| 1.0);
        let b = AudioBuf::from_fn(2, 2, |_, _| 2.0);
        let mut out = AudioBuf::from_fn(2, 2, |_, _| 99.0); // must be cleared
        mix_into(&mut out, &[&a, &b], &[1.0, 0.5]);
        assert!(out.samples().iter().all(|&s| (s - 2.0).abs() < 1e-6));
    }

    #[test]
    fn fused_mix_matches_scalar_exactly() {
        // 5 inputs, odd frame count for the tail path.
        let inputs: Vec<AudioBuf> = (0..5)
            .map(|k| AudioBuf::from_fn(2, 53, |ch, i| ((ch + i) as f32 * 0.1 + k as f32) * 0.07))
            .collect();
        let refs: Vec<&AudioBuf> = inputs.iter().collect();
        let gains = [1.0, 0.5, 0.25, 0.8, 0.33];
        let mut fused = AudioBuf::zeroed(2, 53);
        let mut scalar = AudioBuf::zeroed(2, 53);
        mix_into(&mut fused, &refs, &gains);
        mix_into_scalar(&mut scalar, &refs, &gains);
        assert_eq!(fused.samples(), scalar.samples());
    }

    #[test]
    fn mixed_layout_inputs_fall_back_correctly() {
        let stereo = AudioBuf::from_fn(2, 8, |ch, i| (ch * 8 + i) as f32 * 0.1);
        let mono = AudioBuf::from_fn(1, 8, |_, i| i as f32 * 0.2);
        let mut fused = AudioBuf::zeroed(2, 8);
        let mut scalar = AudioBuf::zeroed(2, 8);
        mix_into(&mut fused, &[&stereo, &mono], &[0.9, 0.6]);
        mix_into_scalar(&mut scalar, &[&stereo, &mono], &[0.9, 0.6]);
        assert_eq!(fused.samples(), scalar.samples());
    }

    #[test]
    fn strip_wide_matches_scalar_exactly() {
        let params = ChannelStripParams {
            fader: 0.8,
            pan: 0.4,
            crossfader_side: -1.0,
        };
        let orig = AudioBuf::from_fn(2, 45, |ch, i| ((ch * 45 + i) as f32 * 0.37).sin());
        let mut a = orig.clone();
        let mut b = orig;
        apply_strip(&mut a, &params);
        apply_strip_scalar(&mut b, &params);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn mixing_is_linear() {
        // mix(a, gains g) + mix(b, gains g) == mix(a + b, gains g)
        let a = AudioBuf::from_fn(2, 8, |ch, i| (ch + i) as f32 * 0.1);
        let b = AudioBuf::from_fn(2, 8, |ch, i| (ch as f32 - i as f32) * 0.05);
        let mut ab = a.clone();
        ab.mix_add(&b, 1.0);

        let mut out_a = AudioBuf::zeroed(2, 8);
        let mut out_b = AudioBuf::zeroed(2, 8);
        let mut out_ab = AudioBuf::zeroed(2, 8);
        mix_into(&mut out_a, &[&a], &[0.7]);
        mix_into(&mut out_b, &[&b], &[0.7]);
        mix_into(&mut out_ab, &[&ab], &[0.7]);
        for i in 0..out_ab.samples().len() {
            let sum = out_a.samples()[i] + out_b.samples()[i];
            assert!((sum - out_ab.samples()[i]).abs() < 1e-5);
        }
    }
}
