//! Oscillators and noise sources used for synthetic tracks, LFOs and the
//! timecode carrier.

use core::f32::consts::TAU;

/// Waveform shapes produced by [`Oscillator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waveform {
    Sine,
    Saw,
    Square,
    Triangle,
}

/// A phase-accumulator oscillator.
///
/// Phase is kept in `[0, 1)`; frequency may be changed between samples
/// without clicks (phase is continuous), which the timecode generator relies
/// on when the virtual turntable changes speed.
#[derive(Debug, Clone)]
pub struct Oscillator {
    waveform: Waveform,
    phase: f32,
    freq_hz: f32,
    sample_rate: f32,
}

impl Oscillator {
    /// Create an oscillator at `freq_hz` for the given sample rate.
    pub fn new(waveform: Waveform, freq_hz: f32, sample_rate: u32) -> Self {
        Oscillator {
            waveform,
            phase: 0.0,
            freq_hz,
            sample_rate: sample_rate as f32,
        }
    }

    /// Change the frequency; phase stays continuous.
    pub fn set_freq(&mut self, freq_hz: f32) {
        self.freq_hz = freq_hz;
    }

    /// Current frequency in Hz.
    pub fn freq(&self) -> f32 {
        self.freq_hz
    }

    /// Current phase in `[0, 1)`.
    pub fn phase(&self) -> f32 {
        self.phase
    }

    /// Produce the next sample in `[-1, 1]`.
    pub fn next_sample(&mut self) -> f32 {
        let p = self.phase;
        let v = match self.waveform {
            Waveform::Sine => (TAU * p).sin(),
            Waveform::Saw => 2.0 * p - 1.0,
            Waveform::Square => {
                if p < 0.5 {
                    1.0
                } else {
                    -1.0
                }
            }
            Waveform::Triangle => {
                if p < 0.5 {
                    4.0 * p - 1.0
                } else {
                    3.0 - 4.0 * p
                }
            }
        };
        self.phase += self.freq_hz / self.sample_rate;
        self.phase -= self.phase.floor();
        v
    }

    /// Fill `out` with consecutive samples.
    pub fn fill(&mut self, out: &mut [f32]) {
        for s in out {
            *s = self.next_sample();
        }
    }
}

/// A deterministic xorshift32 white-noise source in `[-1, 1]`.
///
/// The DSP crate keeps no external dependencies, so randomness here is a
/// tiny self-contained PRNG; statistical quality is irrelevant for audio
/// noise beds and test signals.
#[derive(Debug, Clone)]
pub struct NoiseSource {
    state: u32,
}

impl NoiseSource {
    /// Create a noise source; `seed` must not be zero (0 is mapped to a
    /// fixed non-zero constant).
    pub fn new(seed: u32) -> Self {
        NoiseSource {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Next raw 32-bit state.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Next white-noise sample in `[-1, 1)`.
    pub fn next_sample(&mut self) -> f32 {
        (self.next_u32() as f32 / u32::MAX as f32) * 2.0 - 1.0
    }

    /// Fill `out` with noise.
    pub fn fill(&mut self, out: &mut [f32]) {
        for s in out {
            *s = self.next_sample();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sine_oscillates_at_requested_frequency() {
        // 441 Hz at 44100 Hz: period = 100 samples.
        let mut osc = Oscillator::new(Waveform::Sine, 441.0, 44_100);
        let s0 = osc.next_sample();
        assert!(s0.abs() < 1e-6); // sin(0) = 0
        let mut buf = vec![0.0; 99];
        osc.fill(&mut buf);
        // After a full period the phase is back near zero.
        assert!(osc.phase() < 1e-3 || osc.phase() > 0.999, "{}", osc.phase());
    }

    #[test]
    fn all_waveforms_bounded() {
        for wf in [
            Waveform::Sine,
            Waveform::Saw,
            Waveform::Square,
            Waveform::Triangle,
        ] {
            let mut osc = Oscillator::new(wf, 1234.5, 44_100);
            for _ in 0..10_000 {
                let s = osc.next_sample();
                assert!((-1.0..=1.0).contains(&s), "{wf:?} produced {s}");
            }
        }
    }

    #[test]
    fn square_has_two_levels() {
        let mut osc = Oscillator::new(Waveform::Square, 100.0, 44_100);
        let mut saw_pos = false;
        let mut saw_neg = false;
        for _ in 0..1000 {
            let s = osc.next_sample();
            assert!(s == 1.0 || s == -1.0);
            saw_pos |= s > 0.0;
            saw_neg |= s < 0.0;
        }
        assert!(saw_pos && saw_neg);
    }

    #[test]
    fn frequency_change_keeps_phase_continuous() {
        let mut osc = Oscillator::new(Waveform::Sine, 440.0, 44_100);
        for _ in 0..10 {
            osc.next_sample();
        }
        let phase = osc.phase();
        osc.set_freq(880.0);
        assert_eq!(osc.phase(), phase);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let mut a = NoiseSource::new(42);
        let mut b = NoiseSource::new(42);
        for _ in 0..1000 {
            let sa = a.next_sample();
            assert_eq!(sa, b.next_sample());
            assert!((-1.0..=1.0).contains(&sa));
        }
    }

    #[test]
    fn noise_zero_seed_is_remapped() {
        let mut n = NoiseSource::new(0);
        // A zero state would be a fixed point of xorshift; ensure we produce
        // varied output.
        let first = n.next_sample();
        let second = n.next_sample();
        assert_ne!(first, second);
    }

    #[test]
    fn noise_has_roughly_zero_mean() {
        let mut n = NoiseSource::new(7);
        let mean: f32 = (0..100_000).map(|_| n.next_sample()).sum::<f32>() / 100_000.0;
        assert!(mean.abs() < 0.02, "mean = {mean}");
    }
}
