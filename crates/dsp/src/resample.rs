//! Variable-rate resampling for deck pitch/scratch playback.
//!
//! When the DJ nudges or scratches a deck, the track is read at a non-unit
//! rate; this reader produces output frames by interpolating the source at a
//! fractional position advancing by `rate` per output frame.

/// Cubic (Catmull-Rom) interpolation over 4 neighbouring samples.
#[inline]
pub fn catmull_rom(p0: f32, p1: f32, p2: f32, p3: f32, t: f32) -> f32 {
    let t2 = t * t;
    let t3 = t2 * t;
    0.5 * ((2.0 * p1)
        + (-p0 + p2) * t
        + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2
        + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t3)
}

/// A fractional-position reader over a mono sample slice.
#[derive(Debug, Clone)]
pub struct VarRateReader {
    pos: f64,
}

impl VarRateReader {
    /// Reader starting at sample position `pos`.
    pub fn new(pos: f64) -> Self {
        VarRateReader { pos }
    }

    /// Current fractional source position.
    pub fn position(&self) -> f64 {
        self.pos
    }

    /// Seek to an absolute source position.
    pub fn seek(&mut self, pos: f64) {
        self.pos = pos;
    }

    /// Read `out.len()` frames from `src` advancing `rate` source frames per
    /// output frame (negative rates play backwards). Positions outside the
    /// source read as silence. Returns the new position.
    pub fn read(&mut self, src: &[f32], rate: f64, out: &mut [f32]) -> f64 {
        let n = src.len() as isize;
        let sample_at = |i: isize| -> f32 {
            if i < 0 || i >= n {
                0.0
            } else {
                src[i as usize]
            }
        };
        for o in out.iter_mut() {
            let base = self.pos.floor();
            let t = (self.pos - base) as f32;
            let i = base as isize;
            *o = catmull_rom(
                sample_at(i - 1),
                sample_at(i),
                sample_at(i + 1),
                sample_at(i + 2),
                t,
            );
            self.pos += rate;
        }
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_rate_reproduces_source() {
        let src: Vec<f32> = (0..64).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut r = VarRateReader::new(1.0);
        let mut out = vec![0.0; 32];
        r.read(&src, 1.0, &mut out);
        for (k, &o) in out.iter().enumerate() {
            assert!(
                (o - src[k + 1]).abs() < 1e-4,
                "frame {k}: {o} vs {}",
                src[k + 1]
            );
        }
    }

    #[test]
    fn catmull_rom_hits_control_points() {
        assert_eq!(catmull_rom(0.0, 1.0, 2.0, 3.0, 0.0), 1.0);
        assert_eq!(catmull_rom(0.0, 1.0, 2.0, 3.0, 1.0), 2.0);
    }

    #[test]
    fn catmull_rom_linear_data_is_linear() {
        let v = catmull_rom(0.0, 1.0, 2.0, 3.0, 0.5);
        assert!((v - 1.5).abs() < 1e-6);
    }

    #[test]
    fn double_rate_skips_samples() {
        let src: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut r = VarRateReader::new(4.0);
        let mut out = vec![0.0; 8];
        r.read(&src, 2.0, &mut out);
        for (k, &o) in out.iter().enumerate() {
            assert!((o - (4.0 + 2.0 * k as f32)).abs() < 1e-3);
        }
    }

    #[test]
    fn negative_rate_plays_backwards() {
        let src: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut r = VarRateReader::new(32.0);
        let mut out = vec![0.0; 8];
        r.read(&src, -1.0, &mut out);
        for (k, &o) in out.iter().enumerate() {
            assert!((o - (32.0 - k as f32)).abs() < 1e-3);
        }
    }

    #[test]
    fn out_of_range_is_silent() {
        let src = vec![1.0f32; 16];
        let mut r = VarRateReader::new(1000.0);
        let mut out = vec![9.0; 4];
        r.read(&src, 1.0, &mut out);
        assert!(out.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn position_advances_by_rate_times_frames() {
        let src = vec![0.0f32; 100];
        let mut r = VarRateReader::new(10.0);
        r.read(&src, 0.5, &mut [0.0; 20]);
        assert!((r.position() - 20.0).abs() < 1e-9);
    }
}
