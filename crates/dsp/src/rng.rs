//! Small deterministic PRNG for synthesis, jitter models and tests.
//!
//! The workspace builds with no external crates, so this replaces `rand`
//! everywhere a reproducible stream of pseudo-random numbers is needed.
//! [`SmallRng`] is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
//! state advanced by a Weyl increment and mixed by two xor-shift-multiply
//! rounds. It passes BigCrush when used as a 64-bit generator, is trivially
//! seedable from any `u64` (including zero) and needs no allocation — good
//! enough for note material, preemption models and property tests, and not
//! intended for cryptography.

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Create a generator from a seed. Every seed — including 0 — yields a
    /// full-period 2^64 stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if the range is empty.
    ///
    /// Uses Lemire's multiply-shift reduction without the rejection step;
    /// the bias is < 2^-32 for the range sizes used here.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the reference SplitMix64
        // implementation (Vigna, prng.di.unimi.it).
        let mut r = SmallRng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let u = r.below(3);
            assert!(u < 3);
        }
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut r = SmallRng::seed_from_u64(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            let y = r.f32();
            assert!((0.0..1.0).contains(&y));
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
