//! A minimal portable SIMD shim for the DSP hot path.
//!
//! The workspace builds offline with no registry dependencies, so there is
//! no `wide`/`portable_simd`. This module wraps the 4-lane `f32` vector the
//! target guarantees — SSE2 `__m128` on `x86_64` (part of the baseline ABI,
//! no runtime feature detection needed) — behind [`F32x4`], with a plain
//! `[f32; 4]` fallback elsewhere. Every operation is a lane-wise IEEE-754
//! single operation (no FMA, no reassociation), so a kernel written against
//! [`F32x4`] produces **bit-identical** results to the equivalent scalar
//! loop; the vectorized kernels in this crate lean on that to keep the
//! determinism-sensitive tests (fault differential, reconfig carry-over,
//! cross-strategy audio equality) byte-for-byte stable.
//!
//! [`set_force_scalar`] flips every dispatching kernel in the crate onto its
//! scalar reference path; the E16 harness (`fig_dsp_simd`) uses it for
//! whole-graph scalar↔SIMD A/B runs on an otherwise identical engine.

use core::sync::atomic::{AtomicBool, Ordering};

/// Lane count of [`F32x4`].
pub const LANES: usize = 4;

/// When set, [`wide_enabled`] reports `false` and every dispatching kernel
/// takes its scalar reference path.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Force (or release) the scalar reference path crate-wide.
///
/// Only the bench/experiment harnesses flip this; it is racy-by-design in
/// the sense that in-flight cycles may finish on the old path, so callers
/// toggle it between engine runs, never mid-cycle.
pub fn set_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Release);
}

/// True when kernels should take their vector path.
#[inline]
pub fn wide_enabled() -> bool {
    !FORCE_SCALAR.load(Ordering::Acquire)
}

/// Name of the compiled vector backend, for reports.
pub fn backend() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            "sse2+avx512"
        } else if avx_available() {
            "sse2+avx"
        } else {
            "sse2"
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "scalar-4lane"
    }
}

/// True when the 8-lane AVX fast paths may run (`x86_64` with AVX detected
/// at runtime — AVX is *not* part of the baseline ABI, so this is a runtime
/// check, unlike the unconditional SSE2 shim). The AVX kernels perform the
/// same lane-wise IEEE-754 single operations in the same per-sample order
/// as the 4-lane and scalar paths (`vmulps`/`vaddps`, no FMA), so they only
/// widen throughput; results stay bit-identical.
pub fn avx_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // `is_x86_feature_detected!` caches the CPUID result internally.
        std::arch::is_x86_feature_detected!("avx")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the 16-lane AVX-512 fast paths may run. Same bit-exactness
/// contract as [`avx_available`]: lane-wise `vmulps`/`vaddps` only, wider
/// registers, identical per-sample rounding.
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use core::arch::x86_64::*;

    /// Four `f32` lanes; SSE2 `__m128` on this target.
    #[derive(Clone, Copy, Debug)]
    pub struct F32x4(__m128);

    // Plain `add`/`sub`/`mul` methods rather than `std::ops` impls, on
    // purpose: the shim mirrors intrinsic naming, and operator sugar would
    // suggest general arithmetic where only explicit lane-wise single
    // operations are part of the bit-exactness contract.
    #[allow(clippy::should_implement_trait)]
    impl F32x4 {
        /// All lanes zero.
        #[inline]
        pub fn zero() -> Self {
            F32x4(unsafe { _mm_setzero_ps() })
        }

        /// All lanes `v`.
        #[inline]
        pub fn splat(v: f32) -> Self {
            F32x4(unsafe { _mm_set1_ps(v) })
        }

        /// Lanes from an array.
        #[inline]
        pub fn from_array(a: [f32; 4]) -> Self {
            F32x4(unsafe { _mm_set_ps(a[3], a[2], a[1], a[0]) })
        }

        /// Unaligned load of `src[0..4]`.
        ///
        /// # Panics
        /// Panics if `src` holds fewer than 4 elements.
        #[inline]
        pub fn load(src: &[f32]) -> Self {
            assert!(src.len() >= 4);
            F32x4(unsafe { _mm_loadu_ps(src.as_ptr()) })
        }

        /// Unaligned store into `dst[0..4]`.
        ///
        /// # Panics
        /// Panics if `dst` holds fewer than 4 elements.
        #[inline]
        pub fn store(self, dst: &mut [f32]) {
            assert!(dst.len() >= 4);
            unsafe { _mm_storeu_ps(dst.as_mut_ptr(), self.0) }
        }

        /// Lanes as an array.
        #[inline]
        pub fn to_array(self) -> [f32; 4] {
            let mut out = [0.0f32; 4];
            unsafe { _mm_storeu_ps(out.as_mut_ptr(), self.0) };
            out
        }

        #[inline]
        pub fn add(self, rhs: Self) -> Self {
            F32x4(unsafe { _mm_add_ps(self.0, rhs.0) })
        }

        #[inline]
        pub fn sub(self, rhs: Self) -> Self {
            F32x4(unsafe { _mm_sub_ps(self.0, rhs.0) })
        }

        #[inline]
        pub fn mul(self, rhs: Self) -> Self {
            F32x4(unsafe { _mm_mul_ps(self.0, rhs.0) })
        }

        #[inline]
        pub fn min(self, rhs: Self) -> Self {
            F32x4(unsafe { _mm_min_ps(self.0, rhs.0) })
        }

        #[inline]
        pub fn max(self, rhs: Self) -> Self {
            F32x4(unsafe { _mm_max_ps(self.0, rhs.0) })
        }

        /// Lane-wise absolute value (sign-bit mask, exact for every input).
        #[inline]
        pub fn abs(self) -> Self {
            let mask = unsafe { _mm_castsi128_ps(_mm_set1_epi32(0x7FFF_FFFF)) };
            F32x4(unsafe { _mm_and_ps(self.0, mask) })
        }

        /// Horizontal sum as `(l0 + l2) + (l1 + l3)`.
        ///
        /// The pairing is part of the contract: the fallback implementation
        /// reproduces it exactly so reductions round identically on every
        /// target.
        #[inline]
        pub fn hsum(self) -> f32 {
            let [l0, l1, l2, l3] = self.to_array();
            (l0 + l2) + (l1 + l3)
        }

        /// Horizontal max of all four lanes.
        #[inline]
        pub fn hmax(self) -> f32 {
            let [l0, l1, l2, l3] = self.to_array();
            l0.max(l2).max(l1.max(l3))
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    /// Four `f32` lanes; a plain array on targets without a guaranteed
    /// vector baseline. Each operation is the same lane-wise IEEE-754
    /// single operation the `x86_64` implementation performs, so results
    /// stay bit-identical across targets.
    #[derive(Clone, Copy, Debug)]
    pub struct F32x4([f32; 4]);

    // See the `x86_64` impl: intrinsic-style method names are intentional.
    #[allow(clippy::should_implement_trait)]
    impl F32x4 {
        #[inline]
        pub fn zero() -> Self {
            F32x4([0.0; 4])
        }

        #[inline]
        pub fn splat(v: f32) -> Self {
            F32x4([v; 4])
        }

        #[inline]
        pub fn from_array(a: [f32; 4]) -> Self {
            F32x4(a)
        }

        #[inline]
        pub fn load(src: &[f32]) -> Self {
            F32x4([src[0], src[1], src[2], src[3]])
        }

        #[inline]
        pub fn store(self, dst: &mut [f32]) {
            dst[..4].copy_from_slice(&self.0);
        }

        #[inline]
        pub fn to_array(self) -> [f32; 4] {
            self.0
        }

        #[inline]
        pub fn add(self, rhs: Self) -> Self {
            let mut out = [0.0; 4];
            for i in 0..4 {
                out[i] = self.0[i] + rhs.0[i];
            }
            F32x4(out)
        }

        #[inline]
        pub fn sub(self, rhs: Self) -> Self {
            let mut out = [0.0; 4];
            for i in 0..4 {
                out[i] = self.0[i] - rhs.0[i];
            }
            F32x4(out)
        }

        #[inline]
        pub fn mul(self, rhs: Self) -> Self {
            let mut out = [0.0; 4];
            for i in 0..4 {
                out[i] = self.0[i] * rhs.0[i];
            }
            F32x4(out)
        }

        #[inline]
        pub fn min(self, rhs: Self) -> Self {
            // `_mm_min_ps(a, b)` is `b < a ? b : a` (second operand on
            // ties/NaN); mirror it exactly.
            let mut out = [0.0; 4];
            for i in 0..4 {
                out[i] = if rhs.0[i] < self.0[i] {
                    rhs.0[i]
                } else {
                    self.0[i]
                };
            }
            F32x4(out)
        }

        #[inline]
        pub fn max(self, rhs: Self) -> Self {
            let mut out = [0.0; 4];
            for i in 0..4 {
                out[i] = if rhs.0[i] > self.0[i] {
                    rhs.0[i]
                } else {
                    self.0[i]
                };
            }
            F32x4(out)
        }

        #[inline]
        pub fn abs(self) -> Self {
            let mut out = [0.0; 4];
            for i in 0..4 {
                out[i] = f32::from_bits(self.0[i].to_bits() & 0x7FFF_FFFF);
            }
            F32x4(out)
        }

        #[inline]
        pub fn hsum(self) -> f32 {
            let [l0, l1, l2, l3] = self.0;
            (l0 + l2) + (l1 + l3)
        }

        #[inline]
        pub fn hmax(self) -> f32 {
            let [l0, l1, l2, l3] = self.0;
            l0.max(l2).max(l1.max(l3))
        }
    }
}

pub use imp::F32x4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_arithmetic() {
        let a = F32x4::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = F32x4::splat(0.5);
        assert_eq!(a.add(b).to_array(), [1.5, 2.5, 3.5, 4.5]);
        assert_eq!(a.mul(b).to_array(), [0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.sub(a).to_array(), [0.0; 4]);
    }

    #[test]
    fn load_store_slices() {
        let src = [9.0f32, 8.0, 7.0, 6.0, 5.0];
        let v = F32x4::load(&src[1..]);
        let mut dst = [0.0f32; 4];
        v.store(&mut dst);
        assert_eq!(dst, [8.0, 7.0, 6.0, 5.0]);
    }

    #[test]
    fn abs_minmax_and_reductions() {
        let v = F32x4::from_array([-1.0, 2.0, -3.0, 4.0]);
        assert_eq!(v.abs().to_array(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.hmax(), 4.0);
        assert_eq!(v.abs().hsum(), (1.0 + 3.0) + (2.0 + 4.0));
        let lo = F32x4::splat(-0.5);
        let hi = F32x4::splat(0.5);
        assert_eq!(v.max(lo).min(hi).to_array(), [-0.5, 0.5, -0.5, 0.5]);
    }

    #[test]
    fn force_scalar_toggles_dispatch() {
        assert!(wide_enabled());
        set_force_scalar(true);
        assert!(!wide_enabled());
        set_force_scalar(false);
        assert!(wide_enabled());
    }
}
