//! WSOLA time stretching (tempo change with pitch preservation).
//!
//! DJ Star's graph preprocessing spends most of its time "time stretching"
//! (§III-B: 33 % of the APC). This is a waveform-similarity overlap-add
//! (WSOLA) implementation: output is synthesized from Hann-crossfaded input
//! segments, each chosen within a small search window to maximize
//! cross-correlation with the previously emitted tail, which avoids the
//! phase discontinuities of naive overlap-add.
//!
//! Hot-path notes: the crossfade gains are precomputed once (same formula,
//! same values as computing them inline) and the crossfade itself runs 4
//! lanes at a time when the whole segment is in range; the correlation
//! search keeps its strictly serial accumulation order — reassociating it
//! could flip the argmax and cascade into a different (still valid, but
//! not bit-identical) output — and instead gains a bounds-check-free fast
//! path.

use crate::simd::{self, F32x4};

/// Synthesis frame length (samples).
const FRAME: usize = 512;
/// Synthesis hop: half-frame overlap-add.
const HOP: usize = FRAME / 2;
/// Half-width of the similarity search window (samples).
const SEARCH: usize = 64;

/// A pull-based mono WSOLA time stretcher over an externally owned source.
#[derive(Debug, Clone)]
pub struct TimeStretcher {
    /// Fractional input read position (start of the next natural segment).
    in_pos: f64,
    /// Second half of the last synthesized frame, used as the overlap
    /// reference and crossfade partner for the next frame.
    prev_tail: Vec<f32>,
    /// Synthesized-but-not-yet-consumed output samples.
    ready: Vec<f32>,
    /// Read cursor into `ready`.
    ready_read: usize,
    /// True until the first frame primes `prev_tail`.
    priming: bool,
    /// Precomputed raised-cosine fade-in gains for one hop.
    fade_in: Vec<f32>,
    /// `1.0 - fade_in[i]`, precomputed.
    fade_out: Vec<f32>,
}

impl Default for TimeStretcher {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeStretcher {
    /// A stretcher positioned at the start of the source.
    pub fn new() -> Self {
        let fade_in: Vec<f32> = (0..HOP)
            .map(|i| {
                let t = i as f32 / HOP as f32;
                // Hann-like raised-cosine crossfade (equal gain at midpoint).
                0.5 - 0.5 * (core::f32::consts::PI * (1.0 - t)).cos()
            })
            .collect();
        let fade_out: Vec<f32> = fade_in.iter().map(|&f| 1.0 - f).collect();
        TimeStretcher {
            in_pos: 0.0,
            prev_tail: vec![0.0; HOP],
            ready: Vec::with_capacity(2 * FRAME),
            ready_read: 0,
            priming: true,
            fade_in,
            fade_out,
        }
    }

    /// Current input position in source samples.
    pub fn position(&self) -> f64 {
        self.in_pos
    }

    /// Jump to an absolute source position, discarding synthesis state
    /// (used when the DJ seeks or scratches).
    pub fn seek(&mut self, pos: f64) {
        self.in_pos = pos.max(0.0);
        self.prev_tail.fill(0.0);
        self.ready.clear();
        self.ready_read = 0;
        self.priming = true;
    }

    /// Fill `out` with stretched audio from `src` at the given `tempo`
    /// (1.0 = original speed, 2.0 = double speed / half duration, pitch
    /// preserved). Positions beyond the source read as silence.
    pub fn process(&mut self, src: &[f32], tempo: f32, out: &mut [f32]) {
        let _t = crate::kprof::timer(crate::kprof::Family::Stretch);
        let tempo = tempo.clamp(0.25, 4.0) as f64;
        let mut written = 0;
        while written < out.len() {
            // Drain buffered output first.
            while self.ready_read < self.ready.len() && written < out.len() {
                out[written] = self.ready[self.ready_read];
                self.ready_read += 1;
                written += 1;
            }
            if written == out.len() {
                break;
            }
            self.ready.clear();
            self.ready_read = 0;
            self.synthesize_frame(src, tempo);
        }
    }

    /// Sample of `src` at index `i`, silence outside.
    #[inline]
    fn sample(src: &[f32], i: isize) -> f32 {
        if i < 0 || i as usize >= src.len() {
            0.0
        } else {
            src[i as usize]
        }
    }

    /// Synthesize one hop (HOP samples) into `self.ready`.
    fn synthesize_frame(&mut self, src: &[f32], tempo: f64) {
        let natural = self.in_pos.round() as isize;
        let offset = if self.priming {
            0
        } else {
            self.best_offset(src, natural)
        };
        let start = natural + offset;

        // When the whole frame lies inside `src`, use slices (no per-sample
        // bounds logic) and the 4-lane crossfade; edges fall back to the
        // per-sample loop. Both paths evaluate the identical formula.
        let in_range =
            start >= 0 && start as usize <= src.len() && src.len() - start as usize >= FRAME;

        if self.priming {
            // First frame: emit its first half verbatim, remember the tail.
            if in_range {
                let s = start as usize;
                self.ready.extend_from_slice(&src[s..s + HOP]);
            } else {
                for i in 0..HOP {
                    self.ready.push(Self::sample(src, start + i as isize));
                }
            }
            self.priming = false;
        } else if in_range && simd::wide_enabled() {
            // Crossfade prev_tail (fading out) with the new segment
            // (fading in); HOP is a multiple of 4, so no scalar tail.
            let s = start as usize;
            let seg = &src[s..s + HOP];
            let base = self.ready.len();
            self.ready.resize(base + HOP, 0.0);
            let out = &mut self.ready[base..];
            let mut i = 0;
            while i < HOP {
                F32x4::load(&self.prev_tail[i..])
                    .mul(F32x4::load(&self.fade_out[i..]))
                    .add(F32x4::load(&seg[i..]).mul(F32x4::load(&self.fade_in[i..])))
                    .store(&mut out[i..]);
                i += 4;
            }
        } else {
            for i in 0..HOP {
                let new = Self::sample(src, start + i as isize);
                self.ready
                    .push(self.prev_tail[i] * self.fade_out[i] + new * self.fade_in[i]);
            }
        }
        // Remember the second half of this frame for the next crossfade.
        if in_range {
            let s = start as usize;
            self.prev_tail.copy_from_slice(&src[s + HOP..s + FRAME]);
        } else {
            for i in 0..HOP {
                self.prev_tail[i] = Self::sample(src, start + (HOP + i) as isize);
            }
        }
        self.in_pos += HOP as f64 * tempo;
    }

    /// Find the offset in `[-SEARCH, SEARCH]` whose segment best matches the
    /// previous tail (maximum normalized cross-correlation).
    fn best_offset(&self, src: &[f32], natural: isize) -> isize {
        // The accumulation below stays strictly serial and in order:
        // reassociating it (e.g. 4-lane partial sums) can flip the argmax
        // between near-tied candidates and cascade into a different output.
        // The fast path only removes the per-sample bounds branch.
        let in_range = natural - (SEARCH as isize) >= 0
            && natural + (SEARCH + HOP) as isize <= src.len() as isize;
        let mut best_off = 0isize;
        let mut best_score = f32::NEG_INFINITY;
        let mut d = -(SEARCH as isize);
        while d <= SEARCH as isize {
            let mut corr = 0.0f32;
            let mut energy = 1e-9f32;
            // Correlate on a decimated grid: every 2nd sample is plenty for
            // alignment and halves the dominant cost of the stretcher.
            if in_range {
                let seg = &src[(natural + d) as usize..];
                let mut i = 0;
                while i < HOP {
                    let s = seg[i];
                    corr += s * self.prev_tail[i];
                    energy += s * s;
                    i += 2;
                }
            } else {
                let mut i = 0;
                while i < HOP {
                    let s = Self::sample(src, natural + d + i as isize);
                    corr += s * self.prev_tail[i];
                    energy += s * s;
                    i += 2;
                }
            }
            let score = corr / energy.sqrt();
            if score > best_score {
                best_score = score;
                best_off = d;
            }
            d += 4; // coarse search grid
        }
        best_off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, freq: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (core::f32::consts::TAU * freq * i as f32 / 44_100.0).sin())
            .collect()
    }

    #[test]
    fn unit_tempo_preserves_duration_and_pitch() {
        let src = sine(44_100, 440.0);
        let mut st = TimeStretcher::new();
        let mut out = vec![0.0f32; 8192];
        st.process(&src, 1.0, &mut out);
        // Count zero crossings as a pitch proxy (440 Hz -> ~163 crossings in
        // 8192 samples).
        let crossings = out.windows(2).filter(|w| w[0] <= 0.0 && w[1] > 0.0).count();
        let expected = (440.0 * 8192.0 / 44_100.0) as isize;
        assert!(
            (crossings as isize - expected).abs() <= 4,
            "crossings {crossings}, expected ~{expected}"
        );
    }

    #[test]
    fn double_tempo_consumes_twice_the_input() {
        let src = sine(88_200, 220.0);
        let mut st = TimeStretcher::new();
        let mut out = vec![0.0f32; 4096];
        st.process(&src, 2.0, &mut out);
        // in_pos advanced ~2x the output length (+/- one frame of slack).
        let consumed = st.position();
        assert!(
            (consumed - 8192.0).abs() < FRAME as f64 * 2.0,
            "consumed {consumed}"
        );
    }

    #[test]
    fn pitch_preserved_at_faster_tempo() {
        let src = sine(88_200, 440.0);
        let mut st = TimeStretcher::new();
        let mut out = vec![0.0f32; 16_384];
        st.process(&src, 1.5, &mut out);
        let crossings = out[2048..14_336]
            .windows(2)
            .filter(|w| w[0] <= 0.0 && w[1] > 0.0)
            .count();
        let expected = (440.0 * 12_288.0 / 44_100.0) as isize; // same pitch!
        assert!(
            (crossings as isize - expected).abs() <= 8,
            "crossings {crossings}, expected ~{expected}"
        );
    }

    #[test]
    fn output_amplitude_stays_bounded() {
        let src = sine(44_100, 523.0);
        let mut st = TimeStretcher::new();
        for tempo in [0.5f32, 0.9, 1.0, 1.3, 2.0] {
            st.seek(0.0);
            let mut out = vec![0.0f32; 8192];
            st.process(&src, tempo, &mut out);
            let peak = out.iter().fold(0.0f32, |m, s| m.max(s.abs()));
            assert!(peak <= 1.3, "tempo {tempo}: peak {peak}");
            assert!(peak > 0.5, "tempo {tempo}: peak {peak} (lost signal)");
        }
    }

    #[test]
    fn beyond_source_is_silence() {
        let src = sine(1024, 440.0);
        let mut st = TimeStretcher::new();
        st.seek(100_000.0);
        let mut out = vec![9.0f32; 512];
        st.process(&src, 1.0, &mut out);
        assert!(out.iter().all(|&s| s.abs() < 1e-6));
    }

    #[test]
    fn seek_resets_state() {
        let src = sine(44_100, 440.0);
        let mut st = TimeStretcher::new();
        let mut out1 = vec![0.0f32; 1024];
        st.process(&src, 1.0, &mut out1);
        st.seek(0.0);
        let mut out2 = vec![0.0f32; 1024];
        st.process(&src, 1.0, &mut out2);
        assert_eq!(out1, out2);
    }

    #[test]
    fn wide_crossfade_matches_scalar_exactly() {
        // Short source so frames also cross the end (slow-path parity).
        for src_len in [2_000usize, 44_100] {
            let src = sine(src_len, 440.0);
            crate::simd::set_force_scalar(true);
            let mut st = TimeStretcher::new();
            let mut scalar = vec![0.0f32; 6144];
            st.process(&src, 1.3, &mut scalar);
            crate::simd::set_force_scalar(false);
            let mut st = TimeStretcher::new();
            let mut wide = vec![0.0f32; 6144];
            st.process(&src, 1.3, &mut wide);
            assert_eq!(scalar, wide, "src_len {src_len}");
        }
    }

    #[test]
    fn partial_reads_equal_one_big_read() {
        let src = sine(44_100, 330.0);
        let mut a = TimeStretcher::new();
        let mut big = vec![0.0f32; 2048];
        a.process(&src, 1.2, &mut big);

        let mut b = TimeStretcher::new();
        let mut parts = vec![0.0f32; 2048];
        for chunk in parts.chunks_mut(128) {
            b.process(&src, 1.2, chunk);
        }
        assert_eq!(big, parts);
    }
}
