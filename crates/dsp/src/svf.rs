//! State-variable filter (Chamberlin topology): simultaneous lowpass,
//! bandpass and highpass outputs with smooth, per-sample modulatable
//! parameters — the filter DJ software prefers for swept "filter" effects
//! because its coefficients can be changed every sample without zipper
//! noise, unlike a biquad redesign.

use crate::buffer::AudioBuf;

/// Which output of the SVF to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvfOutput {
    Lowpass,
    Bandpass,
    Highpass,
    Notch,
}

/// A stereo Chamberlin state-variable filter.
#[derive(Debug, Clone)]
pub struct StateVariableFilter {
    f: f32,
    q_inv: f32,
    output: SvfOutput,
    low: [f32; 2],
    band: [f32; 2],
    sample_rate: f32,
}

impl StateVariableFilter {
    /// SVF at `cutoff_hz` with resonance `q` (0.5–20), taking `output`.
    pub fn new(cutoff_hz: f32, q: f32, output: SvfOutput, sample_rate: u32) -> Self {
        let mut svf = StateVariableFilter {
            f: 0.0,
            q_inv: 1.0 / q.clamp(0.5, 20.0),
            output,
            low: [0.0; 2],
            band: [0.0; 2],
            sample_rate: sample_rate as f32,
        };
        svf.set_cutoff(cutoff_hz);
        svf
    }

    /// Change the cutoff (cheap; callable per sample).
    pub fn set_cutoff(&mut self, cutoff_hz: f32) {
        // Chamberlin stability bound: f = 2 sin(pi fc / fs), fc < fs/6.
        let fc = cutoff_hz.clamp(10.0, self.sample_rate / 6.5);
        self.f = 2.0 * (core::f32::consts::PI * fc / self.sample_rate).sin();
    }

    /// Change the resonance.
    pub fn set_q(&mut self, q: f32) {
        self.q_inv = 1.0 / q.clamp(0.5, 20.0);
    }

    /// Clear state.
    pub fn reset(&mut self) {
        self.low = [0.0; 2];
        self.band = [0.0; 2];
    }

    /// Process one sample on `channel`.
    #[inline]
    pub fn tick(&mut self, channel: usize, x: f32) -> f32 {
        let low = &mut self.low[channel];
        let band = &mut self.band[channel];
        *low += self.f * *band;
        let high = x - *low - self.q_inv * *band;
        *band += self.f * high;
        match self.output {
            SvfOutput::Lowpass => *low,
            SvfOutput::Bandpass => *band,
            SvfOutput::Highpass => high,
            SvfOutput::Notch => *low + high,
        }
    }

    /// Filter a buffer in place.
    pub fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            for ch in 0..channels.min(2) {
                let y = self.tick(ch, buf.sample(ch, i));
                buf.set_sample(ch, i, y);
            }
        }
    }
}

/// A DC blocker: one-pole highpass at ~5 Hz removing offset drift that
/// would eat headroom at the master limiter.
#[derive(Debug, Clone)]
pub struct DcBlocker {
    r: f32,
    x1: [f32; 2],
    y1: [f32; 2],
}

impl DcBlocker {
    /// A DC blocker for the given sample rate.
    pub fn new(sample_rate: u32) -> Self {
        DcBlocker {
            r: 1.0 - core::f32::consts::TAU * 5.0 / sample_rate as f32,
            x1: [0.0; 2],
            y1: [0.0; 2],
        }
    }

    /// Clear state.
    pub fn reset(&mut self) {
        self.x1 = [0.0; 2];
        self.y1 = [0.0; 2];
    }

    /// Filter a buffer in place.
    pub fn process(&mut self, buf: &mut AudioBuf) {
        let channels = buf.channels();
        let frames = buf.frames();
        for i in 0..frames {
            for ch in 0..channels.min(2) {
                let x = buf.sample(ch, i);
                let y = x - self.x1[ch] + self.r * self.y1[ch];
                self.x1[ch] = x;
                self.y1[ch] = y;
                buf.set_sample(ch, i, y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::{Oscillator, Waveform};

    fn response(output: SvfOutput, cutoff: f32, tone: f32) -> f32 {
        let mut svf = StateVariableFilter::new(cutoff, 0.707, output, 44_100);
        let mut osc = Oscillator::new(Waveform::Sine, tone, 44_100);
        // settle
        for _ in 0..4096 {
            svf.tick(0, osc.next_sample());
        }
        let mut energy = 0.0f32;
        for _ in 0..4096 {
            let y = svf.tick(0, osc.next_sample());
            energy += y * y;
        }
        (energy / 4096.0).sqrt() / core::f32::consts::FRAC_1_SQRT_2
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        assert!(response(SvfOutput::Lowpass, 1000.0, 100.0) > 0.9);
        assert!(response(SvfOutput::Lowpass, 1000.0, 6000.0) < 0.1);
    }

    #[test]
    fn highpass_blocks_low_passes_high() {
        assert!(response(SvfOutput::Highpass, 1000.0, 100.0) < 0.1);
        assert!(response(SvfOutput::Highpass, 1000.0, 6000.0) > 0.8);
    }

    #[test]
    fn bandpass_peaks_at_cutoff() {
        let at = response(SvfOutput::Bandpass, 1000.0, 1000.0);
        let off = response(SvfOutput::Bandpass, 1000.0, 5000.0);
        assert!(at > off * 3.0, "at {at}, off {off}");
    }

    #[test]
    fn notch_rejects_cutoff() {
        let at = response(SvfOutput::Notch, 1000.0, 1000.0);
        let off = response(SvfOutput::Notch, 1000.0, 4000.0);
        assert!(at < 0.2, "notch at cutoff: {at}");
        assert!(off > 0.7, "notch off cutoff: {off}");
    }

    #[test]
    fn per_sample_sweep_stays_stable() {
        let mut svf = StateVariableFilter::new(100.0, 8.0, SvfOutput::Lowpass, 44_100);
        let mut osc = Oscillator::new(Waveform::Saw, 220.0, 44_100);
        let mut peak = 0.0f32;
        for i in 0..88_200 {
            // Sweep cutoff 100 Hz → 6 kHz and back, every sample.
            let phase = (i as f32 / 44_100.0 * 0.5).fract();
            let sweep = if phase < 0.5 {
                phase * 2.0
            } else {
                2.0 - phase * 2.0
            };
            svf.set_cutoff(100.0 * (60.0f32).powf(sweep));
            let y = svf.tick(0, 0.5 * osc.next_sample());
            assert!(y.is_finite());
            peak = peak.max(y.abs());
        }
        assert!(peak < 8.0, "sweep peak {peak}");
    }

    #[test]
    fn dc_blocker_removes_offset_keeps_audio() {
        let mut dc = DcBlocker::new(44_100);
        let mut osc = Oscillator::new(Waveform::Sine, 441.0, 44_100);
        // Settle past the filter's ~32 ms time constant.
        for _ in 0..50 {
            let mut buf = AudioBuf::from_fn(1, 128, |_, _| 0.5 + 0.3 * osc.next_sample());
            dc.process(&mut buf);
        }
        // Measure the mean over a whole number of sine periods (441 Hz →
        // 100-sample period; 6400 samples = 64 periods) so the tone itself
        // averages out and only residual DC remains.
        let mut sum = 0.0f32;
        let mut rms_acc = 0.0f32;
        const BLOCKS: usize = 50;
        for _ in 0..BLOCKS {
            let mut buf = AudioBuf::from_fn(1, 128, |_, _| 0.5 + 0.3 * osc.next_sample());
            dc.process(&mut buf);
            sum += buf.samples().iter().sum::<f32>();
            rms_acc += buf.rms();
        }
        let mean = sum / (BLOCKS as f32 * 128.0);
        assert!(mean.abs() < 0.01, "residual DC {mean}");
        assert!(rms_acc / BLOCKS as f32 > 0.15, "audio destroyed");
    }
}
