//! Minimal WAV (RIFF PCM) reading and writing, from scratch.
//!
//! DJ Star records the master bus to disk (the RecordBuffer path of
//! Fig. 3); this module provides the 16-bit PCM encode/decode for that
//! path and for the examples that dump audible output.

use crate::buffer::AudioBuf;
use std::io::{self, Read, Write};

/// Samples and format of a decoded WAV file.
#[derive(Debug, Clone, PartialEq)]
pub struct WavData {
    /// Interleaved samples normalized to `[-1, 1]`.
    pub samples: Vec<f32>,
    /// Channel count.
    pub channels: u16,
    /// Sample rate in Hz.
    pub sample_rate: u32,
}

impl WavData {
    /// Number of frames.
    pub fn frames(&self) -> usize {
        if self.channels == 0 {
            0
        } else {
            self.samples.len() / self.channels as usize
        }
    }
}

/// Encode interleaved `[-1, 1]` samples as a 16-bit PCM WAV stream.
pub fn write_wav<W: Write>(
    mut w: W,
    samples: &[f32],
    channels: u16,
    sample_rate: u32,
) -> io::Result<()> {
    let data_len = (samples.len() * 2) as u32;
    let byte_rate = sample_rate * channels as u32 * 2;
    let block_align = channels * 2;

    w.write_all(b"RIFF")?;
    w.write_all(&(36 + data_len).to_le_bytes())?;
    w.write_all(b"WAVE")?;
    // fmt chunk
    w.write_all(b"fmt ")?;
    w.write_all(&16u32.to_le_bytes())?;
    w.write_all(&1u16.to_le_bytes())?; // PCM
    w.write_all(&channels.to_le_bytes())?;
    w.write_all(&sample_rate.to_le_bytes())?;
    w.write_all(&byte_rate.to_le_bytes())?;
    w.write_all(&block_align.to_le_bytes())?;
    w.write_all(&16u16.to_le_bytes())?; // bits per sample
                                        // data chunk
    w.write_all(b"data")?;
    w.write_all(&data_len.to_le_bytes())?;
    for &s in samples {
        let v = (s.clamp(-1.0, 1.0) * 32767.0).round() as i16;
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Append an [`AudioBuf`]'s interleaved samples to a growing sample vector
/// (a convenience for recording loops).
pub fn append_buffer(sink: &mut Vec<f32>, buf: &AudioBuf) {
    buf.extend_interleaved_into(sink);
}

fn read_exact_buf<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<u8>> {
    let mut v = vec![0u8; n];
    r.read_exact(&mut v)?;
    Ok(v)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Decode a 16-bit PCM WAV stream.
pub fn read_wav<R: Read>(mut r: R) -> io::Result<WavData> {
    let riff = read_exact_buf(&mut r, 12)?;
    if &riff[0..4] != b"RIFF" || &riff[8..12] != b"WAVE" {
        return Err(bad("not a RIFF/WAVE stream"));
    }
    let mut channels = 0u16;
    let mut sample_rate = 0u32;
    let mut bits = 0u16;
    let mut data: Option<Vec<u8>> = None;
    loop {
        let mut header = [0u8; 8];
        match r.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let id = &header[0..4];
        let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        match id {
            b"fmt " => {
                let chunk = read_exact_buf(&mut r, len)?;
                if len < 16 {
                    return Err(bad("fmt chunk too short"));
                }
                let format = u16::from_le_bytes(chunk[0..2].try_into().unwrap());
                if format != 1 {
                    return Err(bad("only PCM WAV is supported"));
                }
                channels = u16::from_le_bytes(chunk[2..4].try_into().unwrap());
                sample_rate = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
                bits = u16::from_le_bytes(chunk[14..16].try_into().unwrap());
            }
            b"data" => {
                data = Some(read_exact_buf(&mut r, len)?);
            }
            _ => {
                // Skip unknown chunk (word-aligned).
                read_exact_buf(&mut r, len + (len & 1))?;
            }
        }
    }
    let data = data.ok_or_else(|| bad("missing data chunk"))?;
    if bits != 16 {
        return Err(bad("only 16-bit WAV is supported"));
    }
    if channels == 0 || sample_rate == 0 {
        return Err(bad("missing fmt chunk"));
    }
    let samples = data
        .chunks_exact(2)
        .map(|b| i16::from_le_bytes([b[0], b[1]]) as f32 / 32767.0)
        .collect();
    Ok(WavData {
        samples,
        channels,
        sample_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_audio() {
        let samples: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.05).sin() * 0.8).collect();
        let mut bytes = Vec::new();
        write_wav(&mut bytes, &samples, 2, 44_100).unwrap();
        let decoded = read_wav(&bytes[..]).unwrap();
        assert_eq!(decoded.channels, 2);
        assert_eq!(decoded.sample_rate, 44_100);
        assert_eq!(decoded.samples.len(), samples.len());
        assert_eq!(decoded.frames(), 500);
        for (a, b) in decoded.samples.iter().zip(&samples) {
            assert!((a - b).abs() < 1.0 / 32000.0, "{a} vs {b}");
        }
    }

    #[test]
    fn header_is_canonical() {
        let mut bytes = Vec::new();
        write_wav(&mut bytes, &[0.0; 4], 1, 48_000).unwrap();
        assert_eq!(&bytes[0..4], b"RIFF");
        assert_eq!(&bytes[8..12], b"WAVE");
        assert_eq!(&bytes[12..16], b"fmt ");
        assert_eq!(&bytes[36..40], b"data");
        assert_eq!(bytes.len(), 44 + 8);
    }

    #[test]
    fn clipping_values_are_clamped() {
        let mut bytes = Vec::new();
        write_wav(&mut bytes, &[2.0, -2.0], 1, 44_100).unwrap();
        let d = read_wav(&bytes[..]).unwrap();
        assert!((d.samples[0] - 1.0).abs() < 1e-3);
        assert!((d.samples[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_wav(&b"not a wav"[..]).is_err());
        let mut almost = Vec::new();
        write_wav(&mut almost, &[0.0; 4], 1, 44_100).unwrap();
        almost[0] = b'X';
        assert!(read_wav(&almost[..]).is_err());
    }

    #[test]
    fn skips_unknown_chunks() {
        let mut bytes = Vec::new();
        write_wav(&mut bytes, &[0.5, -0.5], 1, 44_100).unwrap();
        // Inject a LIST chunk between fmt and data.
        let mut patched = bytes[..36].to_vec();
        patched.extend_from_slice(b"LIST");
        patched.extend_from_slice(&4u32.to_le_bytes());
        patched.extend_from_slice(b"INFO");
        patched.extend_from_slice(&bytes[36..]);
        // Fix RIFF size.
        let new_size = (patched.len() - 8) as u32;
        patched[4..8].copy_from_slice(&new_size.to_le_bytes());
        let d = read_wav(&patched[..]).unwrap();
        assert_eq!(d.samples.len(), 2);
    }

    #[test]
    fn append_buffer_accumulates() {
        let buf = AudioBuf::from_fn(2, 4, |ch, i| (ch + i) as f32 * 0.1);
        let mut sink = Vec::new();
        append_buffer(&mut sink, &buf);
        append_buffer(&mut sink, &buf);
        assert_eq!(sink.len(), 16);
    }
}
