//! Calibratable compute kernel for the node cost model.
//!
//! The paper's effect nodes take tens of microseconds on 128-sample buffers
//! because the proprietary algorithms are heavy (§IV: effect nodes are "the
//! most expensive nodes in terms of run-time consumption"). Our replacement
//! effects are real DSP but lighter, so each graph node additionally runs
//! this kernel for a number of iterations set by the workload's
//! `WorkProfile` — scaled by the buffer's signal energy, reproducing the
//! paper's data-dependent run-times ("the run-time additionally depends on
//! the actual audio stream data").
//!
//! The kernel is a chaotic floating-point recurrence: it cannot be
//! constant-folded, auto-vectorizes poorly on purpose (loop-carried
//! dependency) and returns a value the caller must consume, so the optimizer
//! cannot remove it.

/// Run `iters` iterations of the calibration kernel seeded by `seed`.
///
/// Returns a value derived from every iteration; callers must feed it into
/// something observable (the engine adds `result * 1e-20` to one sample)
/// so the work cannot be optimized away.
#[inline(never)]
pub fn burn(iters: u32, seed: f32) -> f32 {
    let mut x = seed.abs().fract() * 0.5 + 0.25;
    let mut acc = 0.0f32;
    for i in 0..iters {
        // Logistic-map-like recurrence with an extra transcendental every
        // 16th iteration to roughly match filter-kernel instruction mixes.
        x = 3.999 * x * (1.0 - x);
        if i % 16 == 0 {
            acc += (x * core::f32::consts::PI).sin();
        } else {
            acc += x;
        }
    }
    acc
}

/// Measure the host's single-iteration cost of [`burn`] in nanoseconds by
/// timing a large batch. Used once at calibration time.
pub fn measure_iter_cost_ns() -> f64 {
    use std::time::Instant;
    // Warm up.
    let mut sink = burn(10_000, 0.37);
    let iters = 2_000_000u32;
    let t0 = Instant::now();
    sink += burn(iters, 0.61);
    let dt = t0.elapsed();
    // Keep `sink` observable.
    if sink.is_nan() {
        eprintln!("impossible: burn produced NaN");
    }
    dt.as_nanos() as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_is_deterministic() {
        assert_eq!(burn(1000, 0.5), burn(1000, 0.5));
    }

    #[test]
    fn burn_depends_on_seed_and_iters() {
        assert_ne!(burn(1000, 0.5), burn(1000, 0.25));
        assert_ne!(burn(1000, 0.5), burn(1001, 0.5));
    }

    #[test]
    fn burn_zero_iters_is_zero_work() {
        assert_eq!(burn(0, 0.9), 0.0);
    }

    #[test]
    fn burn_output_finite() {
        for i in [1u32, 10, 100, 10_000] {
            assert!(burn(i, 0.123).is_finite());
        }
    }

    #[test]
    fn iter_cost_positive_and_sane() {
        let ns = measure_iter_cost_ns();
        assert!(ns > 0.0 && ns < 1_000.0, "iteration cost {ns} ns");
    }
}
