//! Property-style tests for the DSP substrate: stability, boundedness and
//! algebraic invariants that must hold for arbitrary audio. Inputs are
//! generated from a seeded [`SmallRng`] so every run checks the same cases
//! (the workspace builds offline, without proptest).

use djstar_dsp::biquad::{Biquad, FilterKind};
use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::db::{crossfade_gains, db_to_gain, gain_to_db, pan_gains};
use djstar_dsp::dynamics::{HardClip, Limiter};
use djstar_dsp::effects::EffectKind;
use djstar_dsp::resample::VarRateReader;
use djstar_dsp::rng::SmallRng;

fn rand_buf(rng: &mut SmallRng, frames: usize) -> AudioBuf {
    let mut buf = AudioBuf::zeroed(2, frames);
    for s in buf.samples_mut() {
        *s = rng.f32() * 2.0 - 1.0;
    }
    buf
}

fn rand_in(rng: &mut SmallRng, lo: f32, hi: f32) -> f32 {
    lo + rng.f32() * (hi - lo)
}

#[test]
fn db_round_trip_everywhere() {
    let mut rng = SmallRng::seed_from_u64(0xD5B);
    for _ in 0..256 {
        let db = rand_in(&mut rng, -100.0, 24.0);
        let back = gain_to_db(db_to_gain(db));
        assert!((back - db).abs() < 1e-2, "{db} -> {back}");
    }
}

#[test]
fn pan_and_crossfade_are_equal_power() {
    let mut rng = SmallRng::seed_from_u64(0x9A4);
    for _ in 0..256 {
        let x = rand_in(&mut rng, -1.0, 1.0);
        let (l, r) = pan_gains(x);
        assert!((l * l + r * r - 1.0).abs() < 1e-4);
        let (a, b) = crossfade_gains((x + 1.0) / 2.0);
        assert!((a * a + b * b - 1.0).abs() < 1e-4);
    }
}

#[test]
fn mix_add_is_linear() {
    let mut rng = SmallRng::seed_from_u64(0x317);
    for _ in 0..64 {
        let buf_a = rand_buf(&mut rng, 32);
        let buf_b = rand_buf(&mut rng, 32);
        let g1 = rand_in(&mut rng, -2.0, 2.0);
        let g2 = rand_in(&mut rng, -2.0, 2.0);
        // (a*g1 + b*g2) built two ways must agree.
        let mut one = AudioBuf::zeroed(2, 32);
        one.mix_add(&buf_a, g1);
        one.mix_add(&buf_b, g2);
        let mut two = AudioBuf::zeroed(2, 32);
        two.mix_add(&buf_b, g2);
        two.mix_add(&buf_a, g1);
        for (x, y) in one.samples().iter().zip(two.samples()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}

#[test]
fn biquad_stable_for_any_design() {
    let mut rng = SmallRng::seed_from_u64(0xB1D);
    for _ in 0..64 {
        let gain_db = rand_in(&mut rng, -24.0, 24.0);
        let kind = match rng.below(7) {
            0 => FilterKind::Lowpass,
            1 => FilterKind::Highpass,
            2 => FilterKind::Bandpass,
            3 => FilterKind::Notch,
            4 => FilterKind::Peaking { gain_db },
            5 => FilterKind::LowShelf { gain_db },
            _ => FilterKind::HighShelf { gain_db },
        };
        // Deliberately allows beyond-Nyquist frequencies.
        let freq = rand_in(&mut rng, 10.0, 30_000.0);
        let q = rand_in(&mut rng, 0.01, 20.0);
        let buf = rand_buf(&mut rng, 128);
        let mut filt = Biquad::design(kind, freq, q, 44_100);
        // Stream fresh copies of the block through the stateful filter (the
        // real usage pattern); a stable filter's output stays bounded by
        // roughly the resonance gain (~Q) plus shelf gain.
        for _ in 0..20 {
            let mut work = buf.clone();
            filt.process(&mut work);
            assert!(work.is_finite(), "{kind:?} f={freq} q={q}");
            assert!(work.peak() < 500.0, "{kind:?} blew up: {}", work.peak());
        }
    }
}

#[test]
fn limiter_always_respects_ceiling() {
    let mut rng = SmallRng::seed_from_u64(0x717);
    for _ in 0..64 {
        let buf = rand_buf(&mut rng, 128);
        let drive = rand_in(&mut rng, 1.0, 20.0);
        let ceiling = rand_in(&mut rng, 0.1, 1.0);
        let mut lim = Limiter::new(ceiling, 0.5, 50.0, 44_100);
        let mut work = buf.clone();
        work.scale(drive);
        for _ in 0..5 {
            lim.process(&mut work);
        }
        assert!(work.peak() <= ceiling + 1e-4);
    }
}

#[test]
fn hard_clip_is_idempotent() {
    let mut rng = SmallRng::seed_from_u64(0xC11);
    for _ in 0..64 {
        let buf = rand_buf(&mut rng, 64);
        let ceiling = rand_in(&mut rng, 0.1, 1.0);
        let clip = HardClip::new(ceiling);
        let mut once = buf.clone();
        clip.process(&mut once);
        let mut twice = once.clone();
        let clipped_again = clip.process(&mut twice);
        assert_eq!(clipped_again, 0);
        assert_eq!(once, twice);
    }
}

#[test]
fn effects_never_explode_on_arbitrary_input() {
    let mut rng = SmallRng::seed_from_u64(0xEFF);
    for kind in EffectKind::ALL {
        for _ in 0..6 {
            let buf = rand_buf(&mut rng, 128);
            let mut fx = kind.build(44_100);
            // Stream fresh blocks (the streaming usage pattern); internal
            // feedback state must stay bounded across blocks.
            for _ in 0..30 {
                let mut work = buf.clone();
                fx.process(&mut work);
                assert!(work.is_finite(), "{kind:?}");
                assert!(work.peak() < 20.0, "{kind:?} peak {}", work.peak());
            }
        }
    }
}

#[test]
fn unit_rate_resampling_is_near_identity() {
    let mut rng = SmallRng::seed_from_u64(0x4E5);
    for _ in 0..64 {
        let len = 64 + rng.below(192);
        let src: Vec<f32> = (0..len).map(|_| rng.f32() * 2.0 - 1.0).collect();
        let mut reader = VarRateReader::new(1.0);
        let mut out = vec![0.0f32; src.len() - 3];
        reader.read(&src, 1.0, &mut out);
        for (k, &o) in out.iter().enumerate() {
            assert!((o - src[k + 1]).abs() < 1e-3, "frame {k}");
        }
    }
}

#[test]
fn buffer_energy_matches_rms() {
    let mut rng = SmallRng::seed_from_u64(0x4A5);
    for _ in 0..64 {
        let buf = rand_buf(&mut rng, 64);
        let n = buf.samples().len() as f32;
        let rms = buf.rms();
        let energy = buf.energy();
        assert!((rms * rms * n - energy).abs() < 1e-2 * energy.max(1.0));
    }
}
