//! Property-based tests for the DSP substrate: stability, boundedness and
//! algebraic invariants that must hold for arbitrary audio.

use djstar_dsp::biquad::{Biquad, FilterKind};
use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::db::{crossfade_gains, db_to_gain, gain_to_db, pan_gains};
use djstar_dsp::dynamics::{HardClip, Limiter};
use djstar_dsp::effects::EffectKind;
use djstar_dsp::resample::VarRateReader;
use proptest::prelude::*;

fn audio_buf(frames: usize) -> impl Strategy<Value = AudioBuf> {
    prop::collection::vec(-1.0f32..1.0, frames * 2).prop_map(move |data| {
        let mut buf = AudioBuf::zeroed(2, frames);
        buf.samples_mut().copy_from_slice(&data);
        buf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn db_round_trip_everywhere(db in -100.0f32..24.0) {
        let back = gain_to_db(db_to_gain(db));
        prop_assert!((back - db).abs() < 1e-2, "{db} -> {back}");
    }

    #[test]
    fn pan_and_crossfade_are_equal_power(x in -1.0f32..1.0) {
        let (l, r) = pan_gains(x);
        prop_assert!((l * l + r * r - 1.0).abs() < 1e-4);
        let (a, b) = crossfade_gains((x + 1.0) / 2.0);
        prop_assert!((a * a + b * b - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mix_add_is_linear(buf_a in audio_buf(32), buf_b in audio_buf(32),
                         g1 in -2.0f32..2.0, g2 in -2.0f32..2.0) {
        // (a*g1 + b*g2) built two ways must agree.
        let mut one = AudioBuf::zeroed(2, 32);
        one.mix_add(&buf_a, g1);
        one.mix_add(&buf_b, g2);
        let mut two = AudioBuf::zeroed(2, 32);
        two.mix_add(&buf_b, g2);
        two.mix_add(&buf_a, g1);
        for (x, y) in one.samples().iter().zip(two.samples()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn biquad_stable_for_any_design(
        kind_sel in 0usize..7,
        freq in 10.0f32..30_000.0, // deliberately allows beyond-Nyquist
        q in 0.01f32..20.0,
        gain_db in -24.0f32..24.0,
        buf in audio_buf(128),
    ) {
        let kind = match kind_sel {
            0 => FilterKind::Lowpass,
            1 => FilterKind::Highpass,
            2 => FilterKind::Bandpass,
            3 => FilterKind::Notch,
            4 => FilterKind::Peaking { gain_db },
            5 => FilterKind::LowShelf { gain_db },
            _ => FilterKind::HighShelf { gain_db },
        };
        let mut filt = Biquad::design(kind, freq, q, 44_100);
        // Stream fresh copies of the block through the stateful filter (the
        // real usage pattern); a stable filter's output stays bounded by
        // roughly the resonance gain (~Q) plus shelf gain.
        for _ in 0..20 {
            let mut work = buf.clone();
            filt.process(&mut work);
            prop_assert!(work.is_finite(), "{kind:?} f={freq} q={q}");
            prop_assert!(work.peak() < 500.0, "{kind:?} blew up: {}", work.peak());
        }
    }

    #[test]
    fn limiter_always_respects_ceiling(buf in audio_buf(128),
                                       drive in 1.0f32..20.0,
                                       ceiling in 0.1f32..1.0) {
        let mut lim = Limiter::new(ceiling, 0.5, 50.0, 44_100);
        let mut work = buf.clone();
        work.scale(drive);
        for _ in 0..5 {
            lim.process(&mut work);
        }
        prop_assert!(work.peak() <= ceiling + 1e-4);
    }

    #[test]
    fn hard_clip_is_idempotent(buf in audio_buf(64), ceiling in 0.1f32..1.0) {
        let clip = HardClip::new(ceiling);
        let mut once = buf.clone();
        clip.process(&mut once);
        let mut twice = once.clone();
        let clipped_again = clip.process(&mut twice);
        prop_assert_eq!(clipped_again, 0);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn effects_never_explode_on_arbitrary_input(buf in audio_buf(128), kind_sel in 0usize..10) {
        let kind = EffectKind::ALL[kind_sel];
        let mut fx = kind.build(44_100);
        // Stream fresh blocks (the streaming usage pattern); internal
        // feedback state must stay bounded across blocks.
        for _ in 0..30 {
            let mut work = buf.clone();
            fx.process(&mut work);
            prop_assert!(work.is_finite(), "{kind:?}");
            prop_assert!(work.peak() < 20.0, "{kind:?} peak {}", work.peak());
        }
    }

    #[test]
    fn unit_rate_resampling_is_near_identity(src in prop::collection::vec(-1.0f32..1.0, 64..256)) {
        let mut reader = VarRateReader::new(1.0);
        let mut out = vec![0.0f32; src.len() - 3];
        reader.read(&src, 1.0, &mut out);
        for (k, &o) in out.iter().enumerate() {
            prop_assert!((o - src[k + 1]).abs() < 1e-3, "frame {k}");
        }
    }

    #[test]
    fn buffer_energy_matches_rms(buf in audio_buf(64)) {
        let n = buf.samples().len() as f32;
        let rms = buf.rms();
        let energy = buf.energy();
        prop_assert!((rms * rms * n - energy).abs() < 1e-2 * energy.max(1.0));
    }
}
