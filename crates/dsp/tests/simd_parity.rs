//! SIMD↔scalar parity for every vectorized kernel over randomized shapes.
//!
//! The E16 acceptance bound is 1e-6 per sample; the shim performs lane-wise
//! IEEE-754 single operations with no FMA and no reassociation, so these
//! tests assert the stronger property — **bit-exact** equality — across
//! randomized frame counts (including non-lane-multiple tails), channel
//! counts, parameter draws and multi-block streams. Inputs come from the
//! seeded [`SmallRng`], so every run checks the same cases (the workspace
//! builds offline, without proptest).
//!
//! Kernels with explicit `*_scalar` reference entry points are compared
//! through those; the stretcher (which only dispatches on the global
//! switch) uses `set_force_scalar`. The toggle is process-global, but both
//! paths are bit-identical by construction, so concurrent tests flipping
//! it cannot change any kernel's output — only which (equal) path ran.

use djstar_dsp::biquad::{process_chain, process_chain_scalar, Biquad, FilterKind};
use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::dynamics::{Compressor, Limiter};
use djstar_dsp::eq::ThreeBandEq;
use djstar_dsp::fft::{fft_inplace, Complex, Fft};
use djstar_dsp::mix::{
    apply_strip, apply_strip_scalar, mix_into, mix_into_scalar, ChannelStripParams,
};
use djstar_dsp::rng::SmallRng;
use djstar_dsp::simd;
use djstar_dsp::stretch::TimeStretcher;

fn rand_buf(rng: &mut SmallRng, channels: usize, frames: usize) -> AudioBuf {
    let mut buf = AudioBuf::zeroed(channels, frames);
    for s in buf.samples_mut() {
        *s = rng.f32() * 2.0 - 1.0;
    }
    buf
}

/// A random shape: mono or stereo, 1..=300 frames (tails of every length
/// mod 4 appear many times over the draws).
fn rand_shape(rng: &mut SmallRng) -> (usize, usize) {
    (1 + rng.below(2), 1 + rng.below(300))
}

fn rand_filter(rng: &mut SmallRng) -> Biquad {
    let gain_db = rng.f32() * 36.0 - 18.0;
    let kind = match rng.below(7) {
        0 => FilterKind::Lowpass,
        1 => FilterKind::Highpass,
        2 => FilterKind::Bandpass,
        3 => FilterKind::Notch,
        4 => FilterKind::Peaking { gain_db },
        5 => FilterKind::LowShelf { gain_db },
        _ => FilterKind::HighShelf { gain_db },
    };
    let freq = 40.0 + rng.f32() * 15_000.0;
    let q = 0.3 + rng.f32() * 3.0;
    Biquad::design(kind, freq, q, djstar_dsp::SAMPLE_RATE)
}

#[test]
fn biquad_chains_bit_exact_for_any_shape_and_length() {
    let mut rng = SmallRng::seed_from_u64(0x51AD);
    for _ in 0..60 {
        // 1..=10 sections: covers the fused single chunk and the >8
        // multi-chunk path.
        let sections = 1 + rng.below(10);
        let mut wide: Vec<Biquad> = (0..sections).map(|_| rand_filter(&mut rng)).collect();
        let mut scalar = wide.clone();
        let (ch, frames) = rand_shape(&mut rng);
        let input = rand_buf(&mut rng, ch, frames);
        // Two blocks through the same chain: state carry-over must agree
        // too, not just the first block.
        for _ in 0..2 {
            let mut a = input.clone();
            let mut b = input.clone();
            process_chain(&mut wide, &mut a);
            process_chain_scalar(&mut scalar, &mut b);
            assert_eq!(
                a.samples(),
                b.samples(),
                "{sections} sections, {ch}ch x {frames}f"
            );
        }
        for (w, s) in wide.iter().zip(&scalar) {
            assert_eq!(w.state(), s.state(), "filter state diverged");
        }
    }
}

#[test]
fn eq_bit_exact_for_any_gains() {
    let mut rng = SmallRng::seed_from_u64(0xE9);
    for _ in 0..40 {
        let mut wide = ThreeBandEq::new(djstar_dsp::SAMPLE_RATE);
        let mut scalar = ThreeBandEq::new(djstar_dsp::SAMPLE_RATE);
        let gains = [
            rng.f32() * 24.0 - 12.0,
            rng.f32() * 24.0 - 12.0,
            rng.f32() * 24.0 - 12.0,
        ];
        wide.set_gains(gains[0], gains[1], gains[2]);
        scalar.set_gains(gains[0], gains[1], gains[2]);
        let (ch, frames) = rand_shape(&mut rng);
        let input = rand_buf(&mut rng, ch, frames);
        let mut a = input.clone();
        let mut b = input;
        wide.process(&mut a);
        scalar.process_scalar(&mut b);
        assert_eq!(
            a.samples(),
            b.samples(),
            "gains {gains:?}, {ch}ch x {frames}f"
        );
    }
}

#[test]
fn mix_bit_exact_for_any_input_count_and_layout_mix() {
    let mut rng = SmallRng::seed_from_u64(0x317A);
    for _ in 0..60 {
        let (out_ch, frames) = rand_shape(&mut rng);
        // 1..=18 inputs: crosses the fused-path cap (16) into the
        // fallback; occasionally throw in a mismatched layout to force
        // the per-input path.
        let count = 1 + rng.below(18);
        let inputs: Vec<AudioBuf> = (0..count)
            .map(|_| {
                let ch = if rng.chance(0.15) { 3 - out_ch } else { out_ch };
                rand_buf(&mut rng, ch, frames)
            })
            .collect();
        let refs: Vec<&AudioBuf> = inputs.iter().collect();
        let gains: Vec<f32> = (0..count).map(|_| rng.f32() * 2.0 - 0.5).collect();
        let mut fused = AudioBuf::zeroed(out_ch, frames);
        let mut scalar = AudioBuf::zeroed(out_ch, frames);
        mix_into(&mut fused, &refs, &gains);
        mix_into_scalar(&mut scalar, &refs, &gains);
        assert_eq!(
            fused.samples(),
            scalar.samples(),
            "{count} inputs, {out_ch}ch x {frames}f"
        );
    }
}

#[test]
fn strip_bit_exact_for_any_params() {
    let mut rng = SmallRng::seed_from_u64(0x57B1);
    for _ in 0..40 {
        let params = ChannelStripParams {
            fader: rng.f32() * 1.5,
            pan: rng.f32() * 2.0 - 1.0,
            crossfader_side: (rng.below(3) as f32) - 1.0,
        };
        let (ch, frames) = rand_shape(&mut rng);
        let input = rand_buf(&mut rng, ch, frames);
        let mut a = input.clone();
        let mut b = input;
        apply_strip(&mut a, &params);
        apply_strip_scalar(&mut b, &params);
        assert_eq!(a.samples(), b.samples());
    }
}

#[test]
fn dynamics_bit_exact_over_multi_block_streams() {
    let mut rng = SmallRng::seed_from_u64(0xD1A);
    for _ in 0..25 {
        let ch = 1 + rng.below(2);
        let mut lim_w = Limiter::master(djstar_dsp::SAMPLE_RATE);
        let mut lim_s = Limiter::master(djstar_dsp::SAMPLE_RATE);
        let mut comp_w = Compressor::new(0.25, 4.0, 8.0, djstar_dsp::SAMPLE_RATE);
        let mut comp_s = Compressor::new(0.25, 4.0, 8.0, djstar_dsp::SAMPLE_RATE);
        // A stream of ragged block sizes so the chunked wide paths hit
        // every tail; envelope state must stay identical across blocks.
        for _ in 0..6 {
            let frames = 1 + rng.below(200);
            let mut input = rand_buf(&mut rng, ch, frames);
            input.scale(1.8); // hot enough to engage gain reduction
            let mut a = input.clone();
            let mut b = input.clone();
            lim_w.process(&mut a);
            lim_s.process_scalar(&mut b);
            assert_eq!(a.samples(), b.samples(), "limiter {ch}ch x {frames}f");
            let mut a = input.clone();
            let mut b = input;
            let gw = comp_w.process(&mut a);
            let gs = comp_s.process_scalar(&mut b);
            assert_eq!(a.samples(), b.samples(), "compressor {ch}ch x {frames}f");
            assert_eq!(gw, gs, "compressor gain diverged");
        }
    }
}

#[test]
fn fft_plan_bit_exact_against_legacy_and_scalar() {
    let mut rng = SmallRng::seed_from_u64(0xFF7);
    for &n in &[2usize, 8, 32, 128, 256, 1024] {
        let template: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.f32() * 2.0 - 1.0, rng.f32() * 2.0 - 1.0))
            .collect();
        let mut plan = Fft::new(n);
        for inverse in [false, true] {
            let mut legacy = template.clone();
            let mut wide = template.clone();
            let mut scalar = template.clone();
            fft_inplace(&mut legacy, inverse);
            plan.process(&mut wide, inverse);
            plan.process_scalar(&mut scalar, inverse);
            for i in 0..n {
                assert_eq!(wide[i].re.to_bits(), legacy[i].re.to_bits(), "n={n} i={i}");
                assert_eq!(wide[i].im.to_bits(), legacy[i].im.to_bits(), "n={n} i={i}");
                assert_eq!(wide[i].re.to_bits(), scalar[i].re.to_bits(), "n={n} i={i}");
                assert_eq!(wide[i].im.to_bits(), scalar[i].im.to_bits(), "n={n} i={i}");
            }
        }
    }
}

#[test]
fn stretch_bit_exact_for_any_tempo_and_source_length() {
    let mut rng = SmallRng::seed_from_u64(0x57E7);
    for _ in 0..10 {
        let src_len = 1_500 + rng.below(40_000);
        let src: Vec<f32> = (0..src_len).map(|_| rng.f32() * 2.0 - 1.0).collect();
        let tempo = 0.5 + rng.f32() * 2.0;
        let out_len = 512 + rng.below(4096);
        let run = |force_scalar: bool| {
            simd::set_force_scalar(force_scalar);
            let mut st = TimeStretcher::new();
            let mut out = vec![0.0f32; out_len];
            st.process(&src, tempo, &mut out);
            simd::set_force_scalar(false);
            out
        };
        let scalar = run(true);
        let wide = run(false);
        assert_eq!(scalar, wide, "src {src_len}, tempo {tempo}, out {out_len}");
    }
}
