//! The audio processing cycle (APC) driver.
//!
//! §VI: `T(APC) = T(TP) + T(GP) + T(Graph) + T(VC)` — timecode processing,
//! graph preprocessing, task-graph execution and various calculations. The
//! paper measures the non-graph phases at ~0.8 ms combined, leaving
//! `T(Graph) ≤ 2.1 ms` inside the 2.9 ms sound-card budget.
//!
//! [`AudioEngine`] owns the four decks (with their timecode generators and
//! decoders), the control surface, and a pluggable graph executor; each
//! [`run_apc`](AudioEngine::run_apc) performs the four phases and returns
//! their individual timings.

use crate::deck::TrackPlayer;
use crate::degrade::{
    DegradationPolicy, DegradeAction, DegradeConfig, DegradeEvent, NetDegradeAction,
    NetDegradeConfig, NetDegradeEvent, NetLatencyPolicy,
};
use crate::graphbuild::{build_shaped_graph, GraphShape, NodeMap};
use crate::modes::{reachable_edits, AdmissionControl, BlueprintCache, NodeCostModel};
use crate::netnodes::{BroadcastSink, BroadcastStats, NetDeckSource};
use crate::nodes::controls;
use crate::profiling::HotspotProfiler;
use crate::reconfig::{
    apply_edit, stage_topology, EditError, GraphEdit, ReconfigError, StagedTopology,
};
use crate::timecode::{TimecodeDecoder, TimecodeGenerator};
use djstar_core::exec::{
    BusyExecutor, GraphExecutor, HybridExecutor, PlannedExecutor, ScheduleBlueprint,
    SequentialExecutor, SleepExecutor, StealExecutor, Strategy, SwapError, VenuePool,
};
use djstar_core::faults::FaultPlan;
use djstar_core::flight::{FlightConfig, FlightWindow};
use djstar_core::net::NetStats;
use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::work::burn;
use djstar_workload::faults::FaultSpec;
use djstar_workload::scenario::Scenario;
use djstar_workload::track::synth_track;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Compute weights of the non-graph APC phases, calibratable like the node
/// cost model. Defaults approximate the paper's ~0.8 ms combined TP+GP+VC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuxWork {
    /// Extra `burn` iterations per deck during timecode processing.
    pub tp_iters: u32,
    /// Extra `burn` iterations per active deck during graph preprocessing.
    pub gp_iters: u32,
    /// Extra `burn` iterations for the various-calculations phase.
    pub vc_iters: u32,
}

impl AuxWork {
    /// Paper-scale weights: tuned so TP ≈ 0.26 ms, GP ≈ 0.53 ms and
    /// VC ≈ 0.15 ms on the reference host — a compromise between the §VI
    /// total (TP+GP+VC ≈ 0.8 ms) and the §III within-APC shares, which are
    /// mutually inconsistent in the paper (see EXPERIMENTS.md).
    pub fn paper_scale() -> Self {
        AuxWork {
            tp_iters: 16_000,
            gp_iters: 32_000,
            vc_iters: 40_000,
        }
    }

    /// Near-zero weights for tests.
    pub fn light() -> Self {
        AuxWork {
            tp_iters: 50,
            gp_iters: 100,
            vc_iters: 50,
        }
    }

    /// Scale all weights by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |v: u32| ((v as f64 * factor).round() as u32).max(1);
        AuxWork {
            tp_iters: s(self.tp_iters),
            gp_iters: s(self.gp_iters),
            vc_iters: s(self.vc_iters),
        }
    }
}

/// Timing breakdown of one APC.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApcTiming {
    /// Timecode processing.
    pub tp: Duration,
    /// Graph preprocessing (time stretch, phase alignment, buffers).
    pub gp: Duration,
    /// Task-graph execution.
    pub graph: Duration,
    /// Various calculations.
    pub vc: Duration,
}

impl ApcTiming {
    /// Total APC duration.
    pub fn total(&self) -> Duration {
        self.tp + self.gp + self.graph + self.vc
    }
}

/// In-flight state of one venue-batched cycle, produced by
/// [`AudioEngine::venue_prepare`] and consumed by
/// [`AudioEngine::venue_finish`].
#[derive(Debug, Clone, Copy)]
pub struct VenueCyclePrep {
    /// The staged cycle epoch, or `None` for engines (sequential) whose
    /// graph runs inline on the driver during `venue_finish`.
    pub epoch: Option<u64>,
    /// Timecode-phase duration measured during prepare.
    pub tp: Duration,
    /// Preprocessing-phase duration measured during prepare.
    pub gp: Duration,
}

/// The DJ Star engine: decks, timecode, control surface and graph executor.
pub struct AudioEngine {
    scenario: Scenario,
    executor: Box<dyn GraphExecutor>,
    map: NodeMap,
    shape: GraphShape,
    /// Control events dropped for referring to decks/slots that do not
    /// exist in the current shape (see [`apply_events`](Self::apply_events)).
    dropped_events: u64,
    /// Topology edits requested through the event middleware, waiting for
    /// the host to stage and commit them.
    pending_edits: Vec<GraphEdit>,
    /// Mode-aware blueprint cache; `None` until
    /// [`enable_mode_cache`](Self::enable_mode_cache). When armed,
    /// [`stage_edits`](Self::stage_edits) serves warm shapes without
    /// building anything.
    modes: Option<BlueprintCache>,
    /// Schedulability admission; `None` until
    /// [`enable_admission`](Self::enable_admission). When armed, staging
    /// rejects shapes the list-schedule bound proves unschedulable.
    admission: Option<AdmissionControl>,
    /// Stagings whose PLAN blueprint failed to compile — surfaced as
    /// [`ReconfigError::Blueprint`] and counted here for telemetry.
    stage_failures: u64,
    decks: Vec<Option<TrackPlayer>>,
    tc_gen: Vec<TimecodeGenerator>,
    tc_dec: Vec<TimecodeDecoder>,
    tc_buf: AudioBuf,
    decoded_speed: [f32; 4],
    /// Momentary platter-nudge offsets from the controller, decaying per
    /// cycle like a released jog wheel.
    nudge: [f32; 4],
    aux: AuxWork,
    deck_bufs: Vec<AudioBuf>,
    ctrl: Vec<f32>,
    cycle: u64,
    beat_clock: f64,
    master_bpm: f32,
    /// Burn-result sink keeping the aux work observable.
    aux_sink: f32,
    /// Installed fault plan, kept so a thread-resize rebuild can
    /// reinstall it on the fresh executor.
    faults: Option<FaultPlan>,
    /// Installed flight-recorder config, kept (like `faults`) so a
    /// thread-resize rebuild can re-arm the recorder on the fresh
    /// executor. The recorded window itself does not survive a rebuild.
    flight_cfg: Option<FlightConfig>,
    /// Engine cycles at which a generation swap committed (reconfig or
    /// degradation), so miss forensics can cross-reference overruns with
    /// commit activity.
    commit_cycles: Vec<u64>,
    /// Degradation governor; `None` until
    /// [`enable_degradation`](Self::enable_degradation).
    degrade: Option<DegradationPolicy>,
    /// FX chain lengths saved at shed time, restored on
    /// [`DegradeAction::Restore`].
    saved_fx: [usize; 4],
    /// Aux weights saved at shed time.
    saved_aux: Option<AuxWork>,
    /// Network latency/dropout governor; `None` until
    /// [`enable_net_degradation`](Self::enable_net_degradation).
    net_degrade: Option<NetLatencyPolicy>,
    /// Total concealed frames already reported to the network governor.
    net_conceals_seen: u64,
    /// The shared worker pool this engine's executor is registered on, if
    /// it was built through [`on_pool`](Self::on_pool). Kept so a
    /// thread-resize rebuild re-registers on the *same* pool instead of
    /// spawning private threads.
    pool: Option<Arc<VenuePool>>,
    /// Venue session id tagged into telemetry and flight exports
    /// (0 = single-session).
    session: u32,
}

/// Convert a workload-layer [`FaultSpec`] into the executor-layer
/// [`FaultPlan`], field by field. Public so harnesses can hand the same
/// plan to the simulator's fault mirror for the lower-bound oracle.
pub fn fault_plan_from_spec(spec: &FaultSpec) -> FaultPlan {
    FaultPlan {
        seed: spec.seed,
        spike_rate: spec.spike_rate,
        spike_iters: spec.spike_iters,
        stall_lanes: spec.stall_lanes,
        stall_rate: spec.stall_rate,
        stall_iters: spec.stall_iters,
        pressure_period: spec.pressure_period,
        pressure_len: spec.pressure_len,
        pressure_iters: spec.pressure_iters,
    }
}

/// What [`AudioEngine::observe_deadline`] did when it committed a
/// degradation transition: the action, the executor generation after the
/// swap, and the cost of the two reconfiguration halves (the commit half
/// is what could blow a deadline, and E14 gates on it never doing so).
#[derive(Debug, Clone, Copy)]
pub struct DegradeOutcome {
    /// Which way the engine moved.
    pub action: DegradeAction,
    /// Executor generation after the swap.
    pub generation: u64,
    /// Wall time of the staging half (graph build, off the audio path).
    pub stage_ns: u64,
    /// Wall time of the cycle-boundary commit half.
    pub commit_ns: u64,
}

/// What [`AudioEngine::observe_network`] did when it committed a
/// jitter-buffer depth transition through the generation-swap path.
#[derive(Debug, Clone, Copy)]
pub struct NetDegradeOutcome {
    /// Which way the latency/dropout trade moved.
    pub action: NetDegradeAction,
    /// Executor generation after the swap.
    pub generation: u64,
    /// Wall time of the staging half (graph build, off the audio path).
    pub stage_ns: u64,
    /// Wall time of the cycle-boundary commit half.
    pub commit_ns: u64,
}

impl AudioEngine {
    /// Build an engine running `scenario` with the given strategy and
    /// thread count, and paper-scale auxiliary work.
    pub fn new(scenario: Scenario, strategy: Strategy, threads: usize) -> Self {
        Self::with_aux(scenario, strategy, threads, AuxWork::paper_scale())
    }

    /// Build an engine with explicit auxiliary-phase weights (tests use
    /// [`AuxWork::light`]) and the paper's fixed shape — extended with the
    /// network machinery the scenario's [`NetSpec`](djstar_workload::NetSpec)
    /// asks for (a disabled spec reproduces the 67-node graph exactly).
    pub fn with_aux(scenario: Scenario, strategy: Strategy, threads: usize, aux: AuxWork) -> Self {
        let shape = GraphShape::for_net(&scenario.net);
        Self::with_shape(scenario, shape, strategy, threads, aux)
    }

    /// Build an engine around an arbitrary [`GraphShape`] — the seed of the
    /// live-reconfiguration protocol (further shapes arrive via
    /// [`reconfigure`](Self::reconfigure)).
    pub fn with_shape(
        scenario: Scenario,
        shape: GraphShape,
        strategy: Strategy,
        threads: usize,
        aux: AuxWork,
    ) -> Self {
        Self::with_shape_pooled(scenario, shape, strategy, threads, aux, None)
    }

    /// Build an engine whose executor registers on an existing shared
    /// [`VenuePool`] instead of spawning private worker threads — the
    /// venue-server constructor. `threads` is this session's lane count
    /// and must not exceed the pool's. Sequential engines accept a pool
    /// too (they simply never stage work on it), so a venue can host
    /// mixed-strategy sessions uniformly.
    pub fn on_pool(
        scenario: Scenario,
        strategy: Strategy,
        threads: usize,
        aux: AuxWork,
        pool: &Arc<VenuePool>,
    ) -> Self {
        let shape = GraphShape::for_net(&scenario.net);
        Self::with_shape_pooled(scenario, shape, strategy, threads, aux, Some(pool))
    }

    fn with_shape_pooled(
        scenario: Scenario,
        shape: GraphShape,
        strategy: Strategy,
        threads: usize,
        aux: AuxWork,
        pool: Option<&Arc<VenuePool>>,
    ) -> Self {
        let frames = djstar_dsp::BUFFER_FRAMES;
        let (executor, map) =
            Self::build_executor(&scenario, &shape, strategy, threads, frames, pool);
        let decks = scenario
            .decks
            .iter()
            .map(|d| {
                d.active.then(|| {
                    TrackPlayer::new(synth_track(
                        d.track_seed,
                        d.bpm,
                        scenario.track_secs,
                        d.style,
                    ))
                })
            })
            .collect();
        let sr = djstar_dsp::SAMPLE_RATE;
        let mut ctrl = vec![0.0f32; controls::COUNT];
        ctrl[controls::CROSSFADER] = scenario.crossfader;
        ctrl[controls::MASTER_GAIN] = scenario.master_gain;
        for d in 0..4 {
            ctrl[controls::deck_gain(d)] = scenario.decks[d].gain;
        }
        AudioEngine {
            executor,
            map,
            shape,
            dropped_events: 0,
            pending_edits: Vec::new(),
            modes: None,
            admission: None,
            stage_failures: 0,
            decks,
            tc_gen: (0..4).map(|_| TimecodeGenerator::new(sr)).collect(),
            tc_dec: (0..4).map(|_| TimecodeDecoder::new(sr)).collect(),
            tc_buf: AudioBuf::zeroed(2, frames),
            decoded_speed: [0.0; 4],
            nudge: [0.0; 4],
            aux,
            deck_bufs: (0..4).map(|_| AudioBuf::zeroed(2, frames)).collect(),
            ctrl,
            cycle: 0,
            beat_clock: 0.0,
            master_bpm: scenario.decks[0].bpm,
            aux_sink: 0.0,
            faults: None,
            flight_cfg: None,
            commit_cycles: Vec::new(),
            degrade: None,
            saved_fx: [0; 4],
            saved_aux: None,
            net_degrade: None,
            net_conceals_seen: 0,
            pool: pool.cloned(),
            session: 0,
            scenario,
        }
    }

    /// Build the executor (and its landmark map) for a scenario + shape.
    /// Shared by the constructors and the thread-resize rebuild path.
    fn build_executor(
        scenario: &Scenario,
        shape: &GraphShape,
        strategy: Strategy,
        threads: usize,
        frames: usize,
        pool: Option<&Arc<VenuePool>>,
    ) -> (Box<dyn GraphExecutor>, NodeMap) {
        use djstar_core::graph::Priority;
        let (graph, map) = build_shaped_graph(scenario, shape);
        let executor: Box<dyn GraphExecutor> = match (strategy, pool) {
            // Sequential never stages pool work; a venue runs it inline on
            // the driver while the pool crunches the parallel sessions.
            (Strategy::Sequential, _) => Box::new(SequentialExecutor::new(graph, frames)),
            (Strategy::Busy, None) => Box::new(BusyExecutor::new(graph, threads, frames)),
            (Strategy::Busy, Some(p)) => Box::new(BusyExecutor::with_pool(
                graph,
                threads,
                frames,
                Priority::Depth,
                p,
            )),
            (Strategy::Sleep, None) => Box::new(SleepExecutor::new(graph, threads, frames)),
            (Strategy::Sleep, Some(p)) => Box::new(SleepExecutor::with_pool(
                graph,
                threads,
                frames,
                Priority::Depth,
                p,
            )),
            (Strategy::Steal, None) => Box::new(StealExecutor::new(graph, threads, frames)),
            (Strategy::Steal, Some(p)) => Box::new(StealExecutor::with_pool(
                graph,
                threads,
                frames,
                Priority::Depth,
                p,
            )),
            // Extension strategy: a 2000-poll spin budget (~tens of µs)
            // before parking; tune via the executor handle if needed.
            (Strategy::Hybrid, None) => {
                Box::new(HybridExecutor::new(graph, threads, frames, 2_000))
            }
            (Strategy::Hybrid, Some(p)) => Box::new(HybridExecutor::with_pool(
                graph,
                threads,
                frames,
                2_000,
                Priority::Depth,
                p,
            )),
            // Extension strategy: probe node durations on a throwaway
            // sequential engine, list-schedule them onto `threads`
            // processors, and replay that static schedule.
            (Strategy::Planned, pool) => {
                let blueprint = Self::compile_plan_for(scenario, shape, threads);
                match pool {
                    None => Box::new(PlannedExecutor::new(graph, frames, blueprint)),
                    Some(p) => Box::new(PlannedExecutor::with_pool(graph, frames, blueprint, p)),
                }
            }
        };
        (executor, map)
    }

    /// Compile a PLAN blueprint for `scenario`: probe per-node durations on
    /// a throwaway sequential engine, feed the per-node means to the list
    /// scheduler with a resource constraint of `threads` processors, and
    /// freeze its per-processor timelines into a replayable blueprint
    /// (§IV's "optimal schedule", made executable).
    pub fn compile_plan(scenario: &Scenario, threads: usize) -> ScheduleBlueprint {
        Self::compile_plan_for(scenario, &GraphShape::paper_default(), threads)
    }

    /// [`compile_plan`](Self::compile_plan) for an arbitrary shape. The
    /// duration probe runs on a sequential engine built with the same
    /// shape, so the blueprint fits the shaped topology exactly.
    pub fn compile_plan_for(
        scenario: &Scenario,
        shape: &GraphShape,
        threads: usize,
    ) -> ScheduleBlueprint {
        const PROBE_CYCLES: usize = 12;
        // Aux weights only shape the non-graph phases, so the probe always
        // runs light regardless of what the real engine will use.
        let mut probe = AudioEngine::with_shape(
            scenario.clone(),
            *shape,
            Strategy::Sequential,
            1,
            AuxWork::light(),
        );
        probe.warmup(4);
        let samples = probe.measured_node_durations(PROBE_CYCLES);
        let means: Vec<u64> = samples
            .iter()
            .map(|s| {
                if s.is_empty() {
                    1
                } else {
                    (s.iter().sum::<u64>() / s.len() as u64).max(1)
                }
            })
            .collect();
        let sim_graph = djstar_sim::SimGraph::from_topology(probe.executor_mut().topology());
        let durations = djstar_sim::DurationModel::Constant(means);
        let schedule = djstar_sim::list_schedule(&sim_graph, &durations, 0, threads as u32);
        djstar_sim::compile_blueprint(&sim_graph, &schedule)
            .expect("a list schedule always compiles to a valid blueprint")
    }

    /// The scheduling strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.executor.strategy()
    }

    /// Worker threads of the executor.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// The scenario this engine runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Landmark node ids of the graph.
    pub fn node_map(&self) -> &NodeMap {
        &self.map
    }

    /// The executor's current topology generation.
    pub fn generation(&self) -> u64 {
        self.executor.generation()
    }

    /// The currently committed graph shape.
    pub fn shape(&self) -> &GraphShape {
        &self.shape
    }

    /// Control events dropped so far for referring to decks or FX slots
    /// missing from the current shape.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Take the topology edits requested via the event middleware
    /// ([`ControlEvent::DeckLoadState`](crate::events::ControlEvent) and
    /// friends). The host thread feeds them to
    /// [`stage_edits`](Self::stage_edits)/[`commit`](Self::commit) — or
    /// [`reconfigure`](Self::reconfigure) when staging inline is fine.
    pub fn take_pending_edits(&mut self) -> Vec<GraphEdit> {
        std::mem::take(&mut self.pending_edits)
    }

    /// Stage a new topology generation for the current shape plus `edits`.
    /// This is the expensive half of a reconfiguration — graph build,
    /// buffer allocation, PLAN blueprint compilation. To stage on another
    /// thread while cycles keep running, copy the scenario and shape and
    /// call [`stage_topology`] there (the result is `Send`); the
    /// cycle-boundary half is [`commit`](Self::commit) either way.
    ///
    /// With [`enable_admission`](Self::enable_admission) armed, the target
    /// shape is first checked against the list-schedule bound and rejected
    /// ([`ReconfigError::Unschedulable`]) before anything is built. With
    /// [`enable_mode_cache`](Self::enable_mode_cache) armed, an admitted
    /// shape whose generation was precompiled is served straight from the
    /// cache — a take-once hit that allocates nothing.
    ///
    /// [`GraphEdit::ResizeThreads`] is rejected here
    /// ([`EditError::ResizeNeedsRebuild`]); it only makes sense through
    /// [`reconfigure`](Self::reconfigure).
    pub fn stage_edits(&mut self, edits: &[GraphEdit]) -> Result<StagedTopology, ReconfigError> {
        let mut shape = self.shape;
        for &e in edits {
            apply_edit(&mut shape, e)?;
        }
        self.stage_shape(&shape)
    }

    /// Admission gate → cache lookup → cold stage, in that order. The
    /// shared tail of [`stage_edits`](Self::stage_edits) and
    /// [`reconfigure`](Self::reconfigure).
    fn stage_shape(&mut self, shape: &GraphShape) -> Result<StagedTopology, ReconfigError> {
        if let Some(adm) = self.admission.as_mut() {
            adm.check(&self.scenario, shape)?;
        }
        if let Some(hit) = self.modes.as_mut().and_then(|c| c.take(shape)) {
            return Ok(hit);
        }
        stage_topology(
            &self.scenario,
            shape,
            self.strategy(),
            self.threads(),
            djstar_dsp::BUFFER_FRAMES,
        )
        .map_err(|e| {
            self.stage_failures += 1;
            ReconfigError::Blueprint(e)
        })
    }

    /// Arm the mode-aware blueprint cache with room for `capacity` staged
    /// generations. Fill it with
    /// [`precompile_neighborhood`](Self::precompile_neighborhood) (inline
    /// or from a background thread via
    /// [`take_mode_cache`](Self::take_mode_cache)).
    pub fn enable_mode_cache(&mut self, capacity: usize) {
        self.modes = Some(BlueprintCache::new(capacity));
    }

    /// The blueprint cache, when armed.
    pub fn mode_cache(&self) -> Option<&BlueprintCache> {
        self.modes.as_ref()
    }

    /// Mutable access to the blueprint cache, when armed.
    pub fn mode_cache_mut(&mut self) -> Option<&mut BlueprintCache> {
        self.modes.as_mut()
    }

    /// Detach the cache so a background thread can fill it with
    /// [`stage_topology`] results ([`StagedTopology`] is `Send`) while the
    /// audio thread keeps cycling cache-less; reinstall with
    /// [`install_mode_cache`](Self::install_mode_cache).
    pub fn take_mode_cache(&mut self) -> Option<BlueprintCache> {
        self.modes.take()
    }

    /// Reinstall a cache detached by
    /// [`take_mode_cache`](Self::take_mode_cache).
    pub fn install_mode_cache(&mut self, cache: BlueprintCache) {
        self.modes = Some(cache);
    }

    /// Arm schedulability admission: every subsequent staging first proves
    /// the target shape fits the margined deadline or is rejected typed.
    pub fn enable_admission(&mut self, ctrl: AdmissionControl) {
        self.admission = Some(ctrl);
    }

    /// The admission controller, when armed.
    pub fn admission(&self) -> Option<&AdmissionControl> {
        self.admission.as_ref()
    }

    /// Disarm admission; staging accepts every valid shape again.
    pub fn disable_admission(&mut self) {
        self.admission = None;
    }

    /// Swap a recalibrated [`NodeCostModel`] into the admission controller
    /// and invalidate every cached blueprint in the same breath — a
    /// blueprint compiled against stale costs must never be committed, and
    /// the cache's epoch bump also voids any background precompile still
    /// in flight.
    pub fn recalibrate_admission(&mut self, costs: NodeCostModel) {
        if let Some(adm) = self.admission.as_mut() {
            adm.set_costs(costs);
        }
        if let Some(cache) = self.modes.as_mut() {
            cache.invalidate();
        }
    }

    /// Calibrate a [`NodeCostModel`] from `cycles` traced cycles of this
    /// engine's own execution — the measured input to
    /// [`AdmissionControl`] and blueprint compilation.
    pub fn calibrated_costs(&mut self, cycles: usize) -> NodeCostModel {
        let samples = self.measured_node_durations(cycles);
        NodeCostModel::from_samples(self.executor.topology(), &samples)
    }

    /// Stage every admissible shape one [`GraphEdit`] away from the
    /// current one into the blueprint cache (shapes already cached are
    /// skipped). This is the eager half of mode-aware scheduling: run it
    /// off the audio path — after a commit, between cycles, or on a
    /// background thread via [`take_mode_cache`](Self::take_mode_cache) —
    /// and the next mode switch is a warm hit. Returns how many fresh
    /// generations were staged. No-op `0` when the cache is unarmed.
    pub fn precompile_neighborhood(&mut self) -> usize {
        if self.modes.is_none() {
            return 0;
        }
        let base = self.shape;
        let strategy = self.strategy();
        let threads = self.threads();
        let mut staged_new = 0;
        for edit in reachable_edits(&base) {
            let mut target = base;
            if apply_edit(&mut target, edit).is_err() {
                continue;
            }
            // Never precompile what admission would reject at switch time.
            if let Some(adm) = self.admission.as_mut() {
                if adm.check(&self.scenario, &target).is_err() {
                    continue;
                }
            }
            let Some(cache) = self.modes.as_mut() else {
                break;
            };
            // Already staged: refresh its LRU stamp instead of
            // recompiling, so a still-reachable neighbor is never the
            // eviction victim of this pass's fresh inserts.
            if cache.touch(&target) {
                continue;
            }
            let epoch = cache.epoch();
            match stage_topology(
                &self.scenario,
                &target,
                strategy,
                threads,
                djstar_dsp::BUFFER_FRAMES,
            ) {
                Ok(staged) => {
                    if let Some(cache) = self.modes.as_mut() {
                        if cache.insert_at(epoch, staged) {
                            staged_new += 1;
                        }
                    }
                }
                Err(_) => self.stage_failures += 1,
            }
        }
        staged_new
    }

    /// Stagings whose PLAN blueprint failed to compile (each surfaced as
    /// a typed [`ReconfigError::Blueprint`]). Nonzero means a mode switch
    /// was refused rather than silently committed planless.
    pub fn stage_failures(&self) -> u64 {
        self.stage_failures
    }

    /// Commit a staged generation: the executor adopts the new graph at
    /// the next cycle boundary (name-keyed state carry-over, no worker
    /// teardown) and the engine's shape and landmark map swap with it.
    /// Returns the new generation number. On error nothing changes.
    pub fn commit(&mut self, staged: StagedTopology) -> Result<u64, SwapError> {
        let StagedTopology { shape, map, staged } = staged;
        let generation = self.executor.adopt_generation(staged)?;
        self.shape = shape;
        self.map = map;
        self.commit_cycles.push(self.cycle);
        Ok(generation)
    }

    /// Stage and commit `edits` in one call. Topology edits ride the
    /// glitch-free swap path. If the script contains
    /// [`GraphEdit::ResizeThreads`], the executor is instead **rebuilt**
    /// with the final shape and new worker count — the one reconfiguration
    /// that tears the pool down and resets graph-node state (deck
    /// playback, timecode and control state live in the engine and
    /// survive either way). Returns the executor's generation after the
    /// change (a rebuild starts over at generation 0).
    pub fn reconfigure(&mut self, edits: &[GraphEdit]) -> Result<u64, ReconfigError> {
        let mut shape = self.shape;
        let mut resize: Option<usize> = None;
        for &e in edits {
            match e {
                GraphEdit::ResizeThreads(n) => {
                    if !(1..=64).contains(&n) {
                        return Err(EditError::BadThreadCount(n).into());
                    }
                    resize = Some(n);
                }
                _ => apply_edit(&mut shape, e)?,
            }
        }
        if let Some(threads) = resize {
            let frames = djstar_dsp::BUFFER_FRAMES;
            let (executor, map) = Self::build_executor(
                &self.scenario,
                &shape,
                self.strategy(),
                threads,
                frames,
                self.pool.as_ref(),
            );
            self.executor = executor;
            self.executor.set_session(self.session);
            self.executor.set_faults(self.faults);
            self.executor.set_flight_recorder(self.flight_cfg);
            self.map = map;
            self.shape = shape;
            self.commit_cycles.push(self.cycle);
            // Worker counts are baked into every cached blueprint and
            // admission bound: void them all.
            if let Some(cache) = self.modes.as_mut() {
                cache.invalidate();
            }
            if let Some(adm) = self.admission.as_mut() {
                adm.set_threads(threads);
            }
            return Ok(self.executor.generation());
        }
        let staged = self.stage_shape(&shape)?;
        self.commit(staged).map_err(ReconfigError::Swap)
    }

    /// The underlying executor (for tracing, knob turning, output reads).
    pub fn executor_mut(&mut self) -> &mut dyn GraphExecutor {
        self.executor.as_mut()
    }

    /// Enable or disable executor telemetry (per-worker cycle counters
    /// drained into a ring after each [`run_apc`](Self::run_apc)).
    pub fn set_telemetry(&mut self, on: bool) {
        self.executor.set_telemetry(on);
    }

    /// Take the telemetry ring collected since telemetry was enabled (or
    /// last taken); recording continues into a fresh ring.
    pub fn take_telemetry(&mut self) -> Option<djstar_core::telemetry::TelemetryRing> {
        self.executor.take_telemetry()
    }

    /// Install (or clear, with `None`) the flight recorder on the
    /// executor. Like the fault plan, the config survives generation
    /// swaps and thread-resize rebuilds until cleared — though a rebuild
    /// discards any spans recorded on the torn-down executor.
    pub fn set_flight_recorder(&mut self, mut cfg: Option<FlightConfig>) {
        // The engine's session id is authoritative: windows captured here
        // are always tagged with it so venue forensics can blame the
        // offending session.
        if let Some(c) = cfg.as_mut() {
            c.session = self.session;
        }
        self.flight_cfg = cfg;
        self.executor.set_flight_recorder(cfg);
    }

    /// Drain the flight-recorder window captured since the recorder was
    /// installed (or last drained); recording continues into empty lanes.
    pub fn take_flight_window(&mut self) -> Option<FlightWindow> {
        self.executor.take_flight_window()
    }

    /// Engine cycles at which a generation swap committed (degradation
    /// shed/restore or explicit reconfiguration). Miss forensics uses
    /// this to mark overruns that coincided with a commit.
    pub fn commit_cycles(&self) -> &[u64] {
        &self.commit_cycles
    }

    /// Install (or clear, with `None`) a fault-injection plan on the
    /// executor. Takes effect at the next cycle's epoch publication; the
    /// plan survives generation swaps and thread-resize rebuilds until
    /// cleared. Fault work burns CPU inside the executor's timed windows
    /// but never touches audio buffers, so faulted runs stay bit-exact
    /// with fault-free ones.
    pub fn set_faults(&mut self, spec: Option<&FaultSpec>) {
        self.faults = spec.map(fault_plan_from_spec);
        self.executor.set_faults(self.faults);
    }

    /// The fault plan currently installed, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults
    }

    /// Arm the graceful-degradation governor. Once armed, the host
    /// reports each cycle's deadline verdict through
    /// [`observe_deadline`](Self::observe_deadline) and the engine sheds
    /// or restores quality through the glitch-free generation-swap path.
    pub fn enable_degradation(&mut self, cfg: DegradeConfig) {
        self.degrade = Some(DegradationPolicy::new(cfg));
    }

    /// Currently running in degraded (shed) mode?
    pub fn is_degraded(&self) -> bool {
        self.degrade.as_ref().is_some_and(|p| p.is_degraded())
    }

    /// Committed shed/restore transitions since the governor was armed
    /// (empty when it never was).
    pub fn degrade_events(&self) -> &[DegradeEvent] {
        self.degrade.as_ref().map_or(&[], |p| p.events())
    }

    /// Report the just-finished cycle's deadline verdict to the
    /// degradation governor and actuate any transition it orders.
    ///
    /// * **Shed**: save the FX chain lengths and aux weights, then in a
    ///   single staged generation trim every loaded deck's FX chain to
    ///   one slot and halve the auxiliary-phase work — the "bypass
    ///   non-critical effects, drop preprocessing quality" move of a
    ///   production engine under duress.
    /// * **Restore**: re-insert the saved FX slots (clamped to the decks
    ///   still loaded) and restore the saved aux weights.
    ///
    /// Both directions reuse the [`stage_edits`](Self::stage_edits) /
    /// [`commit`](Self::commit) machinery, so node state carries over and
    /// the audio stream never glitches. If staging or the swap fails the
    /// policy is left uncommitted and simply retries next cycle.
    ///
    /// Returns the committed transition, if one happened. No-op `None`
    /// when the governor is unarmed.
    pub fn observe_deadline(&mut self, missed: bool) -> Option<DegradeOutcome> {
        let cycle = self.cycle;
        let action = {
            let policy = self.degrade.as_mut()?;
            policy.record(missed);
            policy.pending(cycle)?
        };
        let mut edits = Vec::new();
        match action {
            DegradeAction::Shed => {
                self.saved_fx = self.shape.fx_slots;
                for d in 0..4 {
                    if self.shape.deck_loaded[d] {
                        for _ in 1..self.shape.fx_slots[d] {
                            edits.push(GraphEdit::RemoveFxSlot(d));
                        }
                    }
                }
            }
            DegradeAction::Restore => {
                for d in 0..4 {
                    if self.shape.deck_loaded[d] {
                        let want = self.saved_fx[d].clamp(1, GraphShape::MAX_FX_SLOTS);
                        for _ in self.shape.fx_slots[d]..want {
                            edits.push(GraphEdit::InsertFxSlot(d));
                        }
                    }
                }
            }
        }
        let t0 = Instant::now();
        let staged = self.stage_edits(&edits).ok()?;
        let stage_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        let generation = self.commit(staged).ok()?;
        let commit_ns = t1.elapsed().as_nanos() as u64;
        match action {
            DegradeAction::Shed => {
                self.saved_aux = Some(self.aux);
                self.aux = self.aux.scaled(0.5);
            }
            DegradeAction::Restore => {
                if let Some(aux) = self.saved_aux.take() {
                    self.aux = aux;
                }
            }
        }
        if let Some(policy) = self.degrade.as_mut() {
            policy.transition(cycle, action);
        }
        Some(DegradeOutcome {
            action,
            generation,
            stage_ns,
            commit_ns,
        })
    }

    /// Arm the network latency/dropout governor. Once armed, the host
    /// calls [`observe_network`](Self::observe_network) each cycle and the
    /// engine trades jitter-buffer depth (latency) against dropout rate,
    /// actuating every depth change through the same glitch-free
    /// generation-swap path as quality degradation.
    ///
    /// The starting rung is the deepest depth any remote deck currently
    /// runs at (so arming mid-flight never yanks an established buffer),
    /// falling back to the config's floor on a fully local graph.
    pub fn enable_net_degradation(&mut self, cfg: NetDegradeConfig) {
        let start = (0..4)
            .filter_map(|d| self.net_deck_source(d).map(|s| s.target_depth()))
            .max()
            .unwrap_or(cfg.min_depth);
        self.net_conceals_seen = self.net_stats().concealed;
        self.net_degrade = Some(NetLatencyPolicy::new(cfg, start));
    }

    /// Committed depth transitions since the network governor was armed.
    pub fn net_degrade_events(&self) -> &[NetDegradeEvent] {
        self.net_degrade.as_ref().map_or(&[], |p| p.events())
    }

    /// The depth rung the network governor is currently targeting
    /// (`None` when unarmed).
    pub fn net_target_depth(&self) -> Option<u32> {
        self.net_degrade.as_ref().map(|p| p.target_depth())
    }

    /// Jitter-buffer statistics summed over every remote deck (all zeros
    /// on a fully local graph).
    pub fn net_stats(&mut self) -> NetStats {
        let mut total = NetStats::default();
        for d in 0..4 {
            if let Some(src) = self.net_deck_source(d) {
                let s = src.net_stats();
                total.received += s.received;
                total.lost += s.lost;
                total.late += s.late;
                total.duplicated += s.duplicated;
                total.concealed += s.concealed;
                total.depth_changes += s.depth_changes;
                total.skipped += s.skipped;
            }
        }
        total
    }

    /// Per-deck jitter-buffer stats; `None` for local decks.
    pub fn net_deck_stats(&mut self, d: usize) -> Option<NetStats> {
        self.net_deck_source(d).map(|s| s.net_stats())
    }

    /// Current jitter-buffer depth per deck (0 for local decks).
    pub fn net_depths(&mut self) -> [u32; 4] {
        let mut out = [0u32; 4];
        for (d, slot) in out.iter_mut().enumerate() {
            if let Some(src) = self.net_deck_source(d) {
                *slot = src.depth();
            }
        }
        out
    }

    /// Broadcast-sink statistics, when the graph carries one.
    pub fn broadcast_stats(&mut self) -> Option<BroadcastStats> {
        let node = self.map.broadcast?;
        self.executor
            .node_processor(node)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<BroadcastSink>())
            .map(|s| s.broadcast_stats())
    }

    /// Borrow deck `d`'s network receiver, if that deck is remote.
    fn net_deck_source(&mut self, d: usize) -> Option<&mut NetDeckSource> {
        let node = *self.map.net_src.get(d)?;
        self.executor
            .node_processor(node?)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<NetDeckSource>())
    }

    /// Feed the just-finished cycle's concealment evidence to the network
    /// governor and actuate any depth transition it orders.
    ///
    /// * **Deepen**: dropouts concentrated in the observation window —
    ///   buy reliability with latency by climbing the depth ladder.
    /// * **Shallow**: a full clean restore chunk — give one rung of
    ///   latency back.
    ///
    /// The transition rides [`stage_edits`](Self::stage_edits) /
    /// [`commit`](Self::commit) ([`GraphEdit::SetNetDepth`] per remote
    /// deck), so the `NetSrc` nodes — whose names carry no depth — are
    /// carried across the swap with their buffered audio intact; the new
    /// target is then applied to the carried buffers in place. If staging
    /// or the swap fails the policy is left uncommitted and retries next
    /// cycle. No-op `None` when unarmed or no deck is remote.
    pub fn observe_network(&mut self) -> Option<NetDegradeOutcome> {
        self.net_degrade.as_ref()?;
        let concealed = self.net_stats().concealed;
        let delta = concealed.saturating_sub(self.net_conceals_seen);
        self.net_conceals_seen = concealed;
        let cycle = self.cycle;
        let action = {
            let policy = self.net_degrade.as_mut()?;
            policy.record(delta.min(u32::MAX as u64) as u32);
            policy.pending(cycle)?
        };
        let depth = action.target();
        let edits: Vec<GraphEdit> = (0..4)
            .filter(|&d| self.shape.remote_decks[d])
            .map(|d| GraphEdit::SetNetDepth(d, depth))
            .collect();
        if edits.is_empty() {
            return None;
        }
        let t0 = Instant::now();
        let staged = self.stage_edits(&edits).ok()?;
        let stage_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        let generation = self.commit(staged).ok()?;
        let commit_ns = t1.elapsed().as_nanos() as u64;
        for d in 0..4 {
            if let Some(src) = self.net_deck_source(d) {
                src.set_target_depth(depth);
            }
        }
        if let Some(policy) = self.net_degrade.as_mut() {
            policy.transition(cycle, action);
        }
        Some(NetDegradeOutcome {
            action,
            generation,
            stage_ns,
            commit_ns,
        })
    }

    /// Cycles run so far.
    pub fn cycles_run(&self) -> u64 {
        self.cycle
    }

    /// Live crossfader control.
    pub fn set_crossfader(&mut self, x: f32) {
        self.ctrl[controls::CROSSFADER] = x.clamp(0.0, 1.0);
    }

    /// Live channel-fader control of deck `d`.
    pub fn set_deck_gain(&mut self, d: usize, gain: f32) {
        self.ctrl[controls::deck_gain(d)] = gain.max(0.0);
    }

    /// Drain the event-middleware queue and apply every control event
    /// (Fig. 2's Event Middleware layer: the GUI and USB controllers never
    /// touch the core directly). Call once per cycle, before
    /// [`run_apc`](Self::run_apc).
    ///
    /// Events addressing decks or FX slots that do not exist in the
    /// current shape are **not** silently swallowed: they are counted in
    /// [`dropped_events`](Self::dropped_events) (and logged in debug
    /// builds) so a misbehaving controller mapping is visible in
    /// telemetry. Topology requests (`DeckLoadState`, `FxChain`) are
    /// translated into [`GraphEdit`]s and parked in
    /// [`take_pending_edits`](Self::take_pending_edits) for the host to
    /// stage off the audio thread.
    pub fn apply_events(&mut self, queue: &mut crate::events::EventQueue) {
        for qe in queue.drain_coalesced() {
            if !self.apply_one(qe.event) {
                self.dropped_events += 1;
                #[cfg(debug_assertions)]
                eprintln!("djstar: dropped out-of-range control event {:?}", qe.event);
            }
        }
    }

    /// The shape that committing every pending edit would produce.
    fn pending_shape(&self) -> GraphShape {
        let mut shape = self.shape;
        for &e in &self.pending_edits {
            // Pending edits were validated against this very sequence when
            // they were queued, so they always apply.
            let _ = apply_edit(&mut shape, e);
        }
        shape
    }

    /// Apply a single control event; `false` means the event referred to a
    /// deck or slot missing from the current shape and was dropped.
    fn apply_one(&mut self, event: crate::events::ControlEvent) -> bool {
        use crate::events::ControlEvent::*;
        use crate::nodes::{ChannelNode, EffectNode};
        match event {
            Crossfader(x) => self.set_crossfader(x),
            MasterGain(g) => self.ctrl[controls::MASTER_GAIN] = g.clamp(0.0, 2.0),
            // Engine-level deck controls exist whether or not the deck's
            // graph section is loaded; only the index must be in range.
            DeckGain(d, g) => {
                if d >= 4 {
                    return false;
                }
                self.set_deck_gain(d, g);
            }
            Nudge(d, delta) => {
                if d >= 4 {
                    return false;
                }
                self.nudge[d] = (self.nudge[d] + delta).clamp(-0.5, 0.5);
            }
            // Graph-node controls need the node to exist in this shape.
            DeckEq(d, eq) => {
                let Some(node) = self.map.channel(d) else {
                    return false;
                };
                if let Some(ch) = self
                    .executor
                    .node_processor(node)
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<ChannelNode>())
                {
                    ch.set_eq(eq[0], eq[1], eq[2]);
                }
            }
            DeckFilter(d, pos) => {
                let Some(node) = self.map.channel(d) else {
                    return false;
                };
                if let Some(ch) = self
                    .executor
                    .node_processor(node)
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<ChannelNode>())
                {
                    ch.set_filter(pos);
                }
            }
            FxToggle(d, slot, on) => {
                let Some(node) = self.map.fx(d, slot) else {
                    return false;
                };
                if let Some(fx) = self
                    .executor
                    .node_processor(node)
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<EffectNode>())
                {
                    fx.set_enabled(on);
                }
            }
            // Topology requests become pending graph edits, diffed against
            // the shape the pending queue will produce so repeated
            // requests never double-stage an edit.
            DeckLoadState(d, load) => {
                if d >= 4 {
                    return false;
                }
                // Already satisfied by the pending queue: a valid no-op.
                if self.pending_shape().deck_loaded[d] == load {
                    return true;
                }
                self.pending_edits.push(if load {
                    GraphEdit::LoadDeck(d)
                } else {
                    GraphEdit::UnloadDeck(d)
                });
            }
            FxChain(d, slots) => {
                let pending = self.pending_shape();
                if d >= 4
                    || !pending.deck_loaded[d]
                    || !(1..=GraphShape::MAX_FX_SLOTS).contains(&slots)
                {
                    return false;
                }
                let cur = pending.fx_slots[d];
                for _ in cur..slots {
                    self.pending_edits.push(GraphEdit::InsertFxSlot(d));
                }
                for _ in slots..cur {
                    self.pending_edits.push(GraphEdit::RemoveFxSlot(d));
                }
            }
        }
        true
    }

    /// Phase 1 — TP: generate + decode each deck's timecode control signal.
    fn timecode_phase(&mut self) {
        for d in 0..4 {
            let cfg = &self.scenario.decks[d];
            // The virtual platter: scenario tempo plus a gentle DJ nudge
            // wobble so the decoder has something to track.
            let speed = if cfg.active {
                cfg.tempo
                    * (1.0 + 0.015 * ((self.cycle as f32) * 0.045 + d as f32).sin())
                    * (1.0 + self.nudge[d])
            } else {
                0.0
            };
            // A released jog wheel spins back to neutral.
            self.nudge[d] *= 0.9;
            self.tc_gen[d].generate(speed, &mut self.tc_buf);
            let reading = self.tc_dec[d].decode(&self.tc_buf);
            self.decoded_speed[d] = reading.speed;
            self.aux_sink += burn(self.aux.tp_iters, reading.speed.abs() + d as f32 * 0.1);
        }
    }

    /// Phase 2 — GP: pull time-stretched deck audio + phase alignment.
    fn preprocess_phase(&mut self) {
        for d in 0..4 {
            match &mut self.decks[d] {
                Some(player) => {
                    let tempo = if self.decoded_speed[d].abs() > 0.05 {
                        self.decoded_speed[d].abs()
                    } else {
                        self.scenario.decks[d].tempo
                    };
                    player.pull(tempo, &mut self.deck_bufs[d]);
                    self.aux_sink += burn(self.aux.gp_iters, tempo);
                }
                None => self.deck_bufs[d].clear(),
            }
        }
        // Phase alignment: the pairwise beat offsets DJ Star displays.
        let mut align = 0.0f32;
        for a in 0..4 {
            for b in (a + 1)..4 {
                if let (Some(pa), Some(pb)) = (&self.decks[a], &self.decks[b]) {
                    align += pa.phase_offset_to(pb);
                }
            }
        }
        self.aux_sink += align * 1e-20;
    }

    /// Phase 4 — VC: master tempo and accounting.
    fn various_calculations_phase(&mut self) {
        let mut bpm_sum = 0.0;
        let mut active = 0u32;
        for d in 0..4 {
            if let Some(p) = &self.decks[d] {
                bpm_sum += self.scenario.decks[d].bpm * p.tempo();
                active += 1;
            }
        }
        if active > 0 {
            let target = bpm_sum / active as f32;
            self.master_bpm = 0.95 * self.master_bpm + 0.05 * target;
        }
        self.beat_clock += (self.master_bpm as f64 / 60.0)
            * (djstar_dsp::BUFFER_FRAMES as f64 / djstar_dsp::SAMPLE_RATE as f64);
        self.aux_sink += burn(self.aux.vc_iters, self.master_bpm / 200.0);
    }

    /// Tag this engine (and everything it records — telemetry rings,
    /// flight windows) with a venue session id. Re-applied automatically
    /// across thread-resize rebuilds. Takes effect for telemetry rings
    /// and flight recorders installed after the call.
    pub fn set_session(&mut self, session: u32) {
        self.session = session;
        self.executor.set_session(session);
        if let Some(c) = self.flight_cfg.as_mut() {
            c.session = session;
            self.executor.set_flight_recorder(self.flight_cfg);
        }
    }

    /// The venue session id this engine was tagged with (0 = solo).
    pub fn session(&self) -> u32 {
        self.session
    }

    /// The shared worker pool this engine stages onto, if it was built
    /// with [`on_pool`](Self::on_pool).
    pub fn pool(&self) -> Option<&Arc<VenuePool>> {
        self.pool.as_ref()
    }

    /// First half of a venue-batched cycle: run the driver-side phases
    /// that precede the graph (TP, GP, beat clock) and *stage* the graph
    /// cycle on the shared pool without dispatching it. The venue server
    /// stages every session, then issues one [`VenuePool::dispatch`] for
    /// the whole batch, drives lane 0 via [`VenuePool::run_driver_parts`],
    /// and finishes each session with [`venue_finish`](Self::venue_finish).
    ///
    /// Sequential engines stage nothing (`epoch: None`); their graph runs
    /// inline on the driver during `venue_finish`, overlapping with the
    /// pool workers crunching the parallel sessions.
    pub fn venue_prepare(&mut self) -> VenueCyclePrep {
        self.cycle += 1;

        let t0 = Instant::now();
        self.timecode_phase();
        let tp = t0.elapsed();

        let t1 = Instant::now();
        self.preprocess_phase();
        let gp = t1.elapsed();

        self.ctrl[controls::BEAT_CLOCK] = self.beat_clock as f32;
        let epoch = self.executor.venue_stage(&self.deck_bufs, &self.ctrl);
        VenueCyclePrep { epoch, tp, gp }
    }

    /// Second half of a venue-batched cycle: collect the staged graph
    /// result (or run it inline for sequential engines), then run the
    /// VC phase. Must follow [`venue_prepare`](Self::venue_prepare) and,
    /// for staged engines, the pool's dispatch + driver parts.
    pub fn venue_finish(&mut self, prep: VenueCyclePrep) -> ApcTiming {
        let result = match prep.epoch {
            Some(epoch) => self.executor.venue_collect(epoch),
            None => self.executor.run_cycle(&self.deck_bufs, &self.ctrl),
        };

        let t3 = Instant::now();
        self.various_calculations_phase();
        let vc = t3.elapsed();

        ApcTiming {
            tp: prep.tp,
            gp: prep.gp,
            graph: result.duration,
            vc,
        }
    }

    /// Run one full APC and return the phase timings.
    pub fn run_apc(&mut self) -> ApcTiming {
        self.cycle += 1;

        let t0 = Instant::now();
        self.timecode_phase();
        let tp = t0.elapsed();

        let t1 = Instant::now();
        self.preprocess_phase();
        let gp = t1.elapsed();

        self.ctrl[controls::BEAT_CLOCK] = self.beat_clock as f32;
        let result = self.executor.run_cycle(&self.deck_bufs, &self.ctrl);

        let t3 = Instant::now();
        self.various_calculations_phase();
        let vc = t3.elapsed();

        ApcTiming {
            tp,
            gp,
            graph: result.duration,
            vc,
        }
    }

    /// Run one APC with each phase recorded into `profiler` (the §III
    /// hotspot analysis).
    pub fn run_apc_profiled(&mut self, profiler: &mut HotspotProfiler) -> ApcTiming {
        let t = self.run_apc();
        profiler.record("apc/timecode", t.tp.as_nanos() as u64);
        profiler.record("apc/preprocessing", t.gp.as_nanos() as u64);
        profiler.record("apc/graph", t.graph.as_nanos() as u64);
        profiler.record("apc/various", t.vc.as_nanos() as u64);
        t
    }

    /// Copy the final output packet (the `AudioOut1` node's buffer).
    pub fn output(&mut self) -> AudioBuf {
        let mut out = AudioBuf::zeroed(2, djstar_dsp::BUFFER_FRAMES);
        let node = self.map.audio_out;
        self.executor.read_output(node, &mut out);
        out
    }

    /// Run `n` warm-up cycles (fills stretcher pipelines, settles meters).
    pub fn warmup(&mut self, n: usize) {
        for _ in 0..n {
            self.run_apc();
        }
    }

    /// Run `cycles` APCs and return each graph execution time (the series
    /// behind Table I and Figs. 9/10).
    pub fn graph_times(&mut self, cycles: usize) -> Vec<Duration> {
        (0..cycles).map(|_| self.run_apc().graph).collect()
    }

    /// Run `cycles` traced APCs and collect per-node execution-duration
    /// samples (ns), indexed by node id — the empirical input for the
    /// schedule simulator.
    pub fn measured_node_durations(&mut self, cycles: usize) -> Vec<Vec<u64>> {
        let n = self.executor.topology().len();
        let mut samples = vec![Vec::with_capacity(cycles); n];
        self.executor.set_tracing(true);
        for _ in 0..cycles {
            self.run_apc();
            if let Some(trace) = self.executor.take_trace() {
                for e in trace.executions() {
                    samples[e.node as usize].push(e.duration_ns());
                }
            }
        }
        self.executor.set_tracing(false);
        samples
    }

    /// Calibrate a scenario's work profile so the *sequential* graph time
    /// approaches `target`: measures, rescales, and returns the adjusted
    /// scenario. Multiplicative updates converge in one or two rounds when
    /// the burn kernels dominate (release builds at paper scale); the
    /// six-round budget also handles regimes where a fixed DSP floor makes
    /// each step smaller (e.g. debug builds).
    pub fn calibrate(mut scenario: Scenario, target: Duration, probe_cycles: usize) -> Scenario {
        for _ in 0..6 {
            let mut engine =
                AudioEngine::with_aux(scenario.clone(), Strategy::Sequential, 1, AuxWork::light());
            engine.warmup(probe_cycles / 4 + 1);
            let mut times = engine.graph_times(probe_cycles);
            // Median, not mean: on shared hosts individual probes absorb
            // scheduler stalls that would bias the calibration upward.
            times.sort();
            let median_ns = times[times.len() / 2].as_nanos() as f64;
            let factor = target.as_nanos() as f64 / median_ns.max(1.0);
            // Damp extreme corrections; the burn kernel is linear enough
            // that one mild step converges.
            let factor = factor.clamp(0.02, 50.0);
            scenario.work = scenario.work.scaled(factor);
            if (factor - 1.0).abs() < 0.05 {
                break;
            }
        }
        scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use djstar_workload::scenario::Scenario;

    fn light_engine(strategy: Strategy, threads: usize) -> AudioEngine {
        AudioEngine::with_aux(Scenario::light_test(), strategy, threads, AuxWork::light())
    }

    #[test]
    fn sequential_engine_produces_audio() {
        let mut e = light_engine(Strategy::Sequential, 1);
        e.warmup(20);
        let out = e.output();
        assert!(out.is_finite());
        assert!(out.rms() > 1e-4, "rms {}", out.rms());
        assert!(out.peak() <= 1.0 + 1e-5);
    }

    #[test]
    fn all_strategies_produce_identical_audio() {
        let mut reference = light_engine(Strategy::Sequential, 1);
        reference.warmup(30);
        let want = reference.output();
        for strategy in [
            Strategy::Busy,
            Strategy::Sleep,
            Strategy::Steal,
            Strategy::Hybrid,
            Strategy::Planned,
        ] {
            let mut e = light_engine(strategy, 3);
            e.warmup(30);
            let got = e.output();
            assert_eq!(
                want.samples(),
                got.samples(),
                "{strategy:?} diverged from sequential"
            );
        }
    }

    #[test]
    fn compiled_plan_covers_the_whole_graph() {
        let bp = AudioEngine::compile_plan(&Scenario::light_test(), 4);
        assert_eq!(bp.threads(), 4);
        assert_eq!(bp.len(), 67);
        // The list scheduler keeps every lane busy on this graph.
        for w in 0..4 {
            assert!(!bp.worker(w).is_empty(), "worker {w} got no nodes");
        }
    }

    #[test]
    fn apc_timing_has_all_phases() {
        let mut e = light_engine(Strategy::Sequential, 1);
        let t = e.run_apc();
        assert!(t.tp.as_nanos() > 0);
        assert!(t.gp.as_nanos() > 0);
        assert!(t.graph.as_nanos() > 0);
        assert!(t.vc.as_nanos() > 0);
        assert_eq!(t.total(), t.tp + t.gp + t.graph + t.vc);
    }

    #[test]
    fn graph_times_returns_requested_count() {
        let mut e = light_engine(Strategy::Busy, 2);
        e.warmup(5);
        let times = e.graph_times(25);
        assert_eq!(times.len(), 25);
        assert!(times.iter().all(|d| d.as_nanos() > 0));
    }

    #[test]
    fn measured_durations_cover_all_nodes() {
        let mut e = light_engine(Strategy::Sequential, 1);
        e.warmup(3);
        let samples = e.measured_node_durations(10);
        assert_eq!(samples.len(), 67);
        assert!(samples.iter().all(|s| s.len() == 10));
    }

    #[test]
    fn crossfader_control_changes_output() {
        let mut e = light_engine(Strategy::Sequential, 1);
        e.warmup(40);
        e.set_crossfader(0.0); // full deck A
        e.warmup(10);
        let a_side = e.output().rms();
        e.set_crossfader(1.0); // full deck B
        e.warmup(10);
        let b_side = e.output().rms();
        // Both produce audio, but they are different mixes.
        assert!(a_side > 1e-4 && b_side > 1e-4);
        e.set_crossfader(0.0);
        e.warmup(10);
        let back = e.output();
        assert!(back.rms() > 1e-4);
    }

    #[test]
    fn deck_fader_mutes_channel() {
        let mut e = light_engine(Strategy::Sequential, 1);
        for d in 0..4 {
            e.set_deck_gain(d, 0.0);
        }
        e.warmup(60); // long enough for the sampler one-shot to decay
        let out = e.output();
        // All faders down: only the (clock-triggered) sampler contributes,
        // and between one-shots the mix is silent or near-silent.
        assert!(out.rms() < 0.2, "rms {}", out.rms());
    }

    #[test]
    fn hotspot_profiling_accumulates_phases() {
        let mut e = light_engine(Strategy::Sequential, 1);
        let mut p = HotspotProfiler::new();
        for _ in 0..5 {
            e.run_apc_profiled(&mut p);
        }
        for region in [
            "apc/timecode",
            "apc/preprocessing",
            "apc/graph",
            "apc/various",
        ] {
            assert!(p.total_of(region) > 0, "{region} missing");
        }
    }

    #[test]
    fn event_middleware_applies_controls() {
        use crate::events::{ControlEvent, EventQueue};
        let mut e = light_engine(Strategy::Sequential, 1);
        e.warmup(30);
        let mut q = EventQueue::standard();
        // Slam every fader shut via events only.
        q.push(0, ControlEvent::Crossfader(0.5));
        for d in 0..4 {
            q.push(0, ControlEvent::DeckGain(d, 0.0));
        }
        e.apply_events(&mut q);
        assert!(q.is_empty());
        e.warmup(60);
        assert!(e.output().rms() < 0.2, "faders via events had no effect");
    }

    #[test]
    fn fx_toggle_event_changes_audio() {
        use crate::events::{ControlEvent, EventQueue};
        let mut a = light_engine(Strategy::Sequential, 1);
        let mut b = light_engine(Strategy::Sequential, 1);
        let mut q = EventQueue::standard();
        for slot in 0..4 {
            for d in 0..4 {
                q.push(0, ControlEvent::FxToggle(d, slot, false));
            }
        }
        b.apply_events(&mut q);
        a.warmup(40);
        b.warmup(40);
        let with_fx = a.output();
        let without_fx = b.output();
        assert_ne!(
            with_fx.samples(),
            without_fx.samples(),
            "disabling all effects must change the mix"
        );
        assert!(without_fx.is_finite());
    }

    #[test]
    fn nudge_event_shifts_decoded_tempo() {
        use crate::events::{ControlEvent, EventQueue};
        let mut e = light_engine(Strategy::Sequential, 1);
        e.warmup(20);
        let baseline = e.decoded_speed[0];
        let mut q = EventQueue::standard();
        q.push(0, ControlEvent::Nudge(0, 0.3));
        e.apply_events(&mut q);
        // The decoder's sliding window needs a couple of buffers to reflect
        // a sudden platter acceleration (like a real stylus reading).
        e.run_apc();
        e.run_apc();
        let nudged = e.decoded_speed[0];
        assert!(
            nudged > baseline * 1.06,
            "nudge had no effect: {baseline} -> {nudged}"
        );
        // The nudge decays back.
        e.warmup(80);
        assert!(
            (e.decoded_speed[0] - baseline).abs() < 0.08,
            "nudge did not decay: {}",
            e.decoded_speed[0]
        );
    }

    #[test]
    fn calibration_moves_toward_target() {
        // The target is set relative to the *measured* light-profile time:
        // in debug builds the raw DSP floor is orders of magnitude slower
        // than in release, so an absolute microsecond target would be
        // unreachable. Calibration must scale the burn budgets so the
        // graph lands near 3x the floor; tolerances are wide because the
        // test harness runs suites concurrently on a possibly single-core
        // box.
        let uncalibrated = {
            let mut e = AudioEngine::with_aux(
                Scenario::light_test(),
                Strategy::Sequential,
                1,
                AuxWork::light(),
            );
            e.warmup(5);
            let t = e.graph_times(20);
            t.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / 20.0
        };
        let target = Duration::from_nanos((uncalibrated * 3.0) as u64);
        let calibrated = AudioEngine::calibrate(Scenario::light_test(), target, 30);
        let mut e = AudioEngine::with_aux(calibrated, Strategy::Sequential, 1, AuxWork::light());
        e.warmup(5);
        let times = e.graph_times(20);
        let mean_ns: f64 =
            times.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / times.len() as f64;
        assert!(
            mean_ns > uncalibrated * 1.3 && mean_ns < uncalibrated * 10.0,
            "calibration missed: floor {uncalibrated} ns, target {target:?}, got {mean_ns} ns"
        );
    }

    /// Sum of fault events recorded in `cycles` telemetry cycles.
    fn fault_events_in(e: &mut AudioEngine, cycles: usize) -> u64 {
        e.set_telemetry(true);
        e.warmup(cycles);
        let ring = e.take_telemetry().expect("telemetry ring");
        e.set_telemetry(false);
        ring.iter().map(|r| r.totals().fault_events()).sum()
    }

    #[test]
    fn storm_faults_fire_and_leave_audio_bit_exact() {
        let mut clean = light_engine(Strategy::Busy, 2);
        let mut faulted = light_engine(Strategy::Busy, 2);
        faulted.set_faults(Some(&FaultSpec::storm(0xE14).with_iters(40, 40, 20)));
        assert!(fault_events_in(&mut faulted, 40) > 0, "storm never fired");
        clean.warmup(40);
        assert_eq!(
            clean.output().samples(),
            faulted.output().samples(),
            "fault injection must not touch the audio path"
        );
    }

    #[test]
    fn quiet_fault_plan_is_inert() {
        let mut e = light_engine(Strategy::Sleep, 2);
        e.set_faults(Some(&FaultSpec::quiet(9)));
        assert_eq!(fault_events_in(&mut e, 30), 0);
        e.set_faults(None);
        assert_eq!(e.fault_plan(), None);
    }

    #[test]
    fn faults_survive_thread_resize_rebuild() {
        let mut e = light_engine(Strategy::Busy, 2);
        e.set_faults(Some(&FaultSpec::storm(0xE14).with_iters(40, 40, 20)));
        e.reconfigure(&[GraphEdit::ResizeThreads(3)]).unwrap();
        assert_eq!(e.threads(), 3);
        assert!(
            fault_events_in(&mut e, 40) > 0,
            "rebuild dropped the fault plan"
        );
    }

    #[test]
    fn flight_recorder_survives_thread_resize_rebuild() {
        use djstar_core::flight::FlightConfig;
        let mut e = light_engine(Strategy::Busy, 2);
        e.set_flight_recorder(Some(FlightConfig::default()));
        e.warmup(5);
        let first = e.take_flight_window().expect("recorder installed");
        assert!(!first.is_empty(), "no spans before the rebuild");
        e.reconfigure(&[GraphEdit::ResizeThreads(3)]).unwrap();
        assert_eq!(e.commit_cycles(), &[5], "rebuild must log its cycle");
        e.warmup(5);
        let second = e
            .take_flight_window()
            .expect("rebuild dropped the recorder");
        assert!(!second.is_empty(), "no spans after the rebuild");
        e.set_flight_recorder(None);
        e.warmup(2);
        assert!(e.take_flight_window().is_none());
    }

    #[test]
    fn flight_window_carries_cycle_stamps() {
        use djstar_core::flight::FlightConfig;
        let mut e = light_engine(Strategy::Steal, 2);
        e.set_flight_recorder(Some(FlightConfig::default()));
        e.warmup(6);
        let w = e.take_flight_window().expect("recorder installed");
        assert!(w.cycles.len() >= 6, "stamps: {}", w.cycles.len());
        let last = w.cycles.last().unwrap();
        assert!(w.stamp_for(last.cycle).is_some());
        assert!(!w.spans_in(last.cycle).is_empty());
    }

    #[test]
    fn degradation_sheds_then_restores_through_the_swap_path() {
        let mut e = light_engine(Strategy::Busy, 2);
        e.warmup(10);
        e.enable_degradation(DegradeConfig {
            window: 8,
            shed_misses: 4,
            restore_clean: 6,
            restore_tolerance: 1,
            min_dwell: 10,
        });
        let full_shape = *e.shape();

        // Sustained misses: the governor must shed exactly once.
        let mut shed = None;
        for _ in 0..20 {
            e.run_apc();
            if let Some(o) = e.observe_deadline(true) {
                assert!(shed.replace(o).is_none(), "double shed");
            }
        }
        let shed = shed.expect("sustained misses must shed");
        assert_eq!(shed.action, DegradeAction::Shed);
        assert!(e.is_degraded());
        for d in 0..4 {
            assert_eq!(e.shape().fx_slots[d], 1, "deck {d} FX chain not shed");
        }
        assert!(e.output().is_finite());

        // Pressure clears: the governor must restore the saved shape.
        let mut restored = None;
        for _ in 0..40 {
            e.run_apc();
            if let Some(o) = e.observe_deadline(false) {
                assert!(restored.replace(o).is_none(), "double restore");
            }
        }
        let restored = restored.expect("clean air must restore");
        assert_eq!(restored.action, DegradeAction::Restore);
        assert!(!e.is_degraded());
        assert_eq!(*e.shape(), full_shape, "restore must rebuild full quality");
        assert!(restored.generation > shed.generation);
        let events = e.degrade_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].action, DegradeAction::Shed);
        assert_eq!(events[1].action, DegradeAction::Restore);
        assert!(e.output().is_finite());
        assert!(e.output().rms() > 1e-4, "audio died across shed/restore");
    }

    #[test]
    fn degradation_unarmed_is_a_no_op() {
        let mut e = light_engine(Strategy::Sequential, 1);
        e.warmup(5);
        for _ in 0..50 {
            e.run_apc();
            assert!(e.observe_deadline(true).is_none());
        }
        assert!(!e.is_degraded());
        assert!(e.degrade_events().is_empty());
    }

    fn net_scenario(net: djstar_workload::NetSpec) -> Scenario {
        let mut s = Scenario::light_test();
        s.net = net;
        s
    }

    #[test]
    fn networked_engine_produces_audio_and_counts_packets() {
        let mut e = AudioEngine::with_aux(
            net_scenario(djstar_workload::NetSpec::lossy(7)),
            Strategy::Sequential,
            1,
            AuxWork::light(),
        );
        assert!(e.node_map().net_src[0].is_some(), "deck A should be remote");
        assert!(
            e.node_map().broadcast.is_some(),
            "lossy preset carries listeners"
        );
        e.warmup(60);
        let out = e.output();
        assert!(out.is_finite());
        assert!(out.rms() > 1e-4, "rms {}", out.rms());
        let stats = e.net_stats();
        assert!(stats.received > 60, "receivers saw no packets: {stats:?}");
        assert!(
            stats.lost + stats.late > 0,
            "lossy trace produced no faults: {stats:?}"
        );
        let depths = e.net_depths();
        assert!(depths[0] >= 1 && depths[2] == 0, "depths {depths:?}");
        assert!(e.broadcast_stats().is_some());
    }

    #[test]
    fn networked_strategies_produce_identical_audio() {
        let scenario = net_scenario(djstar_workload::NetSpec::lossy(11));
        let mut reference =
            AudioEngine::with_aux(scenario.clone(), Strategy::Sequential, 1, AuxWork::light());
        reference.warmup(40);
        let want = reference.output();
        assert!(want.rms() > 1e-4);
        for strategy in [
            Strategy::Busy,
            Strategy::Sleep,
            Strategy::Steal,
            Strategy::Hybrid,
            Strategy::Planned,
        ] {
            let mut e = AudioEngine::with_aux(scenario.clone(), strategy, 3, AuxWork::light());
            e.warmup(40);
            assert_eq!(
                want.samples(),
                e.output().samples(),
                "{strategy:?} diverged from sequential on the networked graph"
            );
        }
    }

    #[test]
    fn net_governor_deepens_through_the_swap_path() {
        // Shallow buffer under heavy jitter: conceals pile up fast, so the
        // governor must climb the depth ladder via staged generation swaps.
        let mut net = djstar_workload::NetSpec::lossy(3);
        net.jitter = 6;
        net.start_depth = 1;
        net.adapt = false; // the engine governor is the only actuator
        let mut e = AudioEngine::with_aux(net_scenario(net), Strategy::Busy, 2, AuxWork::light());
        e.warmup(10);
        let gen0 = e.generation();
        e.enable_net_degradation(NetDegradeConfig {
            window: 8,
            deepen_conceals: 2,
            restore_clean: 512,
            restore_tolerance: 0,
            min_dwell: 6,
            depth_step: 2,
            min_depth: 1,
            max_depth: 8,
        });
        assert_eq!(e.net_target_depth(), Some(1), "start at the node's depth");
        let mut outcomes = Vec::new();
        for _ in 0..200 {
            e.run_apc();
            if let Some(o) = e.observe_network() {
                outcomes.push(o);
            }
        }
        assert!(
            !outcomes.is_empty(),
            "heavy jitter on a depth-1 buffer must force a deepen"
        );
        let first = outcomes[0];
        assert!(matches!(first.action, NetDegradeAction::Deepen(_)));
        assert!(
            first.generation > gen0,
            "retune must ride a generation swap"
        );
        let target = e.net_target_depth().unwrap();
        assert!(target > 1);
        // Shape, carried node and governor all agree on the new rung.
        assert_eq!(e.shape().net_depth[0], target);
        assert_eq!(e.net_depths()[0], target);
        let events = e.net_degrade_events();
        assert_eq!(events.len(), outcomes.len());
        // The carried jitter buffer kept its history across every swap.
        assert!(e.net_stats().received > 150, "state lost across swaps");
        assert!(e.output().is_finite());
        assert!(e.output().rms() > 1e-4, "audio died across depth retunes");
    }

    #[test]
    fn net_governor_is_quiet_on_a_clean_network() {
        let mut e = AudioEngine::with_aux(
            net_scenario(djstar_workload::NetSpec::clean(5)),
            Strategy::Sequential,
            1,
            AuxWork::light(),
        );
        e.warmup(10);
        e.enable_net_degradation(NetDegradeConfig::default());
        for _ in 0..100 {
            e.run_apc();
            assert!(
                e.observe_network().is_none(),
                "clean reception must never retune"
            );
        }
        assert!(e.net_degrade_events().is_empty());
        let stats = e.net_stats();
        assert_eq!(stats.lost, 0);
        assert_eq!(stats.concealed, 0);
        let bc = e.broadcast_stats().expect("clean preset has listeners");
        assert_eq!(bc.dropped, 0, "clean network must not drop broadcast");
    }

    #[test]
    fn net_governor_unarmed_is_a_no_op() {
        let mut e = AudioEngine::with_aux(
            net_scenario(djstar_workload::NetSpec::bursty(5)),
            Strategy::Sequential,
            1,
            AuxWork::light(),
        );
        for _ in 0..50 {
            e.run_apc();
            assert!(e.observe_network().is_none());
        }
        assert!(e.net_degrade_events().is_empty());
        assert_eq!(e.net_target_depth(), None);
    }
}
