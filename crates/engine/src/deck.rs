//! Deck playback: track players with time-stretching (the GP phase).
//!
//! §III-B: graph preprocessing — "time stretching, phase alignment, buffer
//! overhead" — consumes 33 % of the APC. Each active deck pulls one buffer
//! of audio from its track through a WSOLA time stretcher at the tempo the
//! timecode decoder reports, and a beat-phase estimate is maintained for
//! the bookkeeping nodes.

use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::resample::VarRateReader;
use djstar_dsp::stretch::TimeStretcher;
use djstar_workload::track::Track;

/// How the deck is currently rendering audio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlayMode {
    /// WSOLA time stretch: tempo changes, pitch preserved (master tempo).
    Stretch,
    /// Vinyl emulation: pitch follows speed; supports reverse and scratch
    /// speeds outside the stretcher's range.
    Vinyl,
}

/// A playing deck: a track, a stretcher, a vinyl-mode reader and beat
/// bookkeeping.
pub struct TrackPlayer {
    track: Track,
    stretcher: TimeStretcher,
    vinyl: VarRateReader,
    mode: PlayMode,
    /// Current tempo factor actually applied (smoothed toward the target).
    tempo: f32,
    /// Mono scratch buffer reused every cycle.
    mono: Vec<f32>,
    /// Beat phase in `[0, 1)` (0 = on the beat).
    beat_phase: f32,
    /// Active loop region `[start, end)` in source samples, if any.
    loop_region: Option<(f64, f64)>,
}

impl TrackPlayer {
    /// A player at the start of `track`.
    pub fn new(track: Track) -> Self {
        TrackPlayer {
            track,
            stretcher: TimeStretcher::new(),
            vinyl: VarRateReader::new(0.0),
            mode: PlayMode::Stretch,
            tempo: 1.0,
            mono: Vec::new(),
            beat_phase: 0.0,
            loop_region: None,
        }
    }

    /// Engage a loop over `[start, end)` source samples (a beat-loop in DJ
    /// terms). Ill-formed or out-of-range regions are clamped; regions
    /// shorter than 32 samples are rejected.
    pub fn set_loop(&mut self, start: f64, end: f64) -> bool {
        let len = self.track.samples().len() as f64;
        let start = start.clamp(0.0, len);
        let end = end.clamp(0.0, len);
        if end - start < 32.0 {
            return false;
        }
        self.loop_region = Some((start, end));
        true
    }

    /// Disengage the loop.
    pub fn clear_loop(&mut self) {
        self.loop_region = None;
    }

    /// The active loop region, if any.
    pub fn loop_region(&self) -> Option<(f64, f64)> {
        self.loop_region
    }

    /// Current play mode.
    pub fn mode(&self) -> PlayMode {
        self.mode
    }

    /// The loaded track.
    pub fn track(&self) -> &Track {
        &self.track
    }

    /// Current (smoothed) tempo factor.
    pub fn tempo(&self) -> f32 {
        self.tempo
    }

    /// Current playback position in source samples.
    pub fn position(&self) -> f64 {
        match self.mode {
            PlayMode::Stretch => self.stretcher.position(),
            PlayMode::Vinyl => self.vinyl.position(),
        }
    }

    /// Beat phase in `[0, 1)`.
    pub fn beat_phase(&self) -> f32 {
        self.beat_phase
    }

    /// Seek to an absolute source sample.
    pub fn seek(&mut self, pos: f64) {
        self.stretcher.seek(pos);
        self.vinyl.seek(pos.max(0.0));
    }

    /// Pull one buffer with full DVS semantics: speeds within the
    /// stretcher's useful range play time-stretched (pitch preserved);
    /// reverse, near-stopped and scratch speeds switch to vinyl emulation
    /// (pitch follows the platter). Mode switches hand the playback
    /// position over seamlessly.
    pub fn pull_dvs(&mut self, speed: f32, out: &mut AudioBuf) {
        let stretchable = (0.25..=4.0).contains(&speed);
        match (self.mode, stretchable) {
            (PlayMode::Stretch, true) => self.pull(speed, out),
            (PlayMode::Stretch, false) => {
                self.vinyl.seek(self.stretcher.position().max(0.0));
                self.mode = PlayMode::Vinyl;
                self.pull_vinyl(speed, out);
            }
            (PlayMode::Vinyl, false) => self.pull_vinyl(speed, out),
            (PlayMode::Vinyl, true) => {
                self.stretcher.seek(self.vinyl.position().max(0.0));
                self.mode = PlayMode::Stretch;
                self.tempo = speed; // avoid slewing from a stale tempo
                self.pull(speed, out);
            }
        }
    }

    /// Pull one buffer in vinyl emulation at the signed `speed` (negative
    /// plays backwards, pitch follows speed). Wraps at the track ends.
    pub fn pull_vinyl(&mut self, speed: f32, out: &mut AudioBuf) {
        let frames = out.frames();
        self.mono.resize(frames, 0.0);
        let len = self.track.samples().len() as f64;
        // Wrap position into the loop region (if engaged) or the track.
        let pos = self.vinyl.position();
        if let Some((start, end)) = self.loop_region {
            if pos >= end {
                self.vinyl.seek(start);
            } else if pos < start {
                self.vinyl.seek(end - 1.0);
            }
        } else if pos >= len {
            self.vinyl.seek(0.0);
        } else if pos < 0.0 {
            self.vinyl.seek(len - 1.0);
        }
        self.vinyl
            .read(self.track.samples(), speed as f64, &mut self.mono);
        // Normalize the position back into the track after the read too, so
        // a single backwards pull from 0 lands at the end rather than at a
        // negative offset.
        let p = self.vinyl.position();
        if p < 0.0 || p >= len {
            self.vinyl.seek(p.rem_euclid(len.max(1.0)));
        }
        let (l, r) = out.as_planar_slices_mut();
        l.copy_from_slice(&self.mono);
        if !r.is_empty() {
            r.copy_from_slice(&self.mono);
        }
        let beats_per_buffer =
            self.track.bpm() * speed / 60.0 * frames as f32 / self.track.sample_rate() as f32;
        self.beat_phase = (self.beat_phase + beats_per_buffer).rem_euclid(1.0);
    }

    /// Pull one buffer at `target_tempo` (from the timecode decoder) into
    /// the stereo `out` buffer. Loops the track at its end. The tempo is
    /// slewed (max 5 % change per cycle) like DJ Star's pitch smoothing.
    pub fn pull(&mut self, target_tempo: f32, out: &mut AudioBuf) {
        let target = target_tempo.clamp(0.25, 4.0);
        let max_step = 0.05 * self.tempo.max(0.25);
        self.tempo += (target - self.tempo).clamp(-max_step, max_step);

        let frames = out.frames();
        self.mono.resize(frames, 0.0);
        let len = self.track.samples().len() as f64;
        match self.loop_region {
            // Beat-loop: jump back to the loop start once the position
            // passes the loop end (buffer-granular, like DJ Star's own
            // loops which quantize to the processing cycle).
            Some((start, end)) => {
                if self.stretcher.position() >= end {
                    self.stretcher.seek(start);
                }
            }
            // No loop: wrap the stretcher near the end of the track.
            None => {
                if self.stretcher.position() + (frames as f64 * self.tempo as f64) * 4.0 >= len {
                    self.stretcher.seek(0.0);
                }
            }
        }
        self.stretcher
            .process(self.track.samples(), self.tempo, &mut self.mono);
        let (l, r) = out.as_planar_slices_mut();
        l.copy_from_slice(&self.mono);
        if !r.is_empty() {
            r.copy_from_slice(&self.mono);
        }
        // Advance the beat phase: beats advance at bpm * tempo.
        let beats_per_buffer =
            self.track.bpm() * self.tempo / 60.0 * frames as f32 / self.track.sample_rate() as f32;
        self.beat_phase = (self.beat_phase + beats_per_buffer).fract();
    }

    /// Phase alignment (part of GP): the fractional beat offset of this deck
    /// relative to `other`, in `(-0.5, 0.5]` beats. DJ Star shows this to
    /// the DJ for beatmatching.
    pub fn phase_offset_to(&self, other: &TrackPlayer) -> f32 {
        let mut d = self.beat_phase - other.beat_phase;
        if d > 0.5 {
            d -= 1.0;
        }
        if d <= -0.5 {
            d += 1.0;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use djstar_workload::track::{synth_track, TrackStyle};

    fn player() -> TrackPlayer {
        TrackPlayer::new(synth_track(3, 128.0, 4.0, TrackStyle::House))
    }

    #[test]
    fn pull_produces_audio() {
        let mut p = player();
        let mut out = AudioBuf::zeroed(2, 128);
        // Let the stretcher fill its pipeline.
        for _ in 0..16 {
            p.pull(1.0, &mut out);
        }
        assert!(out.is_finite());
        assert!(out.rms() > 0.01, "rms {}", out.rms());
        // Stereo channels carry the same mono source.
        for i in 0..128 {
            assert_eq!(out.sample(0, i), out.sample(1, i));
        }
    }

    #[test]
    fn tempo_slews_toward_target() {
        let mut p = player();
        let mut out = AudioBuf::zeroed(2, 128);
        p.pull(1.5, &mut out);
        let t1 = p.tempo();
        assert!(t1 < 1.5 && t1 > 1.0);
        for _ in 0..100 {
            p.pull(1.5, &mut out);
        }
        assert!((p.tempo() - 1.5).abs() < 0.01);
    }

    #[test]
    fn position_advances_and_loops() {
        let mut p = player();
        let mut out = AudioBuf::zeroed(2, 128);
        p.pull(1.0, &mut out);
        let pos1 = p.position();
        p.pull(1.0, &mut out);
        assert!(p.position() >= pos1);
        // Drive past the end: position must wrap to near zero eventually.
        let len = p.track().samples().len() as f64;
        let mut wrapped = false;
        for _ in 0..3000 {
            p.pull(2.0, &mut out);
            if p.position() < len / 2.0 {
                wrapped = true;
            }
        }
        assert!(wrapped, "never looped");
    }

    #[test]
    fn beat_phase_stays_normalized() {
        let mut p = player();
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..500 {
            p.pull(1.0, &mut out);
            assert!((0.0..1.0).contains(&p.beat_phase()));
        }
    }

    #[test]
    fn phase_offset_is_antisymmetric_and_wrapped() {
        let mut a = player();
        let mut b = player();
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..37 {
            a.pull(1.0, &mut out);
        }
        for _ in 0..11 {
            b.pull(1.1, &mut out);
        }
        let ab = a.phase_offset_to(&b);
        let ba = b.phase_offset_to(&a);
        assert!(ab.abs() <= 0.5);
        assert!((ab + ba).abs() < 1e-5 || (ab + ba).abs() > 0.999);
    }

    #[test]
    fn loop_keeps_position_inside_region() {
        let mut p = player();
        let sr = 44_100.0f64;
        assert!(p.set_loop(sr, sr * 1.5)); // a half-second loop at 1 s
        p.seek(sr);
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..400 {
            p.pull(1.0, &mut out);
            let pos = p.position();
            assert!(
                pos >= sr - 1.0 && pos <= sr * 1.5 + 4096.0,
                "position {pos} escaped the loop"
            );
        }
        // ~400 cycles x 128 samples = 51k samples played: without the loop
        // the position would be ~1.16 s beyond; with it we stayed inside.
        p.clear_loop();
        assert!(p.loop_region().is_none());
    }

    #[test]
    fn loop_applies_in_vinyl_mode_too() {
        let mut p = player();
        let sr = 44_100.0f64;
        assert!(p.set_loop(sr, sr + 8_192.0));
        p.seek(sr);
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..200 {
            p.pull_vinyl(1.7, &mut out);
            let pos = p.position();
            assert!(pos >= sr - 1.0 && pos < sr + 8_192.0 + 256.0, "pos {pos}");
        }
        // Reverse inside the loop wraps to the loop end.
        for _ in 0..200 {
            p.pull_vinyl(-1.0, &mut out);
            let pos = p.position();
            assert!(pos >= sr - 256.0 && pos < sr + 8_192.0 + 256.0, "pos {pos}");
        }
    }

    #[test]
    fn degenerate_loops_rejected() {
        let mut p = player();
        assert!(!p.set_loop(1000.0, 1010.0)); // < 32 samples
        assert!(!p.set_loop(5000.0, 4000.0)); // inverted
        assert!(p.loop_region().is_none());
        assert!(p.set_loop(0.0, f64::MAX)); // clamped to track length
        let (s, e) = p.loop_region().unwrap();
        assert_eq!(s, 0.0);
        assert_eq!(e, p.track().samples().len() as f64);
    }

    #[test]
    fn vinyl_mode_plays_backwards() {
        let mut p = player();
        let mut out = AudioBuf::zeroed(2, 128);
        // Play forward a while, then scratch backwards.
        for _ in 0..50 {
            p.pull_dvs(1.0, &mut out);
        }
        assert_eq!(p.mode(), PlayMode::Stretch);
        let pos_before = p.position();
        for _ in 0..10 {
            p.pull_dvs(-1.0, &mut out);
        }
        assert_eq!(p.mode(), PlayMode::Vinyl);
        assert!(p.position() < pos_before, "position must move backwards");
        assert!(out.is_finite());
    }

    #[test]
    fn dvs_switches_back_to_stretch() {
        let mut p = player();
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..20 {
            p.pull_dvs(1.0, &mut out);
        }
        for _ in 0..10 {
            p.pull_dvs(-2.0, &mut out);
        }
        assert_eq!(p.mode(), PlayMode::Vinyl);
        let pos = p.position();
        for _ in 0..10 {
            p.pull_dvs(1.0, &mut out);
        }
        assert_eq!(p.mode(), PlayMode::Stretch);
        // Handover was seamless: position continued from the vinyl spot.
        assert!(
            (p.position() - pos).abs() < 44_100.0 * 0.2,
            "position jumped"
        );
    }

    #[test]
    fn vinyl_near_stop_is_quiet_and_finite() {
        let mut p = player();
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..20 {
            p.pull_dvs(1.0, &mut out);
        }
        for _ in 0..20 {
            p.pull_dvs(0.05, &mut out); // below stretch range: vinyl crawl
            assert!(out.is_finite());
        }
        assert_eq!(p.mode(), PlayMode::Vinyl);
    }

    #[test]
    fn vinyl_wraps_at_track_ends() {
        let mut p = player();
        let mut out = AudioBuf::zeroed(2, 128);
        p.pull_dvs(-1.0, &mut out); // immediately backwards from 0
        let len = p.track().samples().len() as f64;
        assert!(p.position() > 0.0 && p.position() <= len);
    }

    #[test]
    fn seek_rewinds() {
        let mut p = player();
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..50 {
            p.pull(1.0, &mut out);
        }
        p.seek(0.0);
        assert_eq!(p.position(), 0.0);
    }
}
